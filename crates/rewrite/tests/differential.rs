//! Randomized differential tests for the rewriting engine: over a few
//! hundred generated linear / non-recursive / sticky OMQs,
//!
//! * the parallel frontier expansion must produce **byte-identical**
//!   disjunct lists at every thread count (1 vs 2/4/8),
//! * the canonical-form dedup strategy must agree with the fingerprint +
//!   `cq_isomorphic` reference strategy,
//! * subsumption pruning must preserve certain answers on random databases
//!   (the pruned and unpruned UCQs are semantically equivalent),
//! * canonical labeling must agree with `cq_isomorphic` across the output
//!   disjuncts (equal forms ⟺ isomorphic).
//!
//! The generators are SplitMix64-driven (no external crates) and shaped per
//! class; membership is re-checked with the `omq-classes` deciders, and
//! sticky-shaped programs that fail the marking test are skipped (counted,
//! with a minimum number of surviving cases enforced).

use std::collections::HashSet;

use omq_chase::{cq_canonical_form, cq_isomorphic, eval_ucq};
use omq_classes::{is_linear, is_non_recursive, is_sticky};
use omq_model::rng::SplitMix64;
use omq_model::{
    Atom, ConstId, Cq, Instance, Omq, PredId, Schema, Term, Tgd, Ucq, VarId, Vocabulary,
};
use omq_rewrite::{xrewrite, DedupStrategy, RewriteError, RewriteOutput, XRewriteConfig};

const LINEAR: usize = 0;
const NONRECURSIVE: usize = 1;
const STICKY: usize = 2;

struct Case {
    omq: Omq,
    voc: Vocabulary,
    consts: Vec<ConstId>,
}

/// A random head atom for `pred` using `body_vars`, with a chance of one
/// existentially quantified variable (never more — keeps the shapes tame).
fn head_atom(
    rng: &mut SplitMix64,
    voc: &mut Vocabulary,
    pred: PredId,
    body_vars: &[VarId],
    tag: usize,
) -> Atom {
    let mut existential = None;
    let args: Vec<Term> = (0..voc.arity(pred))
        .map(|k| {
            if rng.chance(1, 4) {
                let z = *existential.get_or_insert_with(|| voc.var(&format!("Z{tag}_{k}")));
                Term::Var(z)
            } else {
                Term::Var(body_vars[rng.below(body_vars.len())])
            }
        })
        .collect();
    Atom::new(pred, args)
}

fn gen_case(rng: &mut SplitMix64, shape: usize) -> Case {
    let mut voc = Vocabulary::new();
    let preds: Vec<PredId> = (0..rng.range(3..6))
        .map(|i| voc.pred(&format!("P{i}"), rng.range(1..4)))
        .collect();
    let consts: Vec<ConstId> = (0..3).map(|i| voc.constant(&format!("c{i}"))).collect();

    let ntgds = rng.range(1..4);
    let mut sigma: Vec<Tgd> = Vec::new();
    for t in 0..ntgds {
        let pool: Vec<VarId> = (0..3).map(|j| voc.var(&format!("V{t}_{j}"))).collect();
        let tgd = match shape {
            LINEAR => {
                let p = preds[rng.below(preds.len())];
                let args: Vec<Term> = (0..voc.arity(p))
                    .map(|_| Term::Var(pool[rng.below(pool.len())]))
                    .collect();
                let body = vec![Atom::new(p, args)];
                let body_vars: Vec<VarId> = body[0].vars().collect();
                let hp = preds[rng.below(preds.len())];
                let head = head_atom(rng, &mut voc, hp, &body_vars, t);
                Tgd::new(body, vec![head])
            }
            NONRECURSIVE => {
                // Heads only use strictly-lower predicate indices than every
                // body atom: the predicate graph is acyclic by construction.
                let hi = rng.below(preds.len().saturating_sub(1));
                let natoms = rng.range(1..3);
                let mut body = Vec::new();
                for _ in 0..natoms {
                    let p = preds[rng.range(hi + 1..preds.len())];
                    let args: Vec<Term> = (0..voc.arity(p))
                        .map(|_| Term::Var(pool[rng.below(pool.len())]))
                        .collect();
                    body.push(Atom::new(p, args));
                }
                let mut body_vars: Vec<VarId> = body
                    .iter()
                    .flat_map(Atom::vars)
                    .collect::<HashSet<_>>()
                    .into_iter()
                    .collect();
                // HashSet order is per-process random; sort so the generated
                // stream is identical on every run.
                body_vars.sort();
                let head = head_atom(rng, &mut voc, preds[hi], &body_vars, t);
                Tgd::new(body, vec![head])
            }
            _ => {
                // Sticky-shaped: up to two body atoms, mostly join-free
                // (each variable used once), which the marking test usually
                // accepts; the caller re-checks `is_sticky` and skips
                // rejected programs.
                let natoms = rng.range(1..3);
                let mut body = Vec::new();
                let mut used = 0usize;
                for _ in 0..natoms {
                    let p = preds[rng.below(preds.len())];
                    let args: Vec<Term> = (0..voc.arity(p))
                        .map(|_| {
                            let v = if rng.chance(1, 5) && used > 0 {
                                pool[rng.below(used.min(pool.len()))]
                            } else {
                                let v = pool[used.min(pool.len() - 1)];
                                used += 1;
                                v
                            };
                            Term::Var(v)
                        })
                        .collect();
                    body.push(Atom::new(p, args));
                }
                let mut body_vars: Vec<VarId> = body
                    .iter()
                    .flat_map(Atom::vars)
                    .collect::<HashSet<_>>()
                    .into_iter()
                    .collect();
                body_vars.sort();
                let hp = preds[rng.below(preds.len())];
                let head = head_atom(rng, &mut voc, hp, &body_vars, t);
                Tgd::new(body, vec![head])
            }
        };
        sigma.push(tgd);
    }

    // A random query: 1–3 atoms, head = a subset of its variables.
    let qvars: Vec<VarId> = (0..4).map(|j| voc.var(&format!("X{j}"))).collect();
    let mut body = Vec::new();
    for _ in 0..rng.range(1..4) {
        let p = preds[rng.below(preds.len())];
        let args: Vec<Term> = (0..voc.arity(p))
            .map(|_| Term::Var(qvars[rng.below(qvars.len())]))
            .collect();
        body.push(Atom::new(p, args));
    }
    let mut used: Vec<VarId> = body
        .iter()
        .flat_map(Atom::vars)
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    used.sort();
    let mut head: Vec<VarId> = used
        .into_iter()
        .filter(|_| rng.chance(1, 3))
        .take(2)
        .collect();
    head.sort();
    let query = Cq::new(head, body);

    // Data schema: every predicate is data-accessible half the time, plus
    // always the ones no tgd derives (so the seed query itself can survive).
    let derived: HashSet<PredId> = sigma.iter().map(|t| t.head[0].pred).collect();
    let data: Vec<PredId> = preds
        .iter()
        .copied()
        .filter(|p| !derived.contains(p) || rng.chance(1, 2))
        .collect();

    Case {
        omq: Omq::new(Schema::from_preds(data), sigma, Ucq::from_cq(query)),
        voc,
        consts,
    }
}

/// A random database over the case's data schema.
fn gen_db(rng: &mut SplitMix64, case: &Case) -> Instance {
    let mut db = Instance::new();
    let preds: Vec<PredId> = case.omq.data_schema.preds().to_vec();
    if preds.is_empty() {
        return db;
    }
    for _ in 0..rng.range(2..8) {
        let p = preds[rng.below(preds.len())];
        let args: Vec<Term> = (0..case.voc.arity(p))
            .map(|_| Term::Const(case.consts[rng.below(case.consts.len())]))
            .collect();
        db.insert(Atom::new(p, args));
    }
    db
}

fn run(case: &Case, cfg: &XRewriteConfig) -> Result<RewriteOutput, RewriteError> {
    let mut voc = case.voc.clone();
    xrewrite(&case.omq, &mut voc, cfg)
}

const CASES: u64 = 240;
const MAX_QUERIES: usize = 3_000;

#[test]
fn rewriting_differential_sweep() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_2e11_a11e_0002);
    let mut ran = [0usize; 3];
    let mut nonsticky_skips = 0usize;
    let mut budget_skips = 0usize;

    for case_no in 0..CASES {
        let shape = (case_no % 3) as usize;
        let case = gen_case(&mut rng, shape);
        match shape {
            LINEAR => assert!(is_linear(&case.omq.sigma), "case {case_no}: not linear"),
            NONRECURSIVE => assert!(
                is_non_recursive(&case.omq.sigma),
                "case {case_no}: not non-recursive"
            ),
            _ => {
                if !is_sticky(&case.omq.sigma) {
                    nonsticky_skips += 1;
                    continue;
                }
            }
        }

        let base_cfg = XRewriteConfig {
            max_queries: MAX_QUERIES,
            threads: 1,
            ..Default::default()
        };
        let base = match run(&case, &base_cfg) {
            Ok(out) => out,
            Err(RewriteError::BudgetExceeded(_)) => {
                budget_skips += 1;
                continue;
            }
        };
        ran[shape] += 1;

        // Every output disjunct is over the data schema.
        for d in &base.ucq.disjuncts {
            assert!(
                d.body.iter().all(|a| case.omq.data_schema.contains(a.pred)),
                "case {case_no}: disjunct leaves the data schema"
            );
        }

        // (a) Thread-count independence: byte-identical disjunct lists and
        // identical deterministic counters — including the adaptive
        // planner's (replan decisions and estimate-quality buckets are
        // functions of instance content and call order, never of the
        // thread count). `0` resolves to the machine's parallelism.
        for threads in [0usize, 2, 4, 8] {
            let out = run(
                &case,
                &XRewriteConfig {
                    threads,
                    ..base_cfg.clone()
                },
            )
            .unwrap_or_else(|_| panic!("case {case_no}: budget at {threads} threads only"));
            assert_eq!(
                out.ucq.disjuncts, base.ucq.disjuncts,
                "case {case_no}: disjuncts differ at {threads} threads"
            );
            assert_eq!(out.generated, base.generated, "case {case_no}");
            assert_eq!(out.rewrite_steps, base.rewrite_steps, "case {case_no}");
            assert_eq!(
                out.factorization_steps, base.factorization_steps,
                "case {case_no}"
            );
            assert_eq!(
                (
                    out.stats.plans_reoptimized,
                    out.stats.est_ratio_le_1,
                    out.stats.est_ratio_le_4,
                    out.stats.est_ratio_gt_4,
                ),
                (
                    base.stats.plans_reoptimized,
                    base.stats.est_ratio_le_1,
                    base.stats.est_ratio_le_4,
                    base.stats.est_ratio_gt_4,
                ),
                "case {case_no}: planner counters differ at {threads} threads"
            );
        }

        // (a') Plan-cache independence: disabling join-plan reuse in the
        // subsumption sieve must not change any output byte or any
        // deterministic counter — only the cache-hit counter collapses.
        let nocache = run(
            &case,
            &XRewriteConfig {
                plan_cache: false,
                ..base_cfg.clone()
            },
        )
        .unwrap_or_else(|_| panic!("case {case_no}: budget with plan cache off only"));
        assert_eq!(
            nocache.ucq.disjuncts, base.ucq.disjuncts,
            "case {case_no}: disjuncts differ with plan cache off"
        );
        assert_eq!(nocache.generated, base.generated, "case {case_no}");
        assert_eq!(nocache.rewrite_steps, base.rewrite_steps, "case {case_no}");
        assert_eq!(
            nocache.stats.subsumption_kills, base.stats.subsumption_kills,
            "case {case_no}: kills differ with plan cache off"
        );
        assert_eq!(
            nocache.stats.plan_cache_hits, 0,
            "case {case_no}: cache hits counted with plan cache off"
        );

        // (b) The fingerprint + pairwise-isomorphism reference strategy
        // agrees with canonical-form dedup.
        let fp = run(
            &case,
            &XRewriteConfig {
                dedup: DedupStrategy::FingerprintIso,
                ..base_cfg.clone()
            },
        )
        .expect("case: budget under FingerprintIso only");
        assert_eq!(
            fp.ucq.disjuncts, base.ucq.disjuncts,
            "case {case_no}: dedup strategies disagree"
        );
        assert_eq!(fp.generated, base.generated, "case {case_no}");

        // (c) Pruned vs unpruned: same certain answers on random databases.
        let unpruned = run(
            &case,
            &XRewriteConfig {
                prune_subsumed: false,
                ..base_cfg.clone()
            },
        )
        .expect("case: budget without pruning only");
        assert!(
            base.ucq.disjuncts.len() <= unpruned.ucq.disjuncts.len(),
            "case {case_no}: pruning grew the UCQ"
        );
        for _ in 0..3 {
            let db = gen_db(&mut rng, &case);
            assert_eq!(
                eval_ucq(&base.ucq, &db),
                eval_ucq(&unpruned.ucq, &db),
                "case {case_no}: pruning changed certain answers on {db:?}"
            );
        }

        // (d) Canonical labeling agrees with cq_isomorphic on the output
        // disjuncts: equal forms ⟺ isomorphic (skipping symmetry-budget
        // fallbacks, which are rare and isomorphism-invariant).
        let sample: Vec<&Cq> = base.ucq.disjuncts.iter().take(8).collect();
        let forms: Vec<Option<_>> = sample.iter().map(|d| cq_canonical_form(d, 5_040)).collect();
        for i in 0..sample.len() {
            for j in i + 1..sample.len() {
                if let (Some(fi), Some(fj)) = (&forms[i], &forms[j]) {
                    assert_eq!(
                        fi == fj,
                        cq_isomorphic(sample[i], sample[j]),
                        "case {case_no}: canonical form vs isomorphism mismatch\n{:?}\n{:?}",
                        sample[i],
                        sample[j]
                    );
                }
            }
        }
    }

    assert!(ran[LINEAR] >= 60, "too few linear cases: {}", ran[LINEAR]);
    assert!(
        ran[NONRECURSIVE] >= 60,
        "too few non-recursive cases: {}",
        ran[NONRECURSIVE]
    );
    assert!(ran[STICKY] >= 30, "too few sticky cases: {}", ran[STICKY]);
    assert!(
        budget_skips <= CASES as usize / 10,
        "too many budget skips: {budget_skips}"
    );
    // Sticky-shaped generation should mostly pass the marking test.
    assert!(
        nonsticky_skips <= 40,
        "sticky generator too lossy: {nonsticky_skips}"
    );
}
