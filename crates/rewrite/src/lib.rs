//! # omq-rewrite
//!
//! UCQ rewriting for ontology-mediated queries (paper §4).
//!
//! The OMQ languages based on linear (`L`), non-recursive (`NR`), and sticky
//! (`S`) sets of tgds are *UCQ rewritable* (Def. 1): every OMQ
//! `Q = (S, Σ, q)` admits a UCQ `q'` over the data schema with
//! `Q(D) = q'(D)` for all `S`-databases `D`. This crate implements
//!
//! * **XRewrite** (Algorithm 1 in the paper's appendix, from Gottlob, Orsi,
//!   Pieris \[40\]): a resolution-based rewriting procedure with the
//!   *applicability* (Def. 6) and *factorizability* (Def. 7) conditions,
//! * the rewriting-size bound functions `f_O` of Props. 12, 14, 17,
//! * the UCQ→CQ compilation of Prop. 9 (boolean-encoding construction),
//! * rewriting-based OMQ evaluation, the complete evaluation strategy for
//!   `L` and `S`, where the chase may not terminate.

pub mod bounds;
pub mod eval;
pub mod source;
pub mod ucq_to_cq;
pub mod xrewrite;

pub use bounds::{bound_linear, bound_nonrecursive, bound_sticky};
pub use eval::certain_answers_via_rewriting;
pub use source::{DirectRewrite, RewriteArtifact, RewriteSource};
pub use ucq_to_cq::{ucq_omq_to_cq_omq, UcqToCqError};
pub use xrewrite::{
    xrewrite, DedupStrategy, RewriteError, RewriteOutput, RewriteStats, XRewriteConfig,
};
