//! Pluggable rewriting providers.
//!
//! The UCQ rewriting is the expensive, *reusable* artifact of the whole
//! pipeline: containment checks and rewriting-based evaluation both consume
//! one, and a serving layer wants to compute it once per (OMQ, config) and
//! replay it across requests. [`RewriteSource`] is the seam that makes this
//! possible without the engines knowing about caches: `omq-core` routes
//! every rewriting request through a source, [`DirectRewrite`] reproduces
//! the old always-recompute behaviour, and `omq-serve` plugs in its LRU
//! artifact cache.
//!
//! ## Contract
//!
//! A source must return an artifact *semantically identical* to what
//! [`xrewrite`] would produce for the same `(omq, cfg)` — same disjunct
//! list, same completeness flag — because callers rely on disjunct order
//! (witness replay) and on `complete` for their exactness guarantees. A
//! cache keyed on anything coarser than the full rewriting-relevant input
//! (ontology, query, data schema, config knobs) breaks this contract.

use omq_model::{Omq, Ucq, Vocabulary};

use crate::xrewrite::{xrewrite, RewriteError, XRewriteConfig};

/// A (possibly partial) UCQ rewriting, as consumed by containment and
/// evaluation: the disjunct list plus whether it is the *complete* rewriting
/// (a partial one is sound — every disjunct is a correct rewriting — but
/// proves no negative facts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteArtifact {
    /// The UCQ rewriting over the data schema.
    pub ucq: Ucq,
    /// Did the rewriting reach its fixpoint? `false` means a budget (query
    /// count or wall clock) truncated it.
    pub complete: bool,
}

impl RewriteArtifact {
    /// Collapses an [`xrewrite`] result into the artifact form: both the
    /// `Ok` and the budget-exceeded paths carry a sound UCQ, they differ
    /// only in completeness.
    pub fn from_result(r: Result<crate::RewriteOutput, RewriteError>) -> RewriteArtifact {
        match r {
            Ok(out) => RewriteArtifact {
                ucq: out.ucq,
                complete: true,
            },
            Err(RewriteError::BudgetExceeded(partial)) => RewriteArtifact {
                ucq: partial.ucq,
                complete: false,
            },
        }
    }
}

/// Where containment/evaluation obtain UCQ rewritings from.
///
/// `&mut self` lets implementations maintain state (an LRU cache, hit
/// counters); the trait is object-safe so engines take `&mut dyn
/// RewriteSource` and stay monomorphization-free.
pub trait RewriteSource {
    /// Produces the rewriting of `omq` under `cfg` (computing or replaying
    /// it — see the module docs for the equivalence contract).
    fn rewrite(&mut self, omq: &Omq, voc: &mut Vocabulary, cfg: &XRewriteConfig)
        -> RewriteArtifact;
}

/// The default source: always runs [`xrewrite`] directly. Stateless; this
/// is exactly the pre-serving behaviour.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectRewrite;

impl RewriteSource for DirectRewrite {
    fn rewrite(
        &mut self,
        omq: &Omq,
        voc: &mut Vocabulary,
        cfg: &XRewriteConfig,
    ) -> RewriteArtifact {
        RewriteArtifact::from_result(xrewrite(omq, voc, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema};

    #[test]
    fn direct_source_matches_xrewrite() {
        let prog = parse_program(
            "P(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> P(Y)\n\
             T(X) -> P(X)\n\
             q(X) :- R(X,Y), P(Y)\n",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let schema = Schema::from_preds([voc.pred_id("P").unwrap(), voc.pred_id("T").unwrap()]);
        let omq = Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone());
        let cfg = XRewriteConfig::default();
        let direct = xrewrite(&omq, &mut voc.clone(), &cfg).unwrap();
        let art = DirectRewrite.rewrite(&omq, &mut voc, &cfg);
        assert!(art.complete);
        assert_eq!(art.ucq, direct.ucq);
    }
}
