//! The rewriting-size bound functions `f_O` of §4 (Props. 12, 14, 17).
//!
//! For a UCQ-rewritable language `O`, `f_O(Q)` bounds the number of atoms in
//! any single disjunct of a UCQ rewriting of `Q`. These bounds drive the
//! small-witness property (Prop. 10): non-containment of `Q` in anything is
//! witnessed by a database of size at most `f_O(Q)`.
//!
//! All bounds saturate at `u64::MAX` instead of overflowing.

use omq_model::{tgd::sigma_constants, Omq};

/// `f_(L,CQ)(Q) ≤ |q|` (Prop. 12): under linear tgds, rewriting never grows
/// a CQ, so the maximum disjunct size over a UCQ input is the max input
/// disjunct size.
pub fn bound_linear(q: &Omq) -> u64 {
    q.query.max_disjunct_size() as u64
}

/// `f_(NR,CQ)(Q) ≤ |q| · (max_τ |body(τ)|)^{|sch(Σ)|}` (Prop. 14).
pub fn bound_nonrecursive(q: &Omq) -> u64 {
    let max_body = q
        .sigma
        .iter()
        .map(|t| t.body.len())
        .max()
        .unwrap_or(0)
        .max(1) as u64;
    let exp = omq_model::tgd::sch(&q.sigma).len() as u32;
    let base = q.query.max_disjunct_size() as u64;
    max_body
        .checked_pow(exp)
        .and_then(|p| base.checked_mul(p))
        .unwrap_or(u64::MAX)
}

/// `f_(S,CQ)(Q) ≤ |S| · (|T(q)| + |C(Σ)| + 1)^{ar(S)}` (Prop. 17), where
/// `S` is the data schema, `T(q)` the terms of the query, `C(Σ)` the
/// constants of the ontology, and `ar(S)` the maximum arity.
pub fn bound_sticky(q: &Omq, voc: &omq_model::Vocabulary) -> u64 {
    let terms = q
        .query
        .disjuncts
        .iter()
        .map(|d| d.terms().len())
        .max()
        .unwrap_or(0) as u64;
    let consts = sigma_constants(&q.sigma).len() as u64;
    let ar = q.data_schema.max_arity(voc) as u32;
    let s = q.data_schema.len() as u64;
    (terms + consts + 1)
        .checked_pow(ar)
        .and_then(|p| s.checked_mul(p))
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema, Ucq, Vocabulary};

    fn omq(text: &str, data: &[&str]) -> (Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        (
            Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone()),
            voc,
        )
    }

    #[test]
    fn linear_bound_is_query_size() {
        let (q, _) = omq(
            "P(X) -> exists Y . R(X,Y)\nq(X) :- R(X,Y), P(Y), P(X)\n",
            &["P"],
        );
        assert_eq!(bound_linear(&q), 3);
    }

    #[test]
    fn nonrecursive_bound_grows_with_schema() {
        let (q, _) = omq(
            "A(X), B(X) -> C(X)\n\
             C(X), D(X) -> E(X)\n\
             q :- E(X)\n",
            &["A", "B", "D"],
        );
        // max body 2, |sch| = 5, |q| = 1 → 2^5 = 32.
        assert_eq!(bound_nonrecursive(&q), 32);
    }

    #[test]
    fn sticky_bound_exponential_in_arity() {
        let (q, voc) = omq(
            "S(X1,X2,X3) -> P(X1)\n\
             q :- P(X)\n",
            &["S"],
        );
        // |S|=1, |T(q)|=1, |C(Σ)|=0, ar=3 → 1 · 2^3 = 8.
        assert_eq!(bound_sticky(&q, &voc), 8);
    }

    #[test]
    fn bounds_saturate() {
        // 3^64 overflows u64: expect saturation, not panic.
        let mut text = String::new();
        for i in 0..64 {
            text.push_str(&format!("A{i}(X), B{i}(X), C{i}(X) -> D{i}(X)\n"));
        }
        text.push_str("q :- D0(X)\n");
        let (q, _) = omq(&text, &["A0"]);
        assert_eq!(bound_nonrecursive(&q), u64::MAX);
    }

    #[test]
    fn ucq_input_uses_max_disjunct() {
        let (mut q, _) = omq("P(X) -> T(X)\nq(X) :- P(X)\nq(X) :- T(X), P(X)\n", &["P"]);
        assert_eq!(bound_linear(&q), 2);
        q.query = Ucq::new(1, vec![]);
        assert_eq!(bound_linear(&q), 0);
    }
}
