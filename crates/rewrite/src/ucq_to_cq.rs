//! The UCQ→CQ compilation of Prop. 9: every OMQ `(S, Σ, q) ∈ (C, UCQ)` with
//! `C ∈ {G, L, NR, S}` is equivalent to an OMQ in `(C, CQ)`.
//!
//! The construction encodes disjunction with a truth-table: database atoms
//! are annotated *true* (constant `1`), one speculative copy of the query's
//! atoms is annotated *false* (a null), the ontology propagates annotations,
//! and the output CQ chains the disjuncts through an `Or` predicate, finally
//! demanding that the accumulated value is *true*.
//!
//! We implement the construction for **Boolean** UCQs. For non-Boolean
//! inputs the paper's construction needs constants in CQ heads once answer
//! variables meet the speculative copy; since every use of Prop. 9 in the
//! paper (and in this library's containment pipeline, which handles UCQs
//! natively) is for lower bounds via Boolean queries, we surface the
//! restriction as [`UcqToCqError::NonBoolean`] rather than silently
//! mis-compiling.

use std::collections::HashMap;
use std::fmt;

use omq_model::{Atom, Cq, Omq, PredId, Term, Tgd, Ucq, VarId, Vocabulary};

/// Why the compilation was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UcqToCqError {
    /// The input UCQ has free variables; see the module docs.
    NonBoolean,
    /// The input UCQ has no disjuncts (the unsatisfiable query needs no
    /// compilation — it is already expressible as a CQ over a fresh pred).
    EmptyUnion,
}

impl fmt::Display for UcqToCqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UcqToCqError::NonBoolean => {
                write!(f, "UCQ→CQ compilation supports Boolean UCQs only")
            }
            UcqToCqError::EmptyUnion => write!(f, "cannot compile the empty union"),
        }
    }
}

impl std::error::Error for UcqToCqError {}

/// Compiles a Boolean-UCQ OMQ into an equivalent CQ OMQ (Prop. 9).
///
/// The result has the same data schema and, for every `S`-database `D`,
/// `Q(D) = Q'(D)`. Membership in `G`, `L`, `NR`, `S` is preserved.
pub fn ucq_omq_to_cq_omq(omq: &Omq, voc: &mut Vocabulary) -> Result<Omq, UcqToCqError> {
    if omq.query.arity != 0 {
        return Err(UcqToCqError::NonBoolean);
    }
    if omq.query.is_empty() {
        return Err(UcqToCqError::EmptyUnion);
    }

    let tt = voc.constant("1");
    let truep = voc.fresh_pred("True", 1);
    let falsep = voc.fresh_pred("False", 1);
    let orp = voc.fresh_pred("Or", 3);

    // Primed predicates: arity + 1 (truth annotation).
    let mut primed: HashMap<PredId, PredId> = HashMap::new();
    let prime = |p: PredId, voc: &mut Vocabulary, primed: &mut HashMap<PredId, PredId>| {
        if let Some(&pp) = primed.get(&p) {
            return pp;
        }
        let name = format!("{}_b", voc.pred_name(p));
        let pp = voc.fresh_pred(&name, voc.arity(p) + 1);
        primed.insert(p, pp);
        pp
    };
    let annotate =
        |a: &Atom, w: Term, voc: &mut Vocabulary, primed: &mut HashMap<PredId, PredId>| {
            let pp = prime(a.pred, voc, primed);
            let mut args = a.args.clone();
            args.push(w);
            Atom::new(pp, args)
        };

    let mut sigma2: Vec<Tgd> = Vec::new();

    // (1) Annotate database atoms as true.
    for &r in omq.data_schema.preds() {
        let vars: Vec<Term> = (0..voc.arity(r))
            .map(|i| Term::Var(voc.fresh_var(&format!("a{i}_"))))
            .collect();
        let body = vec![Atom::new(r, vars.clone())];
        let head = vec![
            annotate(&Atom::new(r, vars), Term::Const(tt), voc, &mut primed),
            Atom::new(truep, vec![Term::Const(tt)]),
        ];
        sigma2.push(Tgd::new(body, head));
    }

    // (2) The speculative "false" copy of the query plus the Or truth table.
    {
        let t = voc.fresh_var("t_");
        let f = voc.fresh_var("f_");
        let mut head: Vec<Atom> = Vec::new();
        for d in &omq.query.disjuncts {
            // Rename disjunct variables apart: disjuncts quantify separately.
            let mut ren: HashMap<VarId, VarId> = HashMap::new();
            for a in &d.body {
                let ra = a.map_terms(|tm| match tm {
                    Term::Var(v) => {
                        let w = *ren.entry(v).or_insert_with(|| voc.fresh_var("s_"));
                        Term::Var(w)
                    }
                    other => other,
                });
                head.push(annotate(&ra, Term::Var(f), voc, &mut primed));
            }
        }
        let tv = Term::Var(t);
        let fv = Term::Var(f);
        head.push(Atom::new(orp, vec![tv, tv, tv]));
        head.push(Atom::new(orp, vec![tv, fv, tv]));
        head.push(Atom::new(orp, vec![fv, tv, tv]));
        head.push(Atom::new(orp, vec![fv, fv, fv]));
        head.push(Atom::new(falsep, vec![fv]));
        sigma2.push(Tgd::new(vec![Atom::new(truep, vec![tv])], head));
    }

    // (3) Annotation-propagating copies of the ontology's tgds.
    for t in &omq.sigma {
        let w = Term::Var(voc.fresh_var("w_"));
        let body: Vec<Atom> = t
            .body
            .iter()
            .map(|a| annotate(a, w, voc, &mut primed))
            .collect();
        let head: Vec<Atom> = t
            .head
            .iter()
            .map(|a| annotate(a, w, voc, &mut primed))
            .collect();
        // A fact tgd stays a fact tgd: annotate its head as true instead.
        if body.is_empty() {
            let head_true: Vec<Atom> = t
                .head
                .iter()
                .map(|a| annotate(a, Term::Const(tt), voc, &mut primed))
                .collect();
            sigma2.push(Tgd::new(vec![], head_true));
        } else {
            sigma2.push(Tgd::new(body, head));
        }
    }

    // The output CQ: False(y1) ∧ ⋀ᵢ (qᵢ'[xᵢ] ∧ Or(yᵢ,xᵢ,yᵢ₊₁)) ∧ True(yₙ₊₁).
    let n = omq.query.disjuncts.len();
    let ys: Vec<VarId> = (0..=n).map(|i| voc.fresh_var(&format!("y{i}_"))).collect();
    let xs: Vec<VarId> = (0..n).map(|i| voc.fresh_var(&format!("x{i}_"))).collect();
    let mut body: Vec<Atom> = vec![Atom::new(falsep, vec![Term::Var(ys[0])])];
    for (i, d) in omq.query.disjuncts.iter().enumerate() {
        // Disjuncts quantify their variables separately: rename them apart
        // so distinct disjuncts do not accidentally join in the output CQ.
        let mut ren: HashMap<VarId, VarId> = HashMap::new();
        for a in &d.body {
            let ra = a.map_terms(|tm| match tm {
                Term::Var(v) => {
                    let w = *ren.entry(v).or_insert_with(|| voc.fresh_var("u_"));
                    Term::Var(w)
                }
                other => other,
            });
            body.push(annotate(&ra, Term::Var(xs[i]), voc, &mut primed));
        }
        body.push(Atom::new(
            orp,
            vec![Term::Var(ys[i]), Term::Var(xs[i]), Term::Var(ys[i + 1])],
        ));
    }
    body.push(Atom::new(truep, vec![Term::Var(ys[n])]));

    Ok(Omq::new(
        omq.data_schema.clone(),
        sigma2,
        Ucq::from_cq(Cq::boolean(body)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::{certain_answers_via_chase, ChaseConfig};
    use omq_classes::classify;
    use omq_model::{parse_program, parse_tgd, Instance, Schema};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    fn boolean_omq(text: &str, data: &[&str]) -> (Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        (
            Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone()),
            voc,
        )
    }

    #[test]
    fn rejects_non_boolean() {
        let (q, mut voc) = boolean_omq("P(X) -> T(X)\nq(X) :- T(X)\n", &["P"]);
        assert_eq!(
            ucq_omq_to_cq_omq(&q, &mut voc),
            Err(UcqToCqError::NonBoolean)
        );
    }

    /// Semantics check on databases where each side of the union fires
    /// separately, both fire, and neither fires.
    #[test]
    fn preserves_semantics_on_nr() {
        let (q, mut voc) = boolean_omq(
            "A(X) -> P(X)\n\
             B(X) -> T(X)\n\
             q :- P(X)\n\
             q :- T(X)\n",
            &["A", "B"],
        );
        let q2 = ucq_omq_to_cq_omq(&q, &mut voc).unwrap();
        assert!(q2.is_cq());
        for facts in [vec!["A(a)"], vec!["B(b)"], vec!["A(a)", "B(b)"], vec![]] {
            let d = db(&mut voc, &facts);
            let ans1 =
                certain_answers_via_chase(&q, &d, &mut voc, &ChaseConfig::default()).unwrap();
            let ans2 =
                certain_answers_via_chase(&q2, &d, &mut voc, &ChaseConfig::default()).unwrap();
            assert_eq!(
                ans1.is_empty(),
                ans2.is_empty(),
                "mismatch on {facts:?}: {ans1:?} vs {ans2:?}"
            );
        }
    }

    #[test]
    fn join_inside_disjunct_preserved() {
        let (q, mut voc) = boolean_omq(
            "A(X) -> R(X,X)\n\
             q :- R(X,Y), S(Y,Z)\n\
             q :- U(X)\n",
            &["A", "S", "U"],
        );
        let q2 = ucq_omq_to_cq_omq(&q, &mut voc).unwrap();
        // R(a,a) via A(a) but no S-successor: q does not hold.
        let d = db(&mut voc, &["A(a)"]);
        let a1 = certain_answers_via_chase(&q, &d, &mut voc, &ChaseConfig::default()).unwrap();
        let a2 = certain_answers_via_chase(&q2, &d, &mut voc, &ChaseConfig::default()).unwrap();
        assert!(a1.is_empty() && a2.is_empty());
        // With the S edge, the first disjunct fires.
        let d2 = db(&mut voc, &["A(a)", "S(a,b)"]);
        let b1 = certain_answers_via_chase(&q, &d2, &mut voc, &ChaseConfig::default()).unwrap();
        let b2 = certain_answers_via_chase(&q2, &d2, &mut voc, &ChaseConfig::default()).unwrap();
        assert!(!b1.is_empty() && !b2.is_empty());
    }

    #[test]
    fn preserves_classes() {
        let (q, mut voc) = boolean_omq(
            "P(X) -> exists Y . R(X,Y)\n\
             q :- R(X,Y)\n\
             q :- P(X)\n",
            &["P"],
        );
        let before = classify(&q.sigma);
        assert!(before.linear && before.sticky && before.non_recursive);
        let q2 = ucq_omq_to_cq_omq(&q, &mut voc).unwrap();
        let after = classify(&q2.sigma);
        assert!(after.linear, "linearity lost");
        assert!(after.guarded, "guardedness lost");
        assert!(after.non_recursive, "non-recursiveness lost");
        assert!(after.sticky, "stickiness lost");
    }

    #[test]
    fn preserves_guarded_multibody() {
        let (q, mut voc) = boolean_omq(
            "G(X,Y), P(X) -> exists Z . R(Y,Z)\n\
             q :- R(X,Y)\n\
             q :- P(X)\n",
            &["G", "P"],
        );
        assert!(classify(&q.sigma).guarded);
        let q2 = ucq_omq_to_cq_omq(&q, &mut voc).unwrap();
        assert!(classify(&q2.sigma).guarded);
    }
}
