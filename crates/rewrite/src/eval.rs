//! Rewriting-based OMQ evaluation: the complete strategy for the
//! UCQ-rewritable languages (`L`, `NR`, `S`), whose chase may not terminate.
//!
//! By Def. 1, for a UCQ rewriting `q'` of `Q` we have `Q(D) = q'(D)` for
//! every database over the data schema — evaluation reduces to plain UCQ
//! evaluation, no chase needed.

use std::collections::HashSet;

use omq_chase::eval::eval_ucq;
use omq_model::{ConstId, Instance, Omq, Vocabulary};

use crate::xrewrite::{xrewrite, RewriteError, XRewriteConfig};

/// Evaluates `Q(D)` by computing a UCQ rewriting and evaluating it on `D`.
///
/// Exact for linear, non-recursive, and sticky ontologies (the classes for
/// which XRewrite terminates with a complete rewriting). For other inputs
/// the rewriting may hit its budget, reported as
/// [`RewriteError::BudgetExceeded`].
pub fn certain_answers_via_rewriting(
    omq: &Omq,
    db: &Instance,
    voc: &mut Vocabulary,
    cfg: &XRewriteConfig,
) -> Result<HashSet<Vec<ConstId>>, RewriteError> {
    let out = xrewrite(omq, voc, cfg)?;
    Ok(eval_ucq(&out.ucq, db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::{certain_answers_via_chase, ChaseConfig};
    use omq_model::{parse_program, parse_tgd, Schema};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    #[test]
    fn linear_eval_matches_expected() {
        let prog = parse_program(
            "P(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> P(Y)\n\
             T(X) -> P(X)\n\
             q(X) :- R(X,Y), P(Y)\n",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let p = voc.pred_id("P").unwrap();
        let t = voc.pred_id("T").unwrap();
        let omq = Omq::new(
            Schema::from_preds([p, t]),
            prog.tgds.clone(),
            prog.query("q").unwrap().clone(),
        );
        let d = db(&mut voc, &["T(a)", "P(b)"]);
        let ans = certain_answers_via_rewriting(&omq, &d, &mut voc, &Default::default()).unwrap();
        // Rewriting is P(x) ∨ T(x): both a and b answer.
        assert_eq!(ans.len(), 2);
    }

    /// On a terminating (non-recursive) ontology, rewriting-based evaluation
    /// agrees with chase-based evaluation.
    #[test]
    fn rewriting_agrees_with_chase_on_nr() {
        let prog = parse_program(
            "Emp(X) -> exists D . Works(X,D)\n\
             Works(X,D) -> Unit(D)\n\
             Mgr(X) -> Emp(X)\n\
             q(X) :- Works(X,D)\n",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let schema = Schema::from_preds(["Emp", "Mgr", "Works"].map(|n| voc.pred_id(n).unwrap()));
        let omq = Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone());
        let d = db(&mut voc, &["Mgr(alice)", "Works(bob, sales)", "Emp(carol)"]);
        let via_rw =
            certain_answers_via_rewriting(&omq, &d, &mut voc, &Default::default()).unwrap();
        let via_chase =
            certain_answers_via_chase(&omq, &d, &mut voc, &ChaseConfig::default()).unwrap();
        assert_eq!(via_rw, via_chase);
        assert_eq!(via_rw.len(), 3);
    }
}
