//! The XRewrite algorithm (Algorithm 1 of the paper, after \[40\]).
//!
//! Starting from the OMQ's (U)CQ, exhaustively apply two steps until
//! fixpoint:
//!
//! * **rewriting** (resolution): pick a set `S` of body atoms to which a tgd
//!   `σ` is *applicable* (Def. 6) — `S ∪ {head(σ)}` unifies and no constant
//!   or shared-variable position of `S` meets an existential position of the
//!   head — and replace `S` by `body(σ)` under the MGU;
//! * **factorization** (Def. 7): unify a set of atoms whose shared
//!   existential-position variable blocks applicability, producing auxiliary
//!   queries that keep the procedure complete.
//!
//! Queries are deduplicated modulo bijective variable renaming (`≃`,
//! implemented by `omq_chase::cq_isomorphic`). The final rewriting keeps the
//! explored `r`-labeled queries over the data schema only.
//!
//! Termination is guaranteed for linear, non-recursive and sticky inputs;
//! for other inputs (e.g. guarded) the procedure may diverge, so a query
//! budget is enforced and exceeding it is reported as
//! [`RewriteError::BudgetExceeded`] — the partial rewriting is still sound
//! and is exploited by the anytime guarded-containment algorithm.

use std::collections::HashSet;
use std::fmt;

use omq_chase::{cq_core_budgeted, cq_isomorphic};
use omq_model::{mgu_many, Atom, Cq, Omq, Substitution, Term, Tgd, Ucq, VarId, Vocabulary};

/// Budgets for the rewriting procedure.
#[derive(Clone, Debug)]
pub struct XRewriteConfig {
    /// Maximum number of distinct CQs ever enqueued (safety budget for
    /// non-UCQ-rewritable inputs).
    pub max_queries: usize,
    /// Maximum number of atoms allowed in an intermediate CQ (prevents
    /// blow-ups from pathological factorizations); `None` = unbounded.
    pub max_atoms: Option<usize>,
    /// Maximum number of atoms resolved simultaneously against one tgd
    /// head (the size of the set `S` in Def. 6/7). Simultaneous resolution
    /// of `k` atoms is only needed when a single chase atom matches `k`
    /// query atoms at once; beyond small `k` this is vanishingly rare,
    /// while enumerating all `2^pool` subsets dominates the runtime on
    /// queries with many same-predicate atoms.
    pub max_subset: usize,
    /// Canonicalize every generated CQ to its core before deduplication.
    ///
    /// Resolution can produce syntactically growing but semantically
    /// equivalent queries (e.g. accumulating `P(y,z), P(y,z')` pairs under
    /// recursive sticky sets); coring collapses them, which keeps the
    /// procedure within the theoretical bounds of Props. 12/14/17 and is
    /// semantics-preserving (the core is homomorphically equivalent).
    pub canonicalize: bool,
}

impl Default for XRewriteConfig {
    fn default() -> Self {
        XRewriteConfig {
            max_queries: 20_000,
            max_atoms: None,
            max_subset: 4,
            canonicalize: true,
        }
    }
}

impl XRewriteConfig {
    /// A config with the given query budget.
    pub fn with_max_queries(max_queries: usize) -> Self {
        XRewriteConfig {
            max_queries,
            ..Default::default()
        }
    }
}

/// Rewriting failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteError {
    /// The query budget was exhausted before the fixpoint; carries the
    /// partial output (sound: every disjunct is a correct rewriting, the
    /// union may be incomplete).
    BudgetExceeded(RewriteOutput),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::BudgetExceeded(out) => write!(
                f,
                "XRewrite budget exceeded after generating {} queries",
                out.generated
            ),
        }
    }
}

impl std::error::Error for RewriteError {}

/// The result of a (partial or complete) rewriting run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteOutput {
    /// The UCQ rewriting over the data schema.
    pub ucq: Ucq,
    /// Total number of distinct CQs generated (explored and auxiliary).
    pub generated: usize,
    /// Number of rewriting steps applied.
    pub rewrite_steps: usize,
    /// Number of factorization steps applied.
    pub factorization_steps: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Label {
    Rewriting,
    Factorization,
}

struct Entry {
    cq: Cq,
    label: Label,
    explored: bool,
}

/// A cheap isomorphism-invariant fingerprint of a CQ: head arity, and the
/// sorted multiset of (predicate, per-position term kinds) with variable
/// occurrence counts abstracted. Two isomorphic CQs always collide, so the
/// expensive `cq_isomorphic` check only runs within a bucket.
fn fingerprint(q: &Cq) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut counts: std::collections::HashMap<VarId, u32> = std::collections::HashMap::new();
    for a in &q.body {
        for v in a.vars() {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let mut atoms: Vec<(u32, Vec<i64>)> = q
        .body
        .iter()
        .map(|a| {
            (
                a.pred.0,
                a.args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => -(c.0 as i64) - 1,
                        Term::Var(v) => counts[v] as i64,
                        Term::Null(_) => unreachable!(),
                    })
                    .collect(),
            )
        })
        .collect();
    atoms.sort();
    let mut h = DefaultHasher::new();
    q.head.len().hash(&mut h);
    atoms.hash(&mut h);
    h.finish()
}

/// Dedup index: fingerprint -> entry indices.
type Buckets = std::collections::HashMap<u64, Vec<usize>>;

fn is_dup(entries: &[Entry], buckets: &Buckets, q: &Cq, fp: u64, rewriting_only: bool) -> bool {
    let Some(ids) = buckets.get(&fp) else {
        return false;
    };
    ids.iter().any(|&i| {
        (!rewriting_only || entries[i].label == Label::Rewriting)
            && cq_isomorphic(&entries[i].cq, q)
    })
}

/// Positions (0-based) of the head atom of `t` that hold an existentially
/// quantified variable (`π∃(σ)` generalized to a set, as in \[40\]).
fn existential_positions(t: &Tgd) -> Vec<usize> {
    let ex = t.existential_vars();
    let head = &t.head[0];
    head.args
        .iter()
        .enumerate()
        .filter_map(|(i, &a)| match a {
            Term::Var(v) if ex.contains(&v) => Some(i),
            _ => None,
        })
        .collect()
}

/// Renames every variable of `t` using fresh variables from `voc`
/// (the `σⁱ` renaming of Algorithm 1).
fn rename_apart(t: &Tgd, voc: &mut Vocabulary) -> Tgd {
    let mut sub = Substitution::new();
    for v in t.body_vars().into_iter().chain(t.head_vars()) {
        if sub.get(v).is_none() {
            sub.bind(v, Term::Var(voc.fresh_var("r")));
        }
    }
    Tgd::new(sub.apply_atoms(&t.body), sub.apply_atoms(&t.head))
}

/// Is tgd `t` (with a single head atom) applicable to the atom set `s` of
/// query `q` (Def. 6)?
///
/// Returns the MGU of `s ∪ {head(t)}` when applicable.
fn applicable(q: &Cq, s: &[&Atom], t: &Tgd, expos: &[usize]) -> Option<Substitution> {
    let head = &t.head[0];
    if s.iter().any(|a| a.pred != head.pred) {
        return None;
    }
    // Condition 2: no constant or shared-variable position of s may be an
    // existential position of the head.
    for a in s {
        for (i, &arg) in a.args.iter().enumerate() {
            let blocked = match arg {
                Term::Const(_) => true,
                Term::Var(v) => q.is_shared(v),
                Term::Null(_) => unreachable!("CQs contain no nulls"),
            };
            if blocked && expos.contains(&i) {
                return None;
            }
        }
    }
    // Condition 1: unification.
    let mut atoms: Vec<Atom> = s.iter().map(|a| (*a).clone()).collect();
    atoms.push(head.clone());
    let mgu = mgu_many(&atoms)?;
    // Guard against binding a free variable to a constant: such rewritings
    // would need constants in query heads, which our CQ type does not model;
    // see the module docs. (Free variables never unify with existential
    // variables thanks to condition 2.)
    for &v in &q.head {
        if matches!(mgu.get(v), Some(t) if !t.is_var()) {
            return None;
        }
    }
    Some(mgu)
}

/// Is the atom set `s` of `q` factorizable w.r.t. `t` (Def. 7)?
/// Returns the MGU of `s` if so.
fn factorizable(
    q: &Cq,
    s: &[&Atom],
    s_idx: &[usize],
    t: &Tgd,
    expos: &[usize],
) -> Option<Substitution> {
    if s.len() < 2 {
        return None;
    }
    let head = &t.head[0];
    if s.iter().any(|a| a.pred != head.pred) {
        return None;
    }
    if expos.is_empty() {
        return None;
    }
    // Condition 3: a variable x outside body(q)\s occurring in every atom of
    // s, and only at existential positions.
    let rest_vars: HashSet<VarId> = q
        .body
        .iter()
        .enumerate()
        .filter(|(i, _)| !s_idx.contains(i))
        .flat_map(|(_, a)| a.vars())
        .collect();
    let candidates: HashSet<VarId> = s[0].vars().collect();
    let ok = candidates.into_iter().any(|x| {
        if rest_vars.contains(&x) || q.head.contains(&x) {
            return false;
        }
        s.iter().all(|a| {
            let pos = a.positions_of(Term::Var(x));
            !pos.is_empty() && pos.iter().all(|p| expos.contains(p))
        })
    });
    if !ok {
        return None;
    }
    let atoms: Vec<Atom> = s.iter().map(|a| (*a).clone()).collect();
    mgu_many(&atoms)
}

/// Enumerates the non-empty subsets of the indices in `pool`, smallest
/// first, up to subsets of size `max`.
fn subsets(pool: &[usize], max: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![vec![]];
    for &i in pool {
        let mut extended: Vec<Vec<usize>> = Vec::new();
        for s in &out {
            if s.len() < max {
                let mut s2 = s.clone();
                s2.push(i);
                extended.push(s2);
            }
        }
        out.extend(extended);
    }
    out.retain(|s| !s.is_empty());
    out.sort_by_key(Vec::len);
    out
}

/// Canonicalizes a generated CQ: duplicate-atom removal plus (optionally)
/// core computation.
fn canonical(q: &Cq, cfg: &XRewriteConfig) -> Cq {
    let d = dedup_atoms(q);
    if cfg.canonicalize && !d.body.is_empty() {
        cq_core_budgeted(&d, 2_000)
    } else {
        d
    }
}

/// Removes duplicate atoms from a CQ (keeps first occurrences).
fn dedup_atoms(q: &Cq) -> Cq {
    let mut seen = HashSet::new();
    let body: Vec<Atom> = q
        .body
        .iter()
        .filter(|a| seen.insert((*a).clone()))
        .cloned()
        .collect();
    Cq::new(q.head.clone(), body)
}

/// Runs XRewrite on `omq`, producing a UCQ rewriting over the data schema.
///
/// The input query may be a UCQ; all its disjuncts seed the worklist. The
/// ontology is used as-is when every head is a single atom; multi-atom heads
/// are normalized first (see `omq_classes::normalize_heads`) — note the
/// normalization's auxiliary predicates never reach the output because they
/// are not in the data schema.
pub fn xrewrite(
    omq: &Omq,
    voc: &mut Vocabulary,
    cfg: &XRewriteConfig,
) -> Result<RewriteOutput, RewriteError> {
    let sigma: Vec<Tgd> = if omq.sigma.iter().all(|t| t.head.len() == 1) {
        omq.sigma.clone()
    } else {
        omq_classes::normalize_heads(voc, &omq.sigma)
    };

    let mut entries: Vec<Entry> = Vec::new();
    let mut buckets: Buckets = Buckets::new();
    let push_entry =
        |entries: &mut Vec<Entry>, buckets: &mut Buckets, cq: Cq, fp: u64, label: Label| {
            buckets.entry(fp).or_default().push(entries.len());
            entries.push(Entry {
                cq,
                label,
                explored: false,
            });
        };
    for d in &omq.query.disjuncts {
        let cq = canonical(d, cfg);
        let fp = fingerprint(&cq);
        if !is_dup(&entries, &buckets, &cq, fp, false) {
            push_entry(&mut entries, &mut buckets, cq, fp, Label::Rewriting);
        }
    }

    let mut rewrite_steps = 0usize;
    let mut factorization_steps = 0usize;
    let mut truncated = false;

    // Entries are only ever appended unexplored and explored in order, so a
    // cursor replaces the previous O(n²) first-unexplored scan.
    let mut cursor = 0usize;
    while let Some(idx) = entries[cursor..]
        .iter()
        .position(|e| !e.explored)
        .map(|o| cursor + o)
    {
        if entries.len() > cfg.max_queries {
            truncated = true;
            break;
        }
        entries[idx].explored = true;
        cursor = idx + 1;
        let q = entries[idx].cq.clone();

        for t in &sigma {
            // Pool: atoms of q with the head predicate.
            let pool: Vec<usize> = q
                .body
                .iter()
                .enumerate()
                .filter(|(_, a)| a.pred == t.head[0].pred)
                .map(|(i, _)| i)
                .collect();
            if pool.is_empty() {
                continue;
            }
            let renamed = rename_apart(t, voc);
            // Existential positions are indices into the head atom, so they
            // are invariant under the renaming; compute them once per tgd
            // instead of once per candidate subset.
            let expos = existential_positions(&renamed);
            // Prefilter: an atom that does not unify with the head on its
            // own can never belong to an applicable or factorizable set.
            let pool: Vec<usize> = pool
                .into_iter()
                .filter(|&i| omq_model::mgu_atoms(&q.body[i], &renamed.head[0]).is_some())
                .collect();
            if pool.is_empty() {
                continue;
            }
            for s_idx in subsets(&pool, cfg.max_subset.max(1)) {
                let s: Vec<&Atom> = s_idx.iter().map(|&i| &q.body[i]).collect();

                // --- rewriting step ---
                if let Some(gamma) = applicable(&q, &s, &renamed, &expos) {
                    // q' = γ(q[S / body(σⁱ)])
                    let mut body: Vec<Atom> = q
                        .body
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !s_idx.contains(i))
                        .map(|(_, a)| gamma.apply_atom(a))
                        .collect();
                    body.extend(gamma.apply_atoms(&renamed.body));
                    let head: Vec<VarId> = q
                        .head
                        .iter()
                        .map(|&v| match gamma.apply_term(Term::Var(v)) {
                            Term::Var(w) => w,
                            _ => unreachable!("applicability protects free variables"),
                        })
                        .collect();
                    if !body.is_empty() || head.is_empty() {
                        let q2 = canonical(&Cq::new(head, body), cfg);
                        let within = cfg.max_atoms.is_none_or(|m| q2.body.len() <= m);
                        let fp = fingerprint(&q2);
                        if within && !is_dup(&entries, &buckets, &q2, fp, true) {
                            rewrite_steps += 1;
                            push_entry(&mut entries, &mut buckets, q2, fp, Label::Rewriting);
                        }
                    }
                }

                // --- factorization step ---
                if let Some(gamma) = factorizable(&q, &s, &s_idx, t, &expos) {
                    let q2 = canonical(&gamma.apply_cq(&q), cfg);
                    let within = cfg.max_atoms.is_none_or(|m| q2.body.len() <= m);
                    let fp = fingerprint(&q2);
                    if within && !is_dup(&entries, &buckets, &q2, fp, false) {
                        factorization_steps += 1;
                        push_entry(&mut entries, &mut buckets, q2, fp, Label::Factorization);
                    }
                }
            }
        }
    }

    let disjuncts: Vec<Cq> = entries
        .iter()
        .filter(|e| {
            e.label == Label::Rewriting
                && e.explored
                && e.cq.body.iter().all(|a| omq.data_schema.contains(a.pred))
        })
        .map(|e| e.cq.clone())
        .collect();
    let out = RewriteOutput {
        ucq: Ucq::new(omq.query.arity, disjuncts),
        generated: entries.len(),
        rewrite_steps,
        factorization_steps,
    };
    if truncated {
        Err(RewriteError::BudgetExceeded(out))
    } else {
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema};

    /// Builds an OMQ from program text: all predicates named in `data` form
    /// the data schema; the query is the one named `q`.
    fn omq(text: &str, data: &[&str]) -> (Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        (
            Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone()),
            voc,
        )
    }

    /// Example 1 of the paper: the rewriting of q(x) :- R(x,y), P(y) under
    ///   P(x) → ∃y R(x,y);  R(x,y) → P(y);  T(x) → P(x)
    /// over S = {P, T} is `P(x) ∨ T(x)`.
    #[test]
    fn paper_example_1() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> P(Y)\n\
             T(X) -> P(X)\n\
             q(X) :- R(X,Y), P(Y)\n",
            &["P", "T"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        let p = voc.pred_id("P").unwrap();
        let t = voc.pred_id("T").unwrap();
        // Expect exactly the single-atom disjuncts P(x) and T(x).
        let mut found_p = false;
        let mut found_t = false;
        for d in &out.ucq.disjuncts {
            if d.body.len() == 1 {
                let a = &d.body[0];
                if a.pred == p && a.args[0] == Term::Var(d.head[0]) {
                    found_p = true;
                }
                if a.pred == t && a.args[0] == Term::Var(d.head[0]) {
                    found_t = true;
                }
            }
        }
        assert!(found_p, "P(x) missing from rewriting: {:?}", out.ucq);
        assert!(found_t, "T(x) missing from rewriting");
    }

    /// Every disjunct of the rewriting must have at most |q| atoms for
    /// linear ontologies (Prop. 12).
    #[test]
    fn linear_disjuncts_never_grow() {
        let (q, mut voc) = omq(
            "A(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> exists Z . R(Y,Z)\n\
             B(X,Y) -> R(X,Y)\n\
             q(X) :- R(X,Y), R(Y,Z)\n",
            &["A", "B"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        assert!(out.ucq.max_disjunct_size() <= 2);
        assert!(!out.ucq.disjuncts.is_empty());
    }

    /// The factorization example from the appendix: q = ∃x∃y∃z (R(x,y) ∧
    /// R(x,z)) with σ = P(u,v) → ∃w R(w,u). Applicability fails on either
    /// atom alone (x is shared and sits at the existential position), but
    /// factorizing {R(x,y), R(x,z)} unifies y and z, after which the
    /// rewriting step produces P(u,v).
    #[test]
    fn factorization_unblocks_rewriting() {
        let (q, mut voc) = omq(
            "P(U,V) -> exists W . R(W,U)\n\
             q :- R(X,Y), R(X,Z)\n",
            &["P"],
        );
        // Without coring, the factorization step of Def. 7 is what unifies
        // {R(x,y), R(x,z)} so the tgd becomes applicable.
        let cfg = XRewriteConfig {
            canonicalize: false,
            ..Default::default()
        };
        let out = xrewrite(&q, &mut voc, &cfg).unwrap();
        assert!(out.factorization_steps >= 1);
        let p = voc.pred_id("P").unwrap();
        let has_p = |out: &RewriteOutput| {
            out.ucq
                .disjuncts
                .iter()
                .any(|d| d.body.len() == 1 && d.body[0].pred == p)
        };
        assert!(has_p(&out), "expected P(u,v) disjunct, got {:?}", out.ucq);
        // With coring (the default) the redundant atom collapses up front
        // and the same rewriting is reached without factorization.
        let out2 = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        assert!(has_p(&out2));
    }

    /// Without factorization the blocked step must NOT fire: x is shared and
    /// at an existential position, so R(x,y) alone is not applicable.
    #[test]
    fn applicability_blocks_shared_existential_position() {
        let (q, mut voc) = omq(
            "P(U,V) -> exists W . R(W,U)\n\
             q(X) :- R(X,Y)\n",
            &["P", "R"],
        );
        // X is free (hence shared) and sits at position 0 = π∃(σ).
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        // The only disjunct over {P, R} is the original query itself.
        assert_eq!(out.ucq.disjuncts.len(), 1);
        assert_eq!(out.ucq.disjuncts[0].body[0].pred, voc.pred_id("R").unwrap());
    }

    /// Non-shared variables at existential positions resolve fine.
    #[test]
    fn existential_position_with_lone_variable() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y)\n\
             q(X) :- R(X,Y)\n",
            &["P", "R"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        let p = voc.pred_id("P").unwrap();
        assert!(out
            .ucq
            .disjuncts
            .iter()
            .any(|d| d.body.len() == 1 && d.body[0].pred == p));
    }

    /// Non-recursive multi-atom bodies: rewriting replaces the head atom by
    /// the body, growing the query (Prop. 14 behaviour).
    #[test]
    fn nonrecursive_body_expansion() {
        let (q, mut voc) = omq(
            "A(X), B(X) -> C(X)\n\
             q :- C(X)\n",
            &["A", "B"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        assert_eq!(out.ucq.disjuncts.len(), 1);
        assert_eq!(out.ucq.disjuncts[0].body.len(), 2);
    }

    /// UCQ input: both disjuncts are rewritten.
    #[test]
    fn ucq_input_seeds_all_disjuncts() {
        let (q, mut voc) = omq(
            "A(X) -> P(X)\n\
             B(X) -> T(X)\n\
             q(X) :- P(X)\n\
             q(X) :- T(X)\n",
            &["A", "B"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        assert_eq!(out.ucq.disjuncts.len(), 2);
    }

    /// A guarded, non-UCQ-rewritable input exhausts the budget.
    #[test]
    fn budget_exceeded_on_transitive_guarded() {
        let (q, mut voc) = omq(
            "E(X,Y) -> exists Z . E(Y,Z)\n\
             R(X,Y), E(Y,Z) -> R(X,Z)\n\
             q :- R(X,Y), E(Y,Z)\n",
            &["E", "R"],
        );
        let r = xrewrite(&q, &mut voc, &XRewriteConfig::with_max_queries(25));
        match r {
            Err(RewriteError::BudgetExceeded(out)) => {
                assert!(out.generated > 25);
            }
            Ok(out) => {
                // Fine too: the fixpoint may be small. But then it must
                // contain the original query.
                assert!(!out.ucq.disjuncts.is_empty());
            }
        }
    }

    /// Fact tgds can erase atoms entirely.
    #[test]
    fn fact_tgd_resolves_to_smaller_query() {
        let (q, mut voc) = omq(
            "true -> Bit(0)\n\
             Bit(X) -> Num(X)\n\
             q :- Num(0), P(Z)\n",
            &["P"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        // Num(0) resolves to Bit(0) resolves to nothing: q :- P(Z) remains.
        assert!(out
            .ucq
            .disjuncts
            .iter()
            .any(|d| d.body.len() == 1 && d.body[0].pred == voc.pred_id("P").unwrap()));
    }

    /// Multi-atom heads are normalized internally and still rewrite fully.
    #[test]
    fn multi_atom_heads_normalized() {
        let (q, mut voc) = omq(
            "A(X) -> P(X), T(X)\n\
             q :- P(X), T(X)\n",
            &["A"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        let a = voc.pred_id("A").unwrap();
        assert!(
            out.ucq
                .disjuncts
                .iter()
                .any(|d| d.body.iter().all(|at| at.pred == a)),
            "expected a disjunct over A, got {:?}",
            out.ucq
        );
    }
}
