//! The XRewrite algorithm (Algorithm 1 of the paper, after \[40\]).
//!
//! Starting from the OMQ's (U)CQ, exhaustively apply two steps until
//! fixpoint:
//!
//! * **rewriting** (resolution): pick a set `S` of body atoms to which a tgd
//!   `σ` is *applicable* (Def. 6) — `S ∪ {head(σ)}` unifies and no constant
//!   or shared-variable position of `S` meets an existential position of the
//!   head — and replace `S` by `body(σ)` under the MGU;
//! * **factorization** (Def. 7): unify a set of atoms whose shared
//!   existential-position variable blocks applicability, producing auxiliary
//!   queries that keep the procedure complete.
//!
//! The worklist is processed in **rounds**: every unexplored query of a
//! round is expanded — across a scoped thread pool when
//! [`XRewriteConfig::threads`] allows — and the candidate queries are merged
//! back in a fixed order (parent entry, tgd, subset; rewriting before
//! factorization), so entry numbering, deduplication, and the final disjunct
//! list are identical at any thread count. All fresh-variable allocation
//! (the `σⁱ` renamings) happens once per round on the caller thread, which
//! both keeps the [`Vocabulary`] deterministic and hoists the per-entry
//! renaming of the old per-entry loop.
//!
//! Queries are deduplicated modulo bijective variable renaming (`≃`): by
//! default via canonical forms (`omq_chase::cq_canonical_form`, hash-map
//! equality), with the PR 1 fingerprint + `cq_isomorphic` path available
//! behind [`DedupStrategy::FingerprintIso`] and as the fallback for queries
//! whose symmetry exceeds the canonical-labeling budget. The final rewriting
//! keeps the explored `r`-labeled queries over the data schema only, and —
//! unless [`XRewriteConfig::prune_subsumed`] is off — drops disjuncts
//! homomorphically subsumed by another disjunct (the pruned UCQ is
//! semantically equivalent; see `omq_chase::SubsumptionSieve`).
//!
//! Termination is guaranteed for linear, non-recursive and sticky inputs;
//! for other inputs (e.g. guarded) the procedure may diverge, so a query
//! budget is enforced and exceeding it is reported as
//! [`RewriteError::BudgetExceeded`] — the partial rewriting is still sound
//! and is exploited by the anytime guarded-containment algorithm. The budget
//! caps the number of entries ever created: generation stops *before* the
//! entry that would cross `max_queries`, and the truncated run carries the
//! same [`RewriteStats`] as a completed one.

use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;
use std::time::Instant;

use omq_chase::{
    cq_canonical_form, cq_core_budgeted_report, cq_isomorphic, runtime, Budget, CqCanonicalForm,
    SubsumptionSieve,
};
use omq_model::{mgu_refs, Atom, Cq, Omq, Substitution, Term, Tgd, Ucq, VarId, Vocabulary};

/// Relabelings a canonical-labeling call may enumerate before giving up
/// (product of color-class factorials, i.e. 7!): rewriting-generated queries
/// are almost always rigid after color refinement, so the budget is only hit
/// by pathological symmetric queries, which fall back to the pairwise path.
const SYMMETRY_BUDGET: usize = 5_040;

/// Endomorphism budget per core-folding round (see `cq_core_budgeted`).
const CORE_BUDGET: usize = 2_000;

/// How generated queries are deduplicated (the `≃` check of Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DedupStrategy {
    /// Canonical labeling (invariant-refined coloring + backtracking
    /// tie-break): duplicate detection is a hash-map lookup. Queries whose
    /// symmetry exceeds the labeling budget use the fingerprint path below;
    /// the budget test is isomorphism-invariant, so no duplicate escapes.
    Canonical,
    /// Fingerprint buckets + pairwise `cq_isomorphic` (the pre-canonical
    /// behaviour, kept as a cross-checkable reference).
    FingerprintIso,
}

/// Budgets for the rewriting procedure.
#[derive(Clone, Debug)]
pub struct XRewriteConfig {
    /// Maximum number of distinct CQs ever enqueued (safety budget for
    /// non-UCQ-rewritable inputs). Enforced as a hard cap: the run is
    /// truncated on the first query that would cross it.
    pub max_queries: usize,
    /// Maximum number of atoms allowed in an intermediate CQ (prevents
    /// blow-ups from pathological factorizations); `None` = unbounded.
    pub max_atoms: Option<usize>,
    /// Maximum number of atoms resolved simultaneously against one tgd
    /// head (the size of the set `S` in Def. 6/7). Simultaneous resolution
    /// of `k` atoms is only needed when a single chase atom matches `k`
    /// query atoms at once; beyond small `k` this is vanishingly rare,
    /// while enumerating all `2^pool` subsets dominates the runtime on
    /// queries with many same-predicate atoms.
    pub max_subset: usize,
    /// Canonicalize every generated CQ to its core before deduplication.
    ///
    /// Resolution can produce syntactically growing but semantically
    /// equivalent queries (e.g. accumulating `P(y,z), P(y,z')` pairs under
    /// recursive sticky sets); coring collapses them, which keeps the
    /// procedure within the theoretical bounds of Props. 12/14/17 and is
    /// semantics-preserving (the core is homomorphically equivalent).
    pub canonicalize: bool,
    /// Duplicate-detection strategy (see [`DedupStrategy`]).
    pub dedup: DedupStrategy,
    /// Drop output disjuncts homomorphically subsumed by another disjunct.
    /// The pruned UCQ is semantically equivalent to the unpruned one, but
    /// its disjunct list is no longer a *prefix* of a larger-budget run's
    /// list — callers that ladder budgets and skip already-tested prefixes
    /// must turn this off.
    pub prune_subsumed: bool,
    /// Reuse each sieve entry's compiled join plan across subsumption
    /// probes instead of recompiling per check. Purely a performance knob:
    /// the surviving disjunct list is bit-identical either way (only the
    /// `plans_compiled`/`plan_cache_hits` counters differ).
    pub plan_cache: bool,
    /// Flush cadence of the incremental subsumption sieve: finalized
    /// disjuncts are folded into the sieve whenever at least this many new
    /// queries have been generated since the last flush (and once more at
    /// the end). Purely a scheduling knob — the surviving disjunct list is
    /// independent of it.
    pub prune_interval: usize,
    /// Worker threads for the per-round frontier expansion. `0` means "use
    /// the machine's available parallelism"; `1` forces the sequential
    /// path. Any setting produces bit-identical output.
    pub threads: usize,
    /// Cooperative wall-clock/cancellation budget, polled at round
    /// boundaries, per frontier entry, and per merged candidate. Expiry is
    /// reported exactly like the query budget — the run is truncated and
    /// returned as [`RewriteError::BudgetExceeded`] with the sound partial
    /// rewriting — so an expired run never masquerades as complete.
    pub budget: Budget,
}

impl Default for XRewriteConfig {
    fn default() -> Self {
        XRewriteConfig {
            max_queries: 20_000,
            max_atoms: None,
            max_subset: 4,
            canonicalize: true,
            dedup: DedupStrategy::Canonical,
            prune_subsumed: true,
            plan_cache: true,
            prune_interval: 256,
            threads: 0,
            budget: Budget::unlimited(),
        }
    }
}

impl XRewriteConfig {
    /// A config with the given query budget.
    pub fn with_max_queries(max_queries: usize) -> Self {
        XRewriteConfig {
            max_queries,
            ..Default::default()
        }
    }
}

/// Rewriting failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteError {
    /// The query budget was exhausted before the fixpoint; carries the
    /// partial output (sound: every disjunct is a correct rewriting, the
    /// union may be incomplete). Boxed to keep the `Err` variant small.
    BudgetExceeded(Box<RewriteOutput>),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::BudgetExceeded(out) => write!(
                f,
                "XRewrite budget exceeded after generating {} queries",
                out.generated
            ),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Work counters of one rewriting run, carried by both the success and the
/// budget-exceeded paths. Wall clocks are in nanoseconds (integers, so the
/// containing types stay `Eq`); every other field is a deterministic
/// function of the input and config, identical at any thread count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Worklist rounds (frontier generations) processed.
    pub rounds: usize,
    /// Candidate CQs produced by rewriting/factorization steps, before
    /// deduplication.
    pub candidates: usize,
    /// Candidates discarded by the `max_atoms` budget.
    pub atom_budget_skips: usize,
    /// Duplicates detected by the raw-form fast path: the *uncored*
    /// candidate's canonical form aliased a known entry slot, so the
    /// candidate was rejected without ever being cored.
    pub dedup_hits_raw: usize,
    /// Duplicates detected by canonical-form hash equality after coring.
    pub dedup_hits_canonical: usize,
    /// Duplicates detected by the fingerprint + `cq_isomorphic` path.
    pub dedup_hits_iso: usize,
    /// Pairwise `cq_isomorphic` calls performed (bucket scans).
    pub dedup_iso_checks: usize,
    /// Candidates whose symmetry exceeded the canonical-labeling budget and
    /// fell back to the fingerprint path.
    pub canonical_fallbacks: usize,
    /// Core computations that hit their endomorphism budget (result kept,
    /// possibly non-minimal).
    pub core_budget_exhaustions: usize,
    /// Output disjuncts dropped as homomorphically subsumed.
    pub subsumption_kills: usize,
    /// Join plans compiled by the subsumption sieve.
    pub plans_compiled: u64,
    /// Sieve subsumption probes served by a cached entry plan.
    pub plan_cache_hits: u64,
    /// Sieve subsumption probes rejected by the predicate-signature
    /// prefilter before any plan executed.
    pub prefilter_rejects: u64,
    /// Cached plans recompiled after cost-model divergence (sieve plans are
    /// compiled per entry, so this is 0 unless a `PlanCache` is in play).
    pub plans_reoptimized: u64,
    /// Costed-plan executions whose observed candidates were ≤ prediction.
    pub est_ratio_le_1: u64,
    /// Costed-plan executions within `REOPT_FACTOR`× of prediction.
    pub est_ratio_le_4: u64,
    /// Costed-plan executions beyond `REOPT_FACTOR`× of prediction.
    pub est_ratio_gt_4: u64,
    /// Nanoseconds spent building cardinality sketches for plan costing.
    pub sketch_build_ns: u64,
    /// Wall clock spent expanding frontier entries (worker side).
    pub expand_nanos: u64,
    /// Wall clock spent merging + deduplicating candidates (caller side).
    pub merge_nanos: u64,
    /// Wall clock spent in the subsumption sieve.
    pub prune_nanos: u64,
}

impl RewriteStats {
    /// Mirrors the counters into the installed omq-obs recorder, once per
    /// run (a no-op without a recorder, and compiled out entirely without
    /// the `obs` feature).
    pub fn emit_obs(&self) {
        if !omq_obs::active() {
            return;
        }
        omq_obs::counters(&[
            ("rewrite.rounds", self.rounds as u64),
            ("rewrite.candidates", self.candidates as u64),
            ("rewrite.atom_budget_skips", self.atom_budget_skips as u64),
            ("rewrite.dedup_hits_raw", self.dedup_hits_raw as u64),
            (
                "rewrite.dedup_hits_canonical",
                self.dedup_hits_canonical as u64,
            ),
            ("rewrite.dedup_hits_iso", self.dedup_hits_iso as u64),
            ("rewrite.dedup_iso_checks", self.dedup_iso_checks as u64),
            (
                "rewrite.canonical_fallbacks",
                self.canonical_fallbacks as u64,
            ),
            (
                "rewrite.core_budget_exhaustions",
                self.core_budget_exhaustions as u64,
            ),
            ("rewrite.subsumption_kills", self.subsumption_kills as u64),
            ("rewrite.plans_compiled", self.plans_compiled),
            ("rewrite.plan_cache_hits", self.plan_cache_hits),
            ("rewrite.prefilter_rejects", self.prefilter_rejects),
            ("rewrite.plans_reoptimized", self.plans_reoptimized),
            ("rewrite.est_ratio_le_1", self.est_ratio_le_1),
            ("rewrite.est_ratio_le_4", self.est_ratio_le_4),
            ("rewrite.est_ratio_gt_4", self.est_ratio_gt_4),
        ]);
    }
}

/// The result of a (partial or complete) rewriting run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteOutput {
    /// The UCQ rewriting over the data schema.
    pub ucq: Ucq,
    /// Total number of distinct CQs generated (explored and auxiliary).
    pub generated: usize,
    /// Number of rewriting steps applied.
    pub rewrite_steps: usize,
    /// Number of factorization steps applied.
    pub factorization_steps: usize,
    /// Work counters of the run.
    pub stats: RewriteStats,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Label {
    Rewriting,
    Factorization,
}

struct Entry {
    cq: Cq,
    label: Label,
    explored: bool,
}

/// A cheap isomorphism-invariant fingerprint of a CQ: head arity, and the
/// sorted multiset of (predicate, per-position term kinds) with variable
/// occurrence counts abstracted. Two isomorphic CQs always collide, so the
/// expensive `cq_isomorphic` check only runs within a bucket.
fn fingerprint(q: &Cq) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut counts: std::collections::HashMap<VarId, u32> = std::collections::HashMap::new();
    for a in &q.body {
        for v in a.vars() {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let mut atoms: Vec<(u32, Vec<i64>)> = q
        .body
        .iter()
        .map(|a| {
            (
                a.pred.0,
                a.args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => -(c.0 as i64) - 1,
                        Term::Var(v) => counts[v] as i64,
                        Term::Null(_) => unreachable!(),
                    })
                    .collect(),
            )
        })
        .collect();
    atoms.sort();
    let mut h = DefaultHasher::new();
    q.head.len().hash(&mut h);
    atoms.hash(&mut h);
    h.finish()
}

/// Which labels a dedup slot has seen: a slot's existence means "some entry
/// with an aliased form exists"; `has_rewriting` narrows it for the
/// rewriting-step check, which deduplicates only against `r`-labeled
/// entries.
#[derive(Clone, Copy, Default)]
struct SlotFlags {
    has_rewriting: bool,
}

/// Dedup index for the canonical strategy.
///
/// Canonical forms (of cored entries *and* of uncored candidates proved
/// equal to them) map to shared slots, so the expensive coring step runs
/// only for queries that survive the cheap raw-form check — a duplicate
/// candidate is usually rejected before ever being cored. Queries whose
/// symmetry exceeds the labeling budget live in fingerprint `buckets` and
/// are compared pairwise with `cq_isomorphic`; the fallback decision is
/// isomorphism-invariant, so the two sides never need cross-checking. In
/// `FingerprintIso` mode everything goes through `buckets`.
struct DedupIndex {
    canon: std::collections::HashMap<CqCanonicalForm, usize>,
    slots: Vec<SlotFlags>,
    buckets: std::collections::HashMap<u64, Vec<usize>>,
}

impl DedupIndex {
    fn new() -> Self {
        DedupIndex {
            canon: std::collections::HashMap::new(),
            slots: Vec::new(),
            buckets: std::collections::HashMap::new(),
        }
    }

    /// Looks a canonical form up; `Some(slot)` when an entry with an
    /// aliased form exists (the caller still gates on the slot's flags).
    fn slot_of(&self, form: &CqCanonicalForm) -> Option<usize> {
        self.canon.get(form).copied()
    }

    /// Binds `form` to slot `slot` (aliases may bind many forms to one).
    fn alias(&mut self, form: CqCanonicalForm, slot: usize) {
        self.canon.insert(form, slot);
    }

    /// A fresh slot with the given flags.
    fn new_slot(&mut self, flags: SlotFlags) -> usize {
        self.slots.push(flags);
        self.slots.len() - 1
    }

    /// Registers the keys of an admitted candidate for entry `idx` and
    /// hands its CQ back to the caller.
    fn register(&mut self, adm: Admitted, idx: usize, label: Label) -> Cq {
        let is_rw = label == Label::Rewriting;
        match adm.form {
            Some(f) => {
                // The form may already have a slot whose flags blocked the
                // dup (a factorization entry seen by a rewriting candidate):
                // upgrade it rather than shadowing it.
                let s = match self.slot_of(&f) {
                    Some(s) => {
                        if is_rw {
                            self.slots[s].has_rewriting = true;
                        }
                        s
                    }
                    None => {
                        let s = self.new_slot(SlotFlags {
                            has_rewriting: is_rw,
                        });
                        self.alias(f, s);
                        s
                    }
                };
                if let Some(r) = adm.raw {
                    self.alias(r, s);
                }
            }
            None => {
                self.buckets
                    .entry(adm.fp.expect("fallback admissions carry a fingerprint"))
                    .or_default()
                    .push(idx);
                if let Some(r) = adm.raw {
                    let s = self.new_slot(SlotFlags {
                        has_rewriting: is_rw,
                    });
                    self.alias(r, s);
                }
            }
        }
        adm.cq
    }

    /// Scans the fingerprint bucket of `fp` for an entry isomorphic to `q`,
    /// honouring the rewriting-only restriction; returns its index.
    fn find_iso(
        &self,
        entries: &[Entry],
        q: &Cq,
        fp: u64,
        rewriting_only: bool,
        stats: &mut RewriteStats,
    ) -> Option<usize> {
        let ids = self.buckets.get(&fp)?;
        let hit = ids.iter().copied().find(|&i| {
            (!rewriting_only || entries[i].label == Label::Rewriting) && {
                stats.dedup_iso_checks += 1;
                cq_isomorphic(&entries[i].cq, q)
            }
        });
        if hit.is_some() {
            stats.dedup_hits_iso += 1;
        }
        hit
    }
}

/// Positions (0-based) of the head atom of `t` that hold an existentially
/// quantified variable (`π∃(σ)` generalized to a set, as in \[40\]).
fn existential_positions(t: &Tgd) -> Vec<usize> {
    let ex = t.existential_vars();
    let head = &t.head[0];
    head.args
        .iter()
        .enumerate()
        .filter_map(|(i, &a)| match a {
            Term::Var(v) if ex.contains(&v) => Some(i),
            _ => None,
        })
        .collect()
}

/// Renames every variable of `t` using fresh variables from `voc`
/// (the `σⁱ` renaming of Algorithm 1).
fn rename_apart(t: &Tgd, voc: &mut Vocabulary) -> Tgd {
    let mut sub = Substitution::new();
    for v in t.body_vars().into_iter().chain(t.head_vars()) {
        if sub.get(v).is_none() {
            sub.bind(v, Term::Var(voc.fresh_var("r")));
        }
    }
    Tgd::new(sub.apply_atoms(&t.body), sub.apply_atoms(&t.head))
}

/// The free-variable guard on an applicability MGU: reject a unifier that
/// binds a free variable to a constant — such rewritings would need
/// constants in query heads, which our CQ type does not model; see the
/// module docs. (Free variables never unify with existential variables
/// thanks to condition 2 of Def. 6, checked via the blocked-atom flags.)
fn head_guard_ok(q: &Cq, mgu: &Substitution) -> bool {
    q.head
        .iter()
        .all(|&v| !matches!(mgu.get(v), Some(t) if !t.is_var()))
}

/// Reusable buffers for the subset enumeration.
#[derive(Default)]
struct SubsetScratch {
    /// Positions into the pool of the current combination.
    pos: Vec<usize>,
    /// The combination mapped back to pool values.
    vals: Vec<usize>,
}

/// Enumerates the subsets of `pool` (which is ascending) of sizes
/// `min..=max`, smallest size first and lexicographic within a size,
/// without allocating per subset.
fn for_each_subset(
    pool: &[usize],
    min: usize,
    max: usize,
    scratch: &mut SubsetScratch,
    mut f: impl FnMut(&[usize]),
) {
    let n = pool.len();
    for size in min.max(1)..=max.min(n) {
        let pos = &mut scratch.pos;
        pos.clear();
        pos.extend(0..size);
        'combos: loop {
            scratch.vals.clear();
            scratch.vals.extend(pos.iter().map(|&p| pool[p]));
            f(&scratch.vals);
            // Advance to the next lexicographic combination.
            let mut i = size;
            loop {
                if i == 0 {
                    break 'combos;
                }
                i -= 1;
                if pos[i] != i + n - size {
                    pos[i] += 1;
                    for j in i + 1..size {
                        pos[j] = pos[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
}

/// Removes duplicate atoms from a CQ (keeps first occurrences). Quadratic
/// in the body size, which is small; beats hashing because the common case
/// (few or no duplicates) does one cheap slice comparison per pair.
fn dedup_atoms(mut q: Cq) -> Cq {
    let mut i = 0;
    while i < q.body.len() {
        if q.body[..i].contains(&q.body[i]) {
            q.body.remove(i);
        } else {
            i += 1;
        }
    }
    q
}

/// The worker-side dedup key of a candidate.
enum CandKey {
    /// Canonical strategy: the canonical form of the candidate as produced
    /// (uncored unless `Candidate::finalized`); `None` when its symmetry
    /// exceeded the labeling budget.
    Raw(Option<CqCanonicalForm>),
    /// Fingerprint strategy: the fingerprint of the already-cored candidate.
    Fp(u64),
}

/// A candidate produced by expanding one frontier entry, together with the
/// dedup key computed worker-side. Under the canonical strategy the
/// expensive coring step is *deferred* to the merge side and runs only for
/// candidates that survive the cheap raw-form probe.
struct Candidate {
    kind: Label,
    cq: Cq,
    key: CandKey,
    /// `cq` needs no further coring (fingerprint mode, coring disabled, or
    /// the rare worker-side coring forced by the `max_atoms` budget).
    finalized: bool,
}

/// A candidate that survived deduplication, carrying the keys to register
/// once the caller has pushed its entry.
struct Admitted {
    cq: Cq,
    /// Final canonical form; `None` means the fingerprint fallback (`fp`).
    form: Option<CqCanonicalForm>,
    fp: Option<u64>,
    /// Uncored form to alias to the entry's slot (when it differs).
    raw: Option<CqCanonicalForm>,
}

/// All candidates of one frontier entry, in deterministic order (tgd index,
/// subset index; rewriting before factorization per subset), plus the
/// worker-side counters.
#[derive(Default)]
struct Expansion {
    candidates: Vec<Candidate>,
    seen: usize,
    atom_skips: usize,
    core_exhaustions: usize,
    canonical_fallbacks: usize,
    /// The worker found the budget expired and skipped this entry. The
    /// merge side ORs this into `truncated`, so a worker-side skip always
    /// surfaces as `BudgetExceeded` — candidates are dropped loudly, never
    /// silently.
    expired: bool,
}

impl Expansion {
    /// Normalizes a generated CQ (duplicate-atom removal; coring only when
    /// a budget forces it — otherwise coring is deferred to the merge side),
    /// applies the atom budget, and records it as a candidate.
    fn consider(&mut self, q: Cq, kind: Label, cfg: &XRewriteConfig) {
        self.seen += 1;
        let mut q = dedup_atoms(q);
        let mut finalized = !cfg.canonicalize;
        let core_here = |q: &Cq, exh: &mut usize| {
            let (core, exhausted) = cq_core_budgeted_report(q, CORE_BUDGET);
            if exhausted {
                *exh += 1;
            }
            core
        };
        if cfg.dedup == DedupStrategy::FingerprintIso {
            // The reference path cores worker-side: its dedup key (the
            // fingerprint) must be computed on the final query.
            if !finalized && !q.body.is_empty() {
                q = core_here(&q, &mut self.core_exhaustions);
            }
            if cfg.max_atoms.is_some_and(|m| q.body.len() > m) {
                self.atom_skips += 1;
                return;
            }
            let key = CandKey::Fp(fingerprint(&q));
            self.candidates.push(Candidate {
                kind,
                cq: q,
                key,
                finalized: true,
            });
            return;
        }
        // Canonical strategy: the atom budget compares against the *cored*
        // size, so an oversized candidate is cored here (rare — the budget
        // is off by default) and re-checked; within-budget candidates stay
        // uncored, since coring never grows a query.
        if !finalized && !q.body.is_empty() && cfg.max_atoms.is_some_and(|m| q.body.len() > m) {
            q = core_here(&q, &mut self.core_exhaustions);
            finalized = true;
        }
        if cfg.max_atoms.is_some_and(|m| q.body.len() > m) {
            self.atom_skips += 1;
            return;
        }
        let key = CandKey::Raw(cq_canonical_form(&q, SYMMETRY_BUDGET));
        self.candidates.push(Candidate {
            kind,
            cq: q,
            key,
            finalized,
        });
    }
}

/// Merge-side admission of one candidate: the cheap probe on the worker-side
/// key first; survivors are cored (canonical strategy) and re-probed with
/// their final form. Returns `None` for duplicates, otherwise the finalized
/// candidate for the caller to push and [`DedupIndex::register`].
fn admit(
    index: &mut DedupIndex,
    entries: &[Entry],
    cand: Candidate,
    rewriting_only: bool,
    stats: &mut RewriteStats,
) -> Option<Admitted> {
    let raw_form = match cand.key {
        CandKey::Fp(fp) => {
            if index
                .find_iso(entries, &cand.cq, fp, rewriting_only, stats)
                .is_some()
            {
                return None;
            }
            return Some(Admitted {
                cq: cand.cq,
                form: None,
                fp: Some(fp),
                raw: None,
            });
        }
        CandKey::Raw(form) => form,
    };
    // Fast path: the possibly-uncored form already aliases a known slot.
    if let Some(form) = &raw_form {
        if let Some(s) = index.slot_of(form) {
            if !rewriting_only || index.slots[s].has_rewriting {
                stats.dedup_hits_raw += 1;
                return None;
            }
        }
    }
    // Slow path: finalize (core) and re-probe with the final form.
    let (cq, form, raw) = if cand.finalized || cand.cq.body.is_empty() {
        (cand.cq, raw_form, None)
    } else {
        let (core, exhausted) = cq_core_budgeted_report(&cand.cq, CORE_BUDGET);
        if exhausted {
            stats.core_budget_exhaustions += 1;
        }
        if core == cand.cq {
            // Coring was a no-op, so the raw form already is the final
            // form; no alias entry is needed either.
            (core, raw_form, None)
        } else {
            let form = cq_canonical_form(&core, SYMMETRY_BUDGET);
            (core, form, raw_form)
        }
    };
    match form {
        Some(f) => {
            if let Some(s) = index.slot_of(&f) {
                if !rewriting_only || index.slots[s].has_rewriting {
                    stats.dedup_hits_canonical += 1;
                    // Alias the raw form so the next identical candidate
                    // takes the fast path.
                    if let Some(r) = raw {
                        index.alias(r, s);
                    }
                    return None;
                }
            }
            Some(Admitted {
                cq,
                form: Some(f),
                fp: None,
                raw,
            })
        }
        None => {
            stats.canonical_fallbacks += 1;
            let fp = fingerprint(&cq);
            if let Some(i) = index.find_iso(entries, &cq, fp, rewriting_only, stats) {
                if let Some(r) = raw {
                    let flags = SlotFlags {
                        has_rewriting: entries[i].label == Label::Rewriting,
                    };
                    let s = index.new_slot(flags);
                    index.alias(r, s);
                }
                return None;
            }
            Some(Admitted {
                cq,
                form: None,
                fp: Some(fp),
                raw,
            })
        }
    }
}

/// Emits the rewriting step `q' = γ(q[S / body(σⁱ)])` for an applicable set
/// (given by its body indices `s_idx`) with MGU `gamma`.
fn emit_rewriting(
    q: &Cq,
    s_idx: &[usize],
    gamma: &Substitution,
    t: &Tgd,
    out: &mut Expansion,
    cfg: &XRewriteConfig,
) {
    let mut body: Vec<Atom> = q
        .body
        .iter()
        .enumerate()
        .filter(|(i, _)| !s_idx.contains(i))
        .map(|(_, a)| gamma.apply_atom(a))
        .collect();
    body.extend(gamma.apply_atoms(&t.body));
    let head: Vec<VarId> = q
        .head
        .iter()
        .map(|&v| match gamma.apply_term(Term::Var(v)) {
            Term::Var(w) => w,
            _ => unreachable!("applicability protects free variables"),
        })
        .collect();
    if !body.is_empty() || head.is_empty() {
        out.consider(Cq::new(head, body), Label::Rewriting, cfg);
    }
}

/// Expands one query against every (pre-renamed) tgd: the pure, worker-side
/// part of a round. Needs no vocabulary access — all fresh variables were
/// drawn by the caller when renaming the tgds.
///
/// The applicability check (Def. 6) is split across the loop structure: the
/// *pool* prefilter keeps atoms whose predicate matches and which unify
/// with the head on their own (condition 1 for singletons, necessary for
/// any set); *blocked* atoms — a constant or shared variable at an
/// existential position — violate condition 2 in every set containing them,
/// so the rewriting subset enumeration runs over the unblocked pool only,
/// and singleton sets reuse the MGU computed by the prefilter.
///
/// The factorizability check (Def. 7) needs no subset enumeration at all:
/// its conditions force `S` to be *exactly* the set of atoms containing the
/// blocking variable `x` (x occurs in every atom of S and nowhere else), so
/// it suffices to enumerate the candidate variables found at existential
/// positions of pool atoms.
fn expand_entry(
    q: &Cq,
    renamed: &[(Tgd, Vec<usize>)],
    cfg: &XRewriteConfig,
    scratch: &mut SubsetScratch,
) -> Expansion {
    let mut out = Expansion::default();
    let max_subset = cfg.max_subset.max(1);
    for (t, expos) in renamed {
        let head = &t.head[0];
        let mut pool: Vec<usize> = Vec::new();
        let mut rw_pool: Vec<usize> = Vec::new();
        let mut rw_mgu: Vec<Substitution> = Vec::new();
        for (i, a) in q.body.iter().enumerate() {
            if a.pred != head.pred {
                continue;
            }
            let Some(mgu) = omq_model::mgu_atoms(a, head) else {
                continue;
            };
            pool.push(i);
            let blocked = a.args.iter().enumerate().any(|(p, &arg)| {
                expos.contains(&p)
                    && match arg {
                        Term::Const(_) => true,
                        Term::Var(v) => q.is_shared(v),
                        Term::Null(_) => unreachable!("CQs contain no nulls"),
                    }
            });
            if !blocked {
                rw_pool.push(i);
                rw_mgu.push(mgu);
            }
        }
        if pool.is_empty() {
            continue;
        }

        // --- rewriting steps: singletons first (cached MGU)... ---
        for (k, &i) in rw_pool.iter().enumerate() {
            if head_guard_ok(q, &rw_mgu[k]) {
                emit_rewriting(q, &[i], &rw_mgu[k], t, &mut out, cfg);
            }
        }
        // --- ...then the multi-atom sets. ---
        for_each_subset(&rw_pool, 2, max_subset, scratch, |s_idx| {
            let mut atoms: Vec<&Atom> = s_idx.iter().map(|&i| &q.body[i]).collect();
            atoms.push(head);
            if let Some(gamma) = mgu_refs(&atoms) {
                if head_guard_ok(q, &gamma) {
                    emit_rewriting(q, s_idx, &gamma, t, &mut out, cfg);
                }
            }
        });

        // --- factorization steps: one forced set per blocking variable. ---
        if expos.is_empty() {
            continue;
        }
        let mut seen_vars: Vec<VarId> = Vec::new();
        let mut tried: Vec<Vec<usize>> = Vec::new();
        for &i in &pool {
            for &p in expos {
                let Term::Var(x) = q.body[i].args[p] else {
                    continue;
                };
                if seen_vars.contains(&x) {
                    continue;
                }
                seen_vars.push(x);
                if q.head.contains(&x) {
                    continue;
                }
                // The forced set: every body atom containing x. Conditions:
                // at least two atoms, all in the pool, x only at existential
                // positions within them.
                let occ: Vec<usize> = (0..q.body.len())
                    .filter(|&j| q.body[j].args.contains(&Term::Var(x)))
                    .collect();
                if occ.len() < 2 || occ.len() > max_subset {
                    continue;
                }
                let ok = occ.iter().all(|&j| {
                    pool.contains(&j)
                        && q.body[j]
                            .positions_of(Term::Var(x))
                            .iter()
                            .all(|p2| expos.contains(p2))
                });
                if !ok || tried.contains(&occ) {
                    continue;
                }
                let atoms: Vec<&Atom> = occ.iter().map(|&j| &q.body[j]).collect();
                if let Some(gamma) = mgu_refs(&atoms) {
                    out.consider(gamma.apply_cq(q), Label::Factorization, cfg);
                }
                tried.push(occ);
            }
        }
    }
    out
}

/// Expands every entry of the frontier, in parallel when the pool and the
/// frontier are big enough. Results are slotted by frontier position, so the
/// caller merges them in exactly the sequential order. Workers poll the
/// budget before each entry; a skipped entry reports `expired` so the merge
/// side truncates the run instead of silently losing candidates.
fn expand_frontier(
    frontier: &[Entry],
    renamed: &[(Tgd, Vec<usize>)],
    cfg: &XRewriteConfig,
    threads: usize,
) -> Vec<Expansion> {
    let n = frontier.len();
    let expand_one = |e: &Entry, scratch: &mut SubsetScratch| {
        if cfg.budget.expired() {
            return Expansion {
                expired: true,
                ..Default::default()
            };
        }
        expand_entry(&e.cq, renamed, cfg, scratch)
    };
    if threads <= 1 || n < 2 {
        let mut scratch = SubsetScratch::default();
        return frontier
            .iter()
            .map(|e| expand_one(e, &mut scratch))
            .collect();
    }
    let slots: Vec<OnceLock<Expansion>> = (0..n).map(|_| OnceLock::new()).collect();
    runtime::parallel_indexed(threads, n, SubsetScratch::default, |scratch, i| {
        let _ = slots[i].set(expand_one(&frontier[i], scratch));
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot was filled"))
        .collect()
}

/// Runs XRewrite on `omq`, producing a UCQ rewriting over the data schema.
///
/// The input query may be a UCQ; all its disjuncts seed the worklist. The
/// ontology is used as-is when every head is a single atom; multi-atom heads
/// are normalized first (see `omq_classes::normalize_heads`) — note the
/// normalization's auxiliary predicates never reach the output because they
/// are not in the data schema.
pub fn xrewrite(
    omq: &Omq,
    voc: &mut Vocabulary,
    cfg: &XRewriteConfig,
) -> Result<RewriteOutput, RewriteError> {
    let _span = omq_obs::span("rewrite");
    let sigma: Vec<Tgd> = if omq.sigma.iter().all(|t| t.head.len() == 1) {
        omq.sigma.clone()
    } else {
        omq_classes::normalize_heads(voc, &omq.sigma)
    };

    let mut stats = RewriteStats::default();
    let mut entries: Vec<Entry> = Vec::new();
    let mut index = DedupIndex::new();
    let mut truncated = false;

    // Seed the worklist with the input disjuncts.
    {
        let merge_start = Instant::now();
        let mut seed_exp = Expansion::default();
        for d in &omq.query.disjuncts {
            seed_exp.consider(d.clone(), Label::Rewriting, cfg);
        }
        // Seeds are inputs, not generated candidates.
        seed_exp.seen = 0;
        stats.core_budget_exhaustions += seed_exp.core_exhaustions;
        stats.canonical_fallbacks += seed_exp.canonical_fallbacks;
        for cand in seed_exp.candidates {
            let Some(adm) = admit(&mut index, &entries, cand, false, &mut stats) else {
                continue;
            };
            if entries.len() >= cfg.max_queries {
                truncated = true;
                break;
            }
            let cq = index.register(adm, entries.len(), Label::Rewriting);
            entries.push(Entry {
                cq,
                label: Label::Rewriting,
                explored: false,
            });
        }
        stats.merge_nanos += merge_start.elapsed().as_nanos() as u64;
    }

    let threads = runtime::effective_threads(cfg.threads, usize::MAX);
    let mut rewrite_steps = 0usize;
    let mut factorization_steps = 0usize;

    // The subsumption sieve receives every finalized disjunct (explored,
    // r-labeled, data-schema-only) in entry order; `pending` buffers them
    // between flushes. Streaming through the sieve in a fixed order makes
    // the surviving list independent of the flush cadence.
    let mut sieve = SubsumptionSieve::with_plan_cache(cfg.plan_cache);
    let mut pending: Vec<Cq> = Vec::new();
    let mut last_flush = 0usize;
    let flush = |sieve: &mut SubsumptionSieve, pending: &mut Vec<Cq>, stats: &mut RewriteStats| {
        let _span = omq_obs::span("rewrite.prune");
        let t = Instant::now();
        for cq in pending.drain(..) {
            sieve.insert(cq);
        }
        stats.prune_nanos += t.elapsed().as_nanos() as u64;
    };
    let is_output = |e: &Entry| {
        e.label == Label::Rewriting
            && e.explored
            && e.cq.body.iter().all(|a| omq.data_schema.contains(a.pred))
    };

    // Round-based worklist: entries are appended in merge order and explored
    // in index order, so each round's frontier is the contiguous range
    // `[cursor, frontier_end)`.
    let mut cursor = 0usize;
    while cursor < entries.len() && !truncated {
        if cfg.budget.expired() {
            truncated = true;
            break;
        }
        stats.rounds += 1;
        let _round = omq_obs::span("rewrite.round");
        let frontier_end = entries.len();

        // Rename each tgd once for this round, on the caller thread: fresh
        // variables are drawn in a deterministic order regardless of thread
        // count, and frontier entries were built from *earlier* rounds'
        // renamings, so round-local sharing keeps the tgds apart from every
        // query they meet. Tgds whose head predicate appears in no frontier
        // body are skipped — their atom pool is empty for every entry — and
        // since the frontier itself is deterministic, so is the skip set.
        let frontier_preds: HashSet<_> = entries[cursor..frontier_end]
            .iter()
            .flat_map(|e| e.cq.body.iter().map(|a| a.pred))
            .collect();
        let renamed: Vec<(Tgd, Vec<usize>)> = sigma
            .iter()
            .filter(|t| frontier_preds.contains(&t.head[0].pred))
            .map(|t| {
                let r = rename_apart(t, voc);
                let expos = existential_positions(&r);
                (r, expos)
            })
            .collect();

        let expand_start = Instant::now();
        let expansions = {
            let _span = omq_obs::span("rewrite.expand");
            expand_frontier(&entries[cursor..frontier_end], &renamed, cfg, threads)
        };
        stats.expand_nanos += expand_start.elapsed().as_nanos() as u64;

        let merge_span = omq_obs::span("rewrite.merge");
        let merge_start = Instant::now();
        for (off, exp) in expansions.into_iter().enumerate() {
            let idx = cursor + off;
            entries[idx].explored = true;
            if cfg.prune_subsumed && is_output(&entries[idx]) {
                pending.push(entries[idx].cq.clone());
            }
            stats.candidates += exp.seen;
            stats.atom_budget_skips += exp.atom_skips;
            stats.core_budget_exhaustions += exp.core_exhaustions;
            stats.canonical_fallbacks += exp.canonical_fallbacks;
            truncated |= exp.expired;
            for cand in exp.candidates {
                let kind = cand.kind;
                let rewriting_only = kind == Label::Rewriting;
                let Some(adm) = admit(&mut index, &entries, cand, rewriting_only, &mut stats)
                else {
                    continue;
                };
                if entries.len() >= cfg.max_queries {
                    truncated = true;
                    break;
                }
                match kind {
                    Label::Rewriting => rewrite_steps += 1,
                    Label::Factorization => factorization_steps += 1,
                }
                let cq = index.register(adm, entries.len(), kind);
                entries.push(Entry {
                    cq,
                    label: kind,
                    explored: false,
                });
            }
            if truncated {
                break;
            }
        }
        stats.merge_nanos += merge_start.elapsed().as_nanos() as u64;
        drop(merge_span);
        cursor = frontier_end;

        if cfg.prune_subsumed && entries.len() - last_flush >= cfg.prune_interval {
            last_flush = entries.len();
            flush(&mut sieve, &mut pending, &mut stats);
        }
    }

    let disjuncts: Vec<Cq> = if cfg.prune_subsumed {
        flush(&mut sieve, &mut pending, &mut stats);
        stats.subsumption_kills = sieve.kills();
        let hs = sieve.hom_stats();
        stats.plans_compiled = hs.plans_compiled;
        stats.plan_cache_hits = hs.plan_cache_hits;
        stats.prefilter_rejects = hs.prefilter_rejects;
        stats.plans_reoptimized = hs.plans_reoptimized;
        stats.est_ratio_le_1 = hs.est_ratio_le_1;
        stats.est_ratio_le_4 = hs.est_ratio_le_4;
        stats.est_ratio_gt_4 = hs.est_ratio_gt_4;
        stats.sketch_build_ns = hs.sketch_build_ns;
        sieve.into_disjuncts()
    } else {
        entries
            .iter()
            .filter(|e| is_output(e))
            .map(|e| e.cq.clone())
            .collect()
    };
    stats.emit_obs();
    omq_obs::counter("rewrite.generated", entries.len() as u64);
    let out = RewriteOutput {
        ucq: Ucq::new(omq.query.arity, disjuncts),
        generated: entries.len(),
        rewrite_steps,
        factorization_steps,
        stats,
    };
    if truncated {
        Err(RewriteError::BudgetExceeded(Box::new(out)))
    } else {
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema};

    /// Builds an OMQ from program text: all predicates named in `data` form
    /// the data schema; the query is the one named `q`.
    fn omq(text: &str, data: &[&str]) -> (Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        (
            Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone()),
            voc,
        )
    }

    /// Example 1 of the paper: the rewriting of q(x) :- R(x,y), P(y) under
    ///   P(x) → ∃y R(x,y);  R(x,y) → P(y);  T(x) → P(x)
    /// over S = {P, T} is `P(x) ∨ T(x)`.
    #[test]
    fn paper_example_1() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> P(Y)\n\
             T(X) -> P(X)\n\
             q(X) :- R(X,Y), P(Y)\n",
            &["P", "T"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        let p = voc.pred_id("P").unwrap();
        let t = voc.pred_id("T").unwrap();
        // Expect exactly the single-atom disjuncts P(x) and T(x).
        let mut found_p = false;
        let mut found_t = false;
        for d in &out.ucq.disjuncts {
            if d.body.len() == 1 {
                let a = &d.body[0];
                if a.pred == p && a.args[0] == Term::Var(d.head[0]) {
                    found_p = true;
                }
                if a.pred == t && a.args[0] == Term::Var(d.head[0]) {
                    found_t = true;
                }
            }
        }
        assert!(found_p, "P(x) missing from rewriting: {:?}", out.ucq);
        assert!(found_t, "T(x) missing from rewriting");
        assert!(out.stats.rounds >= 2);
        assert!(out.stats.candidates > 0);
    }

    /// Every disjunct of the rewriting must have at most |q| atoms for
    /// linear ontologies (Prop. 12).
    #[test]
    fn linear_disjuncts_never_grow() {
        let (q, mut voc) = omq(
            "A(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> exists Z . R(Y,Z)\n\
             B(X,Y) -> R(X,Y)\n\
             q(X) :- R(X,Y), R(Y,Z)\n",
            &["A", "B"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        assert!(out.ucq.max_disjunct_size() <= 2);
        assert!(!out.ucq.disjuncts.is_empty());
    }

    /// The factorization example from the appendix: q = ∃x∃y∃z (R(x,y) ∧
    /// R(x,z)) with σ = P(u,v) → ∃w R(w,u). Applicability fails on either
    /// atom alone (x is shared and sits at the existential position), but
    /// factorizing {R(x,y), R(x,z)} unifies y and z, after which the
    /// rewriting step produces P(u,v).
    #[test]
    fn factorization_unblocks_rewriting() {
        let (q, mut voc) = omq(
            "P(U,V) -> exists W . R(W,U)\n\
             q :- R(X,Y), R(X,Z)\n",
            &["P"],
        );
        // Without coring, the factorization step of Def. 7 is what unifies
        // {R(x,y), R(x,z)} so the tgd becomes applicable.
        let cfg = XRewriteConfig {
            canonicalize: false,
            ..Default::default()
        };
        let out = xrewrite(&q, &mut voc, &cfg).unwrap();
        assert!(out.factorization_steps >= 1);
        let p = voc.pred_id("P").unwrap();
        let has_p = |out: &RewriteOutput| {
            out.ucq
                .disjuncts
                .iter()
                .any(|d| d.body.len() == 1 && d.body[0].pred == p)
        };
        assert!(has_p(&out), "expected P(u,v) disjunct, got {:?}", out.ucq);
        // With coring (the default) the redundant atom collapses up front
        // and the same rewriting is reached without factorization.
        let out2 = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        assert!(has_p(&out2));
    }

    /// Without factorization the blocked step must NOT fire: x is shared and
    /// at an existential position, so R(x,y) alone is not applicable.
    #[test]
    fn applicability_blocks_shared_existential_position() {
        let (q, mut voc) = omq(
            "P(U,V) -> exists W . R(W,U)\n\
             q(X) :- R(X,Y)\n",
            &["P", "R"],
        );
        // X is free (hence shared) and sits at position 0 = π∃(σ).
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        // The only disjunct over {P, R} is the original query itself.
        assert_eq!(out.ucq.disjuncts.len(), 1);
        assert_eq!(out.ucq.disjuncts[0].body[0].pred, voc.pred_id("R").unwrap());
    }

    /// Non-shared variables at existential positions resolve fine.
    #[test]
    fn existential_position_with_lone_variable() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y)\n\
             q(X) :- R(X,Y)\n",
            &["P", "R"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        let p = voc.pred_id("P").unwrap();
        assert!(out
            .ucq
            .disjuncts
            .iter()
            .any(|d| d.body.len() == 1 && d.body[0].pred == p));
    }

    /// Non-recursive multi-atom bodies: rewriting replaces the head atom by
    /// the body, growing the query (Prop. 14 behaviour).
    #[test]
    fn nonrecursive_body_expansion() {
        let (q, mut voc) = omq(
            "A(X), B(X) -> C(X)\n\
             q :- C(X)\n",
            &["A", "B"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        assert_eq!(out.ucq.disjuncts.len(), 1);
        assert_eq!(out.ucq.disjuncts[0].body.len(), 2);
    }

    /// UCQ input: both disjuncts are rewritten.
    #[test]
    fn ucq_input_seeds_all_disjuncts() {
        let (q, mut voc) = omq(
            "A(X) -> P(X)\n\
             B(X) -> T(X)\n\
             q(X) :- P(X)\n\
             q(X) :- T(X)\n",
            &["A", "B"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        assert_eq!(out.ucq.disjuncts.len(), 2);
    }

    /// A guarded, non-UCQ-rewritable input exhausts the budget. The cap is
    /// hard — generation stops *before* the query that would cross it — and
    /// the partial run still carries its stats.
    #[test]
    fn budget_exceeded_on_transitive_guarded() {
        let (q, mut voc) = omq(
            "E(X,Y) -> exists Z . E(Y,Z)\n\
             R(X,Y), E(Y,Z) -> R(X,Z)\n\
             q :- R(X,Y), E(Y,Z)\n",
            &["E", "R"],
        );
        let r = xrewrite(&q, &mut voc, &XRewriteConfig::with_max_queries(25));
        match r {
            Err(RewriteError::BudgetExceeded(out)) => {
                assert!(out.generated <= 25, "hard cap overshot: {}", out.generated);
                assert!(out.stats.rounds >= 1);
                assert!(out.stats.candidates > 0);
            }
            Ok(out) => {
                // Fine too: the fixpoint may be small. But then it must
                // contain the original query.
                assert!(!out.ucq.disjuncts.is_empty());
            }
        }
    }

    /// Fact tgds can erase atoms entirely.
    #[test]
    fn fact_tgd_resolves_to_smaller_query() {
        let (q, mut voc) = omq(
            "true -> Bit(0)\n\
             Bit(X) -> Num(X)\n\
             q :- Num(0), P(Z)\n",
            &["P"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        // Num(0) resolves to Bit(0) resolves to nothing: q :- P(Z) remains.
        assert!(out
            .ucq
            .disjuncts
            .iter()
            .any(|d| d.body.len() == 1 && d.body[0].pred == voc.pred_id("P").unwrap()));
    }

    /// Multi-atom heads are normalized internally and still rewrite fully.
    #[test]
    fn multi_atom_heads_normalized() {
        let (q, mut voc) = omq(
            "A(X) -> P(X), T(X)\n\
             q :- P(X), T(X)\n",
            &["A"],
        );
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        let a = voc.pred_id("A").unwrap();
        assert!(
            out.ucq
                .disjuncts
                .iter()
                .any(|d| d.body.iter().all(|at| at.pred == a)),
            "expected a disjunct over A, got {:?}",
            out.ucq
        );
    }

    /// Subsumption pruning drops a disjunct strictly implied by another
    /// (here: the seed query is subsumed by the more general rewriting
    /// P(x)), while the unpruned run keeps both; the pruned and unpruned
    /// UCQs stay mutually contained.
    #[test]
    fn subsumption_prunes_redundant_disjuncts() {
        let (q, mut voc) = omq(
            "P(X) -> R(X)\n\
             q(X) :- R(X), P(X)\n",
            &["P", "R"],
        );
        let unpruned = xrewrite(
            &q,
            &mut voc,
            &XRewriteConfig {
                prune_subsumed: false,
                ..Default::default()
            },
        )
        .unwrap();
        let pruned = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        assert!(pruned.ucq.disjuncts.len() < unpruned.ucq.disjuncts.len());
        assert!(pruned.stats.subsumption_kills >= 1);
        assert!(omq_chase::ucq_contained(&pruned.ucq, &unpruned.ucq));
        assert!(omq_chase::ucq_contained(&unpruned.ucq, &pruned.ucq));
    }

    /// A pre-expired wall-clock budget truncates the run through the same
    /// channel as the query budget: `BudgetExceeded` with a sound partial
    /// output, never a silently incomplete `Ok`.
    #[test]
    fn expired_budget_truncates_as_budget_exceeded() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> P(Y)\n\
             T(X) -> P(X)\n\
             q(X) :- R(X,Y), P(Y)\n",
            &["P", "T"],
        );
        let (budget, token) = Budget::unlimited().cancellable();
        token.cancel();
        let cfg = XRewriteConfig {
            budget,
            ..Default::default()
        };
        match xrewrite(&q, &mut voc, &cfg) {
            Err(RewriteError::BudgetExceeded(out)) => {
                // The seeds were admitted before the first round poll.
                assert!(out.generated >= 1);
            }
            Ok(_) => panic!("expired budget must not report a complete rewriting"),
        }
    }

    /// The two dedup strategies and any thread count produce identical
    /// outputs (spot check; the differential test sweeps random OMQs).
    #[test]
    fn dedup_strategies_and_threads_agree() {
        let make = || {
            omq(
                "P(X) -> exists Y . R(X,Y)\n\
                 R(X,Y) -> P(Y)\n\
                 T(X) -> P(X)\n\
                 q(X) :- R(X,Y), P(Y)\n",
                &["P", "T"],
            )
        };
        let (q, mut voc) = make();
        let base = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        for (dedup, threads) in [
            (DedupStrategy::Canonical, 1),
            (DedupStrategy::Canonical, 4),
            (DedupStrategy::FingerprintIso, 1),
            (DedupStrategy::FingerprintIso, 8),
        ] {
            let (q2, mut voc2) = make();
            let cfg = XRewriteConfig {
                dedup,
                threads,
                ..Default::default()
            };
            let out = xrewrite(&q2, &mut voc2, &cfg).unwrap();
            assert_eq!(out.ucq.disjuncts, base.ucq.disjuncts, "{dedup:?}/{threads}");
            assert_eq!(out.generated, base.generated);
        }
    }
}
