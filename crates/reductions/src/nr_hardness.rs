//! The Theorem 16 reduction: from the Extended Tiling Problem to
//! `Cont((NR, CQ))`.
//!
//! Given an ETP instance `(k, n, m, H₁, V₁, H₂, V₂)`, we construct two
//! non-recursive OMQs `Q₁, Q₂` over the data schema of 0-ary predicates
//! `Cᵢʲ` ("position `i` of the initial condition carries tile `j`") such
//! that the ETP instance is a yes-instance iff `Q₁ ⊆ Q₂`:
//!
//! * `Q₁` derives `Goal` when the database encodes at least one tile per
//!   position (*existence*) and tiling system 1 solves the `2ⁿ×2ⁿ` grid
//!   with a compatible initial condition;
//! * `Q₂` derives `Goal` when some position carries two tiles
//!   (*uniqueness* violated) or tiling system 2 solves the grid.
//!
//! The grid is built inductively: a `2ⁱ×2ⁱ` tiling object is assembled from
//! nine overlapping `2ⁱ⁻¹×2ⁱ⁻¹` tilings arranged on a 4×4 quadrant grid —
//! exactly **Figure 2** of the paper.

use omq_model::{Atom, Cq, Omq, PredId, Schema, Term, Tgd, Ucq, Vocabulary};

use crate::tiling::Etp;

/// The two OMQs produced by the Theorem 16 construction, sharing one
/// vocabulary.
#[derive(Clone, Debug)]
pub struct EtpOmqs {
    /// The left-hand OMQ (existence + tiling system 1).
    pub q1: Omq,
    /// The right-hand OMQ (uniqueness violation + tiling system 2).
    pub q2: Omq,
    /// The shared vocabulary.
    pub voc: Vocabulary,
}

struct Builder<'a> {
    voc: &'a mut Vocabulary,
    etp: &'a Etp,
    suffix: &'a str,
}

impl<'a> Builder<'a> {
    fn pred(&mut self, name: &str, arity: usize) -> PredId {
        self.voc.pred(&format!("{name}{}", self.suffix), arity)
    }

    fn cij(&mut self, i: usize, j: u8) -> PredId {
        // Data-schema predicates are shared (no suffix).
        self.voc.pred(&format!("C_{i}_{j}"), 0)
    }

    fn var(&mut self, name: &str) -> Term {
        Term::Var(self.voc.var(name))
    }

    /// The tiling rules shared by both sides (parameterized by `h`/`v`),
    /// deriving `Tiling` from the `Cᵢʲ` facts.
    fn tiling_rules(&mut self, h: &[(u8, u8)], v: &[(u8, u8)]) -> Vec<Tgd> {
        let etp = self.etp;
        let (k, n, m) = (etp.k, etp.n, etp.m);
        assert!(k <= 1 << n, "initial condition longer than the grid row");
        let mut rules = Vec::new();

        // Generate the tiles: ⊤ → ∃x₁…x_m Tile₁(x₁), …, Tile_m(x_m).
        let tiles: Vec<PredId> = (1..=m).map(|j| self.pred(&format!("Tile{j}"), 1)).collect();
        let head: Vec<Atom> = (1..=m)
            .map(|j| {
                let x = self.var(&format!("Xt{j}"));
                Atom::new(tiles[(j - 1) as usize], vec![x])
            })
            .collect();
        rules.push(Tgd::new(vec![], head));

        // Compatibility relations.
        let hp = self.pred("H", 2);
        let vp = self.pred("V", 2);
        for &(rel, pairs) in &[(hp, h), (vp, v)] {
            for &(i, j) in pairs {
                let (x, y) = (self.var("Xc"), self.var("Yc"));
                rules.push(Tgd::new(
                    vec![
                        Atom::new(tiles[(i - 1) as usize], vec![x]),
                        Atom::new(tiles[(j - 1) as usize], vec![y]),
                    ],
                    vec![Atom::new(rel, vec![x, y])],
                ));
            }
        }

        // T₁: 2×2 tilings from compatible tile squares.
        //   H(x1,x2), H(x3,x4), V(x1,x3), V(x2,x4) → ∃x T₁(x,x1,x2,x3,x4)
        // (x1 = top-left, x2 = top-right, x3 = bottom-left, x4 = b-right).
        let t: Vec<PredId> = (1..=n).map(|i| self.pred(&format!("T{i}"), 5)).collect();
        {
            let x = self.var("Xsq");
            let xs: Vec<Term> = (1..=4).map(|q| self.var(&format!("Xq{q}"))).collect();
            rules.push(Tgd::new(
                vec![
                    Atom::new(hp, vec![xs[0], xs[1]]),
                    Atom::new(hp, vec![xs[2], xs[3]]),
                    Atom::new(vp, vec![xs[0], xs[2]]),
                    Atom::new(vp, vec![xs[1], xs[3]]),
                ],
                vec![Atom::new(t[0], vec![x, xs[0], xs[1], xs[2], xs[3]])],
            ));
        }

        // Figure 2: Tᵢ from nine overlapping Tᵢ₋₁ on a 4×4 quadrant grid.
        for i in 2..=n as usize {
            // Quadrant variables x[r][c], 4×4.
            let mut grid = [[Term::Var(omq_model::VarId(0)); 5]; 5];
            for (r, row) in grid.iter_mut().enumerate().skip(1) {
                for (c, cell) in row.iter_mut().enumerate().skip(1) {
                    *cell = self.var(&format!("Xg{r}{c}"));
                }
            }
            let subs: Vec<Term> = (1..=9).map(|s| self.var(&format!("Xs{s}"))).collect();
            let mut body = Vec::with_capacity(9);
            for r in 1..=3usize {
                for c in 1..=3usize {
                    let s = (r - 1) * 3 + (c - 1);
                    body.push(Atom::new(
                        t[i - 2],
                        vec![
                            subs[s],
                            grid[r][c],
                            grid[r][c + 1],
                            grid[r + 1][c],
                            grid[r + 1][c + 1],
                        ],
                    ));
                }
            }
            let x = self.var("Xbig");
            rules.push(Tgd::new(
                body,
                vec![Atom::new(
                    t[i - 1],
                    vec![x, subs[0], subs[2], subs[6], subs[8]],
                )],
            ));
        }

        // Top-row extraction: Topʲᵢ(x, y) = "tile (j, 0) of the 2ⁱ-tiling x
        // is y". Only positions j < k are needed.
        let top = |b: &mut Self, j: usize, i: usize| b.pred(&format!("Top{j}_{i}"), 2);
        {
            // Base: T₁(x,x1,x2,_,_) → Top⁰₁(x,x1) [, Top¹₁(x,x2)].
            let x = self.var("Xe");
            let xs: Vec<Term> = (1..=4).map(|q| self.var(&format!("Xe{q}"))).collect();
            let mut head = vec![];
            for (j, &xj) in xs.iter().enumerate().take(k.min(2)) {
                let p = top(self, j, 1);
                head.push(Atom::new(p, vec![x, xj]));
            }
            if !head.is_empty() {
                rules.push(Tgd::new(
                    vec![Atom::new(t[0], vec![x, xs[0], xs[1], xs[2], xs[3]])],
                    head,
                ));
            }
        }
        for i in 2..=n as usize {
            let half = 1usize << (i - 1);
            for j in 0..k.min(1 << i) {
                let x = self.var("Xf");
                let y = self.var("Yf");
                let quads: Vec<Term> = (1..=4).map(|q| self.var(&format!("Xf{q}"))).collect();
                let (src_quad, src_j) = if j < half { (0, j) } else { (1, j - half) };
                let lower = top(self, src_j, i - 1);
                let upper = top(self, j, i);
                rules.push(Tgd::new(
                    vec![
                        Atom::new(t[i - 1], vec![x, quads[0], quads[1], quads[2], quads[3]]),
                        Atom::new(lower, vec![quads[src_quad], y]),
                    ],
                    vec![Atom::new(upper, vec![x, y])],
                ));
            }
        }

        // Initial condition: Cᵢʲ ∧ Tileⱼ(x) → Initialᵢ(x).
        let initial: Vec<PredId> = (0..k)
            .map(|i| self.pred(&format!("Initial{i}"), 1))
            .collect();
        for (i, &init) in initial.iter().enumerate() {
            for j in 1..=m {
                let c = self.cij(i, j);
                let x = self.var("Xi");
                rules.push(Tgd::new(
                    vec![
                        Atom::new(c, vec![]),
                        Atom::new(tiles[(j - 1) as usize], vec![x]),
                    ],
                    vec![Atom::new(init, vec![x])],
                ));
            }
        }

        // Tiling: a 2ⁿ-tiling whose first k top-row tiles are compatible
        // with the encoded initial condition.
        let tiling = self.pred("Tiling", 0);
        {
            let x = self.var("Xw");
            let mut body = Vec::new();
            for (i, &ini) in initial.iter().enumerate() {
                let y = self.var(&format!("Yw{i}"));
                let p = top(self, i, n as usize);
                body.push(Atom::new(p, vec![x, y]));
                body.push(Atom::new(ini, vec![y]));
            }
            rules.push(Tgd::new(body, vec![Atom::new(tiling, vec![])]));
        }
        rules
    }
}

/// Builds the Theorem 16 OMQ pair for an ETP instance.
pub fn etp_to_containment(etp: &Etp) -> EtpOmqs {
    let mut voc = Vocabulary::new();
    // Data schema: the 0-ary Cᵢʲ.
    let mut schema = Schema::new();
    {
        let mut b = Builder {
            voc: &mut voc,
            etp,
            suffix: "_1",
        };
        for i in 0..etp.k {
            for j in 1..=etp.m {
                let c = b.cij(i, j);
                schema.insert(c);
            }
        }
    }

    // ---- Q1: existence + tiling system 1.
    let sigma1 = {
        let mut b = Builder {
            voc: &mut voc,
            etp,
            suffix: "_1",
        };
        let mut rules = b.tiling_rules(&etp.h1, &etp.v1);
        let exist_i: Vec<PredId> = (0..etp.k).map(|i| b.pred(&format!("Ex{i}"), 0)).collect();
        for (i, &ex) in exist_i.iter().enumerate() {
            for j in 1..=etp.m {
                let c = b.cij(i, j);
                rules.push(Tgd::new(
                    vec![Atom::new(c, vec![])],
                    vec![Atom::new(ex, vec![])],
                ));
            }
        }
        let existence = b.pred("Existence", 0);
        rules.push(Tgd::new(
            exist_i.iter().map(|&p| Atom::new(p, vec![])).collect(),
            vec![Atom::new(existence, vec![])],
        ));
        let tiling = b.pred("Tiling", 0);
        let goal = b.pred("Goal", 0);
        rules.push(Tgd::new(
            vec![Atom::new(existence, vec![]), Atom::new(tiling, vec![])],
            vec![Atom::new(goal, vec![])],
        ));
        rules
    };
    let goal1 = voc.pred("Goal_1", 0);
    let q1 = Omq::new(
        schema.clone(),
        sigma1,
        Ucq::from_cq(Cq::boolean(vec![Atom::new(goal1, vec![])])),
    );

    // ---- Q2: uniqueness violation + tiling system 2.
    let sigma2 = {
        let mut b = Builder {
            voc: &mut voc,
            etp,
            suffix: "_2",
        };
        let mut rules = b.tiling_rules(&etp.h2, &etp.v2);
        let goal = b.pred("Goal", 0);
        for i in 0..etp.k {
            for j in 1..=etp.m {
                for l in (j + 1)..=etp.m {
                    let cj = b.cij(i, j);
                    let cl = b.cij(i, l);
                    rules.push(Tgd::new(
                        vec![Atom::new(cj, vec![]), Atom::new(cl, vec![])],
                        vec![Atom::new(goal, vec![])],
                    ));
                }
            }
        }
        let tiling = b.pred("Tiling", 0);
        rules.push(Tgd::new(
            vec![Atom::new(tiling, vec![])],
            vec![Atom::new(goal, vec![])],
        ));
        rules
    };
    let goal2 = voc.pred("Goal_2", 0);
    let q2 = Omq::new(
        schema,
        sigma2,
        Ucq::from_cq(Cq::boolean(vec![Atom::new(goal2, vec![])])),
    );

    EtpOmqs { q1, q2, voc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::all_pairs;
    use omq_chase::{certain_answers_via_chase, ChaseConfig};
    use omq_classes::is_non_recursive;
    use omq_model::Instance;

    fn etp(h1: Vec<(u8, u8)>, v1: Vec<(u8, u8)>, h2: Vec<(u8, u8)>, v2: Vec<(u8, u8)>) -> Etp {
        Etp {
            k: 1,
            n: 1,
            m: 2,
            h1,
            v1,
            h2,
            v2,
        }
    }

    /// Encode an initial condition as a database of Cᵢʲ facts.
    fn initial_db(omqs: &EtpOmqs, s: &[u8]) -> Instance {
        let mut d = Instance::new();
        for (i, &j) in s.iter().enumerate() {
            let p = omqs.voc.pred_id(&format!("C_{i}_{j}")).unwrap();
            d.insert(Atom::new(p, vec![]));
        }
        d
    }

    #[test]
    fn construction_is_non_recursive() {
        let e = etp(all_pairs(2), all_pairs(2), all_pairs(2), all_pairs(2));
        let omqs = etp_to_containment(&e);
        assert!(is_non_recursive(&omqs.q1.sigma));
        assert!(is_non_recursive(&omqs.q2.sigma));
    }

    /// Direct evaluation check: Q1 holds on an encoded initial condition
    /// exactly when tiling system 1 solves the grid with it.
    #[test]
    fn q1_evaluation_matches_tiling_semantics() {
        // System 1 = checkerboard: solvable from either single tile.
        let alt = vec![(1, 2), (2, 1)];
        let e = etp(alt.clone(), alt.clone(), vec![], vec![]);
        let omqs = etp_to_containment(&e);
        let mut voc = omqs.voc.clone();
        let d = initial_db(&omqs, &[1]);
        let ans =
            certain_answers_via_chase(&omqs.q1, &d, &mut voc, &ChaseConfig::default()).unwrap();
        assert!(!ans.is_empty(), "checkerboard solvable from s = [1]");

        // System 1 with an empty H: nothing tiles.
        let e2 = etp(vec![], alt.clone(), vec![], vec![]);
        let omqs2 = etp_to_containment(&e2);
        let mut voc2 = omqs2.voc.clone();
        let d2 = initial_db(&omqs2, &[1]);
        let ans2 =
            certain_answers_via_chase(&omqs2.q1, &d2, &mut voc2, &ChaseConfig::default()).unwrap();
        assert!(ans2.is_empty(), "empty H cannot tile");
    }

    /// Q2 fires on uniqueness violations regardless of the tiling.
    #[test]
    fn q2_detects_uniqueness_violation() {
        let e = etp(vec![], vec![], vec![], vec![]);
        let omqs = etp_to_containment(&e);
        let mut voc = omqs.voc.clone();
        let mut d = initial_db(&omqs, &[1]);
        let p = voc.pred_id("C_0_2").unwrap();
        d.insert(Atom::new(p, vec![]));
        let ans =
            certain_answers_via_chase(&omqs.q2, &d, &mut voc, &ChaseConfig::default()).unwrap();
        assert!(!ans.is_empty());
    }
}
