//! The Theorem 34 reduction (exponential tiling → containment of a full
//! non-recursive OMQ in a linear UCQ-OMQ) and the Prop. 35 transformation
//! of full 0-1 OMQs into sticky ones — together these give the
//! coNEXPTIME-hardness of `Cont((S,CQ))` (Thm. 19).

use omq_model::{Atom, Cq, Omq, PredId, Schema, Term, Tgd, Ucq, VarId, Vocabulary};

use crate::tiling::ExpTiling;

/// The OMQ pair of Theorem 34, sharing one vocabulary: the tiling instance
/// has a solution iff `q_t ⊄ q_violation`.
#[derive(Clone, Debug)]
pub struct TilingOmqs {
    /// `Q_T ∈ (FNR, CQ)`: "the database fully tiles the grid".
    pub q_t: Omq,
    /// `Q'_T ∈ (L, UCQ)`: "the database violates some tiling constraint".
    pub q_violation: Omq,
    /// The shared vocabulary.
    pub voc: Vocabulary,
}

/// Builds the Theorem 34 OMQs for an exponential tiling instance.
///
/// Data schema: `TiledBy_t/2n` for each tile `t` — the first `n` positions
/// are the binary column coordinate, the last `n` the row coordinate.
pub fn tiling_to_fnr_linear(t: &ExpTiling) -> TilingOmqs {
    let n = t.n as usize;
    assert!(n >= 1);
    let m = t.m;
    let mut voc = Vocabulary::new();
    let zero = Term::Const(voc.constant("0"));
    let one = Term::Const(voc.constant("1"));
    let tiled: Vec<PredId> = (1..=m)
        .map(|i| voc.pred(&format!("TiledBy{i}"), 2 * n))
        .collect();
    let schema = Schema::from_preds(tiled.iter().copied());

    let vars = |voc: &mut Vocabulary, prefix: &str, count: usize| -> Vec<Term> {
        (0..count)
            .map(|i| Term::Var(voc.var(&format!("{prefix}{i}"))))
            .collect()
    };
    let bit_atoms = |_voc: &mut Vocabulary, bitp: PredId, ts: &[Term]| -> Vec<Atom> {
        ts.iter().map(|&t| Atom::new(bitp, vec![t])).collect()
    };

    // ---------- Q_T ----------
    let q_t = {
        let bit = voc.pred("BitT", 1);
        let tac: Vec<PredId> = (1..=n)
            .map(|i| voc.pred(&format!("TiledAboveCol{i}"), 2 * n))
            .collect();
        let row_tiled = voc.pred("RowTiled", n);
        let tar: Vec<PredId> = (1..=n)
            .map(|i| voc.pred(&format!("TiledAboveRow{i}"), n))
            .collect();
        let all_tiled = voc.pred("AllTiled", 0);
        let goal = voc.pred("GoalT", 0);

        let mut sigma = vec![
            Tgd::new(vec![], vec![Atom::new(bit, vec![zero])]),
            Tgd::new(vec![], vec![Atom::new(bit, vec![one])]),
        ];

        // Column base: both completions of the last column bit are tiled.
        for j in 0..m as usize {
            for k in 0..m as usize {
                let xs = vars(&mut voc, "Xb", n - 1);
                let ys = vars(&mut voc, "Yb", n);
                let w = Term::Var(voc.var("Wb"));
                let mut a1 = xs.clone();
                a1.push(one);
                a1.extend(&ys);
                let mut a0 = xs.clone();
                a0.push(zero);
                a0.extend(&ys);
                let mut body = vec![Atom::new(tiled[j], a1), Atom::new(tiled[k], a0)];
                body.extend(bit_atoms(&mut voc, bit, &xs));
                body.extend(bit_atoms(&mut voc, bit, &ys));
                body.push(Atom::new(bit, vec![w]));
                let mut head_args = xs.clone();
                head_args.push(w);
                head_args.extend(&ys);
                sigma.push(Tgd::new(body, vec![Atom::new(tac[n - 1], head_args)]));
            }
        }
        // Column induction: 2 ≤ i ≤ n (1-indexed position i).
        for i in (2..=n).rev() {
            let xs = vars(&mut voc, "Xi", i - 1);
            let rest1 = vars(&mut voc, "Ri", n - i);
            let rest0 = vars(&mut voc, "Si", n - i);
            let ys = vars(&mut voc, "Yi", n);
            let ws = vars(&mut voc, "Wi", n - i + 1);
            let mk = |bit_t: Term, rest: &[Term]| {
                let mut a = xs.clone();
                a.push(bit_t);
                a.extend(rest);
                a.extend(&ys);
                a
            };
            let mut body = vec![
                Atom::new(tac[i - 1], mk(one, &rest1)),
                Atom::new(tac[i - 1], mk(zero, &rest0)),
            ];
            body.extend(bit_atoms(&mut voc, bit, &ws));
            let mut head_args = xs.clone();
            head_args.extend(&ws);
            head_args.extend(&ys);
            sigma.push(Tgd::new(body, vec![Atom::new(tac[i - 2], head_args)]));
        }
        // Row is fully tiled.
        {
            let xs = vars(&mut voc, "Xr", n);
            let ys = vars(&mut voc, "Yr", n);
            let mut args = xs.clone();
            args.extend(&ys);
            sigma.push(Tgd::new(
                vec![Atom::new(tac[0], args)],
                vec![Atom::new(row_tiled, ys.clone())],
            ));
        }
        // Row base and induction.
        {
            let ys = vars(&mut voc, "Yt", n - 1);
            let w = Term::Var(voc.var("Wt"));
            let mut a1 = ys.clone();
            a1.push(one);
            let mut a0 = ys.clone();
            a0.push(zero);
            let mut body = vec![
                Atom::new(row_tiled, a1),
                Atom::new(row_tiled, a0),
                Atom::new(bit, vec![w]),
            ];
            body.extend(bit_atoms(&mut voc, bit, &ys));
            let mut head_args = ys.clone();
            head_args.push(w);
            sigma.push(Tgd::new(body, vec![Atom::new(tar[n - 1], head_args)]));
        }
        for i in (2..=n).rev() {
            let ys = vars(&mut voc, "Yu", i - 1);
            let rest1 = vars(&mut voc, "Ru", n - i);
            let rest0 = vars(&mut voc, "Su", n - i);
            let ws = vars(&mut voc, "Wu", n - i + 1);
            let mk = |bit_t: Term, rest: &[Term]| {
                let mut a = ys.clone();
                a.push(bit_t);
                a.extend(rest);
                a
            };
            let mut body = vec![
                Atom::new(tar[i - 1], mk(one, &rest1)),
                Atom::new(tar[i - 1], mk(zero, &rest0)),
            ];
            body.extend(bit_atoms(&mut voc, bit, &ws));
            let mut head_args = ys.clone();
            head_args.extend(&ws);
            sigma.push(Tgd::new(body, vec![Atom::new(tar[i - 2], head_args)]));
        }
        {
            let ys = vars(&mut voc, "Yv", n);
            sigma.push(Tgd::new(
                vec![Atom::new(tar[0], ys)],
                vec![Atom::new(all_tiled, vec![])],
            ));
            sigma.push(Tgd::new(
                vec![Atom::new(all_tiled, vec![])],
                vec![Atom::new(goal, vec![])],
            ));
        }
        Omq::new(
            schema.clone(),
            sigma,
            Ucq::from_cq(Cq::boolean(vec![Atom::new(goal, vec![])])),
        )
    };

    // ---------- Q'_T ----------
    let q_violation = {
        let bit = voc.pred("BitV", 1);
        let succ: Vec<PredId> = (1..=n)
            .map(|i| voc.pred(&format!("Succ{i}"), 2 * i))
            .collect();
        let lastfirst: Vec<PredId> = (1..=n)
            .map(|i| voc.pred(&format!("LastFirst{i}"), 2 * i))
            .collect();

        let mut sigma = vec![
            Tgd::new(vec![], vec![Atom::new(bit, vec![zero])]),
            Tgd::new(vec![], vec![Atom::new(bit, vec![one])]),
            Tgd::new(vec![], vec![Atom::new(succ[0], vec![zero, one])]),
            Tgd::new(vec![], vec![Atom::new(lastfirst[0], vec![one, zero])]),
        ];
        for i in 1..n {
            let xs = vars(&mut voc, "Xv", i);
            let ys = vars(&mut voc, "Yv2_", i);
            let mut sargs = xs.clone();
            sargs.extend(&ys);
            let with = |b1: Term, b2: Term| {
                let mut a = vec![b1];
                a.extend(&xs);
                a.push(b2);
                a.extend(&ys);
                a
            };
            sigma.push(Tgd::new(
                vec![Atom::new(succ[i - 1], sargs.clone())],
                vec![Atom::new(succ[i], with(zero, zero))],
            ));
            sigma.push(Tgd::new(
                vec![Atom::new(succ[i - 1], sargs.clone())],
                vec![Atom::new(succ[i], with(one, one))],
            ));
            sigma.push(Tgd::new(
                vec![Atom::new(lastfirst[i - 1], sargs.clone())],
                vec![Atom::new(succ[i], with(zero, one))],
            ));
            sigma.push(Tgd::new(
                vec![Atom::new(lastfirst[i - 1], sargs)],
                vec![Atom::new(lastfirst[i], with(one, zero))],
            ));
        }

        let mut disjuncts: Vec<Cq> = Vec::new();
        // Tile consistency: one cell, two different tiles.
        for i in 0..m as usize {
            for j in (i + 1)..m as usize {
                let xs = vars(&mut voc, "Xq", n);
                let ys = vars(&mut voc, "Yq", n);
                let mut cell = xs.clone();
                cell.extend(&ys);
                let mut body = vec![Atom::new(tiled[i], cell.clone()), Atom::new(tiled[j], cell)];
                body.extend(bit_atoms(&mut voc, bit, &xs));
                body.extend(bit_atoms(&mut voc, bit, &ys));
                disjuncts.push(Cq::boolean(body));
            }
        }
        // Vertical incompatibility: rows y, y+1 with tiles (i, j) ∉ V.
        for i in 1..=m {
            for j in 1..=m {
                if t.v.contains(&(i, j)) {
                    continue;
                }
                let xs = vars(&mut voc, "Xw2_", n);
                let ys = vars(&mut voc, "Yw2_", n);
                let ws = vars(&mut voc, "Ww2_", n);
                let mut sargs = xs.clone();
                sargs.extend(&ys);
                let mut c1 = ws.clone();
                c1.extend(&xs);
                let mut c2 = ws.clone();
                c2.extend(&ys);
                let mut body = vec![
                    Atom::new(succ[n - 1], sargs),
                    Atom::new(tiled[(i - 1) as usize], c1),
                    Atom::new(tiled[(j - 1) as usize], c2),
                ];
                body.extend(bit_atoms(&mut voc, bit, &ws));
                disjuncts.push(Cq::boolean(body));
            }
        }
        // Horizontal incompatibility: columns x, x+1 with tiles (i, j) ∉ H.
        for i in 1..=m {
            for j in 1..=m {
                if t.h.contains(&(i, j)) {
                    continue;
                }
                let xs = vars(&mut voc, "Xh", n);
                let ys = vars(&mut voc, "Yh", n);
                let ws = vars(&mut voc, "Wh", n);
                let mut sargs = xs.clone();
                sargs.extend(&ys);
                let mut c1 = xs.clone();
                c1.extend(&ws);
                let mut c2 = ys.clone();
                c2.extend(&ws);
                let mut body = vec![
                    Atom::new(succ[n - 1], sargs),
                    Atom::new(tiled[(i - 1) as usize], c1),
                    Atom::new(tiled[(j - 1) as usize], c2),
                ];
                body.extend(bit_atoms(&mut voc, bit, &ws));
                disjuncts.push(Cq::boolean(body));
            }
        }
        // First-row violations: position p of row 0 tiled by k ≠ s[p].
        for (p, &want) in t.s.iter().enumerate() {
            for k in 1..=m {
                if k == want {
                    continue;
                }
                // Column coordinate of position p in binary (most
                // significant bit first).
                let mut cell: Vec<Term> = Vec::with_capacity(2 * n);
                for b in (0..n).rev() {
                    cell.push(if (p >> b) & 1 == 1 { one } else { zero });
                }
                cell.extend(std::iter::repeat_n(zero, n));
                let body = vec![
                    Atom::new(tiled[(k - 1) as usize], cell),
                    Atom::new(succ[0], vec![zero, one]),
                ];
                disjuncts.push(Cq::boolean(body));
            }
        }
        Omq::new(schema, sigma, Ucq::new(0, disjuncts))
    };

    TilingOmqs {
        q_t,
        q_violation,
        voc,
    }
}

/// The Prop. 35 transformation: a 0-1 OMQ with **full** tgds becomes an
/// equivalent OMQ with **lossless** (hence sticky) tgds, by threading every
/// body variable through `n` padding positions that are reset to `0` by
/// finalization rules.
///
/// Only meaningful for *0-1 queries* (`Q(D) = Q(D₀₁)` where `D₀₁` is the
/// restriction of `D` to the constants `{0, 1}`) — the Theorem 34 OMQs are
/// 0-1 by construction. Returns `None` if some tgd is not full or the query
/// is not a CQ.
pub fn full_to_sticky_01(omq: &Omq, voc: &mut Vocabulary) -> Option<Omq> {
    if !omq.sigma.iter().all(|t| t.is_full()) {
        return None;
    }
    let q = omq.query.as_cq()?;
    let n = omq
        .sigma
        .iter()
        .map(|t| t.body_vars().len())
        .max()
        .unwrap_or(0)
        .max(1);
    let zero = Term::Const(voc.constant("0"));
    let one = Term::Const(voc.constant("1"));
    let bit = voc.fresh_pred("Bit01", 1);

    let mut primed: std::collections::HashMap<PredId, PredId> = std::collections::HashMap::new();
    fn prime_in(
        primed: &mut std::collections::HashMap<PredId, PredId>,
        p: PredId,
        n: usize,
        voc: &mut Vocabulary,
    ) -> PredId {
        if let Some(&pp) = primed.get(&p) {
            return pp;
        }
        let name = format!("{}_p", voc.pred_name(p));
        let pp = voc.fresh_pred(&name, voc.arity(p) + n);
        primed.insert(p, pp);
        pp
    }

    let mut sigma = vec![
        Tgd::new(vec![], vec![Atom::new(bit, vec![zero])]),
        Tgd::new(vec![], vec![Atom::new(bit, vec![one])]),
    ];
    // Initialization: R(x̄), Bit(x̄) → R'(x̄, 0ⁿ) for data-schema preds.
    for &r in omq.data_schema.preds() {
        let xs: Vec<Term> = (0..voc.arity(r))
            .map(|i| Term::Var(voc.fresh_var(&format!("i{i}_"))))
            .collect();
        let mut body = vec![Atom::new(r, xs.clone())];
        for &x in &xs {
            body.push(Atom::new(bit, vec![x]));
        }
        let rp = prime_in(&mut primed, r, n, voc);
        let mut head_args = xs;
        head_args.extend(std::iter::repeat_n(zero, n));
        sigma.push(Tgd::new(body, vec![Atom::new(rp, head_args)]));
    }
    // Lossless copies of the full tgds: pad heads with the body variables.
    for t in &omq.sigma {
        let bvars: Vec<VarId> = t.body_vars();
        let body: Vec<Atom> = t
            .body
            .iter()
            .map(|a| {
                let mut args = a.args.clone();
                args.extend(std::iter::repeat_n(zero, n));
                Atom::new(prime_in(&mut primed, a.pred, n, voc), args)
            })
            .collect();
        let head: Vec<Atom> = t
            .head
            .iter()
            .map(|a| {
                let mut args = a.args.clone();
                for i in 0..n {
                    let v = bvars.get(i).or(bvars.first());
                    match v {
                        Some(&v) => args.push(Term::Var(v)),
                        None => args.push(zero), // fact tgd: no body vars
                    }
                }
                Atom::new(prime_in(&mut primed, a.pred, n, voc), args)
            })
            .collect();
        sigma.push(Tgd::new(body, head));
    }
    // Finalization: flip each padding position from a 1-value down to 0.
    // (Padding carries database values from {0,1} thanks to the 0-1
    // property, so resetting `1`s reaches the all-0 pad.)
    let prim: Vec<(PredId, PredId)> = primed.iter().map(|(&a, &b)| (a, b)).collect();
    for &(orig, rp) in &prim {
        let k = voc.arity(orig);
        for i in 0..n {
            let xs: Vec<Term> = (0..k)
                .map(|j| Term::Var(voc.fresh_var(&format!("f{j}_"))))
                .collect();
            let pads: Vec<Term> = (0..n)
                .map(|j| {
                    if j == i {
                        one
                    } else {
                        Term::Var(voc.fresh_var(&format!("p{j}_")))
                    }
                })
                .collect();
            let mut body_args = xs.clone();
            body_args.extend(&pads);
            let mut head_args = xs;
            head_args.extend(
                pads.iter()
                    .enumerate()
                    .map(|(j, &p)| if j == i { zero } else { p }),
            );
            sigma.push(Tgd::new(
                vec![Atom::new(rp, body_args)],
                vec![Atom::new(rp, head_args)],
            ));
        }
    }
    // The transformed query.
    let body: Vec<Atom> = q
        .body
        .iter()
        .map(|a| {
            let mut args = a.args.clone();
            args.extend(std::iter::repeat_n(zero, n));
            Atom::new(prime_in(&mut primed, a.pred, n, voc), args)
        })
        .collect();
    Some(Omq::new(
        omq.data_schema.clone(),
        sigma,
        Ucq::from_cq(Cq::new(q.head.clone(), body)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    use omq_chase::{certain_answers_via_chase, ChaseConfig};
    use omq_classes::{classify, is_sticky};
    use omq_model::Instance;

    fn inst() -> ExpTiling {
        ExpTiling {
            n: 1,
            m: 2,
            h: vec![(1, 2), (2, 1)],
            v: vec![(1, 2), (2, 1)],
            s: vec![1],
        }
    }

    /// Encode a full 2×2 tiling as TiledBy facts.
    fn tiling_db(omqs: &TilingOmqs, grid: [[u8; 2]; 2]) -> (Instance, Vocabulary) {
        let mut voc = omqs.voc.clone();
        let zero = Term::Const(voc.constant("0"));
        let one = Term::Const(voc.constant("1"));
        let bit = |b: usize| if b == 1 { one } else { zero };
        let mut d = Instance::new();
        for (row, cols) in grid.iter().enumerate() {
            for (col, &tile) in cols.iter().enumerate() {
                let p = voc.pred_id(&format!("TiledBy{tile}")).unwrap();
                d.insert(Atom::new(p, vec![bit(col), bit(row)]));
            }
        }
        (d, voc)
    }

    #[test]
    fn classes_are_as_stated() {
        let omqs = tiling_to_fnr_linear(&inst());
        let c1 = classify(&omqs.q_t.sigma);
        assert!(c1.full && c1.non_recursive);
        let c2 = classify(&omqs.q_violation.sigma);
        assert!(c2.linear);
    }

    #[test]
    fn qt_accepts_full_candidate_tilings() {
        let omqs = tiling_to_fnr_linear(&inst());
        let (d, mut voc) = tiling_db(&omqs, [[1, 2], [2, 1]]);
        let ans =
            certain_answers_via_chase(&omqs.q_t, &d, &mut voc, &ChaseConfig::default()).unwrap();
        assert!(!ans.is_empty(), "complete candidate should satisfy Q_T");
        // Remove one cell: no longer fully tiled.
        let partial = Instance::from_atoms(d.atoms().iter().skip(1).cloned());
        let ans2 =
            certain_answers_via_chase(&omqs.q_t, &partial, &mut voc, &ChaseConfig::default())
                .unwrap();
        assert!(ans2.is_empty());
    }

    #[test]
    fn violation_query_flags_bad_tilings() {
        let omqs = tiling_to_fnr_linear(&inst());
        // Valid checkerboard respecting s = [1]: no violation.
        let (good, mut voc) = tiling_db(&omqs, [[1, 2], [2, 1]]);
        let a =
            certain_answers_via_chase(&omqs.q_violation, &good, &mut voc, &ChaseConfig::default())
                .unwrap();
        assert!(a.is_empty(), "valid tiling flagged: {a:?}");
        // Horizontally incompatible (1 next to 1).
        let (bad, mut voc2) = tiling_db(&omqs, [[1, 1], [2, 1]]);
        let b =
            certain_answers_via_chase(&omqs.q_violation, &bad, &mut voc2, &ChaseConfig::default())
                .unwrap();
        assert!(!b.is_empty());
        // Wrong first tile (s = [1] but (0,0) carries 2).
        let (bad2, mut voc3) = tiling_db(&omqs, [[2, 1], [1, 2]]);
        let c =
            certain_answers_via_chase(&omqs.q_violation, &bad2, &mut voc3, &ChaseConfig::default())
                .unwrap();
        assert!(!c.is_empty());
    }

    #[test]
    fn prop35_produces_sticky_equivalent() {
        // A small full 0-1 OMQ: transitive step over bit-guarded edges.
        let prog = omq_model::parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z)\n\
             q :- E(0,1)\n",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let e = voc.pred_id("E").unwrap();
        let omq = Omq::new(
            Schema::from_preds([e]),
            prog.tgds.clone(),
            prog.query("q").unwrap().clone(),
        );
        assert!(!is_sticky(&omq.sigma)); // transitive closure is not sticky
        let sticky = full_to_sticky_01(&omq, &mut voc).unwrap();
        assert!(is_sticky(&sticky.sigma), "transformed set must be sticky");
        assert!(omq_classes::is_lossless(&sticky.sigma));
        // Equivalence on 0-1 databases.
        let mk_db = |voc: &mut Vocabulary, edges: &[(&str, &str)]| {
            let mut d = Instance::new();
            for (a, b) in edges {
                let ca = Term::Const(voc.constant(a));
                let cb = Term::Const(voc.constant(b));
                d.insert(Atom::new(e, vec![ca, cb]));
            }
            d
        };
        for edges in [
            vec![("0", "1")],
            vec![("0", "0")],
            vec![("0", "1"), ("1", "0")],
            vec![("1", "0")],
        ] {
            let d = mk_db(&mut voc, &edges);
            let a1 =
                certain_answers_via_chase(&omq, &d, &mut voc, &ChaseConfig::default()).unwrap();
            let a2 =
                certain_answers_via_chase(&sticky, &d, &mut voc, &ChaseConfig::default()).unwrap();
            assert_eq!(a1.is_empty(), a2.is_empty(), "mismatch on {edges:?}");
        }
    }
}
