//! The witness-size lower-bound families of Prop. 15 (non-recursive) and
//! Prop. 18 (sticky).
//!
//! The generated ontology `Σⁿ` is a binary-counter gadget over predicates
//! `S/(n+2)` and `Pᵢ/(n+2)`:
//!
//! ```text
//! S(x₁,…,xₙ,z,o) → Pₙ(x₁,…,xₙ,z,o)
//! Pᵢ(…, z@i, …, z, o), Pᵢ(…, o@i, …, z, o) → Pᵢ₋₁(…, z@i, …, z, o)   (1 ≤ i ≤ n)
//! P₀(z,…,z,z,o) → Ans(z,o)
//! ```
//!
//! with query `Ans(0,1)`. Deriving `Ans(0,1)` requires `Pₙ(b̄,0,1)` for
//! **every** `b̄ ∈ {0,1}ⁿ`, i.e. any database on which the OMQ is non-empty
//! contains all `2ⁿ` atoms `S(b̄,0,1)` — so a witness to non-containment of
//! `Qⁿ` in anything has at least `2ⁿ` atoms, the exponential blow-up both
//! propositions assert. The set `Σⁿ` is simultaneously non-recursive
//! (serving Prop. 15) and sticky — in fact no variable is ever marked
//! (serving Prop. 18); the paper's footnote 8 notes the same gadget family
//! underlies the rewriting-size lower bound of \[40\].

use omq_model::{Atom, Cq, Omq, PredId, Schema, Term, Tgd, Ucq, Vocabulary};

/// Builds the family member `Qⁿ = ({S}, Σⁿ, Ans(0,1))`.
pub fn counter_family(n: usize) -> (Omq, Vocabulary) {
    assert!(n >= 1);
    let mut voc = Vocabulary::new();
    let s = voc.pred("S", n + 2);
    let p: Vec<PredId> = (0..=n).map(|i| voc.pred(&format!("P{i}"), n + 2)).collect();
    let ans = voc.pred("Ans", 2);
    let zero = voc.constant("0");
    let one = voc.constant("1");

    let mut sigma = Vec::new();
    // S(x̄, z, o) → Pₙ(x̄, z, o)
    {
        let args: Vec<Term> = (0..n + 2)
            .map(|i| Term::Var(voc.var(&format!("Xs{i}"))))
            .collect();
        sigma.push(Tgd::new(
            vec![Atom::new(s, args.clone())],
            vec![Atom::new(p[n], args)],
        ));
    }
    // The counter rules.
    for i in 1..=n {
        let z = Term::Var(voc.var(&format!("Z{i}")));
        let o = Term::Var(voc.var(&format!("O{i}")));
        let xs: Vec<Term> = (0..n)
            .map(|j| Term::Var(voc.var(&format!("Xc{i}_{j}"))))
            .collect();
        let mk = |bit: Term| {
            let mut args: Vec<Term> = Vec::with_capacity(n + 2);
            for (j, &x) in xs.iter().enumerate() {
                args.push(if j + 1 == i { bit } else { x });
            }
            args.push(z);
            args.push(o);
            args
        };
        sigma.push(Tgd::new(
            vec![Atom::new(p[i], mk(z)), Atom::new(p[i], mk(o))],
            vec![Atom::new(p[i - 1], mk(z))],
        ));
    }
    // P₀(z,…,z,z,o) → Ans(z,o)
    {
        let z = Term::Var(voc.var("Zf"));
        let o = Term::Var(voc.var("Of"));
        let mut args = vec![z; n];
        args.push(z);
        args.push(o);
        sigma.push(Tgd::new(
            vec![Atom::new(p[0], args)],
            vec![Atom::new(ans, vec![z, o])],
        ));
    }

    let q = Cq::boolean(vec![Atom::new(
        ans,
        vec![Term::Const(zero), Term::Const(one)],
    )]);
    (
        Omq::new(Schema::from_preds([s]), sigma, Ucq::from_cq(q)),
        voc,
    )
}

/// Prop. 15 instance: the pair `(Qⁿ, Q_⊥)` of non-recursive OMQs whose
/// non-containment witnesses need at least `2ⁿ` atoms (`Q_⊥` is an
/// unsatisfiable OMQ over the same data schema).
pub fn prop15_family(n: usize) -> (Omq, Omq, Vocabulary) {
    let (q1, mut voc) = counter_family(n);
    let z0 = voc.fresh_pred("Z0", 1);
    let x = voc.var("Xz");
    let q2 = Omq::new(
        q1.data_schema.clone(),
        vec![],
        Ucq::from_cq(Cq::boolean(vec![Atom::new(z0, vec![Term::Var(x)])])),
    );
    (q1, q2, voc)
}

/// Prop. 18 instance: the same gadget, packaged as a sticky OMQ (the
/// generated `Σⁿ` has an empty marking, hence is sticky).
pub fn prop18_family(n: usize) -> (Omq, Vocabulary) {
    counter_family(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::{certain_answers_via_chase, ChaseConfig};
    use omq_classes::{is_non_recursive, is_sticky, marked_variables};
    use omq_model::Instance;

    /// The database {S(b̄,0,1) : b̄ ∈ {0,1}ⁿ}.
    fn full_witness(n: usize, voc: &mut Vocabulary) -> Instance {
        let s = voc.pred_id("S").unwrap();
        let zero = Term::Const(voc.constant("0"));
        let one = Term::Const(voc.constant("1"));
        let mut d = Instance::new();
        for bits in 0..(1u32 << n) {
            let mut args: Vec<Term> = (0..n)
                .map(|j| if bits >> j & 1 == 1 { one } else { zero })
                .collect();
            args.push(zero);
            args.push(one);
            d.insert(Atom::new(s, args));
        }
        d
    }

    #[test]
    fn family_is_nr_and_sticky_with_empty_marking() {
        for n in 1..=4 {
            let (q, _) = counter_family(n);
            assert!(is_non_recursive(&q.sigma));
            assert!(is_sticky(&q.sigma));
            assert!(marked_variables(&q.sigma).marked.is_empty());
        }
    }

    #[test]
    fn full_database_answers() {
        for n in 1..=3 {
            let (q, mut voc) = counter_family(n);
            let d = full_witness(n, &mut voc);
            assert_eq!(d.len(), 1 << n);
            let ans = certain_answers_via_chase(&q, &d, &mut voc, &ChaseConfig::default()).unwrap();
            assert!(!ans.is_empty(), "n = {n}");
        }
    }

    /// Removing any single S-atom kills the derivation: the witness is
    /// exactly the 2ⁿ-atom database (the minimality behind Props. 15/18).
    #[test]
    fn every_atom_is_needed() {
        let n = 2;
        let (q, mut voc) = counter_family(n);
        let d = full_witness(n, &mut voc);
        for skip in 0..d.len() {
            let smaller = Instance::from_atoms(
                d.atoms()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, a)| a.clone()),
            );
            let ans =
                certain_answers_via_chase(&q, &smaller, &mut voc, &ChaseConfig::default()).unwrap();
            assert!(ans.is_empty(), "dropping atom {skip} should break it");
        }
    }

    #[test]
    fn prop15_pair_shapes() {
        let (q1, q2, _) = prop15_family(2);
        assert!(is_non_recursive(&q1.sigma));
        assert!(q2.sigma.is_empty());
        assert_eq!(q1.data_schema, q2.data_schema);
    }
}
