//! The Exponential Tiling Problem and the Extended Tiling Problem (ETP)
//! of \[34\], as used by the Theorem 16 and Theorem 34 lower bounds, with
//! brute-force reference solvers for small grids.

/// An instance `(n, m, H, V, s)` of the Exponential Tiling Problem: tile
/// the `2ⁿ × 2ⁿ` grid with tiles `1..=m`, horizontal compatibility `H`,
/// vertical compatibility `V`, and the first `|s|` tiles of the first row
/// fixed to `s`.
#[derive(Clone, Debug)]
pub struct ExpTiling {
    /// Grid is `2ⁿ × 2ⁿ`.
    pub n: u32,
    /// Tiles are `1..=m`.
    pub m: u8,
    /// Allowed horizontal neighbor pairs `(left, right)`.
    pub h: Vec<(u8, u8)>,
    /// Allowed vertical neighbor pairs `(below-row, above-row)` — following
    /// the paper, `(f(i,j), f(i,j+1)) ∈ V`.
    pub v: Vec<(u8, u8)>,
    /// Initial condition: the first `s.len()` tiles of row 0.
    pub s: Vec<u8>,
}

impl ExpTiling {
    /// Grid side `2ⁿ`.
    pub fn side(&self) -> usize {
        1usize << self.n
    }

    /// Brute-force solver (backtracking in row-major order). Only sensible
    /// for tiny `n`; used as ground truth in tests.
    pub fn has_solution(&self) -> bool {
        let side = self.side();
        let cells = side * side;
        if self.s.len() > side {
            return false;
        }
        let mut grid: Vec<u8> = vec![0; cells];
        self.backtrack(&mut grid, 0, side, cells)
    }

    fn compatible_h(&self, a: u8, b: u8) -> bool {
        self.h.contains(&(a, b))
    }

    fn compatible_v(&self, a: u8, b: u8) -> bool {
        self.v.contains(&(a, b))
    }

    fn backtrack(&self, grid: &mut Vec<u8>, cell: usize, side: usize, cells: usize) -> bool {
        if cell == cells {
            return true;
        }
        let (col, row) = (cell % side, cell / side);
        for tile in 1..=self.m {
            if row == 0 && col < self.s.len() && self.s[col] != tile {
                continue;
            }
            if col > 0 && !self.compatible_h(grid[cell - 1], tile) {
                continue;
            }
            if row > 0 && !self.compatible_v(grid[cell - side], tile) {
                continue;
            }
            grid[cell] = tile;
            if self.backtrack(grid, cell + 1, side, cells) {
                return true;
            }
        }
        grid[cell] = 0;
        false
    }
}

/// An instance `(k, n, m, H₁, V₁, H₂, V₂)` of the Extended Tiling Problem
/// \[34\]: *for every* initial condition `s` of length `k`, does
/// `(n, m, H₁, V₁, s)` have no solution or `(n, m, H₂, V₂, s)` have one?
/// Deciding this is PNEXP-hard, which powers the Thm. 16 lower bound.
#[derive(Clone, Debug)]
pub struct Etp {
    /// Length of the universally-quantified initial condition.
    pub k: usize,
    /// Grid exponent.
    pub n: u32,
    /// Number of tiles.
    pub m: u8,
    /// First tiling system.
    pub h1: Vec<(u8, u8)>,
    /// First tiling system (vertical).
    pub v1: Vec<(u8, u8)>,
    /// Second tiling system.
    pub h2: Vec<(u8, u8)>,
    /// Second tiling system (vertical).
    pub v2: Vec<(u8, u8)>,
}

impl Etp {
    /// Brute-force decision: enumerate all `mᵏ` initial conditions.
    pub fn has_solution(&self) -> bool {
        let mut s = vec![1u8; self.k];
        loop {
            let t1 = ExpTiling {
                n: self.n,
                m: self.m,
                h: self.h1.clone(),
                v: self.v1.clone(),
                s: s.clone(),
            };
            let t2 = ExpTiling {
                n: self.n,
                m: self.m,
                h: self.h2.clone(),
                v: self.v2.clone(),
                s: s.clone(),
            };
            if t1.has_solution() && !t2.has_solution() {
                return false;
            }
            // Next initial condition.
            let mut i = 0;
            loop {
                if i == self.k {
                    return true;
                }
                if s[i] < self.m {
                    s[i] += 1;
                    break;
                }
                s[i] = 1;
                i += 1;
            }
        }
    }
}

/// All pairs over `1..=m` — the fully permissive compatibility relation.
pub fn all_pairs(m: u8) -> Vec<(u8, u8)> {
    let mut out = Vec::new();
    for a in 1..=m {
        for b in 1..=m {
            out.push((a, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissive_always_tiles() {
        let t = ExpTiling {
            n: 1,
            m: 2,
            h: all_pairs(2),
            v: all_pairs(2),
            s: vec![1, 2],
        };
        assert!(t.has_solution());
    }

    #[test]
    fn empty_relations_cannot_tile() {
        let t = ExpTiling {
            n: 1,
            m: 2,
            h: vec![],
            v: vec![],
            s: vec![],
        };
        assert!(!t.has_solution());
    }

    /// Checkerboard: only alternating tiles allowed horizontally and
    /// vertically.
    #[test]
    fn checkerboard() {
        let alt = vec![(1, 2), (2, 1)];
        let t = ExpTiling {
            n: 1,
            m: 2,
            h: alt.clone(),
            v: alt.clone(),
            s: vec![1],
        };
        assert!(t.has_solution());
        // Forcing two equal adjacent initial tiles breaks it.
        let t2 = ExpTiling {
            n: 1,
            m: 2,
            h: alt.clone(),
            v: alt,
            s: vec![1, 1],
        };
        assert!(!t2.has_solution());
    }

    /// Initial condition longer than the row is unsatisfiable by fiat.
    #[test]
    fn oversized_initial_condition() {
        let t = ExpTiling {
            n: 1,
            m: 2,
            h: all_pairs(2),
            v: all_pairs(2),
            s: vec![1, 1, 1],
        };
        assert!(!t.has_solution());
    }

    #[test]
    fn etp_trivially_true_when_t2_permissive() {
        let etp = Etp {
            k: 1,
            n: 1,
            m: 2,
            h1: vec![],
            v1: vec![],
            h2: all_pairs(2),
            v2: all_pairs(2),
        };
        assert!(etp.has_solution());
    }

    #[test]
    fn etp_false_when_t1_solves_and_t2_cannot() {
        let etp = Etp {
            k: 1,
            n: 1,
            m: 2,
            h1: all_pairs(2),
            v1: all_pairs(2),
            h2: vec![],
            v2: vec![],
        };
        assert!(!etp.has_solution());
    }

    /// T2's checkerboard only solves alternating initial conditions, but
    /// with k = 1 every single-tile condition extends to a checkerboard, so
    /// the ETP holds even with a permissive T1.
    #[test]
    fn etp_checkerboard_t2() {
        let alt = vec![(1, 2), (2, 1)];
        let etp = Etp {
            k: 1,
            n: 1,
            m: 2,
            h1: all_pairs(2),
            v1: all_pairs(2),
            h2: alt.clone(),
            v2: alt,
        };
        assert!(etp.has_solution());
    }
}
