//! # omq-reductions
//!
//! The paper's lower-bound constructions, implemented as generators:
//!
//! * [`tiling`] — the Exponential Tiling Problem and the Extended Tiling
//!   Problem of Eiter–Lukasiewicz–Predoiu \[34\], with brute-force reference
//!   solvers for small grids;
//! * [`nr_hardness`] — the Theorem 16 reduction: an ETP instance becomes a
//!   pair of `(NR, CQ)` OMQs whose containment answers the tiling question;
//!   the ontology uses the inductive `2ⁱ×2ⁱ`-from-`2ⁱ⁻¹×2ⁱ⁻¹` tiling rules
//!   of **Figure 2**;
//! * [`sticky_hardness`] — the Theorem 34 reduction (exponential tiling →
//!   `Cont((FNR,CQ),(L,UCQ))`) and the Prop. 35 lossless transformation of
//!   full 0-1 OMQs into sticky ones;
//! * [`witness_families`] — the witness-size lower-bound families of
//!   Prop. 15 (non-recursive) and Prop. 18 (sticky), whose minimal
//!   counterexample databases grow as `2^{n-1}` / `2^{n-2}`.
//!
//! These are the only "datasets" the paper defines, so the benchmark
//! harness uses them as workloads; the test suites use the brute-force
//! solvers as ground truth.

pub mod nr_hardness;
pub mod sticky_hardness;
pub mod tiling;
pub mod witness_families;

pub use nr_hardness::{etp_to_containment, EtpOmqs};
pub use sticky_hardness::{full_to_sticky_01, tiling_to_fnr_linear, TilingOmqs};
pub use tiling::{Etp, ExpTiling};
pub use witness_families::{prop15_family, prop18_family};
