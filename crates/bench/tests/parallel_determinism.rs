//! The parallel containment sweep must be bit-for-bit deterministic: with
//! any thread count it returns the same verdict — and the same witness
//! database, interned in the same order — as the sequential path.

use omq_bench::workloads::{guarded_workload, linear_workload};
use omq_core::{contains, ContainmentConfig, ContainmentResult};
use omq_model::{Omq, Vocabulary};
use omq_reductions::tiling::all_pairs;
use omq_reductions::{etp_to_containment, prop15_family, Etp};

fn cfg_with_threads(threads: usize) -> ContainmentConfig {
    ContainmentConfig {
        threads,
        ..Default::default()
    }
}

/// Runs `contains(q1, q2)` sequentially and with a worker pool, asserts the
/// outcomes are identical (including any witness), and returns the verdict.
fn assert_deterministic(q1: &Omq, q2: &Omq, voc: &Vocabulary, label: &str) -> ContainmentResult {
    let mut voc_seq = voc.clone();
    let seq = contains(q1, q2, &mut voc_seq, &cfg_with_threads(1)).unwrap();
    let mut voc_par = voc.clone();
    let par = contains(q1, q2, &mut voc_par, &cfg_with_threads(8)).unwrap();
    match (&seq.result, &par.result) {
        (ContainmentResult::Contained, ContainmentResult::Contained) => {}
        (ContainmentResult::Unknown(a), ContainmentResult::Unknown(b)) => {
            assert_eq!(a, b, "{label}: Unknown reasons diverge");
        }
        (ContainmentResult::NotContained(w1), ContainmentResult::NotContained(w2)) => {
            // The witness databases must list the same atoms in the same
            // insertion order (the parallel replay reproduces the caller-side
            // interning exactly); the Instance's internal hash indexes are
            // not part of the contract.
            assert_eq!(
                w1.database.atoms(),
                w2.database.atoms(),
                "{label}: witness databases diverge"
            );
            assert_eq!(w1.tuple, w2.tuple, "{label}: witness tuples diverge");
        }
        (a, b) => panic!("{label}: verdicts diverge: sequential {a:?} vs parallel {b:?}"),
    }
    assert_eq!(
        (seq.lhs_language, seq.rhs_language),
        (par.lhs_language, par.rhs_language),
        "{label}: detected languages diverge"
    );
    seq.result
}

#[test]
fn linear_self_containment_is_deterministic() {
    for (chain, qlen) in [(8, 2), (4, 3)] {
        let (q, voc) = linear_workload(chain, qlen);
        let r = assert_deterministic(&q, &q, &voc, &format!("E1 chain={chain} qlen={qlen}"));
        assert!(r.is_contained(), "Q ⊆ Q must hold");
    }
}

#[test]
fn guarded_self_containment_is_deterministic() {
    // The guarded path is anytime (sound but incomplete): the verdict may be
    // Unknown, but it must never be a refutation — and whatever it is, the
    // parallel sweep must reproduce it.
    let (q, voc) = guarded_workload(2);
    let r = assert_deterministic(&q, &q, &voc, "E4 qlen=2");
    assert!(
        !matches!(r, ContainmentResult::NotContained(_)),
        "Q ⊆ Q must never be refuted, got {r:?}"
    );
}

#[test]
fn refutation_witness_is_deterministic() {
    // Prop. 15 family: Q₁ ⊄ Q₂ with an exponential-size witness; the
    // parallel sweep must reproduce the sequential witness exactly.
    let (q1, q2, voc) = prop15_family(3);
    let r = assert_deterministic(&q1, &q2, &voc, "prop15 n=3");
    assert!(
        matches!(r, ContainmentResult::NotContained(_)),
        "expected a non-containment witness, got {r:?}"
    );
}

#[test]
fn propositional_enumeration_is_deterministic() {
    let alt = vec![(1u8, 2u8), (2, 1)];
    let cases = [
        (
            "yes",
            Etp {
                k: 1,
                n: 1,
                m: 2,
                h1: all_pairs(2),
                v1: all_pairs(2),
                h2: alt.clone(),
                v2: alt.clone(),
            },
            true,
        ),
        (
            "no",
            Etp {
                k: 2,
                n: 1,
                m: 2,
                h1: all_pairs(2),
                v1: all_pairs(2),
                h2: alt.clone(),
                v2: alt,
            },
            false,
        ),
    ];
    for (label, etp, expect_contained) in cases {
        let omqs = etp_to_containment(&etp);
        let r = assert_deterministic(&omqs.q1, &omqs.q2, &omqs.voc, &format!("E7 {label}"));
        assert_eq!(
            r.is_contained(),
            expect_contained,
            "E7 {label}: wrong verdict {r:?}"
        );
    }
}
