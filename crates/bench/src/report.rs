//! Row-oriented reporting for the `paper_report` harness: every table and
//! figure of the paper gets a set of measured rows printed next to the
//! paper's predicted shape, and the same rows feed `EXPERIMENTS.md`.

use std::fmt::Write as _;
use std::time::Instant;

/// One measured row of an experiment.
#[derive(Clone, Debug)]
pub struct Row {
    /// Experiment id from DESIGN.md (e.g. "E1").
    pub id: &'static str,
    /// The swept parameter, rendered (e.g. "chain=8,|q|=4").
    pub param: String,
    /// The measured quantity, rendered (e.g. "1.3ms", "witness=16").
    pub value: String,
    /// Extra context.
    pub note: String,
}

/// A report section: one experiment with its paper-side expectation.
#[derive(Clone, Debug)]
pub struct Section {
    /// Experiment id.
    pub id: &'static str,
    /// Title, e.g. "Table 1 — linear row".
    pub title: &'static str,
    /// What the paper predicts (the *shape* to reproduce).
    pub expectation: &'static str,
    /// Measured rows.
    pub rows: Vec<Row>,
}

impl Section {
    /// Renders the section as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "*Paper:* {}\n", self.expectation);
        let _ = writeln!(out, "| parameters | measured | note |");
        let _ = writeln!(out, "|---|---|---|");
        for r in &self.rows {
            let _ = writeln!(out, "| {} | {} | {} |", r.param, r.value, r.note);
        }
        out
    }

    /// Renders the section for the terminal.
    pub fn print(&self) {
        println!("\n=== {} — {}", self.id, self.title);
        println!("    paper: {}", self.expectation);
        for r in &self.rows {
            println!("    {:<28} {:<20} {}", r.param, r.value, r.note);
        }
    }
}

/// Times a closure, returning (result, milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

/// Formats milliseconds compactly.
pub fn ms(v: f64) -> String {
    if v < 1.0 {
        format!("{:.0}µs", v * 1e3)
    } else if v < 1_000.0 {
        format!("{v:.1}ms")
    } else {
        format!("{:.2}s", v / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let s = Section {
            id: "E0",
            title: "smoke",
            expectation: "flat",
            rows: vec![Row {
                id: "E0",
                param: "n=1".into(),
                value: "1ms".into(),
                note: "ok".into(),
            }],
        };
        let md = s.to_markdown();
        assert!(md.contains("### E0"));
        assert!(md.contains("| n=1 | 1ms | ok |"));
    }

    #[test]
    fn timing_and_formatting() {
        let (v, t) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
        assert_eq!(ms(0.5), "500µs");
        assert_eq!(ms(12.34), "12.3ms");
        assert_eq!(ms(2500.0), "2.50s");
    }
}
