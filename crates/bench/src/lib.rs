//! # omq-bench
//!
//! Workload generators and the reporting harness behind the paper's
//! experiment reproduction (see `DESIGN.md`, experiment index E1–E11).
//!
//! The paper defines no datasets; its quantitative content is the
//! complexity landscape of Table 1, the constructions of Figures 1–2, and
//! the size bounds of Props. 12–18. The workloads here are parameterized
//! families derived from those constructions, so every benchmark sweep
//! exercises exactly the code path the corresponding theorem talks about.

pub mod obsjson;
pub mod report;
pub mod workloads;
