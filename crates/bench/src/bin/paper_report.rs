//! Regenerates every table/figure row of the paper reproduction and prints
//! it next to the paper's predicted shape; `--markdown` emits the body of
//! `EXPERIMENTS.md`.
//!
//! Run with: `cargo run -p omq-bench --release --bin paper_report [--markdown]`

use omq_bench::report::{ms, timed, Row, Section};
use omq_bench::workloads::{
    guarded_seed_db, guarded_workload, linear_workload, marking_chain, nr_workload, random_db,
    sticky_workload,
};
use omq_chase::{certain_answers_via_chase, chase, ChaseConfig, ChaseVariant};
use omq_classes::{is_sticky, marked_variables};
use omq_core::{
    contains, distributes_over_components, evaluate, is_ucq_rewritable, ContainmentConfig,
    ContainmentResult, EvalConfig,
};
use omq_model::{parse_program, Atom, Cq, Omq, Schema, Term, Ucq};
use omq_reductions::{etp_to_containment, prop15_family, tiling::all_pairs, Etp};
use omq_rewrite::{
    bound_linear, bound_nonrecursive, bound_sticky, ucq_omq_to_cq_omq, xrewrite, RewriteOutput,
    XRewriteConfig,
};

type SectionBuilder = fn() -> Section;

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    let builders: Vec<(&str, SectionBuilder)> = vec![
        ("E1", e1_linear),
        ("E2", e2_sticky),
        ("E3", e3_nonrecursive),
        ("E4", e4_guarded),
        ("E5", e5_evaluation),
        ("E6", e6_marking),
        ("E7", e7_tiling),
        ("E8", e8_bounds),
        ("E9", e9_witnesses),
        ("E10", e10_ucq_to_cq),
        ("E11", e11_applications),
        ("E12", e12_chase_counters),
        ("E13", e13_rewrite_counters),
        ("E14", e14_store_maintenance),
    ];
    for (id, build) in builders {
        eprintln!("[paper_report] running {id}…");
        let s = build();
        if markdown {
            println!("{}", s.to_markdown());
        } else {
            s.print();
        }
    }
}

fn row(id: &'static str, param: String, value: String, note: String) -> Row {
    Row {
        id,
        param,
        value,
        note,
    }
}

fn e1_linear() -> Section {
    let mut rows = Vec::new();
    for chain in [2usize, 8, 32] {
        let (q, voc) = linear_workload(chain, 2);
        let mut voc = voc.clone();
        let (out, t) = timed(|| contains(&q, &q, &mut voc, &ContainmentConfig::default()).unwrap());
        rows.push(row(
            "E1",
            format!("chain={chain},|q|=2"),
            ms(t),
            format!(
                "contained={}, witnesses={}, max|D|={}",
                out.result.is_contained(),
                out.witnesses_checked,
                out.max_witness_size
            ),
        ));
    }
    for qlen in [1usize, 2, 3, 4] {
        let (q, voc) = linear_workload(4, qlen);
        let mut voc = voc.clone();
        let (out, t) = timed(|| contains(&q, &q, &mut voc, &ContainmentConfig::default()).unwrap());
        rows.push(row(
            "E1",
            format!("chain=4,|q|={qlen}"),
            ms(t),
            format!("witnesses={}", out.witnesses_checked),
        ));
    }
    Section {
        id: "E1",
        title: "Table 1 — linear row (PSPACE-c; mild in ontology size)",
        expectation: "runtime grows mildly with the ontology chain and sharply only with |q| (Prop. 12: witnesses ≤ |q|)",
        rows,
    }
}

fn e2_sticky() -> Section {
    let mut rows = Vec::new();
    for n in [1usize, 2, 3] {
        let (q1, voc) = sticky_workload(n);
        let mut voc = voc.clone();
        let z = voc.fresh_pred("Zb", 1);
        let x = voc.var("Xb");
        let q2 = Omq::new(
            q1.data_schema.clone(),
            vec![],
            Ucq::from_cq(Cq::boolean(vec![Atom::new(z, vec![Term::Var(x)])])),
        );
        let (out, t) =
            timed(|| contains(&q1, &q2, &mut voc, &ContainmentConfig::default()).unwrap());
        let wsize = match &out.result {
            ContainmentResult::NotContained(w) => w.database.len(),
            _ => 0,
        };
        rows.push(row(
            "E2",
            format!("n={n} (arity {})", n + 2),
            ms(t),
            format!("witness size {wsize} = 2^{n}"),
        ));
    }
    Section {
        id: "E2",
        title: "Table 1 — sticky row (coNEXPTIME-c)",
        expectation:
            "witness size and runtime blow up exponentially as the arity grows (Prop. 17/18)",
        rows,
    }
}

fn e3_nonrecursive() -> Section {
    let mut rows = Vec::new();
    for strata in [1usize, 2, 3, 4] {
        let (q, voc) = nr_workload(strata);
        let mut voc = voc.clone();
        let bound = bound_nonrecursive(&q);
        let (out, t) = timed(|| xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap());
        rows.push(row(
            "E3",
            format!("strata={strata}"),
            ms(t),
            format!(
                "max disjunct {} (bound {}), disjuncts {}",
                out.ucq.max_disjunct_size(),
                bound,
                out.ucq.disjuncts.len()
            ),
        ));
    }
    Section {
        id: "E3",
        title: "Table 1 — non-recursive row (PNEXP-hard, in EXPSPACE)",
        expectation:
            "rewriting (hence witness) size doubles per stratum: |q|·(max body)^{|sch|} (Prop. 14)",
        rows,
    }
}

fn e4_guarded() -> Section {
    let mut rows = Vec::new();
    for qlen in [1usize, 2, 3, 4] {
        let (q, mut voc) = guarded_workload(qlen);
        let db = guarded_seed_db(&mut voc);
        let (out, t) = timed(|| {
            omq_guarded::guarded_certain_answers(
                &q,
                &db,
                &mut voc,
                &omq_guarded::GuardedConfig::default(),
            )
        });
        rows.push(row(
            "E4",
            format!("|q|={qlen}"),
            ms(t),
            format!(
                "depth {} ({:?}), holds={}",
                out.depth_used,
                out.completeness,
                !out.answers.is_empty()
            ),
        ));
    }
    Section {
        id: "E4",
        title: "Table 1 — guarded row (2EXPTIME-c)",
        expectation:
            "stabilization depth (and cost) driven by |q|; double-exponential only in |q| and arity",
        rows,
    }
}

fn e5_evaluation() -> Section {
    let mut rows = Vec::new();
    {
        let (lin, mut voc) = linear_workload(4, 2);
        let db = random_db(&lin, &mut voc, 100, 8, 1);
        let (out, t) = timed(|| evaluate(&lin, &db, &mut voc, &EvalConfig::default()));
        rows.push(row(
            "E5",
            "linear,|D|=100".into(),
            ms(t),
            format!("{} answers via {}", out.answers.len(), out.language),
        ));
    }
    {
        let (nr, mut voc) = nr_workload(3);
        let db = random_db(&nr, &mut voc, 40, 10, 2);
        let (out, t) = timed(|| evaluate(&nr, &db, &mut voc, &EvalConfig::default()));
        rows.push(row(
            "E5",
            "non-recursive,|D|=40".into(),
            ms(t),
            format!("{} answers via {}", out.answers.len(), out.language),
        ));
    }
    {
        let (gu, mut voc) = guarded_workload(2);
        let db = guarded_seed_db(&mut voc);
        let (out, t) = timed(|| evaluate(&gu, &db, &mut voc, &EvalConfig::default()));
        rows.push(row(
            "E5",
            "guarded,seed".into(),
            ms(t),
            format!("{} answers via {}", out.answers.len(), out.language),
        ));
    }
    Section {
        id: "E5",
        title: "Table 1 — evaluation (small-font rows)",
        expectation: "evaluation is cheaper than containment on the same family (containment ≥ evaluation, Prop. 5)",
        rows,
    }
}

fn e6_marking() -> Section {
    let mut rows = Vec::new();
    for k in [4usize, 32, 128] {
        for keep in [true, false] {
            let (sigma, _) = marking_chain(k, keep);
            let (sticky, t) = timed(|| is_sticky(&sigma));
            let m = marked_variables(&sigma);
            rows.push(row(
                "E6",
                format!("k={k},{}", if keep { "keep-join" } else { "drop-join" }),
                ms(t),
                format!(
                    "sticky={sticky}, marked={}, rounds={}",
                    m.marked.len(),
                    m.rounds
                ),
            ));
        }
    }
    Section {
        id: "E6",
        title: "Figure 1 — stickiness & the marking procedure",
        expectation: "keep-join variant sticky at every size; drop-join variant rejected; cost polynomial in ||Σ||",
        rows,
    }
}

fn e7_tiling() -> Section {
    let alt = vec![(1u8, 2u8), (2, 1)];
    let cases = [
        (
            "yes (T2 checkerboard, k=1)",
            Etp {
                k: 1,
                n: 1,
                m: 2,
                h1: all_pairs(2),
                v1: all_pairs(2),
                h2: alt.clone(),
                v2: alt.clone(),
            },
        ),
        (
            "no (T1 solves s=[1,1], T2 cannot)",
            Etp {
                k: 2,
                n: 1,
                m: 2,
                h1: all_pairs(2),
                v1: all_pairs(2),
                h2: alt.clone(),
                v2: alt,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, etp) in cases {
        let expected = etp.has_solution();
        let omqs = etp_to_containment(&etp);
        let mut voc = omqs.voc.clone();
        let (out, t) = timed(|| {
            contains(&omqs.q1, &omqs.q2, &mut voc, &ContainmentConfig::default()).unwrap()
        });
        rows.push(row(
            "E7",
            label.into(),
            ms(t),
            format!(
                "contained={} (brute force {}), witnesses={}",
                out.result.is_contained(),
                expected,
                out.witnesses_checked
            ),
        ));
    }
    Section {
        id: "E7",
        title: "Figure 2 / Theorem 16 — ETP → Cont(NR,CQ)",
        expectation: "containment verdict ⟺ brute-force ETP answer on every instance",
        rows,
    }
}

fn e8_bounds() -> Section {
    let mut rows = Vec::new();
    {
        let (q, voc) = linear_workload(3, 3);
        let mut voc = voc.clone();
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        rows.push(row(
            "E8",
            "linear,|q|=3".into(),
            format!("measured {}", out.ucq.max_disjunct_size()),
            format!("bound {} (Prop. 12)", bound_linear(&q)),
        ));
    }
    {
        let (q, voc) = nr_workload(3);
        let mut voc = voc.clone();
        let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
        rows.push(row(
            "E8",
            "non-recursive,strata=3".into(),
            format!("measured {}", out.ucq.max_disjunct_size()),
            format!("bound {} (Prop. 14)", bound_nonrecursive(&q)),
        ));
    }
    {
        let (q, voc) = sticky_workload(2);
        let mut voc2 = voc.clone();
        let out = xrewrite(&q, &mut voc2, &XRewriteConfig::default()).unwrap();
        rows.push(row(
            "E8",
            "sticky,n=2".into(),
            format!("measured {}", out.ucq.max_disjunct_size()),
            format!("bound {} (Prop. 17)", bound_sticky(&q, &voc)),
        ));
    }
    Section {
        id: "E8",
        title: "Props. 12/14/17 — rewriting-size bounds",
        expectation: "measured max disjunct ≤ f_O(Q) for every family",
        rows,
    }
}

fn e9_witnesses() -> Section {
    let mut rows = Vec::new();
    for n in [1usize, 2, 3] {
        let (q1, q2, voc) = prop15_family(n);
        let mut voc = voc.clone();
        let (out, t) =
            timed(|| contains(&q1, &q2, &mut voc, &ContainmentConfig::default()).unwrap());
        let wsize = match &out.result {
            ContainmentResult::NotContained(w) => w.database.len(),
            _ => 0,
        };
        rows.push(row(
            "E9",
            format!("n={n}"),
            format!("witness {wsize}"),
            format!("expected 2^{n} = {}; {}", 1 << n, ms(t)),
        ));
    }
    Section {
        id: "E9",
        title: "Props. 15/18 — exponential witness lower bounds",
        expectation: "minimal counterexample databases have exactly 2^n atoms",
        rows,
    }
}

fn e10_ucq_to_cq() -> Section {
    let mut rows = Vec::new();
    for k in [2usize, 4, 8] {
        let mut text = String::new();
        for i in 0..k {
            text.push_str(&format!("A{i}(X) -> P{i}(X)\nq :- P{i}(X)\n"));
        }
        let prog = parse_program(&text).unwrap();
        let mut voc = prog.voc.clone();
        let schema = Schema::from_preds((0..k).map(|i| voc.pred_id(&format!("A{i}")).unwrap()));
        let q = Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone());
        let (compiled, t) = timed(|| ucq_omq_to_cq_omq(&q, &mut voc).unwrap());
        // Sanity: same emptiness on a one-fact db.
        let mut db = omq_model::Instance::new();
        let a0 = voc.pred_id("A0").unwrap();
        let c = voc.constant("a");
        db.insert(Atom::new(a0, vec![Term::Const(c)]));
        let ans =
            certain_answers_via_chase(&compiled, &db, &mut voc, &ChaseConfig::default()).unwrap();
        rows.push(row(
            "E10",
            format!("disjuncts={k}"),
            ms(t),
            format!(
                "|Σ'|={} tgds, query {} atoms, semantics ok={}",
                compiled.sigma.len(),
                compiled.query.disjuncts[0].body.len(),
                !ans.is_empty()
            ),
        ));
    }
    Section {
        id: "E10",
        title: "Prop. 9 — UCQ→CQ compilation",
        expectation: "output polynomial in the input; certain answers preserved",
        rows,
    }
}

fn e11_applications() -> Section {
    let mut rows = Vec::new();
    let cases = [
        ("connected", "q :- E(X,Y), E(Y,Z)\n", vec!["E"]),
        ("disconnected", "q :- P(X), T(Y)\n", vec!["P", "T"]),
        (
            "rescued-by-ontology",
            "P(X) -> exists Y . T(Y)\nq :- P(X), T(Y)\n",
            vec!["P", "T"],
        ),
    ];
    for (label, text, data) in cases {
        let prog = parse_program(text).unwrap();
        let mut voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        let q = Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone());
        let (r, t) = timed(|| {
            distributes_over_components(&q, &mut voc, &ContainmentConfig::default()).unwrap()
        });
        rows.push(row("E11", format!("dist/{label}"), ms(t), format!("{r:?}")));
    }
    {
        let (lin, voc) = linear_workload(4, 2);
        let mut voc = voc.clone();
        let (r, t) = timed(|| is_ucq_rewritable(&lin, &mut voc, &ContainmentConfig::default()));
        let desc = match r {
            omq_core::RewritabilityResult::Rewritable(u) => {
                format!("rewritable, {} disjuncts", u.disjuncts.len())
            }
            omq_core::RewritabilityResult::Unknown { .. } => "unknown".into(),
        };
        rows.push(row("E11", "ucq-rewritability/linear".into(), ms(t), desc));
    }
    Section {
        id: "E11",
        title: "Thm. 28 & §7.2 — distribution over components, UCQ rewritability",
        expectation:
            "verdicts match the Prop. 27 characterization; decisions are fast on small OMQs",
        rows,
    }
}

fn e13_rewrite_counters() -> Section {
    let mut rows = Vec::new();
    let fmt_out = |o: &RewriteOutput| {
        let s = &o.stats;
        format!(
            "gen={} disj={} rounds={} cand={} dedup raw/canon/iso={}/{}/{} \
             subsumed={} iso_checks={} fallbacks={} core_exh={} \
             expand/merge/prune={:.0}/{:.0}/{:.0}ms",
            o.generated,
            o.ucq.disjuncts.len(),
            s.rounds,
            s.candidates,
            s.dedup_hits_raw,
            s.dedup_hits_canonical,
            s.dedup_hits_iso,
            s.subsumption_kills,
            s.dedup_iso_checks,
            s.canonical_fallbacks,
            s.core_budget_exhaustions,
            s.expand_nanos as f64 / 1e6,
            s.merge_nanos as f64 / 1e6,
            s.prune_nanos as f64 / 1e6,
        )
    };
    for strata in [3usize, 4] {
        let (q, voc) = nr_workload(strata);
        let mut voc = voc.clone();
        let (out, t) = timed(|| xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap());
        rows.push(row(
            "E13",
            format!("nr strata={strata}"),
            ms(t),
            fmt_out(&out),
        ));
    }
    for n in [2usize, 3] {
        let (q, voc) = sticky_workload(n);
        let mut voc = voc.clone();
        let (out, t) = timed(|| xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap());
        rows.push(row("E13", format!("sticky n={n}"), ms(t), fmt_out(&out)));
    }
    {
        let (q, voc) = linear_workload(32, 3);
        let mut voc = voc.clone();
        let (out, t) = timed(|| xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap());
        rows.push(row(
            "E13",
            "linear chain=32,|q|=3".into(),
            ms(t),
            fmt_out(&out),
        ));
    }
    Section {
        id: "E13",
        title: "Rewriting engine — XRewrite work counters",
        expectation: "the raw-form fast path absorbs most duplicates (dedup raw ≫ canon + iso), \
             iso_checks stays near zero, and subsumption pruning shrinks the disjunct list \
             without touching any verdict",
        rows,
    }
}

fn e12_chase_counters() -> Section {
    let mut rows = Vec::new();
    let fmt_stats = |s: &omq_chase::ChaseStats, atoms: usize| {
        format!(
            "rounds={}, triggers {} considered / {} fired, skips sat={} dedup={}, \
             scanned={}, backtracks={}, atoms={atoms}",
            s.rounds,
            s.triggers_considered,
            s.triggers_fired,
            s.satisfied_skips,
            s.dedup_hits,
            s.candidates_scanned,
            s.backtracks
        )
    };
    for chain in [8usize, 32] {
        let (lin, mut voc) = linear_workload(chain, 2);
        let db = random_db(&lin, &mut voc, 12, 4, 7);
        let (out, t) = timed(|| chase(&db, &lin.sigma, &mut voc, &ChaseConfig::with_depth(3)));
        rows.push(row(
            "E12",
            format!("restricted,linear chain={chain}"),
            ms(t),
            fmt_stats(&out.stats, out.instance.len()),
        ));
    }
    {
        let (gu, mut voc) = guarded_workload(2);
        let db = guarded_seed_db(&mut voc);
        let cfg = ChaseConfig {
            variant: ChaseVariant::Oblivious,
            max_depth: Some(5),
            ..Default::default()
        };
        let (out, t) = timed(|| chase(&db, &gu.sigma, &mut voc, &cfg));
        rows.push(row(
            "E12",
            "oblivious,guarded depth≤5".into(),
            ms(t),
            fmt_stats(&out.stats, out.instance.len()),
        ));
    }
    Section {
        id: "E12",
        title: "Chase engine — semi-naive work counters",
        expectation:
            "triggers considered stays near triggers fired (the delta restriction works); \
             the final fixpoint round considers ~0 triggers",
        rows,
    }
}

fn e14_store_maintenance() -> Section {
    use omq_bench::workloads::{chain_edge, tc_workload};
    use omq_model::Instance;
    use omq_store::{MaintainedStore, StoreConfig};

    const CHAIN: usize = 32;
    const K: usize = 8;
    let mut rows = Vec::new();
    let cfg = ChaseConfig::default();

    // Prepared chain-32 store with its fixpoint built, plus K extensions.
    let (omq, mut voc) = tc_workload();
    let mut store = MaintainedStore::new(StoreConfig::default());
    let base: Vec<Atom> = (0..CHAIN).map(|i| chain_edge(i, &mut voc)).collect();
    store
        .assert_facts(&base, &omq.sigma, &mut voc, &cfg)
        .unwrap();
    store
        .evaluate(None, &omq.query, &omq.sigma, &mut voc, &cfg)
        .unwrap();
    let ext: Vec<Atom> = (0..K).map(|i| chain_edge(CHAIN + i, &mut voc)).collect();

    // K single-fact asserts, watermark-resumed.
    let mut inc = store.clone();
    let mut inc_voc = voc.clone();
    let (_, t_inc) = timed(|| {
        for f in &ext {
            inc.assert_facts(std::slice::from_ref(f), &omq.sigma, &mut inc_voc, &cfg)
                .unwrap();
        }
    });
    let inc_answers = inc
        .evaluate(None, &omq.query, &omq.sigma, &mut inc_voc, &cfg)
        .unwrap()
        .answers
        .len();
    let s = inc.stats();
    rows.push(row(
        "E14",
        format!("assert chain={CHAIN} k={K} incremental"),
        ms(t_inc),
        format!(
            "answers={inc_answers}, resumes={}, novelty={}, compactions={}",
            s.incremental_resumes, s.novelty_size, s.compactions
        ),
    ));

    // The naive comparator: re-chase the full database after each assert.
    let mut re_voc = voc.clone();
    let mut facts = base.clone();
    let (re_answers, t_re) = timed(|| {
        let mut last = None;
        for f in &ext {
            facts.push(f.clone());
            let db = Instance::from_atoms(facts.iter().cloned());
            last = Some(chase(&db, &omq.sigma, &mut re_voc, &cfg).instance);
        }
        omq_chase::eval_ucq(&omq.query, &last.unwrap()).len()
    });
    assert_eq!(inc_answers, re_answers, "maintained answers diverged");
    rows.push(row(
        "E14",
        format!("assert chain={CHAIN} k={K} rechase"),
        ms(t_re),
        format!(
            "answers={re_answers}, speedup={:.1}x",
            t_re / t_inc.max(1e-9)
        ),
    ));

    // One mid-chain retract, maintained by DRed.
    let mut dred = store.clone();
    let mut dred_voc = voc.clone();
    let mid = base[CHAIN / 2].clone();
    let (_, t_dred) = timed(|| {
        dred.retract_facts(std::slice::from_ref(&mid), &omq.sigma, &mut dred_voc, &cfg)
            .unwrap();
    });
    let dred_answers = dred
        .evaluate(None, &omq.query, &omq.sigma, &mut dred_voc, &cfg)
        .unwrap()
        .answers
        .len();
    let s = dred.stats();
    rows.push(row(
        "E14",
        format!("retract chain={CHAIN} mid dred"),
        ms(t_dred),
        format!(
            "answers={dred_answers}, dred_deleted={}, rederived={}",
            s.dred_deleted, s.rederived
        ),
    ));

    // Single-fact asserts under a small threshold: compaction fires,
    // answers stay put.
    let (omq2, mut voc2) = tc_workload();
    let mut compacting = MaintainedStore::new(StoreConfig {
        compact_threshold: 8,
    });
    let (_, t_c) = timed(|| {
        for i in 0..CHAIN {
            let e = chain_edge(i, &mut voc2);
            compacting
                .assert_facts(std::slice::from_ref(&e), &omq2.sigma, &mut voc2, &cfg)
                .unwrap();
        }
    });
    let c_answers = compacting
        .evaluate(None, &omq2.query, &omq2.sigma, &mut voc2, &cfg)
        .unwrap()
        .answers
        .len();
    let s = compacting.stats();
    rows.push(row(
        "E14",
        format!("compact chain={CHAIN} threshold=8"),
        ms(t_c),
        format!(
            "answers={c_answers}, compactions={}, novelty={}",
            s.compactions, s.novelty_size
        ),
    ));

    Section {
        id: "E14",
        title: "omq-store — incremental maintenance vs. re-chase",
        expectation: "watermark-resumed asserts beat the from-scratch re-chase by well over \
             the 5x CI floor with identical answers; DRed retracts over-delete the support \
             cone and re-derive survivors; compaction folds the novelty overlay without \
             moving any answer",
        rows,
    }
}
