//! Incremental-maintenance benchmark for the `omq-store` layer.
//!
//! Writes `BENCH_store.json` (or the path given as the first argument):
//! the E14 transitive-closure family at chain=32, mutated by `k` single-fact
//! asserts (chain extensions) and a mid-chain retract, maintained two ways:
//!
//! * `store:assert incremental` — the [`MaintainedStore`] path: each assert
//!   resumes the semi-naive chase from the generation watermark, so only
//!   triggers touching the delta are enumerated;
//! * `store:assert rechase` — the naive comparator: after each assert the
//!   full database is re-chased from scratch (what a versionless engine
//!   must do). The timed region covers maintenance only; both sides end
//!   with the same untimed answer check.
//!
//! The headline figure is `speedup_incremental_over_rechase` on the summary
//! row (acceptance floor 5×; see scripts/ci.sh). The retract rows compare
//! DRed (over-delete + re-derive) against the same from-scratch comparator
//! and carry the `dred_deleted` / `rederived` counters; the compaction row
//! drives the novelty overlay past its threshold and reports
//! `novelty_size` / `compactions`. All counter columns are deterministic —
//! drift there is a semantics change, not noise (see scripts/bench_diff.py).
//!
//! Timings are best-of-three over a cloned prepared store (`wall_ms` is the
//! best run, with the min/max spread for noise detection); phase columns
//! come from one extra instrumented pass, per the *time untraced, then
//! trace once* protocol of `omq_bench::obsjson`.

use std::sync::Arc;
use std::time::Instant;

use omq_bench::obsjson::{counter_fields, instrumented_pass, phase_fields};
use omq_bench::workloads::{chain_edge, tc_workload};
use omq_chase::{chase, eval_ucq, ChaseConfig};
use omq_model::{Atom, Instance, Vocabulary};
use omq_obs::{Aggregator, Sink};
use omq_store::{MaintainedStore, StoreConfig, StoreStats};

const CHAIN: usize = 32;
const K: usize = 8;

/// Best-of-`runs` timing with no recorder installed. `f` reports its own
/// timed region (so cloning the prepared store and the final answer check
/// stay out of the measurement); returns (last result, best, min, max) ms.
fn best_of<T>(runs: usize, mut f: impl FnMut() -> (T, f64)) -> (T, f64, f64, f64) {
    let mut min = f64::MAX;
    let mut max = 0.0f64;
    let mut out = None;
    for _ in 0..runs {
        let (r, ms) = f();
        min = min.min(ms);
        max = max.max(ms);
        out = Some(r);
    }
    (out.unwrap(), min, min, max)
}

struct Row {
    workload: String,
    wall_ms: f64,
    wall_min_ms: f64,
    wall_max_ms: f64,
    answers: usize,
    stats: Option<StoreStats>,
    phases: String,
}

impl Row {
    fn json(&self) -> String {
        let stats = self.stats.map_or(String::new(), |s| {
            format!(
                ", \"novelty_size\": {}, \"compactions\": {}, \"dred_deleted\": {}, \
                 \"rederived\": {}, \"incremental_resumes\": {}, \"full_rechases\": {}",
                s.novelty_size,
                s.compactions,
                s.dred_deleted,
                s.rederived,
                s.incremental_resumes,
                s.full_rechases
            )
        });
        format!(
            "  {{\"workload\": \"{}\", \"wall_ms\": {:.3}, \"wall_min_ms\": {:.3}, \
             \"wall_max_ms\": {:.3}, \"answers\": {}{}{}}}",
            self.workload,
            self.wall_ms,
            self.wall_min_ms,
            self.wall_max_ms,
            self.answers,
            stats,
            self.phases
        )
    }
}

/// A maintained store holding the chain-32 base with its fixpoint already
/// built, plus the pre-interned extension edges — the state every timed
/// run clones and mutates.
struct Prepared {
    store: MaintainedStore,
    voc: Vocabulary,
    ext: Vec<Atom>,
    base_facts: Vec<Atom>,
}

fn prepare(threshold: usize) -> Prepared {
    let (omq, mut voc) = tc_workload();
    let cfg = ChaseConfig::default();
    let mut store = MaintainedStore::new(StoreConfig {
        compact_threshold: threshold,
    });
    let base_facts: Vec<Atom> = (0..CHAIN).map(|i| chain_edge(i, &mut voc)).collect();
    store
        .assert_facts(&base_facts, &omq.sigma, &mut voc, &cfg)
        .expect("ground base facts");
    let ev = store
        .evaluate(None, &omq.query, &omq.sigma, &mut voc, &cfg)
        .expect("head is always materializable");
    assert!(ev.complete, "the TC chase terminates on a finite chain");
    let ext: Vec<Atom> = (0..K).map(|i| chain_edge(CHAIN + i, &mut voc)).collect();
    Prepared {
        store,
        voc,
        ext,
        base_facts,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_store.json".into());
    let (omq, _) = tc_workload();
    let cfg = ChaseConfig::default();
    let mut rows: Vec<Row> = Vec::new();

    // Sweep-wide aggregator: sees every instrumented pass and feeds the
    // summary row's phase columns.
    let sweep = Arc::new(Aggregator::new());
    let extra: Vec<Arc<dyn Sink>> = vec![sweep.clone()];

    // --- k single-fact asserts, incrementally maintained. The timed
    // region is maintenance only — the clone of the prepared store and the
    // final answer check are shared, untimed bookends on both sides. ---
    let prep = prepare(0);
    let incremental = || {
        let mut store = prep.store.clone();
        let mut voc = prep.voc.clone();
        let t = Instant::now();
        for fact in &prep.ext {
            store
                .assert_facts(std::slice::from_ref(fact), &omq.sigma, &mut voc, &cfg)
                .expect("ground extension fact");
        }
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let ev = store
            .evaluate(None, &omq.query, &omq.sigma, &mut voc, &cfg)
            .expect("head evaluate");
        ((ev.answers.len(), store.stats()), ms)
    };
    let ((inc_answers, inc_stats), inc_ms, inc_min, inc_max) = best_of(3, incremental);
    let (_, agg) = instrumented_pass(&extra, incremental);
    rows.push(Row {
        workload: format!("store:assert chain={CHAIN} k={K} incremental"),
        wall_ms: inc_ms,
        wall_min_ms: inc_min,
        wall_max_ms: inc_max,
        answers: inc_answers,
        stats: Some(inc_stats),
        phases: format!("{}{}", phase_fields(&agg), counter_fields(&agg)),
    });

    // --- The same k asserts, re-chasing the full database each time. ---
    let rechase = || {
        let mut voc = prep.voc.clone();
        let mut facts = prep.base_facts.clone();
        let mut last = None;
        let t = Instant::now();
        for fact in &prep.ext {
            facts.push(fact.clone());
            let db = Instance::from_atoms(facts.iter().cloned());
            let out = chase(&db, &omq.sigma, &mut voc, &cfg);
            assert!(out.complete);
            last = Some(out.instance);
        }
        let ms = t.elapsed().as_secs_f64() * 1e3;
        (eval_ucq(&omq.query, &last.unwrap()).len(), ms)
    };
    let (re_answers, re_ms, re_min, re_max) = best_of(3, rechase);
    let (_, agg) = instrumented_pass(&extra, rechase);
    assert_eq!(
        inc_answers, re_answers,
        "incremental and re-chased answers diverged"
    );
    rows.push(Row {
        workload: format!("store:assert chain={CHAIN} k={K} rechase"),
        wall_ms: re_ms,
        wall_min_ms: re_min,
        wall_max_ms: re_max,
        answers: re_answers,
        stats: None,
        phases: format!("{}{}", phase_fields(&agg), counter_fields(&agg)),
    });

    // --- A mid-chain retract: DRed vs. from-scratch. ---
    let mid = prep.base_facts[CHAIN / 2].clone();
    let dred = || {
        let mut store = prep.store.clone();
        let mut voc = prep.voc.clone();
        let t = Instant::now();
        store
            .retract_facts(std::slice::from_ref(&mid), &omq.sigma, &mut voc, &cfg)
            .expect("ground retract");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let ev = store
            .evaluate(None, &omq.query, &omq.sigma, &mut voc, &cfg)
            .expect("head evaluate");
        ((ev.answers.len(), store.stats()), ms)
    };
    let ((dred_answers, dred_stats), dred_ms, dred_min, dred_max) = best_of(3, dred);
    let (_, agg) = instrumented_pass(&extra, dred);
    rows.push(Row {
        workload: format!("store:retract chain={CHAIN} mid dred"),
        wall_ms: dred_ms,
        wall_min_ms: dred_min,
        wall_max_ms: dred_max,
        answers: dred_answers,
        stats: Some(dred_stats),
        phases: format!("{}{}", phase_fields(&agg), counter_fields(&agg)),
    });
    {
        let mut voc = prep.voc.clone();
        let facts: Vec<Atom> = prep
            .base_facts
            .iter()
            .filter(|f| **f != mid)
            .cloned()
            .collect();
        let db = Instance::from_atoms(facts);
        let out = chase(&db, &omq.sigma, &mut voc, &cfg);
        let n = eval_ucq(&omq.query, &out.instance).len();
        assert_eq!(dred_answers, n, "DRed and re-chased answers diverged");
    }

    // --- Compaction under a small threshold: the novelty overlay merges
    // into new base runs while answers stay put. ---
    let compacting = || {
        let (omq, mut voc) = tc_workload();
        let mut store = MaintainedStore::new(StoreConfig {
            compact_threshold: 8,
        });
        let t = Instant::now();
        for i in 0..CHAIN {
            let edge = chain_edge(i, &mut voc);
            store
                .assert_facts(std::slice::from_ref(&edge), &omq.sigma, &mut voc, &cfg)
                .expect("ground chain edge");
        }
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let ev = store
            .evaluate(None, &omq.query, &omq.sigma, &mut voc, &cfg)
            .expect("head evaluate");
        ((ev.answers.len(), store.stats()), ms)
    };
    let ((c_answers, c_stats), c_ms, c_min, c_max) = best_of(3, compacting);
    let (_, agg) = instrumented_pass(&extra, compacting);
    assert!(
        c_stats.compactions > 0,
        "threshold 8 must trigger compaction"
    );
    rows.push(Row {
        workload: format!("store:compact chain={CHAIN} threshold=8"),
        wall_ms: c_ms,
        wall_min_ms: c_min,
        wall_max_ms: c_max,
        answers: c_answers,
        stats: Some(c_stats),
        phases: format!("{}{}", phase_fields(&agg), counter_fields(&agg)),
    });

    let speedup = re_ms / inc_ms.max(1e-9);
    let mut json = String::from("[\n");
    for r in &rows {
        json.push_str(&r.json());
        json.push_str(",\n");
        println!(
            "{:<40} {:>9.3} ms  answers={}",
            r.workload, r.wall_ms, r.answers
        );
    }
    json.push_str(&format!(
        "  {{\"workload\": \"store:summary\", \"wall_ms\": 0.0, \
         \"speedup_incremental_over_rechase\": {speedup:.2}{}}}\n]\n",
        phase_fields(&sweep)
    ));
    println!("store:summary                speedup_incremental_over_rechase={speedup:.2}");
    std::fs::write(&out_path, json).expect("writing store benchmark output");
    println!("wrote {out_path}");
}
