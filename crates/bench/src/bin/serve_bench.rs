//! Replayable workload driver for the `omq-serve` layer.
//!
//! Writes `BENCH_serve.json` (or the path given as the first argument):
//! cold vs. warm throughput and tail latency on a repeated-query workload,
//! plus a parallel mixed-batch row. "Cold" runs with caching disabled, so
//! every `contains` recomputes its rewritings; "warm" runs the identical
//! request stream with the canonical-key caches on, so repeats are cache
//! hits. Both phases use `threads = 1` so the counter columns
//! (`requests`, `cache_hits`, …) are exactly reproducible; the parallel
//! row reports wall-clock only.
//!
//! The headline figure is `speedup_warm_over_cold` on the contains stream
//! (the acceptance floor is 10×; see scripts/ci.sh).
//!
//! Phase columns follow the *time untraced, then trace once* protocol
//! (see `omq_bench::obsjson`): wall-clock and cache-hit columns come from
//! the untraced replay, then each stream is replayed once more under a
//! recorder to harvest the per-phase breakdown. Cache counters are read
//! *before* the instrumented replays, which would otherwise perturb them.

use std::sync::Arc;
use std::time::Instant;

use omq_bench::obsjson::{instrumented_pass, phase_fields};
use omq_obs::{Aggregator, Sink};
use omq_serve::{parse_request, Engine, EngineConfig, Request, Response};

/// The E1-style linear family as program text (mirrors
/// `omq_bench::workloads::linear_workload`).
fn linear_program(chain: usize, qlen: usize) -> String {
    let mut lines: Vec<String> = (0..chain)
        .map(|i| format!("C{i}(X) -> C{}(X)", i + 1))
        .collect();
    lines.push(format!("C{chain}(X) -> exists Yx . R(X,Yx)"));
    lines.push(format!("R(U,V) -> C{chain}(V)"));
    let body: Vec<String> = (0..qlen).map(|i| format!("R(Q{i},Q{})", i + 1)).collect();
    lines.push(format!("q(Q0) :- {}", body.join(", ")));
    lines.join("\n")
}

fn register_line(name: &str, chain: usize, qlen: usize) -> String {
    let program = linear_program(chain, qlen).replace('\n', "\\n");
    format!(
        r#"{{"op":"register","name":"{name}","program":"{program}","schema":["C0","R"],"query":"q"}}"#
    )
}

/// The repeated-query request stream: `reps` passes over a small set of
/// distinct questions — exactly the shape a warm cache exploits.
fn contains_stream(reps: usize) -> Vec<String> {
    let pairs = [
        ("lin_a", "lin_a"),
        ("lin_a", "lin_b"),
        ("lin_b", "lin_a"),
        ("lin_c", "lin_a"),
    ];
    let mut out = Vec::new();
    for rep in 0..reps {
        for (i, (l, r)) in pairs.iter().enumerate() {
            let id = rep * pairs.len() + i;
            out.push(format!(
                r#"{{"id":{id},"op":"contains","lhs":"{l}","rhs":"{r}"}}"#
            ));
        }
    }
    out
}

fn evaluate_stream(reps: usize) -> Vec<String> {
    let mut out = Vec::new();
    for id in 0..reps {
        out.push(format!(
            r#"{{"id":{id},"op":"evaluate","name":"lin_a","facts":["C0(a{})","R(a{},b)"]}}"#,
            id % 3,
            id % 3
        ));
    }
    out
}

fn parse_all(lines: &[String]) -> Vec<Result<Request, Box<Response>>> {
    lines.iter().map(|l| parse_request(l)).collect()
}

struct Row {
    workload: String,
    wall_ms: f64,
    p50_us: f64,
    p95_us: f64,
    requests: usize,
    cache_hits: Option<usize>,
    /// Extra JSON columns (leading `, `), e.g. the open-loop rows'
    /// `p99_us`/`shed_pct`.
    extra_cols: String,
    phases: String,
}

/// Replays `stream` one request per batch (so each request is individually
/// timed), returning (total ms, p50 μs, p95 μs).
fn replay(engine: &Engine, stream: &[String]) -> (f64, f64, f64) {
    let items = parse_all(stream);
    let mut lat_us: Vec<f64> = Vec::with_capacity(items.len());
    let start = Instant::now();
    for item in items {
        let t = Instant::now();
        let out = engine.execute_batch(std::slice::from_ref(&item));
        assert!(
            out[0].outcome.is_ok(),
            "benchmark request failed: {:?}",
            out[0].outcome
        );
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    (wall_ms, pct(0.50), pct(0.95))
}

fn fresh_engine(cache_capacity: usize, threads: usize) -> Engine {
    let engine = Engine::new(EngineConfig {
        threads,
        cache_capacity,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let regs: Vec<String> = vec![
        register_line("lin_a", 12, 3),
        register_line("lin_b", 12, 2),
        register_line("lin_c", 8, 3),
    ];
    for resp in engine.execute_batch(&parse_all(&regs)) {
        assert!(
            resp.outcome.is_ok(),
            "registration failed: {:?}",
            resp.outcome
        );
    }
    engine
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".into());
    let hom_before = omq_chase::global_hom_snapshot();
    let mut rows: Vec<Row> = Vec::new();

    // Sweep-wide aggregator: sees every instrumented replay, feeds the
    // summary row so every BENCH_serve row carries phase columns.
    let sweep = Arc::new(Aggregator::new());
    let extra: Vec<Arc<dyn Sink>> = vec![sweep.clone()];

    let contains = contains_stream(25); // 100 requests over 4 distinct pairs
    let evals = evaluate_stream(60);

    for (label, cache) in [("cold", 0usize), ("warm", 256)] {
        let engine = fresh_engine(cache, 1);
        let (wall_ms_c, p50_c, p95_c) = replay(&engine, &contains);
        let (rw, vd, _) = engine.cache_stats();
        let (wall_ms_e, p50_e, p95_e) = replay(&engine, &evals);
        let (rw2, vd2, _) = engine.cache_stats();
        // Counter columns are settled; the traced replays below only feed
        // the phase columns.
        let ((), agg_c) = instrumented_pass(&extra, || {
            replay(&engine, &contains);
        });
        let ((), agg_e) = instrumented_pass(&extra, || {
            replay(&engine, &evals);
        });
        rows.push(Row {
            workload: format!("serve:contains {label}"),
            wall_ms: wall_ms_c,
            p50_us: p50_c,
            p95_us: p95_c,
            requests: contains.len(),
            cache_hits: Some(rw.hits + vd.hits),
            extra_cols: String::new(),
            phases: phase_fields(&agg_c),
        });
        rows.push(Row {
            workload: format!("serve:evaluate {label}"),
            wall_ms: wall_ms_e,
            p50_us: p50_e,
            p95_us: p95_e,
            requests: evals.len(),
            cache_hits: Some(rw2.hits + vd2.hits - rw.hits - vd.hits),
            extra_cols: String::new(),
            phases: phase_fields(&agg_e),
        });
    }

    // Parallel mixed batch: everything at once on the full pool, warm
    // caches. Wall-clock only — scheduling is machine-dependent.
    {
        let engine = fresh_engine(256, 0);
        let mixed: Vec<String> = contains.iter().chain(evals.iter()).cloned().collect();
        let items = parse_all(&mixed);
        let t = Instant::now();
        let out = engine.execute_batch(&items);
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(out.iter().all(|r| r.outcome.is_ok()));
        let (out, agg) = instrumented_pass(&extra, || engine.execute_batch(&items));
        assert!(out.iter().all(|r| r.outcome.is_ok()));
        rows.push(Row {
            workload: "serve:mixed parallel batch".into(),
            wall_ms,
            p50_us: 0.0,
            p95_us: 0.0,
            requests: mixed.len(),
            cache_hits: None,
            extra_cols: String::new(),
            phases: phase_fields(&agg),
        });
    }

    // Open-loop arrival-rate workloads: requests arrive on a clock (1×,
    // 2×, 4× the measured cache-off service capacity) whether or not the
    // single worker has kept up — the queueing regime a closed-loop replay
    // can never exhibit. Each rate runs twice: `noshed` (no admission
    // control; under overload the backlog and therefore the tail grow
    // without bound) and `shed` (queue-depth watermark 16; sheddable
    // arrivals over the watermark get an immediate structured refusal, so
    // the tail of the *answered* requests stays bounded). Columns:
    // `p50_us`/`p99_us` over answered requests (arrival→response,
    // queueing included) and `shed_pct`, the refused share. scripts/ci.sh
    // gates `shed` p99 < `noshed` p99 at 4× and a nonzero 4× shed rate.
    {
        use omq_serve::Admission;
        use std::sync::mpsc;

        let line = r#"{"id":0,"op":"contains","lhs":"lin_a","rhs":"lin_b"}"#.to_owned();
        let items = parse_all(std::slice::from_ref(&line));
        // Mean cache-off service time = the capacity the rates scale from.
        let probe = fresh_engine(0, 1);
        let probe_n = 20u32;
        let t = Instant::now();
        for _ in 0..probe_n {
            let out = probe.execute_batch(&items);
            assert!(out[0].outcome.is_ok());
        }
        let service = t.elapsed() / probe_n;
        // One instrumented pass covers every open-loop row's phase
        // columns — the op mix is identical at every rate.
        let ((), agg_o) = instrumented_pass(&extra, || {
            let engine = fresh_engine(0, 1);
            for _ in 0..4 {
                let out = engine.execute_batch(&items);
                assert!(out[0].outcome.is_ok());
            }
        });
        let open_phases = phase_fields(&agg_o);

        let n = 200usize;
        for mult in [1u32, 2, 4] {
            for (label, watermark) in [("noshed", 0usize), ("shed", 16)] {
                let engine = Arc::new(fresh_engine(0, 1));
                let admission = Arc::new(Admission::new(watermark));
                let worker = {
                    let engine = Arc::clone(&engine);
                    let admission = Arc::clone(&admission);
                    let items = parse_all(std::slice::from_ref(&line));
                    let (tx, rx) = mpsc::channel::<Instant>();
                    (
                        tx,
                        std::thread::spawn(move || {
                            let mut lat_us: Vec<f64> = Vec::new();
                            for arrived in rx {
                                let out = engine.execute_batch(&items);
                                assert!(out[0].outcome.is_ok());
                                lat_us.push(arrived.elapsed().as_secs_f64() * 1e6);
                                admission.exit(1);
                            }
                            lat_us
                        }),
                    )
                };
                let (tx, handle) = worker;
                let interarrival = service / mult;
                let start = Instant::now();
                let mut shed_count = 0usize;
                for i in 0..n {
                    let due = start + interarrival * i as u32;
                    while Instant::now() < due {
                        std::hint::spin_loop();
                    }
                    let depth = admission.enter(1);
                    if admission.should_shed(depth) {
                        // An immediate structured refusal; the request
                        // never reaches the worker queue. Charge the
                        // engine's SLO-burn window like the reactor does,
                        // so the scrape-derived burn column is real.
                        engine.metrics().mark_shed();
                        admission.exit(1);
                        shed_count += 1;
                    } else {
                        tx.send(Instant::now()).expect("worker alive");
                    }
                }
                drop(tx);
                let mut lat_us = handle.join().expect("worker exits cleanly");
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let pct = |p: f64| {
                    if lat_us.is_empty() {
                        0.0
                    } else {
                        lat_us[((lat_us.len() - 1) as f64 * p) as usize]
                    }
                };
                rows.push(Row {
                    workload: format!("serve:open-loop contains {mult}x {label}"),
                    wall_ms,
                    p50_us: pct(0.50),
                    p95_us: pct(0.95),
                    requests: n,
                    cache_hits: None,
                    extra_cols: format!(
                        ", \"p99_us\": {:.1}, \"shed_pct\": {:.1}, \"shed_slo_burn_ratio\": {:.4}",
                        pct(0.99),
                        shed_count as f64 * 100.0 / n as f64,
                        engine.metrics().shed_burn_ratio()
                    ),
                    phases: open_phases.clone(),
                });
            }
        }
    }

    let cold = rows[0].wall_ms;
    let warm = rows[2].wall_ms.max(1e-9);
    let speedup = cold / warm;

    let mut json = String::from("[\n");
    for r in &rows {
        let hits = r
            .cache_hits
            .map_or(String::new(), |h| format!(", \"cache_hits\": {h}"));
        json.push_str(&format!(
            "  {{\"workload\": \"{}\", \"wall_ms\": {:.3}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"requests\": {}{}{}{}}},\n",
            r.workload, r.wall_ms, r.p50_us, r.p95_us, r.requests, hits, r.extra_cols, r.phases
        ));
        println!(
            "{:<28} {:>9.3} ms  p50={:<9.1}us p95={:<9.1}us requests={} hits={:?}",
            r.workload, r.wall_ms, r.p50_us, r.p95_us, r.requests, r.cache_hits
        );
    }
    // Adaptive-planner work across the whole sweep (process-global deltas;
    // deterministic per run — replan decisions depend only on instance
    // content and per-request call order).
    let hom_after = omq_chase::global_hom_snapshot();
    json.push_str(&format!(
        "  {{\"workload\": \"serve:summary\", \"wall_ms\": 0.0, \"speedup_warm_over_cold\": {speedup:.2}, \"plans_reoptimized\": {}, \"sketch_build_us\": {}{}}}\n]\n",
        hom_after.plans_reoptimized - hom_before.plans_reoptimized,
        (hom_after.sketch_build_ns - hom_before.sketch_build_ns) / 1_000,
        phase_fields(&sweep)
    ));
    println!("serve:summary                speedup_warm_over_cold={speedup:.2}");
    std::fs::write(&out_path, json).expect("writing serve benchmark output");
    println!("wrote {out_path}");
}
