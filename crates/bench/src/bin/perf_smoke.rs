//! A fixed, small benchmark sweep for regression tracking.
//!
//! Runs in well under a minute and writes `BENCH_chase.json` (an array of
//! `{workload, wall_ms, triggers_fired, atoms}` records) to the current
//! directory, or to the path given as the first argument. Timings are
//! best-of-three; all workloads are deterministic, so the counter columns
//! are exactly reproducible and any drift there is a semantics change, not
//! noise.
//!
//! Two record families:
//!
//! * `chase:*` — a depth-budgeted chase of a deterministic random database
//!   under the E1 (linear) family at chain ∈ {8, 16, 32} × query length
//!   ∈ {2, 3}, plus the E4 (guarded) workload; `triggers_fired` and `atoms`
//!   come from the engine's [`ChaseStats`].
//! * `contains:*` — the E1 self-containment check at chain ∈ {8, 16, 32};
//!   this path is rewriting-based, so the chase counters are zero. The
//!   chain=32 row is the headline number tracked against the pre-semi-naive
//!   baseline (≈4.5 ms on the reference machine).

use std::time::Instant;

use omq_bench::workloads::{guarded_seed_db, guarded_workload, linear_workload, random_db};
use omq_chase::{chase, ChaseConfig, ChaseStats};
use omq_core::{contains, ContainmentConfig};

struct Record {
    workload: String,
    wall_ms: f64,
    triggers_fired: usize,
    atoms: usize,
}

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::MAX;
    let mut out = None;
    for _ in 0..runs {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (out.unwrap(), best)
}

fn chase_record(label: String, mk: impl Fn() -> (usize, ChaseStats)) -> Record {
    let ((atoms, stats), wall_ms) = best_of(3, mk);
    Record {
        workload: label,
        wall_ms,
        triggers_fired: stats.triggers_fired,
        atoms,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_chase.json".into());
    let mut records = Vec::new();

    for chain in [8usize, 16, 32] {
        for qlen in [2usize, 3] {
            let (omq, voc) = linear_workload(chain, qlen);
            records.push(chase_record(
                format!("chase:E1 chain={chain} qlen={qlen}"),
                || {
                    let mut voc = voc.clone();
                    let db = random_db(&omq, &mut voc, 12, 4, 7);
                    let out = chase(&db, &omq.sigma, &mut voc, &ChaseConfig::with_depth(3));
                    (out.instance.len(), out.stats)
                },
            ));
        }
    }
    {
        let (omq, voc) = guarded_workload(2);
        records.push(chase_record("chase:E4 qlen=2".into(), || {
            let mut voc = voc.clone();
            let db = guarded_seed_db(&mut voc);
            let out = chase(&db, &omq.sigma, &mut voc, &ChaseConfig::with_depth(6));
            (out.instance.len(), out.stats)
        }));
    }

    for chain in [8usize, 16, 32] {
        let (omq, voc) = linear_workload(chain, 2);
        let (checked, wall_ms) = best_of(3, || {
            let mut voc = voc.clone();
            let out = contains(&omq, &omq, &mut voc, &ContainmentConfig::default()).unwrap();
            assert!(out.result.is_contained(), "E1 self-containment must hold");
            out.witnesses_checked
        });
        let _ = checked;
        records.push(Record {
            workload: format!("contains:E1 chain={chain} qlen=2"),
            wall_ms,
            triggers_fired: 0,
            atoms: 0,
        });
    }

    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"workload\": \"{}\", \"wall_ms\": {:.3}, \"triggers_fired\": {}, \"atoms\": {}}}{}\n",
            r.workload,
            r.wall_ms,
            r.triggers_fired,
            r.atoms,
            if i + 1 < records.len() { "," } else { "" }
        ));
        println!(
            "{:<32} {:>9.3} ms  triggers={:<7} atoms={}",
            r.workload, r.wall_ms, r.triggers_fired, r.atoms
        );
    }
    json.push_str("]\n");
    std::fs::write(&out_path, json).expect("writing benchmark output");
    println!("wrote {out_path}");
}
