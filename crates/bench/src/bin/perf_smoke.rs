//! A fixed, small benchmark sweep for regression tracking.
//!
//! Runs in well under a minute and writes `BENCH_chase.json` and
//! `BENCH_rewrite.json` (arrays of per-workload records) to the current
//! directory, or to the paths given as the first and second argument.
//! Timings are best-of-three; all workloads are deterministic, so the
//! counter columns are exactly reproducible and any drift there is a
//! semantics change, not noise.
//!
//! Record families:
//!
//! * `chase:*` (BENCH_chase.json) — a depth-budgeted chase of a
//!   deterministic random database under the E1 (linear) family at chain
//!   ∈ {8, 16, 32} × query length ∈ {2, 3}, plus the E4 (guarded)
//!   workload; `triggers_fired` and `atoms` come from the engine's
//!   [`ChaseStats`].
//! * `contains:*` (BENCH_chase.json) — the E1 self-containment check at
//!   chain ∈ {8, 16, 32}; this path is rewriting-based, so the chase
//!   counters are zero. The chain=32 row is the headline number tracked
//!   against the pre-semi-naive baseline (≈4.5 ms on the reference
//!   machine).
//! * `rewrite:*` (BENCH_rewrite.json) — XRewrite on the E3 (non-recursive)
//!   family at strata ∈ {3, 4}, the E2/E8 sticky family at n ∈ {2, 3}, and
//!   the E1 linear family at chain=32 — `generated`, `candidates`, and
//!   `disjuncts` come from [`RewriteStats`]; the nr strata=4 row is the
//!   headline number tracked against the pre-parallel-rewrite baseline
//!   (≈1.8 s on the reference machine).
//! * `hom:*` (BENCH_chase.json) — homomorphism-kernel counters
//!   (`candidates_scanned`, `plan_cache_hits`) measured as process-global
//!   counter deltas around one chase, one rewriting, and one containment
//!   run; single-run, since the counters are deterministic per run.

use std::time::Instant;

use omq_bench::workloads::{
    guarded_seed_db, guarded_workload, linear_workload, nr_workload, random_db, sticky_workload,
};
use omq_chase::{chase, global_hom_snapshot, ChaseConfig, ChaseStats};
use omq_core::{contains, ContainmentConfig};
use omq_rewrite::{xrewrite, XRewriteConfig};

struct Record {
    workload: String,
    wall_ms: f64,
    triggers_fired: usize,
    atoms: usize,
}

struct RewriteRecord {
    workload: String,
    wall_ms: f64,
    generated: usize,
    candidates: usize,
    disjuncts: usize,
}

struct HomRecord {
    workload: String,
    wall_ms: f64,
    candidates_scanned: u64,
    plan_cache_hits: u64,
}

/// Runs `f` once and records the homomorphism-kernel work it caused as the
/// delta of the process-global counters.
fn hom_record(label: &str, f: impl FnOnce()) -> HomRecord {
    let before = global_hom_snapshot();
    let t = Instant::now();
    f();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let after = global_hom_snapshot();
    HomRecord {
        workload: label.to_owned(),
        wall_ms,
        candidates_scanned: after.candidates_scanned - before.candidates_scanned,
        plan_cache_hits: after.plan_cache_hits - before.plan_cache_hits,
    }
}

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::MAX;
    let mut out = None;
    for _ in 0..runs {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (out.unwrap(), best)
}

fn chase_record(label: String, mk: impl Fn() -> (usize, ChaseStats)) -> Record {
    let ((atoms, stats), wall_ms) = best_of(3, mk);
    Record {
        workload: label,
        wall_ms,
        triggers_fired: stats.triggers_fired,
        atoms,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_chase.json".into());
    let rewrite_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_rewrite.json".into());
    let mut records = Vec::new();

    for chain in [8usize, 16, 32] {
        for qlen in [2usize, 3] {
            let (omq, voc) = linear_workload(chain, qlen);
            records.push(chase_record(
                format!("chase:E1 chain={chain} qlen={qlen}"),
                || {
                    let mut voc = voc.clone();
                    let db = random_db(&omq, &mut voc, 12, 4, 7);
                    let out = chase(&db, &omq.sigma, &mut voc, &ChaseConfig::with_depth(3));
                    (out.instance.len(), out.stats)
                },
            ));
        }
    }
    {
        let (omq, voc) = guarded_workload(2);
        records.push(chase_record("chase:E4 qlen=2".into(), || {
            let mut voc = voc.clone();
            let db = guarded_seed_db(&mut voc);
            let out = chase(&db, &omq.sigma, &mut voc, &ChaseConfig::with_depth(6));
            (out.instance.len(), out.stats)
        }));
    }

    for chain in [8usize, 16, 32] {
        let (omq, voc) = linear_workload(chain, 2);
        let (checked, wall_ms) = best_of(3, || {
            let mut voc = voc.clone();
            let out = contains(&omq, &omq, &mut voc, &ContainmentConfig::default()).unwrap();
            assert!(out.result.is_contained(), "E1 self-containment must hold");
            out.witnesses_checked
        });
        let _ = checked;
        records.push(Record {
            workload: format!("contains:E1 chain={chain} qlen=2"),
            wall_ms,
            triggers_fired: 0,
            atoms: 0,
        });
    }

    let mut rewrites: Vec<RewriteRecord> = Vec::new();
    let mut rewrite_record = |label: String, mk: &dyn Fn() -> omq_rewrite::RewriteOutput| {
        let (out, wall_ms) = best_of(3, mk);
        rewrites.push(RewriteRecord {
            workload: label,
            wall_ms,
            generated: out.generated,
            candidates: out.stats.candidates,
            disjuncts: out.ucq.disjuncts.len(),
        });
    };
    for strata in [3usize, 4] {
        let (omq, voc) = nr_workload(strata);
        rewrite_record(format!("rewrite:E3 nr strata={strata}"), &|| {
            let mut voc = voc.clone();
            xrewrite(&omq, &mut voc, &XRewriteConfig::default()).unwrap()
        });
    }
    for n in [2usize, 3] {
        let (omq, voc) = sticky_workload(n);
        rewrite_record(format!("rewrite:E2 sticky n={n}"), &|| {
            let mut voc = voc.clone();
            xrewrite(&omq, &mut voc, &XRewriteConfig::default()).unwrap()
        });
    }
    {
        let (omq, voc) = linear_workload(32, 3);
        rewrite_record("rewrite:E1 linear chain=32 qlen=3".into(), &|| {
            let mut voc = voc.clone();
            xrewrite(&omq, &mut voc, &XRewriteConfig::default()).unwrap()
        });
    }

    // Homomorphism-kernel rows: counter deltas around one run each of the
    // headline chase, rewriting, and containment workloads.
    let mut hom_rows = Vec::new();
    {
        let (omq, voc) = linear_workload(32, 3);
        hom_rows.push(hom_record("hom:chase E1 chain=32 qlen=3", || {
            let mut voc = voc.clone();
            let db = random_db(&omq, &mut voc, 12, 4, 7);
            let out = chase(&db, &omq.sigma, &mut voc, &ChaseConfig::with_depth(3));
            std::hint::black_box(out.instance.len());
        }));
    }
    {
        let (omq, voc) = nr_workload(4);
        hom_rows.push(hom_record("hom:rewrite E3 nr strata=4", || {
            let mut voc = voc.clone();
            let out = xrewrite(&omq, &mut voc, &XRewriteConfig::default()).unwrap();
            std::hint::black_box(out.generated);
        }));
    }
    {
        let (omq, voc) = linear_workload(32, 2);
        hom_rows.push(hom_record("hom:contains E1 chain=32 qlen=2", || {
            let mut voc = voc.clone();
            let out = contains(&omq, &omq, &mut voc, &ContainmentConfig::default()).unwrap();
            assert!(out.result.is_contained());
        }));
    }

    let mut lines: Vec<String> = records
        .iter()
        .map(|r| {
            println!(
                "{:<32} {:>9.3} ms  triggers={:<7} atoms={}",
                r.workload, r.wall_ms, r.triggers_fired, r.atoms
            );
            format!(
                "  {{\"workload\": \"{}\", \"wall_ms\": {:.3}, \"triggers_fired\": {}, \"atoms\": {}}}",
                r.workload, r.wall_ms, r.triggers_fired, r.atoms
            )
        })
        .collect();
    lines.extend(hom_rows.iter().map(|r| {
        println!(
            "{:<32} {:>9.3} ms  scanned={:<9} cache_hits={}",
            r.workload, r.wall_ms, r.candidates_scanned, r.plan_cache_hits
        );
        format!(
            "  {{\"workload\": \"{}\", \"wall_ms\": {:.3}, \"candidates_scanned\": {}, \"plan_cache_hits\": {}}}",
            r.workload, r.wall_ms, r.candidates_scanned, r.plan_cache_hits
        )
    }));
    let json = format!("[\n{}\n]\n", lines.join(",\n"));
    std::fs::write(&out_path, json).expect("writing benchmark output");
    println!("wrote {out_path}");

    let mut json = String::from("[\n");
    for (i, r) in rewrites.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"workload\": \"{}\", \"wall_ms\": {:.3}, \"generated\": {}, \"candidates\": {}, \"disjuncts\": {}}}{}\n",
            r.workload,
            r.wall_ms,
            r.generated,
            r.candidates,
            r.disjuncts,
            if i + 1 < rewrites.len() { "," } else { "" }
        ));
        println!(
            "{:<36} {:>9.3} ms  gen={:<6} cand={:<7} disj={}",
            r.workload, r.wall_ms, r.generated, r.candidates, r.disjuncts
        );
    }
    json.push_str("]\n");
    std::fs::write(&rewrite_path, json).expect("writing rewrite benchmark output");
    println!("wrote {rewrite_path}");
}
