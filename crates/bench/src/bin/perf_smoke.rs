//! A fixed, small benchmark sweep for regression tracking.
//!
//! Runs in well under a minute and writes `BENCH_chase.json`,
//! `BENCH_rewrite.json`, and `BENCH_guarded.json` (arrays of per-workload
//! records) to the current directory, or to the paths given as the first,
//! second, and third argument.
//! Timings are best-of-three — `wall_ms` is the best run, and each row also
//! carries the `wall_min_ms`/`wall_max_ms` spread so scripts/bench_diff.py
//! can flag noisy rows instead of trusting a lucky best. All workloads are
//! deterministic, so the counter columns are exactly reproducible and any
//! drift there is a semantics change, not noise.
//!
//! **Phase columns** (`phase_<span>_us`, `phase_<span>_p50_us`,
//! `phase_<span>_p99_us`): the timed runs are *untraced* — no recorder is
//! installed, so they measure the passive-overhead configuration the <5%
//! regression bound is stated for — and each row's phase breakdown is then
//! harvested from one additional instrumented pass of the same workload.
//! Phase totals therefore come from a different run than `wall_ms`:
//! compare phase *shares*, not absolute phase times, across BENCH files.
//!
//! Record families:
//!
//! * `chase:*` (BENCH_chase.json) — a depth-budgeted chase of a
//!   deterministic random database under the E1 (linear) family at chain
//!   ∈ {8, 16, 32} × query length ∈ {2, 3}, plus the E4 (guarded)
//!   workload; `triggers_fired` and `atoms` come from the engine's
//!   [`ChaseStats`].
//! * `contains:*` (BENCH_chase.json) — the E1 self-containment check at
//!   chain ∈ {8, 16, 32}; this path is rewriting-based, so the chase
//!   counters are zero. The chain=32 row is the headline number tracked
//!   against the pre-semi-naive baseline (≈4.5 ms on the reference
//!   machine).
//! * `rewrite:*` (BENCH_rewrite.json) — XRewrite on the E3 (non-recursive)
//!   family at strata ∈ {3, 4}, the E2/E8 sticky family at n ∈ {2, 3}, and
//!   the E1 linear family at chain=32 — `generated`, `candidates`, and
//!   `disjuncts` come from [`RewriteStats`]; the nr strata=4 row is the
//!   headline number tracked against the pre-parallel-rewrite baseline
//!   (≈1.8 s on the reference machine).
//! * `hom:*` (BENCH_chase.json) — homomorphism-kernel counters
//!   (`candidates_scanned`, `plan_cache_hits`) measured as process-global
//!   counter deltas around one chase, one rewriting, and one containment
//!   run; single-run, since the counters are deterministic per run.
//! * `guarded:*` (BENCH_guarded.json) — the reduction workloads from
//!   `crates/reductions`: certain answers of the Prop. 15/18 witness family
//!   on its full-witness database, and the Thm. 16 tiling-reduction
//!   containment check (paper-report E7 "no" case). Counters are
//!   process-global deltas like the `hom:*` rows.
//!
//! Every family carries the adaptive-planner counters (`plans_reoptimized`
//! deterministic, `sketch_build_us` timing noise).

use std::sync::OnceLock;
use std::time::Instant;

use omq_bench::obsjson::{counter_fields, instrumented_pass, phase_fields};
use omq_bench::workloads::{
    guarded_seed_db, guarded_workload, linear_workload, nr_workload, random_db, sticky_workload,
    tiling_workload, witness_db, witness_workload,
};
use omq_chase::{certain_answers_via_chase, chase, global_hom_snapshot, ChaseConfig, ChaseStats};
use omq_core::{contains, ContainmentConfig};
use omq_guarded::{compile_encoding, EncodingConfig};
use omq_obs::flight::{FlightRecorder, SpanTree};
use omq_obs::metrics::MetricsRegistry;
use omq_rewrite::{xrewrite, XRewriteConfig};

struct Record {
    workload: String,
    timing: Timing,
    triggers_fired: usize,
    atoms: usize,
    plans_reoptimized: u64,
    phases: String,
}

struct RewriteRecord {
    workload: String,
    timing: Timing,
    generated: usize,
    candidates: usize,
    disjuncts: usize,
    plans_reoptimized: u64,
    sketch_build_us: u64,
    phases: String,
}

struct HomRecord {
    workload: String,
    timing: Timing,
    candidates_scanned: u64,
    plan_cache_hits: u64,
    plans_reoptimized: u64,
    sketch_build_us: u64,
    phases: String,
}

/// Best/min/max wall-clock of the untraced timing runs, in ms.
#[derive(Clone, Copy)]
struct Timing {
    wall_ms: f64,
    wall_min_ms: f64,
    wall_max_ms: f64,
}

impl Timing {
    fn fields(&self) -> String {
        format!(
            "\"wall_ms\": {:.3}, \"wall_min_ms\": {:.3}, \"wall_max_ms\": {:.3}",
            self.wall_ms, self.wall_min_ms, self.wall_max_ms
        )
    }
}

/// Runs `f` once and records the homomorphism-kernel work it caused as the
/// delta of the process-global counters; then one more instrumented pass
/// for the phase columns.
fn hom_record(label: &str, f: impl Fn()) -> HomRecord {
    let before = global_hom_snapshot();
    let t = Instant::now();
    f();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let after = global_hom_snapshot();
    let ((), agg) = instrumented_pass(&[], &f);
    HomRecord {
        workload: label.to_owned(),
        timing: Timing {
            wall_ms,
            wall_min_ms: wall_ms,
            wall_max_ms: wall_ms,
        },
        candidates_scanned: after.candidates_scanned - before.candidates_scanned,
        plan_cache_hits: after.plan_cache_hits - before.plan_cache_hits,
        plans_reoptimized: after.plans_reoptimized - before.plans_reoptimized,
        sketch_build_us: (after.sketch_build_ns - before.sketch_build_ns) / 1_000,
        phases: phase_fields(&agg),
    }
}

/// Like [`hom_record`] but with best-of-3 wall timing: the guarded-path
/// reduction rows are real workloads, not counter probes. Guarded rows
/// additionally carry the obs counters of the instrumented pass
/// (`ctr_bf_nodes_interned`, `ctr_fixpoint_rounds`,
/// `ctr_contain_masks_pruned`, …) — deterministic per workload, so any
/// drift there is a semantics change.
fn guarded_record(label: &str, f: impl Fn()) -> HomRecord {
    let ((), timing) = best_of(3, &f);
    let before = global_hom_snapshot();
    f();
    let after = global_hom_snapshot();
    let ((), agg) = instrumented_pass(&[], &f);
    HomRecord {
        workload: label.to_owned(),
        timing,
        candidates_scanned: after.candidates_scanned - before.candidates_scanned,
        plan_cache_hits: after.plan_cache_hits - before.plan_cache_hits,
        plans_reoptimized: after.plans_reoptimized - before.plans_reoptimized,
        sketch_build_us: (after.sketch_build_ns - before.sketch_build_ns) / 1_000,
        phases: format!("{}{}", phase_fields(&agg), counter_fields(&agg)),
    }
}

/// The telemetry plane armed for the whole sweep: a live
/// [`MetricsRegistry`] and [`FlightRecorder`] charged once per timed
/// pass, mirroring the per-request bookkeeping the serve tier does
/// (rolling-window observation + span-tree offer). The registry compiles
/// unconditionally, so the obs-vs-no-obs A/B in EXPERIMENTS.md measures
/// span instrumentation with the metrics plane active on both sides.
fn telemetry() -> &'static (MetricsRegistry, FlightRecorder) {
    static T: OnceLock<(MetricsRegistry, FlightRecorder)> = OnceLock::new();
    T.get_or_init(|| (MetricsRegistry::new(), FlightRecorder::new(250_000)))
}

/// Best-of-`runs` timing with no recorder installed (passive overhead
/// only); reports best, min and max. Each pass is charged to the armed
/// telemetry plane exactly as the serve tier charges a request.
fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, Timing) {
    let (registry, flight) = telemetry();
    let mut min = f64::MAX;
    let mut max = 0.0f64;
    let mut out = None;
    for _ in 0..runs {
        let t = Instant::now();
        let r = f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let us = (ms * 1e3) as u64;
        registry.observe_op("bench.pass", us, false);
        flight.offer(0, "bench.pass", us, SpanTree::root("bench.pass", us), None);
        min = min.min(ms);
        max = max.max(ms);
        out = Some(r);
    }
    (
        out.unwrap(),
        Timing {
            wall_ms: min,
            wall_min_ms: min,
            wall_max_ms: max,
        },
    )
}

fn chase_record(label: String, mk: impl Fn() -> (usize, ChaseStats)) -> Record {
    let ((atoms, stats), timing) = best_of(3, &mk);
    let (_, agg) = instrumented_pass(&[], &mk);
    Record {
        workload: label,
        timing,
        triggers_fired: stats.triggers_fired,
        atoms,
        plans_reoptimized: stats.plans_reoptimized,
        phases: phase_fields(&agg),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_chase.json".into());
    let rewrite_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_rewrite.json".into());
    let guarded_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_guarded.json".into());
    let mut records = Vec::new();

    for chain in [8usize, 16, 32] {
        for qlen in [2usize, 3] {
            let (omq, voc) = linear_workload(chain, qlen);
            records.push(chase_record(
                format!("chase:E1 chain={chain} qlen={qlen}"),
                || {
                    let mut voc = voc.clone();
                    let db = random_db(&omq, &mut voc, 12, 4, 7);
                    let out = chase(&db, &omq.sigma, &mut voc, &ChaseConfig::with_depth(3));
                    (out.instance.len(), out.stats)
                },
            ));
        }
    }
    {
        let (omq, voc) = guarded_workload(2);
        records.push(chase_record("chase:E4 qlen=2".into(), || {
            let mut voc = voc.clone();
            let db = guarded_seed_db(&mut voc);
            let out = chase(&db, &omq.sigma, &mut voc, &ChaseConfig::with_depth(6));
            (out.instance.len(), out.stats)
        }));
    }

    for chain in [8usize, 16, 32] {
        let (omq, voc) = linear_workload(chain, 2);
        let run = || {
            let mut voc = voc.clone();
            let out = contains(&omq, &omq, &mut voc, &ContainmentConfig::default()).unwrap();
            assert!(out.result.is_contained(), "E1 self-containment must hold");
            out.witnesses_checked
        };
        let (checked, timing) = best_of(3, run);
        let _ = checked;
        let (_, agg) = instrumented_pass(&[], run);
        records.push(Record {
            workload: format!("contains:E1 chain={chain} qlen=2"),
            timing,
            triggers_fired: 0,
            atoms: 0,
            plans_reoptimized: 0,
            phases: phase_fields(&agg),
        });
    }

    let mut rewrites: Vec<RewriteRecord> = Vec::new();
    let mut rewrite_record = |label: String, mk: &dyn Fn() -> omq_rewrite::RewriteOutput| {
        let (out, timing) = best_of(3, mk);
        let (_, agg) = instrumented_pass(&[], mk);
        rewrites.push(RewriteRecord {
            workload: label,
            timing,
            generated: out.generated,
            candidates: out.stats.candidates,
            disjuncts: out.ucq.disjuncts.len(),
            plans_reoptimized: out.stats.plans_reoptimized,
            sketch_build_us: out.stats.sketch_build_ns / 1_000,
            phases: phase_fields(&agg),
        });
    };
    for strata in [3usize, 4] {
        let (omq, voc) = nr_workload(strata);
        rewrite_record(format!("rewrite:E3 nr strata={strata}"), &|| {
            let mut voc = voc.clone();
            xrewrite(&omq, &mut voc, &XRewriteConfig::default()).unwrap()
        });
    }
    for n in [2usize, 3] {
        let (omq, voc) = sticky_workload(n);
        rewrite_record(format!("rewrite:E2 sticky n={n}"), &|| {
            let mut voc = voc.clone();
            xrewrite(&omq, &mut voc, &XRewriteConfig::default()).unwrap()
        });
    }
    {
        let (omq, voc) = linear_workload(32, 3);
        rewrite_record("rewrite:E1 linear chain=32 qlen=3".into(), &|| {
            let mut voc = voc.clone();
            xrewrite(&omq, &mut voc, &XRewriteConfig::default()).unwrap()
        });
    }

    // Homomorphism-kernel rows: counter deltas around one run each of the
    // headline chase, rewriting, and containment workloads.
    let mut hom_rows = Vec::new();
    {
        let (omq, voc) = linear_workload(32, 3);
        hom_rows.push(hom_record("hom:chase E1 chain=32 qlen=3", || {
            let mut voc = voc.clone();
            let db = random_db(&omq, &mut voc, 12, 4, 7);
            let out = chase(&db, &omq.sigma, &mut voc, &ChaseConfig::with_depth(3));
            std::hint::black_box(out.instance.len());
        }));
    }
    {
        let (omq, voc) = nr_workload(4);
        hom_rows.push(hom_record("hom:rewrite E3 nr strata=4", || {
            let mut voc = voc.clone();
            let out = xrewrite(&omq, &mut voc, &XRewriteConfig::default()).unwrap();
            std::hint::black_box(out.generated);
        }));
    }
    {
        let (omq, voc) = linear_workload(32, 2);
        hom_rows.push(hom_record("hom:contains E1 chain=32 qlen=2", || {
            let mut voc = voc.clone();
            let out = contains(&omq, &omq, &mut voc, &ContainmentConfig::default()).unwrap();
            assert!(out.result.is_contained());
        }));
    }

    // Guarded/reduction sweep: the Prop. 15/18 witness family evaluated on
    // its full-witness database at n ∈ {3..6}, the Thm. 16 tiling
    // reduction's containment check at initial-condition length k ∈ {2, 3},
    // and one C-tree/2WAPA encoding compile (the automata-pipeline row —
    // its `ctr_bf_nodes_interned`/`ctr_fixpoint_rounds` columns track the
    // hash-consed pool and the NTA fixpoint).
    let mut guarded_rows = Vec::new();
    for n in [3usize, 4, 5, 6] {
        let (omq, voc) = witness_workload(n);
        guarded_rows.push(guarded_record(
            &format!("guarded:witness counter n={n}"),
            || {
                let mut voc = voc.clone();
                let db = witness_db(n, &mut voc);
                let ans = certain_answers_via_chase(&omq, &db, &mut voc, &ChaseConfig::default())
                    .expect("witness chase terminates");
                assert!(!ans.is_empty(), "full witness derives Ans(0,1)");
            },
        ));
    }
    for k in [2usize, 3] {
        let omqs = tiling_workload(k);
        guarded_rows.push(guarded_record(
            &format!("guarded:tiling etp k={k} m=2"),
            || {
                let mut voc = omqs.voc.clone();
                let out =
                    contains(&omqs.q1, &omqs.q2, &mut voc, &ContainmentConfig::default()).unwrap();
                std::hint::black_box(out.witnesses_checked);
            },
        ));
    }
    {
        let (omq, voc) = guarded_workload(2);
        guarded_rows.push(guarded_record("guarded:encode E4 depth=2", || {
            let mut voc = voc.clone();
            let art = compile_encoding(&omq, &mut voc, &EncodingConfig::default())
                .expect("guarded workload encodes");
            assert_eq!(art.nonempty, Some(true), "encoding certifies nonempty");
            std::hint::black_box(art.nta_states);
        }));
    }

    let hom_line = |r: &HomRecord| {
        println!(
            "{:<32} {:>9.3} ms  scanned={:<9} cache_hits={} reopt={}",
            r.workload,
            r.timing.wall_ms,
            r.candidates_scanned,
            r.plan_cache_hits,
            r.plans_reoptimized
        );
        format!(
            "  {{\"workload\": \"{}\", {}, \"candidates_scanned\": {}, \"plan_cache_hits\": {}, \"plans_reoptimized\": {}, \"sketch_build_us\": {}{}}}",
            r.workload,
            r.timing.fields(),
            r.candidates_scanned,
            r.plan_cache_hits,
            r.plans_reoptimized,
            r.sketch_build_us,
            r.phases
        )
    };

    let mut lines: Vec<String> = records
        .iter()
        .map(|r| {
            println!(
                "{:<32} {:>9.3} ms  triggers={:<7} atoms={}",
                r.workload, r.timing.wall_ms, r.triggers_fired, r.atoms
            );
            format!(
                "  {{\"workload\": \"{}\", {}, \"triggers_fired\": {}, \"atoms\": {}, \"plans_reoptimized\": {}{}}}",
                r.workload,
                r.timing.fields(),
                r.triggers_fired,
                r.atoms,
                r.plans_reoptimized,
                r.phases
            )
        })
        .collect();
    lines.extend(hom_rows.iter().map(hom_line));
    let json = format!("[\n{}\n]\n", lines.join(",\n"));
    std::fs::write(&out_path, json).expect("writing benchmark output");
    println!("wrote {out_path}");

    let mut json = String::from("[\n");
    for (i, r) in rewrites.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"workload\": \"{}\", {}, \"generated\": {}, \"candidates\": {}, \"disjuncts\": {}, \"plans_reoptimized\": {}, \"sketch_build_us\": {}{}}}{}\n",
            r.workload,
            r.timing.fields(),
            r.generated,
            r.candidates,
            r.disjuncts,
            r.plans_reoptimized,
            r.sketch_build_us,
            r.phases,
            if i + 1 < rewrites.len() { "," } else { "" }
        ));
        println!(
            "{:<36} {:>9.3} ms  gen={:<6} cand={:<7} disj={}",
            r.workload, r.timing.wall_ms, r.generated, r.candidates, r.disjuncts
        );
    }
    json.push_str("]\n");
    std::fs::write(&rewrite_path, json).expect("writing rewrite benchmark output");
    println!("wrote {rewrite_path}");

    let guarded_lines: Vec<String> = guarded_rows.iter().map(hom_line).collect();
    let json = format!("[\n{}\n]\n", guarded_lines.join(",\n"));
    std::fs::write(&guarded_path, json).expect("writing guarded benchmark output");
    println!("wrote {guarded_path}");
}
