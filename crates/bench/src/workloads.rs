//! Parameterized OMQ families for the benchmark suite.

use omq_model::rng::SplitMix64;
use omq_model::{Atom, Cq, Instance, Omq, Schema, Term, Tgd, Ucq, Vocabulary};

/// E1 (Table 1, linear): a subclass chain of length `chain` feeding a
/// role, queried by an `R`-path of length `qlen`.
///
/// ```text
/// C₀(x) → C₁(x), …, C_{chain-1}(x) → C_chain(x)
/// C_chain(x) → ∃y R(x,y)
/// R(x,y) → C_chain(y)
/// q(x) :- R(x,y₁), R(y₁,y₂), …     (qlen atoms)
/// ```
pub fn linear_workload(chain: usize, qlen: usize) -> (Omq, Vocabulary) {
    let mut voc = Vocabulary::new();
    let cs: Vec<_> = (0..=chain).map(|i| voc.pred(&format!("C{i}"), 1)).collect();
    let r = voc.pred("R", 2);
    let mut sigma = Vec::new();
    for i in 0..chain {
        let x = Term::Var(voc.var("X"));
        sigma.push(Tgd::new(
            vec![Atom::new(cs[i], vec![x])],
            vec![Atom::new(cs[i + 1], vec![x])],
        ));
    }
    {
        let x = Term::Var(voc.var("X"));
        let y = Term::Var(voc.var("Yx"));
        sigma.push(Tgd::new(
            vec![Atom::new(cs[chain], vec![x])],
            vec![Atom::new(r, vec![x, y])],
        ));
        let (u, v) = (Term::Var(voc.var("U")), Term::Var(voc.var("V")));
        sigma.push(Tgd::new(
            vec![Atom::new(r, vec![u, v])],
            vec![Atom::new(cs[chain], vec![v])],
        ));
    }
    let vars: Vec<_> = (0..=qlen).map(|i| voc.var(&format!("Q{i}"))).collect();
    let body: Vec<Atom> = (0..qlen)
        .map(|i| Atom::new(r, vec![Term::Var(vars[i]), Term::Var(vars[i + 1])]))
        .collect();
    let q = Cq::new(vec![vars[0]], body);
    let schema = Schema::from_preds([cs[0], r]);
    (Omq::new(schema, sigma, Ucq::from_cq(q)), voc)
}

/// E3 (Table 1, non-recursive): `strata` layers of joining rules whose
/// rewriting doubles per layer — the `(max |body|)^{|sch(Σ)|}` behaviour of
/// Prop. 14.
///
/// ```text
/// Lᵢ(x,y), Lᵢ(y,z) → Lᵢ₊₁(x,z)
/// q(x,z) :- L_strata(x,z)
/// ```
pub fn nr_workload(strata: usize) -> (Omq, Vocabulary) {
    let mut voc = Vocabulary::new();
    let ls: Vec<_> = (0..=strata)
        .map(|i| voc.pred(&format!("L{i}"), 2))
        .collect();
    let mut sigma = Vec::new();
    for i in 0..strata {
        let (x, y, z) = (
            Term::Var(voc.var("X")),
            Term::Var(voc.var("Y")),
            Term::Var(voc.var("Z")),
        );
        sigma.push(Tgd::new(
            vec![Atom::new(ls[i], vec![x, y]), Atom::new(ls[i], vec![y, z])],
            vec![Atom::new(ls[i + 1], vec![x, z])],
        ));
    }
    let (x, z) = (voc.var("Qx"), voc.var("Qz"));
    let q = Cq::new(
        vec![x, z],
        vec![Atom::new(ls[strata], vec![Term::Var(x), Term::Var(z)])],
    );
    let schema = Schema::from_preds([ls[0]]);
    (Omq::new(schema, sigma, Ucq::from_cq(q)), voc)
}

/// E2 (Table 1, sticky): the Prop. 18 binary-counter family — witness size
/// and rewriting size grow as `2ⁿ` while the arity grows linearly.
pub fn sticky_workload(n: usize) -> (Omq, Vocabulary) {
    omq_reductions::prop18_family(n)
}

/// E4 (Table 1, guarded): a tree-expanding guarded ontology (not sticky,
/// not linear, infinite chase) with a path query of length `qlen`.
pub fn guarded_workload(qlen: usize) -> (Omq, Vocabulary) {
    let mut voc = Vocabulary::new();
    let g = voc.pred("G", 3);
    let r = voc.pred("R", 2);
    let (x, y, z, w) = (
        Term::Var(voc.var("X")),
        Term::Var(voc.var("Y")),
        Term::Var(voc.var("Z")),
        Term::Var(voc.var("W")),
    );
    let sigma = vec![Tgd::new(
        vec![Atom::new(g, vec![x, y, z]), Atom::new(r, vec![x, y])],
        vec![Atom::new(g, vec![y, z, w]), Atom::new(r, vec![y, z])],
    )];
    let vars: Vec<_> = (0..=qlen).map(|i| voc.var(&format!("Q{i}"))).collect();
    let body: Vec<Atom> = (0..qlen)
        .map(|i| Atom::new(r, vec![Term::Var(vars[i]), Term::Var(vars[i + 1])]))
        .collect();
    let q = Cq::boolean(body);
    let schema = Schema::from_preds([g, r]);
    (Omq::new(schema, sigma, Ucq::from_cq(q)), voc)
}

/// E14 (incremental maintenance, `omq-store`): transitive closure of an
/// EDB edge relation — every assert/retract visibly reshapes the derived
/// `T` facts, and the chase terminates on any finite database.
///
/// ```text
/// E(x,y) → T(x,y)
/// E(x,y), T(y,z) → T(x,z)
/// q(x,y) :- T(x,y)
/// ```
pub fn tc_workload() -> (Omq, Vocabulary) {
    let mut voc = Vocabulary::new();
    let e = voc.pred("E", 2);
    let t = voc.pred("T", 2);
    let (x, y, z) = (
        Term::Var(voc.var("X")),
        Term::Var(voc.var("Y")),
        Term::Var(voc.var("Z")),
    );
    let sigma = vec![
        Tgd::new(
            vec![Atom::new(e, vec![x, y])],
            vec![Atom::new(t, vec![x, y])],
        ),
        Tgd::new(
            vec![Atom::new(e, vec![x, y]), Atom::new(t, vec![y, z])],
            vec![Atom::new(t, vec![x, z])],
        ),
    ];
    let (qx, qy) = (voc.var("Qx"), voc.var("Qy"));
    let q = Cq::new(
        vec![qx, qy],
        vec![Atom::new(t, vec![Term::Var(qx), Term::Var(qy)])],
    );
    let schema = Schema::from_preds([e]);
    (Omq::new(schema, sigma, Ucq::from_cq(q)), voc)
}

/// The `i`-th edge of the [`tc_workload`] chain: `E(cᵢ, cᵢ₊₁)`.
pub fn chain_edge(i: usize, voc: &mut Vocabulary) -> Atom {
    let e = voc.pred_id("E").expect("tc workload declares E");
    let src = Term::Const(voc.constant(&format!("c{i}")));
    let dst = Term::Const(voc.constant(&format!("c{}", i + 1)));
    Atom::new(e, vec![src, dst])
}

/// A random database over the data schema of `omq`: `size` facts over a
/// domain of `domain` constants, deterministic in `seed`.
pub fn random_db(
    omq: &Omq,
    voc: &mut Vocabulary,
    size: usize,
    domain: usize,
    seed: u64,
) -> Instance {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let consts: Vec<_> = (0..domain)
        .map(|i| voc.constant(&format!("d{i}")))
        .collect();
    let preds: Vec<_> = omq.data_schema.preds().to_vec();
    let mut db = Instance::new();
    // The requested size may exceed the number of distinct facts that
    // exist over the domain; cap the attempts so generation always
    // terminates (the db is then simply as dense as possible).
    let mut attempts = 0usize;
    while db.len() < size && attempts < size.saturating_mul(64) {
        attempts += 1;
        let p = preds[rng.below(preds.len())];
        let args = (0..voc.arity(p))
            .map(|_| Term::Const(consts[rng.below(consts.len())]))
            .collect();
        db.insert(Atom::new(p, args));
    }
    db
}

/// The guarded workload's seed database: a `G`/`R` chain start.
pub fn guarded_seed_db(voc: &mut Vocabulary) -> Instance {
    let g = voc.pred_id("G").unwrap();
    let r = voc.pred_id("R").unwrap();
    let (a, b, c) = (
        Term::Const(voc.constant("a")),
        Term::Const(voc.constant("b")),
        Term::Const(voc.constant("c")),
    );
    Instance::from_atoms([Atom::new(g, vec![a, b, c]), Atom::new(r, vec![a, b])])
}

/// E6 (Figure 1): a chain of `k` tgd pairs through which the marking
/// procedure must propagate; `keep_join` selects the sticky variant
/// (`S(y,w)`, join value kept) or the non-sticky one (`S(x,w)`, join value
/// dropped) of the paper's Figure 1.
pub fn marking_chain(k: usize, keep_join: bool) -> (Vec<Tgd>, Vocabulary) {
    let mut voc = Vocabulary::new();
    let mut sigma = Vec::new();
    for i in 0..k {
        let t = voc.pred(&format!("T{i}"), 3);
        let s = voc.pred(&format!("S{i}"), 2);
        let r = voc.pred(&format!("R{i}"), 2);
        let p = voc.pred(&format!("P{i}"), 2);
        let (x, y, z, w) = (
            Term::Var(voc.var("X")),
            Term::Var(voc.var("Y")),
            Term::Var(voc.var("Z")),
            Term::Var(voc.var("W")),
        );
        // T_i(x,y,z) → ∃w S_i(y,w)   [sticky]   or   S_i(x,w) [not sticky]
        let kept = if keep_join { y } else { x };
        sigma.push(Tgd::new(
            vec![Atom::new(t, vec![x, y, z])],
            vec![Atom::new(s, vec![kept, w])],
        ));
        // R_i(x,y), P_i(y,z) → ∃w T_i(x,y,w)
        sigma.push(Tgd::new(
            vec![Atom::new(r, vec![x, y]), Atom::new(p, vec![y, z])],
            vec![Atom::new(t, vec![x, y, w])],
        ));
        // Chain the levels: S_i(x,y) → P_{i+1}(x,y). (Chaining into
        // R_{i+1} would let the level-(i+1) marking flow back into the
        // level-i join variable and wrongly de-stickify the kept-join
        // variant.)
        if i + 1 < k {
            let pn = voc.pred(&format!("P{}", i + 1), 2);
            let (u, v) = (Term::Var(voc.var("U")), Term::Var(voc.var("V")));
            sigma.push(Tgd::new(
                vec![Atom::new(s, vec![u, v])],
                vec![Atom::new(pn, vec![u, v])],
            ));
        }
    }
    (sigma, voc)
}

/// Prop. 15/18 witness family (`crates/reductions`): the binary-counter
/// OMQ `Qⁿ` whose non-emptiness witnesses need all `2ⁿ` atoms
/// `S(b̄,0,1)`.
pub fn witness_workload(n: usize) -> (Omq, Vocabulary) {
    omq_reductions::witness_families::counter_family(n)
}

/// The full-witness database `{S(b̄,0,1) : b̄ ∈ {0,1}ⁿ}` for
/// [`witness_workload`] — the smallest database on which `Qⁿ` is
/// non-empty.
pub fn witness_db(n: usize, voc: &mut Vocabulary) -> Instance {
    let s = voc.pred_id("S").expect("witness workload declares S");
    let zero = Term::Const(voc.constant("0"));
    let one = Term::Const(voc.constant("1"));
    let mut d = Instance::new();
    for bits in 0..(1u32 << n) {
        let mut args: Vec<Term> = (0..n)
            .map(|j| if bits >> j & 1 == 1 { one } else { zero })
            .collect();
        args.push(zero);
        args.push(one);
        d.insert(Atom::new(s, args));
    }
    d
}

/// The Thm. 16 tiling reduction (`crates/reductions`): the paper-report E7
/// "no" case (`T₁` solves the initial condition, the alternating `T₂`
/// cannot) compiled to a containment instance `(Q₁, Q₂)`. `k` is the
/// length of the universally-quantified initial condition; it scales the
/// 0-ary data schema (`Cᵢʲ` for `i ≤ k`) and thereby the witness-mask
/// space the containment sweep enumerates. The grid exponent `n` is the
/// smallest value with `2^n >= k` (the reduction requires the initial
/// condition to fit in one grid row).
pub fn tiling_workload(k: usize) -> omq_reductions::EtpOmqs {
    let alt = vec![(1u8, 2u8), (2, 1)];
    let mut n = 1u32;
    while (1usize << n) < k {
        n += 1;
    }
    omq_reductions::etp_to_containment(&omq_reductions::Etp {
        k,
        n,
        m: 2,
        h1: omq_reductions::tiling::all_pairs(2),
        v1: omq_reductions::tiling::all_pairs(2),
        h2: alt.clone(),
        v2: alt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_core::{detect_language, OmqLanguage};

    #[test]
    fn workloads_fall_in_their_languages() {
        assert_eq!(
            detect_language(&linear_workload(3, 2).0),
            OmqLanguage::Linear
        );
        assert_eq!(
            detect_language(&nr_workload(3).0),
            OmqLanguage::NonRecursive
        );
        // The counter family is both NR and sticky; detection prefers NR.
        let (s, _) = sticky_workload(2);
        let lang = detect_language(&s);
        assert!(matches!(
            lang,
            OmqLanguage::NonRecursive | OmqLanguage::Sticky
        ));
        assert_eq!(
            detect_language(&guarded_workload(2).0),
            OmqLanguage::Guarded
        );
    }

    #[test]
    fn random_db_is_over_schema() {
        let (omq, mut voc) = linear_workload(2, 2);
        let db = random_db(&omq, &mut voc, 20, 5, 7);
        assert_eq!(db.len(), 20);
        for a in db.atoms() {
            assert!(omq.data_schema.contains(a.pred));
        }
        // Determinism.
        let db2 = random_db(&omq, &mut voc, 20, 5, 7);
        assert_eq!(db, db2);
    }

    #[test]
    fn guarded_seed_matches_workload() {
        let (omq, mut voc) = guarded_workload(2);
        let db = guarded_seed_db(&mut voc);
        assert!(db.atoms().iter().all(|a| omq.data_schema.contains(a.pred)));
    }
}
