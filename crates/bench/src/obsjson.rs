//! Glue between the benchmark binaries and `omq-obs`: run one instrumented
//! pass of a workload and render the resulting per-phase breakdown as extra
//! BENCH-row JSON fields.
//!
//! The benchmark protocol is: *time untraced, then trace once*. Wall-clock
//! columns come from best-of-N runs with no recorder installed (so they
//! measure the passive overhead configuration the <5% regression bound is
//! stated for), and the phase columns come from a single separate pass under
//! an [`Aggregator`] recorder. Phase totals are therefore from a different
//! run than `wall_ms` — comparable in *shares*, not as absolute times (see
//! scripts/bench_diff.py).

use std::sync::Arc;

use omq_obs::{Aggregator, Recorder, Sink};

/// Runs `f` once under a fresh recorder and returns its result plus the
/// aggregated phases. `extra` sinks (e.g. a sweep-wide aggregator) see the
/// same events. With the `obs` feature off the recorder is inert and the
/// aggregator comes back empty.
pub fn instrumented_pass<T>(
    extra: &[Arc<dyn Sink>],
    f: impl FnOnce() -> T,
) -> (T, Arc<Aggregator>) {
    let agg = Arc::new(Aggregator::new());
    let mut sinks: Vec<Arc<dyn Sink>> = vec![agg.clone()];
    sinks.extend(extra.iter().cloned());
    let _g = omq_obs::install(Some(Recorder::new(sinks)));
    let out = f();
    (out, agg)
}

/// Renders an aggregator's phases as `, "phase_<name>_us": T,
/// "phase_<name>_p50_us": M, "phase_<name>_p99_us": N` fields (dots in span
/// names become underscores), ready to splice into a hand-formatted BENCH
/// row. Empty when nothing was recorded.
pub fn phase_fields(agg: &Aggregator) -> String {
    agg.phases()
        .iter()
        .map(|p| {
            let key = p.name.replace('.', "_");
            format!(
                ", \"phase_{key}_us\": {}, \"phase_{key}_p50_us\": {}, \"phase_{key}_p99_us\": {}",
                p.total_ns / 1_000,
                p.p50_us,
                p.p99_us
            )
        })
        .collect()
}

/// Renders an aggregator's counters as `, "ctr_<name>": v` fields (dots in
/// counter names become underscores). Counters are deterministic per
/// workload, so scripts/bench_diff.py treats these columns as semantics,
/// not noise. Empty when nothing was recorded.
pub fn counter_fields(agg: &Aggregator) -> String {
    let mut counters = agg.counters();
    counters.sort();
    counters
        .iter()
        .map(|(name, v)| {
            let key = name.replace('.', "_");
            format!(", \"ctr_{key}\": {v}")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_fields_render_sorted_and_sanitized() {
        let agg = Aggregator::new();
        agg.record("chase.round", std::time::Duration::from_micros(50));
        agg.record("chase", std::time::Duration::from_micros(80));
        let s = phase_fields(&agg);
        assert!(s.contains("\"phase_chase_us\": 80"));
        assert!(s.contains("\"phase_chase_round_us\": 50"));
        assert!(s.contains("\"phase_chase_round_p50_us\""));
        assert!(s.contains("\"phase_chase_round_p99_us\""));
        let chase = s.find("\"phase_chase_us\"").unwrap();
        let round = s.find("\"phase_chase_round_us\"").unwrap();
        assert!(chase < round, "phases are emitted in sorted order");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn instrumented_pass_captures_spans() {
        let (value, agg) = instrumented_pass(&[], || {
            let _s = omq_obs::span("chase");
            42
        });
        assert_eq!(value, 42);
        let phases = agg.phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "chase");
    }
}
