//! E2 — Table 1, row "Sticky": `Cont((S,CQ))` is coNEXPTIME-complete, with
//! runtime double-exponential only in the arity (Prop. 17). The Prop. 18
//! counter family grows the arity with `n`; containment time and witness
//! size should both blow up exponentially in `n`.

use criterion::{criterion_group, criterion_main, Criterion};

use omq_bench::workloads::sticky_workload;
use omq_core::{contains, ContainmentConfig, ContainmentResult};
use omq_model::{Atom, Cq, Omq, Term, Ucq};

fn containment_blowup(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2/cont_sticky_counter");
    g.sample_size(10);
    for n in [1usize, 2, 3] {
        let (q1, voc) = sticky_workload(n);
        g.bench_function(format!("n={n}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                // Right-hand side: an unsatisfiable OMQ over the same
                // schema; the decision must discover the 2^n witness.
                let z = voc.fresh_pred("Zb", 1);
                let x = voc.var("Xb");
                let q2 = Omq::new(
                    q1.data_schema.clone(),
                    vec![],
                    Ucq::from_cq(Cq::boolean(vec![Atom::new(z, vec![Term::Var(x)])])),
                );
                let out = contains(&q1, &q2, &mut voc, &ContainmentConfig::default()).unwrap();
                match out.result {
                    ContainmentResult::NotContained(w) => {
                        assert_eq!(w.database.len(), 1 << n)
                    }
                    other => panic!("{other:?}"),
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, containment_blowup);
criterion_main!(benches);
