//! E5 — Table 1, small-font rows: evaluation per language, on the same
//! workload families as the containment benches, to exhibit the paper's
//! claim that containment is at least as hard as evaluation (cf. Prop. 5).

use criterion::{criterion_group, criterion_main, Criterion};

use omq_bench::workloads::{
    guarded_seed_db, guarded_workload, linear_workload, nr_workload, random_db, sticky_workload,
};
use omq_core::{evaluate, EvalConfig, EvalGuarantee};

fn eval_per_language(c: &mut Criterion) {
    let mut g = c.benchmark_group("E5/eval_by_language");
    g.sample_size(10);

    let (lin, mut voc_l) = linear_workload(4, 2);
    let db_l = random_db(&lin, &mut voc_l, 50, 8, 1);
    g.bench_function("linear/|D|=50", |b| {
        b.iter(|| {
            let mut voc = voc_l.clone();
            let out = evaluate(&lin, &db_l, &mut voc, &EvalConfig::default());
            assert_eq!(out.guarantee, EvalGuarantee::Exact);
        })
    });

    let (nr, mut voc_n) = nr_workload(3);
    let db_n = random_db(&nr, &mut voc_n, 40, 10, 2);
    g.bench_function("non-recursive/|D|=40", |b| {
        b.iter(|| {
            let mut voc = voc_n.clone();
            let out = evaluate(&nr, &db_n, &mut voc, &EvalConfig::default());
            assert_eq!(out.guarantee, EvalGuarantee::Exact);
        })
    });

    let (st, mut voc_s) = sticky_workload(2);
    let db_s = random_db(&st, &mut voc_s, 30, 4, 3);
    g.bench_function("sticky-counter/|D|=30", |b| {
        b.iter(|| {
            let mut voc = voc_s.clone();
            let out = evaluate(&st, &db_s, &mut voc, &EvalConfig::default());
            assert_eq!(out.guarantee, EvalGuarantee::Exact);
        })
    });

    let (gu, mut voc_g) = guarded_workload(2);
    let db_g = guarded_seed_db(&mut voc_g);
    g.bench_function("guarded/chain-seed", |b| {
        b.iter(|| {
            let mut voc = voc_g.clone();
            let out = evaluate(&gu, &db_g, &mut voc, &EvalConfig::default());
            assert_ne!(out.guarantee, EvalGuarantee::SoundLowerBound);
        })
    });

    g.finish();
}

criterion_group!(benches, eval_per_language);
criterion_main!(benches);
