//! E3 — Table 1, row "Non-recursive": the rewriting (and hence the
//! containment witness) grows as `(max |body|)^{strata}` (Prop. 14);
//! containment time should grow exponentially in the number of strata.

use criterion::{criterion_group, criterion_main, Criterion};

use omq_bench::workloads::nr_workload;
use omq_core::{contains, ContainmentConfig};
use omq_rewrite::{bound_nonrecursive, xrewrite, XRewriteConfig};

fn rewriting_blowup(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3/rewrite_nr_strata");
    g.sample_size(10);
    for strata in [1usize, 2, 3] {
        let (q, voc) = nr_workload(strata);
        g.bench_function(format!("strata={strata}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
                // The single data-schema disjunct has 2^strata atoms,
                // within the Prop. 14 bound.
                assert_eq!(out.ucq.max_disjunct_size(), 1 << strata);
                assert!(out.ucq.max_disjunct_size() as u64 <= bound_nonrecursive(&q));
            })
        });
    }
    g.finish();
}

fn containment_self(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3/cont_nr_strata");
    g.sample_size(10);
    for strata in [1usize, 2, 3] {
        let (q, voc) = nr_workload(strata);
        g.bench_function(format!("strata={strata}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                let out = contains(&q, &q, &mut voc, &ContainmentConfig::default()).unwrap();
                assert!(out.result.is_contained());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, rewriting_blowup, containment_self);
criterion_main!(benches);
