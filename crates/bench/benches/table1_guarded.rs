//! E4 — Table 1, row "Guarded": evaluation is 2EXPTIME-complete in
//! combined complexity but the engine's cost is driven by the
//! stabilization depth (≈ query size); the anytime containment path should
//! refute quickly (first witness) and spend its budget otherwise.

use criterion::{criterion_group, criterion_main, Criterion};

use omq_bench::workloads::{guarded_seed_db, guarded_workload};
use omq_core::{contains, ContainmentConfig};
use omq_guarded::{guarded_certain_answers, Completeness, GuardedConfig};
use omq_model::{Atom, Cq, Omq, Term, Ucq};

fn guarded_eval_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4/eval_guarded_qlen");
    g.sample_size(10);
    for qlen in [1usize, 2, 3, 4] {
        let (q, mut voc0) = guarded_workload(qlen);
        let db = guarded_seed_db(&mut voc0);
        g.bench_function(format!("qlen={qlen}"), |b| {
            b.iter(|| {
                let mut voc = voc0.clone();
                let out = guarded_certain_answers(&q, &db, &mut voc, &GuardedConfig::default());
                assert_ne!(out.completeness, Completeness::LowerBound);
                assert!(!out.answers.is_empty());
            })
        });
    }
    g.finish();
}

fn guarded_containment_refutation(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4/cont_guarded_refute");
    g.sample_size(10);
    for qlen in [1usize, 2] {
        let (q1, voc) = guarded_workload(qlen);
        g.bench_function(format!("qlen={qlen}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                // RHS asks for an R-cycle, which no tree-shaped witness of
                // q1 provides: refuted by the first frozen disjunct.
                let r = voc.pred_id("R").unwrap();
                let (x, y) = (voc.var("Cx"), voc.var("Cy"));
                let q2 = Omq::new(
                    q1.data_schema.clone(),
                    q1.sigma.clone(),
                    Ucq::from_cq(Cq::boolean(vec![
                        Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
                        Atom::new(r, vec![Term::Var(y), Term::Var(x)]),
                    ])),
                );
                let out = contains(&q1, &q2, &mut voc, &ContainmentConfig::default()).unwrap();
                assert!(out.result.is_not_contained());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, guarded_eval_depth, guarded_containment_refutation);
criterion_main!(benches);
