//! E8 — Props. 12 / 14 / 17: the measured maximum disjunct size of the
//! XRewrite output stays within the theoretical bound functions `f_O`, and
//! the bench reports how tight the bounds are per family.

use criterion::{criterion_group, criterion_main, Criterion};

use omq_bench::workloads::{linear_workload, nr_workload, sticky_workload};
use omq_rewrite::{bound_linear, bound_nonrecursive, bound_sticky, xrewrite, XRewriteConfig};

fn bounds_hold(c: &mut Criterion) {
    let mut g = c.benchmark_group("E8/rewriting_vs_bounds");
    g.sample_size(10);

    for qlen in [2usize, 3] {
        let (q, voc) = linear_workload(3, qlen);
        let bound = bound_linear(&q);
        g.bench_function(format!("linear/qlen={qlen}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
                assert!(out.ucq.max_disjunct_size() as u64 <= bound);
                out.ucq.disjuncts.len()
            })
        });
    }

    for strata in [2usize, 3] {
        let (q, voc) = nr_workload(strata);
        let bound = bound_nonrecursive(&q);
        g.bench_function(format!("nr/strata={strata}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
                assert!(out.ucq.max_disjunct_size() as u64 <= bound);
                out.ucq.max_disjunct_size()
            })
        });
    }

    for n in [1usize, 2] {
        let (q, voc) = sticky_workload(n);
        let bound = bound_sticky(&q, &voc);
        g.bench_function(format!("sticky/n={n}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                let out = xrewrite(&q, &mut voc, &XRewriteConfig::default()).unwrap();
                assert!(out.ucq.max_disjunct_size() as u64 <= bound);
                out.ucq.max_disjunct_size()
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bounds_hold);
criterion_main!(benches);
