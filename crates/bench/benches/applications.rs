//! E11 — §7 applications: distribution over components (Thm. 28) and UCQ
//! rewritability, as static-analysis workloads.

use criterion::{criterion_group, criterion_main, Criterion};

use omq_core::apps::DistributionResult;
use omq_core::{distributes_over_components, is_ucq_rewritable, ContainmentConfig};
use omq_model::{parse_program, Omq, Schema, Vocabulary};

fn parse(text: &str, data: &[&str], q: &str) -> (Omq, Vocabulary) {
    let prog = parse_program(text).unwrap();
    let voc = prog.voc.clone();
    let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
    (
        Omq::new(schema, prog.tgds.clone(), prog.query(q).unwrap().clone()),
        voc,
    )
}

fn distribution_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("E11/distribution");
    g.sample_size(10);
    let cases = [
        ("connected", "q :- E(X,Y), E(Y,Z)\n", vec!["E"], true),
        ("disconnected", "q :- P(X), T(Y)\n", vec!["P", "T"], false),
        (
            "rescued-by-ontology",
            "P(X) -> exists Y . T(Y)\nq :- P(X), T(Y)\n",
            vec!["P", "T"],
            true,
        ),
    ];
    for (label, text, data, expected) in cases {
        let (q, voc) = parse(text, &data, "q");
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                let r = distributes_over_components(&q, &mut voc, &ContainmentConfig::default())
                    .unwrap();
                match (r, expected) {
                    (DistributionResult::Distributes, true)
                    | (DistributionResult::DoesNotDistribute, false) => {}
                    (other, _) => panic!("{label}: {other:?}"),
                }
            })
        });
    }
    g.finish();
}

fn rewritability_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("E11/ucq_rewritability");
    g.sample_size(10);
    let (lin, voc) = parse(
        "P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nT(X) -> P(X)\nq(X) :- R(X,Y), P(Y)\n",
        &["P", "T"],
        "q",
    );
    g.bench_function("linear", |b| {
        b.iter(|| {
            let mut voc = voc.clone();
            is_ucq_rewritable(&lin, &mut voc, &ContainmentConfig::default())
        })
    });
    g.finish();
}

criterion_group!(benches, distribution_checks, rewritability_checks);
criterion_main!(benches);
