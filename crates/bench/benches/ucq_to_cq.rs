//! E10 — Prop. 9: UCQ→CQ compilation is polynomial and semantics-
//! preserving. We sweep the number of disjuncts and measure compilation
//! plus evaluation of the compiled query.

use criterion::{criterion_group, criterion_main, Criterion};

use omq_chase::{certain_answers_via_chase, ChaseConfig};
use omq_model::{parse_program, parse_tgd, Instance, Omq, Schema, Vocabulary};
use omq_rewrite::ucq_omq_to_cq_omq;

fn build_union(k: usize) -> (Omq, Vocabulary) {
    let mut text = String::new();
    for i in 0..k {
        text.push_str(&format!("A{i}(X) -> P{i}(X)\n"));
        text.push_str(&format!("q :- P{i}(X)\n"));
    }
    let prog = parse_program(&text).unwrap();
    let voc = prog.voc.clone();
    let schema = Schema::from_preds((0..k).map(|i| voc.pred_id(&format!("A{i}")).unwrap()));
    (
        Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone()),
        voc,
    )
}

fn compile_and_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("E10/ucq_to_cq");
    g.sample_size(10);
    for k in [2usize, 4, 8] {
        let (q, voc0) = build_union(k);
        g.bench_function(format!("compile/disjuncts={k}"), |b| {
            b.iter(|| {
                let mut voc = voc0.clone();
                let compiled = ucq_omq_to_cq_omq(&q, &mut voc).unwrap();
                assert!(compiled.is_cq());
                compiled.sigma.len()
            })
        });
        g.bench_function(format!("eval/disjuncts={k}"), |b| {
            let mut voc = voc0.clone();
            let compiled = ucq_omq_to_cq_omq(&q, &mut voc).unwrap();
            let mut db = Instance::new();
            let t = parse_tgd(&mut voc, "true -> A0(a)").unwrap();
            for a in t.head {
                db.insert(a);
            }
            b.iter(|| {
                let mut voc = voc.clone();
                let ans =
                    certain_answers_via_chase(&compiled, &db, &mut voc, &ChaseConfig::default())
                        .unwrap();
                assert!(!ans.is_empty());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, compile_and_eval);
criterion_main!(benches);
