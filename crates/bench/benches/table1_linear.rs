//! E1 — Table 1, row "Linear": `Cont((L,CQ))` is PSPACE-complete, but the
//! runtime is single-exponential only in the query size and arity; for the
//! ontology-size knob it should scale mildly. We sweep both knobs and also
//! measure evaluation (NP/PSPACE row in small font) on the same inputs.

use criterion::{criterion_group, criterion_main, Criterion};

use omq_bench::workloads::{linear_workload, random_db};
use omq_core::{contains, evaluate, ContainmentConfig, EvalConfig};

fn containment_vs_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1/cont_linear_chain");
    g.sample_size(10);
    for chain in [2usize, 4, 8, 16] {
        let (q, voc) = linear_workload(chain, 2);
        g.bench_function(format!("chain={chain}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                let out = contains(&q, &q, &mut voc, &ContainmentConfig::default()).unwrap();
                assert!(out.result.is_contained());
            })
        });
    }
    g.finish();
}

fn containment_vs_query_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1/cont_linear_qsize");
    g.sample_size(10);
    for qlen in [1usize, 2, 3, 4] {
        let (q, voc) = linear_workload(4, qlen);
        g.bench_function(format!("qlen={qlen}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                let out = contains(&q, &q, &mut voc, &ContainmentConfig::default()).unwrap();
                assert!(out.result.is_contained());
            })
        });
    }
    g.finish();
}

fn evaluation_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1/eval_linear");
    g.sample_size(10);
    for size in [20usize, 50, 100] {
        let (q, mut voc) = linear_workload(4, 2);
        let db = random_db(&q, &mut voc, size, 8, 42);
        g.bench_function(format!("|D|={size}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                evaluate(&q, &db, &mut voc, &EvalConfig::default())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    containment_vs_chain,
    containment_vs_query_size,
    evaluation_baseline
);
criterion_main!(benches);
