//! E6 — Figure 1: the stickiness marking procedure. We scale the chain of
//! Figure-1 gadgets and measure the inductive marking fixpoint; the sticky
//! and non-sticky variants must classify correctly at every size, and the
//! cost should grow polynomially in `||Σ||`.

use criterion::{criterion_group, criterion_main, Criterion};

use omq_bench::workloads::marking_chain;
use omq_classes::{is_sticky, marked_variables};

fn marking_fixpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("E6/marking_chain");
    g.sample_size(10);
    for k in [4usize, 16, 64, 128] {
        let (sticky_sigma, _) = marking_chain(k, true);
        let (nonsticky_sigma, _) = marking_chain(k, false);
        g.bench_function(format!("sticky/k={k}"), |b| {
            b.iter(|| {
                let m = marked_variables(&sticky_sigma);
                assert!(is_sticky(&sticky_sigma));
                m.rounds
            })
        });
        g.bench_function(format!("non-sticky/k={k}"), |b| {
            b.iter(|| {
                let m = marked_variables(&nonsticky_sigma);
                assert!(!is_sticky(&nonsticky_sigma));
                m.rounds
            })
        });
    }
    g.finish();
}

criterion_group!(benches, marking_fixpoint);
criterion_main!(benches);
