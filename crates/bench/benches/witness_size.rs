//! E9 — Props. 15 / 18: minimal non-containment witnesses grow as `2ⁿ`.
//! The containment engine must actually *find* the exponential witness.

use criterion::{criterion_group, criterion_main, Criterion};

use omq_core::{contains, ContainmentConfig, ContainmentResult};
use omq_reductions::prop15_family;

fn witness_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9/witness_size");
    g.sample_size(10);
    for n in [1usize, 2, 3] {
        let (q1, q2, voc) = prop15_family(n);
        g.bench_function(format!("n={n}"), |b| {
            b.iter(|| {
                let mut voc = voc.clone();
                let out = contains(&q1, &q2, &mut voc, &ContainmentConfig::default()).unwrap();
                match out.result {
                    ContainmentResult::NotContained(w) => {
                        assert_eq!(w.database.len(), 1usize << n);
                        w.database.len()
                    }
                    other => panic!("{other:?}"),
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, witness_growth);
criterion_main!(benches);
