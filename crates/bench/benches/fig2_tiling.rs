//! E7 — Figure 2 / Theorem 16: end-to-end containment on the Extended
//! Tiling Problem reduction. The ontology contains the inductive
//! 2ⁱ×2ⁱ-tiling rules of Figure 2; the containment verdict must equal the
//! brute-force ETP answer.

use criterion::{criterion_group, criterion_main, Criterion};

use omq_core::{contains, ContainmentConfig};
use omq_reductions::{etp_to_containment, tiling::all_pairs, Etp};

fn etp_containment(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7/etp_containment");
    g.sample_size(10);
    let alt = vec![(1u8, 2u8), (2, 1)];
    let cases = [
        (
            "yes-instance",
            Etp {
                k: 1,
                n: 1,
                m: 2,
                h1: all_pairs(2),
                v1: all_pairs(2),
                h2: alt.clone(),
                v2: alt.clone(),
            },
        ),
        (
            "no-instance",
            Etp {
                k: 2,
                n: 1,
                m: 2,
                h1: all_pairs(2),
                v1: all_pairs(2),
                h2: alt.clone(),
                v2: alt,
            },
        ),
    ];
    for (label, etp) in cases {
        let expected = etp.has_solution();
        let omqs = etp_to_containment(&etp);
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut voc = omqs.voc.clone();
                let out =
                    contains(&omqs.q1, &omqs.q2, &mut voc, &ContainmentConfig::default()).unwrap();
                assert_eq!(out.result.is_contained(), expected);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, etp_containment);
criterion_main!(benches);
