//! Differential suite: a few hundred randomized requests replayed through
//! the serving layer under every scheduling/caching configuration must
//! produce byte-identical responses, and those responses must agree with
//! direct calls into the containment/evaluation APIs.

use omq_core::{contains_with, ContainmentConfig, ContainmentResult, EvalConfig, EvalGuarantee};
use omq_model::display::render_atom;
use omq_rewrite::DirectRewrite;
use omq_serve::{parse_request, response_to_json, Engine, EngineConfig, Json, Registry};

/// Deterministic PRNG (splitmix64) — no external crates, reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Small linear OMQ family over a shared schema: some pairs are contained,
/// some are not, one pair is an alpha-variant (equivalent) pair.
const PROGRAMS: &[(&str, &str)] = &[
    (
        "path2",
        "P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nq(X) :- R(X,Y), P(Y)\n",
    ),
    (
        "path2_alpha",
        "P(U) -> exists V . R(U,V)\nR(U,V) -> P(V)\nq(Z) :- R(Z,W), P(W)\n",
    ),
    ("reach", "P(X) -> exists Y . R(X,Y)\nq(X) :- R(X,Y)\n"),
    ("plain_p", "q(X) :- P(X)\n"),
    ("edge", "q(X) :- R(X,Y)\n"),
    (
        "strict",
        "P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nq(X) :- R(X,Y), R(Y,Z), P(Z)\n",
    ),
];

const FACT_POOL: &[&str] = &["P(a)", "P(b)", "R(a,b)", "R(b,c)", "R(c,a)", "P(c)"];

fn register_line(name: &str, program: &str) -> String {
    let escaped = program.replace('\n', "\\n");
    format!(
        r#"{{"op":"register","name":"{name}","program":"{escaped}","schema":["P","R"],"query":"q"}}"#
    )
}

/// The randomized request stream (id, line), identical for every config.
fn request_stream(n: usize) -> Vec<(usize, String)> {
    let mut rng = Rng(0x5eed);
    let mut out = Vec::with_capacity(n);
    for id in 0..n {
        let line = match rng.below(4) {
            0 => {
                let l = PROGRAMS[rng.below(PROGRAMS.len())].0;
                let r = PROGRAMS[rng.below(PROGRAMS.len())].0;
                format!(r#"{{"id":{id},"op":"contains","lhs":"{l}","rhs":"{r}"}}"#)
            }
            1 => {
                let l = PROGRAMS[rng.below(PROGRAMS.len())].0;
                let r = PROGRAMS[rng.below(PROGRAMS.len())].0;
                format!(r#"{{"id":{id},"op":"equivalent","lhs":"{l}","rhs":"{r}"}}"#)
            }
            2 => {
                let name = PROGRAMS[rng.below(PROGRAMS.len())].0;
                let k = 1 + rng.below(FACT_POOL.len() - 1);
                let facts: Vec<String> = (0..k)
                    .map(|_| format!("\"{}\"", FACT_POOL[rng.below(FACT_POOL.len())]))
                    .collect();
                format!(
                    r#"{{"id":{id},"op":"evaluate","name":"{name}","facts":[{}]}}"#,
                    facts.join(",")
                )
            }
            _ => {
                let name = PROGRAMS[rng.below(PROGRAMS.len())].0;
                format!(r#"{{"id":{id},"op":"classify","name":"{name}"}}"#)
            }
        };
        out.push((id, line));
    }
    out
}

/// Runs the stream through one engine config (optionally shuffled) and
/// returns the rendered response line per request id.
fn run_config(threads: usize, cache: usize, shuffle_seed: Option<u64>, n: usize) -> Vec<String> {
    let engine = Engine::new(EngineConfig {
        threads,
        cache_capacity: cache,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let mut batch: Vec<_> = PROGRAMS
        .iter()
        .map(|(name, prog)| parse_request(&register_line(name, prog)))
        .collect();
    let mut stream = request_stream(n);
    if let Some(seed) = shuffle_seed {
        let mut rng = Rng(seed);
        // Fisher–Yates.
        for i in (1..stream.len()).rev() {
            stream.swap(i, rng.below(i + 1));
        }
    }
    batch.extend(stream.iter().map(|(_, line)| parse_request(line)));
    let responses = engine.execute_batch(&batch);
    let mut by_id = vec![String::new(); n];
    for resp in &responses[PROGRAMS.len()..] {
        let id = resp.id.as_ref().and_then(Json::as_u64).unwrap() as usize;
        by_id[id] = response_to_json(resp).to_string();
    }
    by_id
}

/// Every configuration — sequential, parallel, cached, uncached, shuffled
/// arrival — yields byte-identical response lines per request id.
#[test]
fn all_configs_agree_byte_for_byte() {
    const N: usize = 300;
    let baseline = run_config(1, 0, None, N);
    assert!(baseline.iter().all(|l| !l.is_empty()));
    for (threads, cache, seed) in [
        (1, 256, None),
        (0, 0, None),
        (0, 256, None),
        (0, 256, Some(0xabcd)),
        (1, 2, Some(0x1234)), // tiny cache: constant eviction churn
    ] {
        let got = run_config(threads, cache, seed, N);
        for id in 0..N {
            assert_eq!(
                got[id], baseline[id],
                "config (threads={threads}, cache={cache}, shuffle={seed:?}) diverged on id {id}"
            );
        }
    }
}

/// The serve responses agree with direct calls into `omq_core`.
#[test]
fn serve_verdicts_match_direct_api_calls() {
    const N: usize = 120;
    let lines = run_config(0, 256, None, N);

    // Reference registry: the same programs, the same shared vocabulary.
    let mut reg = Registry::new();
    for (name, prog) in PROGRAMS {
        reg.register(name, prog, &["P", "R"], "q").unwrap();
    }

    let mut cfg = ContainmentConfig {
        threads: 1,
        ..Default::default()
    };
    cfg.rewrite.threads = 1;
    cfg.eval.rewrite.threads = 1;

    let mut checked_contains = 0;
    let mut checked_eval = 0;
    for (id, line) in request_stream(N) {
        let req = omq_serve::json::parse(&line).unwrap();
        let resp = omq_serve::json::parse(&lines[id]).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        match req.get("op").and_then(Json::as_str).unwrap() {
            "contains" => {
                let l = reg
                    .get(req.get("lhs").and_then(Json::as_str).unwrap())
                    .unwrap()
                    .clone();
                let r = reg
                    .get(req.get("rhs").and_then(Json::as_str).unwrap())
                    .unwrap()
                    .clone();
                let mut voc = reg.vocabulary().clone();
                let out =
                    contains_with(&l.omq, &r.omq, &mut voc, &cfg, &mut DirectRewrite).unwrap();
                let verdict = resp.get("verdict").and_then(Json::as_str).unwrap();
                match &out.result {
                    ContainmentResult::Contained => assert_eq!(verdict, "contained"),
                    ContainmentResult::NotContained(w) => {
                        assert_eq!(verdict, "not_contained");
                        let expect: Vec<String> = w
                            .database
                            .atoms()
                            .iter()
                            .map(|a| render_atom(&voc, a))
                            .collect();
                        let got: Vec<&str> =
                            resp.get("witness").and_then(Json::as_str_array).unwrap();
                        assert_eq!(got, expect, "witness database on id {id}");
                    }
                    ContainmentResult::Unknown(_) => panic!("unlimited budget returned Unknown"),
                }
                checked_contains += 1;
            }
            "evaluate" => {
                let name = req.get("name").and_then(Json::as_str).unwrap();
                let regd = reg.get(name).unwrap().clone();
                let mut voc = reg.vocabulary().clone();
                let mut atoms = Vec::new();
                for f in req.get("facts").and_then(Json::as_str_array).unwrap() {
                    let t = omq_model::parse_tgd(&mut voc, &format!("true -> {f}")).unwrap();
                    atoms.extend(t.head);
                }
                let db = omq_model::Instance::from_atoms(atoms);
                let mut ecfg = EvalConfig {
                    ..Default::default()
                };
                ecfg.rewrite.threads = 1;
                let out = omq_core::evaluate(&regd.omq, &db, &mut voc, &ecfg);
                assert_eq!(out.guarantee, EvalGuarantee::Exact);
                let mut expect: Vec<Vec<String>> = out
                    .answers
                    .iter()
                    .map(|t| t.iter().map(|&c| voc.const_name(c).to_owned()).collect())
                    .collect();
                expect.sort();
                let got: Vec<Vec<String>> = resp
                    .get("answers")
                    .and_then(Json::as_array)
                    .unwrap()
                    .iter()
                    .map(|t| {
                        t.as_str_array()
                            .unwrap()
                            .into_iter()
                            .map(str::to_owned)
                            .collect()
                    })
                    .collect();
                assert_eq!(got, expect, "answers on id {id}");
                checked_eval += 1;
            }
            _ => {}
        }
    }
    assert!(
        checked_contains >= 10 && checked_eval >= 10,
        "stream too thin"
    );
}

/// The `stats` response surfaces the homomorphism-kernel counters. They are
/// process-global (monotone across engines and threads), so the assertions
/// are presence, well-formedness, and monotonicity — never exact values.
#[test]
fn stats_expose_hom_kernel_counters() {
    let read = |resp: &omq_serve::Response| -> Vec<u64> {
        let json = omq_serve::json::parse(&response_to_json(resp).to_string()).unwrap();
        let hk = json.get("hom_kernel").expect("hom_kernel object in stats");
        [
            "candidates_scanned",
            "backtracks",
            "homs_found",
            "plans_compiled",
            "plan_cache_hits",
            "prefilter_rejects",
            "plans_reoptimized",
            "est_ratio_le_1",
            "est_ratio_le_4",
            "est_ratio_gt_4",
            "sketch_build_us",
        ]
        .iter()
        .map(|f| hk.get(f).and_then(Json::as_u64).expect("numeric counter"))
        .collect()
    };
    let engine = Engine::new(EngineConfig {
        threads: 1,
        cache_capacity: 64,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let mut batch: Vec<_> = PROGRAMS
        .iter()
        .map(|(name, prog)| parse_request(&register_line(name, prog)))
        .collect();
    batch.push(parse_request(r#"{"id":0,"op":"stats"}"#));
    let before = read(engine.execute_batch(&batch).last().unwrap());

    let work = vec![
        parse_request(r#"{"id":1,"op":"contains","lhs":"path2","rhs":"strict"}"#),
        parse_request(r#"{"id":2,"op":"stats"}"#),
    ];
    let responses = engine.execute_batch(&work);
    let after = read(responses.last().unwrap());

    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        assert!(a >= b, "hom_kernel counter {i} went backwards: {b} -> {a}");
    }
    // The containment check between the stats probes did real kernel work.
    assert!(after[0] > before[0], "no candidates scanned by contains");
    assert!(after[3] > before[3], "no plans compiled by contains");
}

/// Alias registrations (alpha-variant OMQs) share cache slots: the verdict
/// for `path2 ⊑ strict` warms the cache for `path2_alpha ⊑ strict`.
#[test]
fn alias_registrations_share_cache_slots() {
    let engine = Engine::new(EngineConfig {
        threads: 1,
        cache_capacity: 64,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let mut batch: Vec<_> = PROGRAMS
        .iter()
        .map(|(name, prog)| parse_request(&register_line(name, prog)))
        .collect();
    batch.push(parse_request(
        r#"{"id":0,"op":"contains","lhs":"path2","rhs":"strict"}"#,
    ));
    batch.push(parse_request(
        r#"{"id":1,"op":"contains","lhs":"path2_alpha","rhs":"strict"}"#,
    ));
    let out = engine.execute_batch(&batch);
    let (_, verdicts, _) = engine.cache_stats();
    assert_eq!(verdicts.insertions, 1, "one key for both name pairs");
    assert_eq!(verdicts.hits, 1, "second request was a verdict-cache hit");
    assert_eq!(
        out[PROGRAMS.len()].outcome,
        out[PROGRAMS.len() + 1].outcome,
        "alias pair replays the identical response"
    );
}
