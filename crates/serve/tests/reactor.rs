//! The nonblocking serve front end, end to end over real sockets:
//! multiplexed round trips, response ordering under interleaving, a 4×
//! overload burst the scheduler must survive, and the structured `shed`
//! answer under admission pressure.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use omq_serve::json::{self, Json};
use omq_serve::{serve_reactor, EngineConfig, ReactorConfig, ShardedEngine};

const REGISTER: &str = r#"{"op":"register","name":"lin","program":"P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nq(X) :- R(X,Y), P(Y)","schema":["P","R"],"query":"q"}"#;

/// Boots a reactor on an ephemeral port; returns the address and the
/// engine (for counter assertions). The reactor thread runs until the
/// test process exits — it owns only its own sockets.
fn boot(
    cfg: EngineConfig,
    shards: usize,
    watermark: usize,
    workers: usize,
) -> (String, Arc<ShardedEngine>) {
    let engine = Arc::new(ShardedEngine::new(cfg, shards, watermark));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let runtime = engine.runtime();
    let server = Arc::clone(&engine);
    std::thread::spawn(move || {
        let _ = serve_reactor(server, listener, ReactorConfig { workers }, runtime);
    });
    (addr, engine)
}

/// Sends `batches` (each a slice of request lines) on one connection,
/// reading each batch's responses before sending the next; returns every
/// response line.
fn round_trips(addr: &str, batches: &[&[String]]) -> Vec<String> {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    for batch in batches {
        for line in batch.iter() {
            writeln!(writer, "{line}").unwrap();
        }
        writeln!(writer).unwrap();
        writer.flush().unwrap();
        for _ in 0..batch.len() {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(!line.is_empty(), "connection closed mid-batch");
            lines.push(line.trim_end().to_owned());
        }
    }
    lines
}

fn id_of(line: &str) -> Option<u64> {
    json::parse(line).ok()?.get("id").and_then(Json::as_u64)
}

#[test]
fn multiplexed_round_trip_preserves_order_and_bytes() {
    let (addr, _engine) = boot(
        EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        },
        2,
        0,
        2,
    );
    let setup = [REGISTER.to_owned()];
    let queries: Vec<String> = (0..6)
        .map(|i| format!(r#"{{"id":{i},"op":"contains","lhs":"lin","rhs":"lin"}}"#))
        .collect();
    let out = round_trips(&addr, &[&setup, &queries]);
    assert_eq!(out.len(), 7);
    assert!(out[0].contains(r#""registered":"lin""#), "{}", out[0]);
    for (i, line) in out[1..].iter().enumerate() {
        assert_eq!(id_of(line), Some(i as u64), "order broken at {i}: {line}");
        assert!(line.contains(r#""verdict":"contained""#), "{line}");
    }
    // Two concurrent connections interleave without cross-talk.
    let h1 = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            round_trips(
                &addr,
                &[&(0..8)
                    .map(|i| format!(r#"{{"id":{i},"op":"classify","name":"lin"}}"#))
                    .collect::<Vec<_>>()],
            )
        })
    };
    let h2 = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            round_trips(
                &addr,
                &[&(100..108)
                    .map(|i| format!(r#"{{"id":{i},"op":"contains","lhs":"lin","rhs":"lin"}}"#))
                    .collect::<Vec<_>>()],
            )
        })
    };
    for (start, lines) in [(0u64, h1.join().unwrap()), (100u64, h2.join().unwrap())] {
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(id_of(line), Some(start + i as u64), "{line}");
        }
    }
}

/// EOF without a trailing blank line still flushes the final batch — the
/// `serve_lines` framing contract, kept by the reactor.
#[test]
fn eof_flushes_the_unterminated_batch() {
    let (addr, _engine) = boot(EngineConfig::default(), 1, 0, 1);
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(format!("{REGISTER}\n{}", r#"{"id":9,"op":"classify","name":"lin"}"#).as_bytes())
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut text = String::new();
    BufReader::new(stream).read_to_string(&mut text).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert!(lines[1].contains(r#""language":"#), "{}", lines[1]);
}

/// A 4×-capacity burst: many connections firing simultaneously at a
/// 2-worker reactor. Every request gets exactly one response (answered or
/// shed, never dropped, never a poisoned worker), and the server still
/// answers afterwards.
#[test]
fn scheduler_survives_a_four_x_overload_burst() {
    let (addr, engine) = boot(
        EngineConfig {
            threads: 1,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
        1,
        8,
        2,
    );
    let _ = round_trips(&addr, &[&[REGISTER.to_owned()]]);
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let batch: Vec<String> = (0..8)
                    .map(|i| {
                        format!(
                            r#"{{"id":{},"op":"contains","lhs":"lin","rhs":"lin"}}"#,
                            c * 100 + i
                        )
                    })
                    .collect();
                round_trips(&addr, &[&batch])
            })
        })
        .collect();
    let mut answered = 0usize;
    let mut shed = 0usize;
    for client in clients {
        let lines = client.join().unwrap();
        assert_eq!(lines.len(), 8, "every request is answered exactly once");
        for line in lines {
            let json = json::parse(&line).unwrap();
            if json.get("ok") == Some(&Json::Bool(true)) {
                answered += 1;
            } else {
                let err = json.get("error").expect("structured error");
                assert_eq!(
                    err.get("kind").and_then(Json::as_str),
                    Some("shed"),
                    "only shedding may refuse: {line}"
                );
                assert!(err.get("queue_depth").and_then(Json::as_u64).is_some());
                assert_eq!(err.get("watermark").and_then(Json::as_u64), Some(8));
                assert_eq!(err.get("retry"), Some(&Json::Bool(true)));
                shed += 1;
            }
        }
    }
    assert_eq!(answered + shed, 64);
    assert!(answered > 0, "shedding must not refuse everything");
    // The pool survived: a fresh request gets a real verdict.
    let after = round_trips(
        &addr,
        &[&[r#"{"id":7,"op":"contains","lhs":"lin","rhs":"lin"}"#.to_owned()]],
    );
    assert!(
        after[0].contains(r#""verdict":"contained""#),
        "{}",
        after[0]
    );
    assert_eq!(engine.runtime().shed_total() as usize, shed);
}

/// Deterministic shed: a single worker is pinned down by a big batch, so
/// a second connection's solver request must observe a queue depth over
/// the watermark and come back `shed` — while non-sheddable ops (stats)
/// are always admitted.
#[test]
fn saturated_queue_sheds_structured_and_admits_diagnostics() {
    let (addr, engine) = boot(
        EngineConfig {
            threads: 1,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
        1,
        4,
        1,
    );
    let _ = round_trips(&addr, &[&[REGISTER.to_owned()]]);
    let blocker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let batch: Vec<String> = (0..96)
                .map(|i| format!(r#"{{"id":{i},"op":"contains","lhs":"lin","rhs":"lin"}}"#))
                .collect();
            round_trips(&addr, &[&batch])
        })
    };
    // Wait until the blocker's batch is actually occupying the queue.
    while engine.runtime().requests_total() < 97 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let probe = round_trips(
        &addr,
        &[&[
            r#"{"id":1,"op":"contains","lhs":"lin","rhs":"lin"}"#.to_owned(),
            r#"{"id":2,"op":"stats"}"#.to_owned(),
        ]],
    );
    let shed = json::parse(&probe[0]).unwrap();
    let err = shed.get("error").expect("saturated probe is refused");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("shed"));
    assert!(
        err.get("queue_depth").and_then(Json::as_u64).unwrap() >= 4,
        "{}",
        probe[0]
    );
    let stats = json::parse(&probe[1]).unwrap();
    assert_eq!(
        stats.get("ok"),
        Some(&Json::Bool(true)),
        "stats is never shed: {}",
        probe[1]
    );
    assert!(
        stats.get("reactor").is_some(),
        "stats carries the reactor block: {}",
        probe[1]
    );
    let lines = blocker.join().unwrap();
    assert_eq!(lines.len(), 96, "the blocking batch is fully answered");
}
