//! Serve-tier store semantics: assert/retract/snapshot/evaluate-at behave
//! identically across thread counts, pinned versions stay answerable and
//! stable while the head moves, stale versions fail with a structured
//! error, and a deadline that expires mid-maintenance degrades the one
//! response without poisoning the store.

use omq_serve::{parse_request, response_to_json, Engine, EngineConfig, Json, Response};

/// Transitive closure over an EDB relation `E`; `q` asks for every
/// reachable pair, so each assert/retract visibly reshapes the answers.
const REGISTER: &str = r#"{"op":"register","name":"tc","program":"E(X,Y) -> T(X,Y)\nE(X,Y), T(Y,Z) -> T(X,Z)\nq(X,Y) :- T(X,Y)","schema":["E"],"query":"q"}"#;

fn field<'a>(resp: &'a Response, key: &str) -> Option<&'a Json> {
    resp.outcome
        .as_ref()
        .ok()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn run(engine: &Engine, lines: &[String]) -> Vec<Response> {
    let batch: Vec<_> = lines.iter().map(|l| parse_request(l)).collect();
    engine.execute_batch(&batch)
}

fn engine(threads: usize, compact_threshold: usize) -> Engine {
    Engine::new(EngineConfig {
        threads,
        cache_capacity: 64,
        default_deadline_ms: None,
        store_compact_threshold: compact_threshold,
        cache_dir: None,
        ..EngineConfig::default()
    })
}

/// One mutate-heavy script, run at threads=1 and threads=auto: every
/// response line must be byte-identical. Store ops are batch barriers, so
/// the interleaving the client wrote is the interleaving both pools see.
#[test]
fn mutate_sequences_agree_across_thread_counts() {
    let mut lines = vec![REGISTER.to_owned()];
    let mut id = 0usize;
    let mut push = |lines: &mut Vec<String>, body: &str| {
        lines.push(format!(r#"{{"id":{id},{body}}}"#));
        id += 1;
    };
    push(
        &mut lines,
        r#""op":"assert","name":"tc","facts":["E(a,b)","E(b,c)"]"#,
    );
    push(&mut lines, r#""op":"evaluate","name":"tc""#);
    push(&mut lines, r#""op":"snapshot","name":"tc""#);
    push(
        &mut lines,
        r#""op":"assert","name":"tc","facts":["E(c,d)"]"#,
    );
    push(&mut lines, r#""op":"evaluate","name":"tc""#);
    push(&mut lines, r#""op":"evaluate","name":"tc","at":1"#);
    push(
        &mut lines,
        r#""op":"retract","name":"tc","facts":["E(b,c)"]"#,
    );
    push(&mut lines, r#""op":"evaluate","name":"tc""#);
    // A stateless evaluate interleaved with the store ops: it fans out on
    // the parallel pool yet must render identically.
    push(
        &mut lines,
        r#""op":"evaluate","name":"tc","facts":["E(x,y)"]"#,
    );

    let base: Vec<String> = run(&engine(1, 2), &lines)
        .iter()
        .map(|r| response_to_json(r).to_string())
        .collect();
    let auto: Vec<String> = run(&engine(0, 2), &lines)
        .iter()
        .map(|r| response_to_json(r).to_string())
        .collect();
    assert_eq!(base, auto, "thread count changed a store response");

    // Sanity on content, not just agreement: the final head has edges
    // a->b, c->d, so exactly two reachable pairs remain.
    let out = run(&engine(1, 2), &lines);
    assert_eq!(field(&out[8], "count").and_then(Json::as_u64), Some(2));
    assert_eq!(
        field(&out[8], "guarantee").and_then(Json::as_str),
        Some("exact")
    );
}

/// A pinned version answers identically before and after later asserts
/// and compactions; the moving head sees every mutation.
#[test]
fn evaluate_at_a_snapshot_is_stable_while_the_head_moves() {
    // threshold=1: every unpinned version is compacted away immediately,
    // so stability below can only come from the snapshot pin.
    let eng = engine(0, 1);
    let out = run(
        &eng,
        &[
            REGISTER.to_owned(),
            r#"{"id":0,"op":"assert","name":"tc","facts":["E(a,b)","E(b,c)"]}"#.into(),
            r#"{"id":1,"op":"snapshot","name":"tc"}"#.into(),
            r#"{"id":2,"op":"evaluate","name":"tc","at":1}"#.into(),
        ],
    );
    let pinned = field(&out[2], "version").and_then(Json::as_u64);
    assert_eq!(pinned, Some(1), "snapshot pins the current head version");
    assert!(field(&out[2], "pinned").is_some());
    let before = response_to_json(&out[3]).to_string();
    assert_eq!(field(&out[3], "count").and_then(Json::as_u64), Some(3));

    // Grow the head past the pin, forcing compactions along the way.
    let mut lines = Vec::new();
    for (i, f) in ["E(c,d)", "E(d,e)", "E(e,f)"].iter().enumerate() {
        lines.push(format!(
            r#"{{"id":{i},"op":"assert","name":"tc","facts":["{f}"]}}"#
        ));
    }
    lines.push(r#"{"id":90,"op":"evaluate","name":"tc","at":1}"#.into());
    lines.push(r#"{"id":91,"op":"evaluate","name":"tc"}"#.into());
    let out2 = run(&eng, &lines);
    let after = response_to_json(&out2[3]).to_string();
    // Byte-identical except the echoed id.
    assert_eq!(
        before.replace(r#""id":2"#, ""),
        after.replace(r#""id":90"#, ""),
        "pinned version drifted under later asserts"
    );
    // Head: chain a..f => 5+4+3+2+1 = 15 reachable pairs.
    assert_eq!(field(&out2[4], "count").and_then(Json::as_u64), Some(15));
    assert_eq!(field(&out2[4], "version").and_then(Json::as_u64), Some(4));
}

/// Versions the store can no longer reconstruct — compacted-away or not
/// yet minted — fail with the structured `stale_version` error kind, and
/// the store keeps serving afterwards.
#[test]
fn unreconstructable_versions_are_structured_errors() {
    let eng = engine(1, 1);
    let out = run(
        &eng,
        &[
            REGISTER.to_owned(),
            r#"{"id":0,"op":"assert","name":"tc","facts":["E(a,b)"]}"#.into(),
            r#"{"id":1,"op":"assert","name":"tc","facts":["E(b,c)"]}"#.into(),
            // Version 1 was compacted into the base (threshold=1, no pin).
            r#"{"id":2,"op":"evaluate","name":"tc","at":1}"#.into(),
            // Version 99 does not exist yet.
            r#"{"id":3,"op":"evaluate","name":"tc","at":99}"#.into(),
            // The store is not poisoned: the head still answers exactly.
            r#"{"id":4,"op":"evaluate","name":"tc"}"#.into(),
        ],
    );
    for resp in [&out[3], &out[4]] {
        let err = resp.outcome.as_ref().expect_err("stale version must error");
        assert_eq!(err.kind(), "stale_version");
        assert!(!resp.timed_out);
    }
    assert_eq!(field(&out[5], "count").and_then(Json::as_u64), Some(3));
    assert_eq!(
        field(&out[5], "guarantee").and_then(Json::as_str),
        Some("exact")
    );
}

/// A deadline that expires while the incremental chase is running degrades
/// that one response to an incomplete fixpoint (`timed_out`, not an
/// error), and the next undeadlined evaluate heals to the exact answers —
/// identical to an engine that never saw deadline pressure.
#[test]
fn deadline_expiry_mid_maintenance_degrades_then_heals() {
    let eng = engine(1, 0);
    let out = run(
        &eng,
        &[
            REGISTER.to_owned(),
            // Build the (empty) fixpoint so the assert below maintains it.
            r#"{"id":0,"op":"evaluate","name":"tc"}"#.into(),
            r#"{"id":1,"op":"assert","name":"tc","facts":["E(a,b)","E(b,c)","E(c,d)"],"deadline_ms":0}"#.into(),
            r#"{"id":2,"op":"evaluate","name":"tc"}"#.into(),
        ],
    );
    let mutate = &out[2];
    assert!(mutate.outcome.is_ok(), "expiry degrades, it does not fail");
    assert!(mutate.timed_out, "maintenance was cut off by the deadline");
    assert_eq!(field(mutate, "complete"), Some(&Json::Bool(false)));
    assert_eq!(field(mutate, "version").and_then(Json::as_u64), Some(1));

    // The follow-up evaluate resumes the truncated fixpoint and completes:
    // chain a->b->c->d yields 6 reachable pairs, guaranteed exact.
    let healed = &out[3];
    assert!(!healed.timed_out);
    assert_eq!(field(healed, "count").and_then(Json::as_u64), Some(6));
    assert_eq!(
        field(healed, "guarantee").and_then(Json::as_str),
        Some("exact")
    );

    // And it matches, byte-for-byte, an engine that asserted the same
    // facts with no deadline at all.
    let calm = run(
        &engine(1, 0),
        &[
            REGISTER.to_owned(),
            r#"{"id":0,"op":"evaluate","name":"tc"}"#.into(),
            r#"{"id":1,"op":"assert","name":"tc","facts":["E(a,b)","E(b,c)","E(c,d)"]}"#.into(),
            r#"{"id":2,"op":"evaluate","name":"tc"}"#.into(),
        ],
    );
    assert_eq!(
        response_to_json(healed).to_string(),
        response_to_json(&calm[3]).to_string(),
        "deadline pressure left a trace in the healed store"
    );
}

/// Mutating an unregistered name is a structured `unknown_name` error;
/// non-ground facts are rejected without minting a version.
#[test]
fn mutation_error_paths_are_structured() {
    let eng = engine(1, 0);
    let out = run(
        &eng,
        &[
            r#"{"id":0,"op":"assert","name":"nope","facts":["E(a,b)"]}"#.into(),
            REGISTER.to_owned(),
            r#"{"id":1,"op":"assert","name":"tc","facts":["E(X,b)"]}"#.into(),
            r#"{"id":2,"op":"assert","name":"tc","facts":["E(a,b)"]}"#.into(),
        ],
    );
    assert_eq!(out[0].outcome.as_ref().unwrap_err().kind(), "unknown_name");
    assert_eq!(out[2].outcome.as_ref().unwrap_err().kind(), "bad_request");
    // The rejected mutation minted no version: the next one is version 1.
    assert_eq!(field(&out[3], "version").and_then(Json::as_u64), Some(1));
}
