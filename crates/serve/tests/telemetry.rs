//! The telemetry plane, end to end through the public protocol:
//!
//! * the `metrics` op answers a Prometheus text exposition covering the
//!   request, cache, coalescing, store, and latency taxonomies — in obs
//!   and no-obs builds alike (the registry and the engine's latency
//!   aggregator are plain atomics, not gated instrumentation);
//! * the exposition is deterministic across byte-identical runs once
//!   timing-valued lines (`_us` histograms/quantiles, uptime, tail-based
//!   flight retention, process-global hom counters) are set aside;
//! * `trace_dump` surfaces the flight recorder's retained ring: a
//!   deliberately timed-out request and a deliberately shed request both
//!   leave an entry with the right reason;
//! * trace ids never appear in default-mode responses, only under
//!   `"trace":true`.

use std::sync::Arc;

use omq_serve::{
    parse_request, response_to_json, BatchExecutor, Engine, EngineConfig, Json, RuntimeStats,
    ShardedEngine,
};

fn run(executor: &dyn BatchExecutor, lines: &[&str]) -> Vec<String> {
    let items: Vec<_> = lines.iter().map(|l| parse_request(l)).collect();
    executor
        .execute_batch(&items)
        .iter()
        .map(|r| response_to_json(r).to_string())
        .collect()
}

/// Register + solve + mutate: touches the verdict/rewrite caches, the
/// coalescing slots, and a named store's maintenance path.
const WORK: &[&str] = &[
    r#"{"id":1,"op":"register","name":"a","program":"P(X) -> R(X)\nq(X) :- R(X)","schema":["P"],"query":"q"}"#,
    r#"{"id":2,"op":"register","name":"b","program":"q(X) :- P(X)","schema":["P"],"query":"q"}"#,
    r#"{"id":3,"op":"contains","lhs":"a","rhs":"b"}"#,
    r#"{"id":4,"op":"contains","lhs":"a","rhs":"b"}"#,
    r#"{"id":5,"op":"assert","name":"a","facts":["P(c1)","P(c2)"]}"#,
    r#"{"id":6,"op":"evaluate","name":"a"}"#,
    r#"{"id":7,"op":"retract","name":"a","facts":["P(c1)"]}"#,
];

fn exposition_of(executor: &dyn BatchExecutor) -> String {
    let out = run(executor, &[r#"{"id":9,"op":"metrics"}"#]);
    let parsed = omq_serve::json::parse(&out[0]).unwrap();
    assert_eq!(
        parsed.get("content_type").and_then(Json::as_str),
        Some(omq_obs::metrics::PROMETHEUS_CONTENT_TYPE)
    );
    parsed
        .get("exposition")
        .and_then(Json::as_str)
        .expect("metrics response carries the exposition")
        .to_owned()
}

#[test]
fn metrics_op_covers_the_serve_taxonomy() {
    let engine = Engine::new(EngineConfig::default());
    let _ = run(&engine, WORK);
    let text = exposition_of(&engine);
    for series in [
        "# TYPE omq_requests_total counter",
        "omq_requests_total{op=\"serve.contains\"} 2",
        "omq_requests_total{op=\"serve.register\"} 2",
        "omq_request_duration_us_bucket",
        "omq_request_duration_window_us",
        "omq_cache_hits_total{cache=\"verdict\"}",
        "omq_cache_entries{cache=\"rewrite\"}",
        "omq_coalesced_total",
        "omq_verdict_computations_total",
        "omq_store_ops_total{op=\"assert\"} 1",
        "omq_store_ops_total{op=\"retract\"} 1",
        "omq_store_maintenance_total{kind=\"incremental_resume\"}",
        "omq_store_facts_total{dir=\"asserted\"} 2",
        "omq_op_latency_us_bucket",
        "omq_op_latency_us_count",
        "omq_flight_offered_total",
        "omq_hom_events_total{kind=\"homs_found\"}",
        "omq_registered 2",
        "omq_shed_slo_burn_ratio",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
}

/// Timing-free view of an exposition: every line whose value is a wall
/// time (`_us` histograms and window quantiles), a clock (uptime), a
/// tail-retention artifact (flight rings fill by wall time), or a
/// process-global accumulator (hom counters see other tests in this
/// process) is dropped. Everything else counts actual work and must be
/// byte-identical across identical runs.
fn stable_lines(text: &str) -> Vec<&str> {
    text.lines()
        .filter(|l| {
            !(l.contains("_us")
                || l.contains("omq_uptime_seconds")
                || l.contains("omq_flight_")
                || l.contains("omq_hom_"))
        })
        .collect()
}

#[test]
fn metrics_exposition_is_deterministic_modulo_timing() {
    let cfg = EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    };
    let first = {
        let engine = Engine::new(cfg.clone());
        let _ = run(&engine, WORK);
        exposition_of(&engine)
    };
    let second = {
        let engine = Engine::new(cfg);
        let _ = run(&engine, WORK);
        exposition_of(&engine)
    };
    assert_eq!(
        stable_lines(&first),
        stable_lines(&second),
        "counter-valued scrape lines must not vary across identical runs"
    );
}

#[test]
fn sharded_scrape_folds_every_shard_and_counts_occupancy() {
    let sharded = ShardedEngine::new(EngineConfig::default(), 3, 0);
    let _ = run(&sharded, WORK);
    let text = exposition_of(&sharded);
    // Per-shard registry replicas must not multiply the size gauges.
    assert!(text.contains("omq_registered 2"), "{text}");
    // Reactor occupancy appears per shard.
    for shard in ["0", "1", "2"] {
        assert!(
            text.contains(&format!("omq_shard_requests_total{{shard=\"{shard}\"}}")),
            "missing shard {shard} in:\n{text}"
        );
    }
    // Contains totals fold across shards into one series.
    assert!(
        text.contains("omq_requests_total{op=\"serve.contains\"} 2"),
        "{text}"
    );
    assert_eq!(
        text.matches("omq_requests_total{op=\"serve.contains\"}")
            .count(),
        1,
        "per-shard series must merge, not repeat: {text}"
    );
}

#[test]
fn trace_dump_retains_timed_out_and_shed_requests() {
    let sharded = ShardedEngine::new(EngineConfig::default(), 1, 0);
    let _ = run(
        &sharded,
        &[
            WORK[0],
            r#"{"id":10,"op":"contains","lhs":"a","rhs":"a","deadline_ms":0}"#,
        ],
    );
    // Shedding happens at the reactor's admission gate, before the
    // executor; replicate exactly what worker_loop does on a saturated
    // queue so the dump shows the turned-away request too.
    sharded.runtime().record_shed_request(777, "serve.contains");
    let out = run(&sharded, &[r#"{"id":11,"op":"trace_dump"}"#]);
    let parsed = omq_serve::json::parse(&out[0]).unwrap();
    assert!(parsed.get("slow_threshold_us").is_some());
    let retained = parsed
        .get("retained")
        .and_then(Json::as_array)
        .expect("retained ring");
    let reason_of = |e: &Json| e.get("reason").and_then(Json::as_str).map(str::to_owned);
    let reasons: Vec<_> = retained.iter().filter_map(&reason_of).collect();
    assert!(
        reasons.iter().any(|r| r == "timeout"),
        "no timeout entry in {reasons:?}"
    );
    assert!(
        reasons.iter().any(|r| r == "shed"),
        "no shed entry in {reasons:?}"
    );
    let shed = retained
        .iter()
        .find(|e| reason_of(e).as_deref() == Some("shed"))
        .unwrap();
    assert_eq!(
        shed.get("trace_id").and_then(Json::as_u64),
        Some(777),
        "shed entries carry the request's trace id"
    );
    let timeout = retained
        .iter()
        .find(|e| reason_of(e).as_deref() == Some("timeout"))
        .unwrap();
    let spans = timeout.get("spans").and_then(Json::as_array).unwrap();
    assert!(!spans.is_empty(), "timed-out entry keeps its span tree");
    assert_eq!(
        spans[0].get("name").and_then(Json::as_str),
        Some("serve.contains")
    );
}

#[test]
fn trace_ids_surface_only_under_trace_true() {
    let engine = Engine::new(EngineConfig::default());
    let _ = run(&engine, &[WORK[0]]);
    let plain = run(
        &engine,
        &[r#"{"id":1,"op":"contains","lhs":"a","rhs":"a"}"#],
    );
    assert!(
        !plain[0].contains("trace_id"),
        "default responses must not carry trace ids: {}",
        plain[0]
    );
    // Byte-determinism: an identical untraced request answers identically
    // even though its trace id differs.
    let again = run(
        &engine,
        &[r#"{"id":1,"op":"contains","lhs":"a","rhs":"a"}"#],
    );
    assert_eq!(plain, again);
    let traced = run(
        &engine,
        &[r#"{"id":2,"op":"contains","lhs":"a","rhs":"a","trace":true}"#],
    );
    let parsed = omq_serve::json::parse(&traced[0]).unwrap();
    let id = parsed
        .get("trace")
        .and_then(|t| t.get("trace_id"))
        .and_then(Json::as_u64)
        .expect("traced responses carry the trace id");
    assert!(id > 0);
}

#[test]
fn exporter_answers_http_scrapes() {
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let _ = run(&*engine, WORK);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let _exporter = omq_serve::spawn_metrics_exporter(Arc::clone(&engine), listener);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    assert!(
        response.contains(omq_obs::metrics::PROMETHEUS_CONTENT_TYPE),
        "{response}"
    );
    assert!(
        response.contains("omq_requests_total{op=\"serve.contains\"} 2"),
        "{response}"
    );
}

#[test]
fn runtime_shed_accounting_reaches_the_scrape() {
    let sharded = ShardedEngine::new(EngineConfig::default(), 1, 0);
    let runtime: Arc<RuntimeStats> = sharded.runtime();
    runtime.record_shed_request(1, "serve.contains");
    runtime.record_shed_request(2, "serve.evaluate");
    let text = exposition_of(&sharded);
    assert!(text.contains("omq_requests_shed_total 2"), "{text}");
    assert!(text.contains("omq_reactor_shed_total 2"), "{text}");
}
