//! Deadline behavior: tiny budgets produce prompt, structured timeouts;
//! expired requests degrade (never lie); the worker pool survives any
//! number of them.

use std::time::Instant;

use omq_serve::{parse_request, Engine, EngineConfig, Json, Response};

const REGISTER: &str = r#"{"op":"register","name":"lin","program":"P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nq(X) :- R(X,Y), P(Y)","schema":["P","R"],"query":"q"}"#;

fn field<'a>(resp: &'a Response, key: &str) -> Option<&'a Json> {
    resp.outcome
        .as_ref()
        .ok()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

#[test]
fn zero_deadline_contains_times_out_promptly_and_structured() {
    let engine = Engine::new(EngineConfig {
        threads: 1,
        cache_capacity: 0,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let batch = vec![
        parse_request(REGISTER),
        parse_request(r#"{"id":1,"op":"contains","lhs":"lin","rhs":"lin","deadline_ms":0}"#),
    ];
    let start = Instant::now();
    let out = engine.execute_batch(&batch);
    assert!(
        start.elapsed().as_secs() < 10,
        "an already-expired deadline must return promptly"
    );
    let resp = &out[1];
    assert!(resp.timed_out, "expired request carries timed_out");
    assert_eq!(
        field(resp, "verdict").and_then(Json::as_str),
        Some("unknown"),
        "expiry degrades to Unknown, never to a fabricated verdict"
    );
    assert!(
        field(resp, "reason").and_then(Json::as_str).is_some(),
        "the unknown verdict explains itself"
    );
}

#[test]
fn zero_deadline_evaluate_degrades_to_sound_lower_bound() {
    let engine = Engine::new(EngineConfig {
        threads: 1,
        cache_capacity: 0,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let batch = vec![
        parse_request(REGISTER),
        parse_request(
            r#"{"id":1,"op":"evaluate","name":"lin","facts":["R(a,b)","P(b)"],"deadline_ms":0}"#,
        ),
    ];
    let out = engine.execute_batch(&batch);
    let resp = &out[1];
    assert!(
        resp.outcome.is_ok(),
        "a timeout is degradation, not an error"
    );
    assert!(resp.timed_out);
    assert_eq!(
        field(resp, "guarantee").and_then(Json::as_str),
        Some("sound_lower_bound")
    );
}

/// A burst of expired requests interleaved with normal ones: every expired
/// request times out, every normal request still gets the exact verdict —
/// on the parallel pool, which must not be poisoned by expiry.
#[test]
fn pool_survives_a_burst_of_timeouts() {
    let engine = Engine::new(EngineConfig {
        threads: 0,
        cache_capacity: 0,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let mut batch = vec![parse_request(REGISTER)];
    for id in 0..24 {
        let line = if id % 2 == 0 {
            format!(r#"{{"id":{id},"op":"contains","lhs":"lin","rhs":"lin","deadline_ms":0}}"#)
        } else {
            format!(r#"{{"id":{id},"op":"contains","lhs":"lin","rhs":"lin"}}"#)
        };
        batch.push(parse_request(&line));
    }
    let start = Instant::now();
    let out = engine.execute_batch(&batch);
    assert!(start.elapsed().as_secs() < 60);
    for (i, resp) in out.iter().skip(1).enumerate() {
        let verdict = field(resp, "verdict").and_then(Json::as_str);
        if i % 2 == 0 {
            assert!(resp.timed_out, "request {i} should have timed out");
            assert_eq!(verdict, Some("unknown"));
        } else {
            assert!(!resp.timed_out, "request {i} had no deadline");
            assert_eq!(verdict, Some("contained"), "pool poisoned at request {i}");
        }
    }
}

/// The default engine deadline applies to requests that carry none, and a
/// per-request deadline overrides it.
#[test]
fn default_deadline_applies_and_is_overridable() {
    let engine = Engine::new(EngineConfig {
        threads: 1,
        cache_capacity: 0,
        default_deadline_ms: Some(0),
        ..EngineConfig::default()
    });
    let batch = vec![
        parse_request(REGISTER),
        parse_request(r#"{"id":1,"op":"contains","lhs":"lin","rhs":"lin"}"#),
        parse_request(r#"{"id":2,"op":"contains","lhs":"lin","rhs":"lin","deadline_ms":60000}"#),
    ];
    let out = engine.execute_batch(&batch);
    assert!(out[1].timed_out, "engine default deadline applied");
    assert!(!out[2].timed_out, "per-request deadline overrides default");
    assert_eq!(
        field(&out[2], "verdict").and_then(Json::as_str),
        Some("contained")
    );
}
