//! A minimal JSON value type, parser, and writer for the JSON-lines
//! protocol.
//!
//! Hand-rolled because the build environment is offline (no serde): the
//! subset implemented is exactly RFC 8259 minus one liberty — objects
//! preserve *insertion order* (a `Vec` of pairs, not a map), which makes
//! every serialized response byte-deterministic, a property the
//! differential tests and the verdict cache rely on. Duplicate keys keep
//! the first occurrence on lookup.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs (see module docs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: an array of strings.
    pub fn as_str_array(&self) -> Option<Vec<&str>> {
        self.as_array()?.iter().map(Json::as_str).collect()
    }

    /// Builds an object from pairs (helper for response construction).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from an integer counter.
    pub fn num(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // Integers print without a trailing `.0`, so ids echo back
                // exactly as common clients sent them.
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses one JSON document from `text` (whole-input: trailing non-space
/// characters are an error).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err("invalid unicode escape".into()),
                            }
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                b if b < 0x20 => return Err("raw control character in string".into()),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // form a valid sequence; copy it through.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {s:?}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_structure() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text, "roundtrip of {text}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\tε".into());
        let s = v.to_string();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".into())
        );
    }

    #[test]
    fn object_lookup_and_order() {
        let v = parse("{\"b\":1,\"a\":2}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(1));
        // Order preserved on output.
        assert_eq!(v.to_string(), "{\"b\":1,\"a\":2}");
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "01x", "[1] x"] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse("  { \"a\" : [ 1 , 2 ] }  ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
