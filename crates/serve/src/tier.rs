//! The persistent tier of the rewrite-artifact cache.
//!
//! A [`omq_rewrite::RewriteArtifact`] speaks in `VarId`s/`PredId`s/
//! `ConstId`s, which are only meaningful inside the vocabulary that
//! interned them — exactly the property that made cached artifacts
//! unrenderable from other requests (the PR that added `explain` had to
//! bypass the cache for that reason). A [`PortableArtifact`] is the
//! vocabulary-independent form: every disjunct's variables are renamed to
//! their first-occurrence index (`V0`, `V1`, …, head before body) and
//! predicates/constants are carried by *name*. Rehydrating interns those
//! names into whatever vocabulary the request is using, so the same stored
//! artifact serves every request, every engine restart, and `explain`.
//!
//! Both cache tiers store the portable form:
//!
//! * the **hot tier** (the engine's in-memory LRU) keeps it structured, so
//!   a warm hit pays only the interning walk — no parsing;
//! * the **disk tier** ([`DiskTier`]) serializes it to a small line-based
//!   text file named by the canonical `(OmqKey, RewriteCfgKey)` digests,
//!   so a restarted server answers repeat requests without rerunning
//!   XRewrite. Corrupt or truncated files degrade to a miss, never an
//!   error.
//!
//! Determinism: the engine round-trips *every* artifact through the
//! portable form — including freshly computed ones — so response bytes
//! never depend on which tier (or no tier) served the artifact.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use omq_model::{Atom, Cq, Term, Ucq, Vocabulary};
use omq_rewrite::RewriteArtifact;

/// One term of a portable disjunct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortableTerm {
    /// Variable by canonical index (first occurrence order).
    Var(u32),
    /// Constant by name.
    Const(String),
}

/// One atom of a portable disjunct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableAtom {
    pub pred: String,
    pub args: Vec<PortableTerm>,
}

/// One disjunct: head variables by canonical index plus the body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableCq {
    pub head: Vec<u32>,
    pub body: Vec<PortableAtom>,
}

/// A vocabulary-independent rewriting artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableArtifact {
    pub arity: usize,
    pub complete: bool,
    pub disjuncts: Vec<PortableCq>,
}

/// Names that survive the text round trip unambiguously: the identifier
/// subset the parser produces. Anything else (theoretically possible via
/// exotic vocabularies) makes the artifact non-portable — the caller falls
/// back to the uncached path.
fn is_token(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'' || c == '-' || c == '.')
}

/// Is `name` shaped like a canonical variable (`V<digits>`)? Constants
/// with such names would be ambiguous in the text form, so they also make
/// an artifact non-portable (they cannot arise from parsed programs, where
/// constants start lowercase).
fn looks_like_var(name: &str) -> bool {
    name.len() > 1 && name.starts_with('V') && name[1..].chars().all(|c| c.is_ascii_digit())
}

impl PortableArtifact {
    /// Converts a raw artifact; `None` when it is not portable (a body
    /// null from a truncated normalization, or a symbol name the text form
    /// cannot carry).
    pub fn of(art: &RewriteArtifact, voc: &Vocabulary) -> Option<PortableArtifact> {
        let mut disjuncts = Vec::with_capacity(art.ucq.disjuncts.len());
        for d in &art.ucq.disjuncts {
            let mut order: Vec<omq_model::VarId> = Vec::new();
            let mut index = |v: omq_model::VarId| -> u32 {
                match order.iter().position(|&o| o == v) {
                    Some(i) => i as u32,
                    None => {
                        order.push(v);
                        (order.len() - 1) as u32
                    }
                }
            };
            let head: Vec<u32> = d.head.iter().map(|&v| index(v)).collect();
            let mut body = Vec::with_capacity(d.body.len());
            for a in &d.body {
                let pred = voc.pred_name(a.pred).to_owned();
                if !is_token(&pred) {
                    return None;
                }
                let mut args = Vec::with_capacity(a.args.len());
                for t in &a.args {
                    args.push(match t {
                        Term::Var(v) => PortableTerm::Var(index(*v)),
                        Term::Const(c) => {
                            let name = voc.const_name(*c).to_owned();
                            if !is_token(&name) || looks_like_var(&name) {
                                return None;
                            }
                            PortableTerm::Const(name)
                        }
                        Term::Null(_) => return None,
                    });
                }
                body.push(PortableAtom { pred, args });
            }
            disjuncts.push(PortableCq { head, body });
        }
        Some(PortableArtifact {
            arity: art.ucq.arity,
            complete: art.complete,
            disjuncts,
        })
    }

    /// Interns the artifact into `voc` (canonical variables as `V<k>`,
    /// predicates and constants by name) and rebuilds the raw form.
    pub fn rehydrate(&self, voc: &mut Vocabulary) -> RewriteArtifact {
        let disjuncts = self
            .disjuncts
            .iter()
            .map(|d| {
                let var = |voc: &mut Vocabulary, k: u32| voc.var(&format!("V{k}"));
                let body: Vec<Atom> = d
                    .body
                    .iter()
                    .map(|a| {
                        let args: Vec<Term> = a
                            .args
                            .iter()
                            .map(|t| match t {
                                PortableTerm::Var(k) => Term::Var(var(voc, *k)),
                                PortableTerm::Const(name) => Term::Const(voc.constant(name)),
                            })
                            .collect();
                        Atom::new(voc.pred(&a.pred, args.len()), args)
                    })
                    .collect();
                let head: Vec<omq_model::VarId> = d.head.iter().map(|&k| var(voc, k)).collect();
                Cq::new(head, body)
            })
            .collect();
        RewriteArtifact {
            ucq: Ucq::new(self.arity, disjuncts),
            complete: self.complete,
        }
    }

    /// The disk format: a header plus one `cq` line per disjunct. Example:
    ///
    /// ```text
    /// omq-artifact v1
    /// arity 1
    /// complete true
    /// cq 0 | R(V0,V1),P(V1)
    /// cq 0 | S(V0,c)
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("omq-artifact v1\n");
        out.push_str(&format!("arity {}\n", self.arity));
        out.push_str(&format!("complete {}\n", self.complete));
        for d in &self.disjuncts {
            let head: Vec<String> = d.head.iter().map(u32::to_string).collect();
            let atoms: Vec<String> = d
                .body
                .iter()
                .map(|a| {
                    let args: Vec<String> = a
                        .args
                        .iter()
                        .map(|t| match t {
                            PortableTerm::Var(k) => format!("V{k}"),
                            PortableTerm::Const(name) => name.clone(),
                        })
                        .collect();
                    format!("{}({})", a.pred, args.join(","))
                })
                .collect();
            out.push_str(&format!("cq {} | {}\n", head.join(" "), atoms.join(",")));
        }
        out
    }

    /// Parses the [`to_text`](Self::to_text) form; `None` on any
    /// malformation (a corrupt file is a cache miss).
    pub fn from_text(text: &str) -> Option<PortableArtifact> {
        let mut lines = text.lines();
        if lines.next()? != "omq-artifact v1" {
            return None;
        }
        let arity: usize = lines.next()?.strip_prefix("arity ")?.parse().ok()?;
        let complete: bool = lines.next()?.strip_prefix("complete ")?.parse().ok()?;
        let mut disjuncts = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let rest = line.strip_prefix("cq ")?;
            let (head_part, body_part) = rest.split_once(" | ")?;
            let head: Vec<u32> = head_part
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<_, _>>()
                .ok()?;
            if head.len() != arity {
                return None;
            }
            let mut body = Vec::new();
            for atom_text in split_atoms(body_part)? {
                let open = atom_text.find('(')?;
                let pred = &atom_text[..open];
                let inner = atom_text[open + 1..].strip_suffix(')')?;
                if !is_token(pred) {
                    return None;
                }
                let mut args = Vec::new();
                if !inner.is_empty() {
                    for arg in inner.split(',') {
                        args.push(match arg.strip_prefix('V') {
                            Some(digits) if digits.chars().all(|c| c.is_ascii_digit()) => {
                                PortableTerm::Var(digits.parse().ok()?)
                            }
                            _ => {
                                if !is_token(arg) {
                                    return None;
                                }
                                PortableTerm::Const(arg.to_owned())
                            }
                        });
                    }
                }
                body.push(PortableAtom {
                    pred: pred.to_owned(),
                    args,
                });
            }
            disjuncts.push(PortableCq { head, body });
        }
        // Every head index must reference a variable the disjunct binds —
        // Cq::new would (debug-)panic otherwise.
        for d in &disjuncts {
            let bound: Vec<u32> = d
                .body
                .iter()
                .flat_map(|a| a.args.iter())
                .filter_map(|t| match t {
                    PortableTerm::Var(k) => Some(*k),
                    PortableTerm::Const(_) => None,
                })
                .collect();
            if d.head.iter().any(|k| !bound.contains(k)) {
                return None;
            }
        }
        Some(PortableArtifact {
            arity,
            complete,
            disjuncts,
        })
    }
}

/// Splits `R(V0,V1),P(V1)` into atoms at depth-0 commas.
fn split_atoms(text: &str) -> Option<Vec<&str>> {
    if text.is_empty() {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.checked_sub(1)?,
            ',' if depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return None;
    }
    out.push(&text[start..]);
    Some(out)
}

/// Counters of the disk tier (exposed by the `stats` op).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskTierStats {
    pub hits: u64,
    pub misses: u64,
    pub stores: u64,
    /// I/O or parse failures (all degrade to a miss or a skipped store).
    pub errors: u64,
}

/// The on-disk artifact store: one file per `(OmqKey, RewriteCfgKey)`
/// digest pair under a caller-supplied directory. Writes go through a
/// temp-file rename so a concurrent reader (or a crash) never observes a
/// half-written artifact.
pub struct DiskTier {
    dir: PathBuf,
    stats: Mutex<DiskTierStats>,
}

impl DiskTier {
    /// Opens (creating if needed) the cache directory.
    pub fn new(dir: &Path) -> std::io::Result<DiskTier> {
        fs::create_dir_all(dir)?;
        Ok(DiskTier {
            dir: dir.to_owned(),
            stats: Mutex::new(DiskTierStats::default()),
        })
    }

    fn path(&self, file_key: &str) -> PathBuf {
        self.dir.join(format!("{file_key}.art"))
    }

    /// Loads and parses the artifact for `file_key`; any failure is a miss.
    pub fn load(&self, file_key: &str) -> Option<PortableArtifact> {
        let path = self.path(file_key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                let mut s = self.stats.lock().unwrap();
                s.misses += 1;
                if e.kind() != std::io::ErrorKind::NotFound {
                    s.errors += 1;
                }
                return None;
            }
        };
        match PortableArtifact::from_text(&text) {
            Some(art) => {
                self.stats.lock().unwrap().hits += 1;
                omq_obs::counter("serve.artifact_disk.hit", 1);
                Some(art)
            }
            None => {
                let mut s = self.stats.lock().unwrap();
                s.misses += 1;
                s.errors += 1;
                None
            }
        }
    }

    /// Persists the artifact under `file_key` (best effort: failures only
    /// bump the error counter — the in-memory tiers still work).
    pub fn store(&self, file_key: &str, art: &PortableArtifact) {
        let path = self.path(file_key);
        let tmp = self
            .dir
            .join(format!(".{file_key}.{}.tmp", std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(art.to_text().as_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, &path)
        };
        match write() {
            Ok(()) => {
                self.stats.lock().unwrap().stores += 1;
                omq_obs::counter("serve.artifact_disk.store", 1);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                self.stats.lock().unwrap().errors += 1;
            }
        }
    }

    pub fn stats(&self) -> DiskTierStats {
        *self.stats.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::parse_program;

    /// A two-disjunct artifact with a constant, built from parsed queries
    /// (so VarIds are "real" interned ids, not sequential).
    fn sample() -> (RewriteArtifact, Vocabulary) {
        let prog = parse_program("q(X) :- R(X,Y), P(Y)\nr(Z) :- S(Z), T(Z,a)\n").unwrap();
        let mut voc = prog.voc.clone();
        voc.constant("a");
        let ucq = Ucq::new(
            1,
            vec![
                prog.query("q").unwrap().disjuncts[0].clone(),
                prog.query("r").unwrap().disjuncts[0].clone(),
            ],
        );
        (
            RewriteArtifact {
                ucq,
                complete: true,
            },
            voc,
        )
    }

    #[test]
    fn portable_round_trip_preserves_structure() {
        let (art, voc) = sample();
        let p = PortableArtifact::of(&art, &voc).expect("portable");
        // Text round trip is lossless.
        let reparsed = PortableArtifact::from_text(&p.to_text()).expect("parses");
        assert_eq!(p, reparsed);
        // Rehydration into a fresh vocabulary rebuilds isomorphic CQs: same
        // shape, canonical V* names, constants by original name.
        let mut fresh = Vocabulary::default();
        let back = p.rehydrate(&mut fresh);
        assert!(back.complete);
        assert_eq!(back.ucq.arity, 1);
        assert_eq!(back.ucq.disjuncts.len(), 2);
        assert_eq!(back.ucq.disjuncts[0].body.len(), 2);
        let rendered = omq_model::display::render_cq(&fresh, "q", &back.ucq.disjuncts[0]);
        assert_eq!(rendered, "q(V0) :- R(V0,V1), P(V1)");
        let rendered = omq_model::display::render_cq(&fresh, "q", &back.ucq.disjuncts[1]);
        assert_eq!(rendered, "q(V0) :- S(V0), T(V0,a)");
        // Rehydrating twice (even into the same vocabulary) is stable.
        let again = p.rehydrate(&mut fresh);
        assert_eq!(back, again);
    }

    #[test]
    fn corrupt_text_is_a_miss_not_a_panic() {
        for bad in [
            "",
            "omq-artifact v2\narity 1\ncomplete true\n",
            "omq-artifact v1\narity x\ncomplete true\n",
            "omq-artifact v1\narity 1\ncomplete true\ncq 0 | R(V0",
            "omq-artifact v1\narity 1\ncomplete true\ncq 5 | R(V0,V1)\n",
            "omq-artifact v1\narity 1\ncomplete true\nnot a cq line\n",
        ] {
            assert!(PortableArtifact::from_text(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn nulls_make_an_artifact_non_portable() {
        let mut voc = Vocabulary::default();
        let p = voc.pred("P", 1);
        let x = voc.var("X");
        // Built literally: `Cq::new` debug-asserts the no-nulls invariant,
        // and this test exists exactly because `of` must stay defensive
        // against artifacts produced without that constructor.
        let cq = Cq {
            head: vec![x],
            body: vec![
                Atom::new(p, vec![Term::Var(x)]),
                Atom::new(p, vec![Term::Null(voc.fresh_null())]),
            ],
        };
        let art = RewriteArtifact {
            ucq: Ucq::new(1, vec![cq]),
            complete: true,
        };
        assert!(PortableArtifact::of(&art, &voc).is_none());
    }

    #[test]
    fn disk_tier_survives_a_reopen_and_tolerates_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "omq-tier-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let (art, voc) = sample();
        let p = PortableArtifact::of(&art, &voc).unwrap();
        {
            let tier = DiskTier::new(&dir).unwrap();
            assert!(tier.load("k1").is_none(), "cold dir misses");
            tier.store("k1", &p);
            assert_eq!(tier.load("k1"), Some(p.clone()));
            let s = tier.stats();
            assert_eq!((s.hits, s.misses, s.stores, s.errors), (1, 1, 1, 0));
        }
        // A "restarted server": a new tier over the same directory.
        let tier = DiskTier::new(&dir).unwrap();
        assert_eq!(tier.load("k1"), Some(p));
        // Corruption degrades to a miss and counts an error.
        fs::write(dir.join("k2.art"), "garbage").unwrap();
        assert!(tier.load("k2").is_none());
        let s = tier.stats();
        assert_eq!(s.errors, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
