//! The JSON-lines request/response protocol.
//!
//! One request per line, one response line per request, in request order.
//! A blank line is a batch delimiter: everything accumulated since the last
//! delimiter is executed as one batch (scheduled across the worker pool)
//! and answered before the next batch starts. EOF flushes the final batch.
//!
//! Requests:
//!
//! ```text
//! {"id":1,"op":"register","name":"a","program":"P(X) -> R(X)\nq(X) :- R(X)","schema":["P"],"query":"q"}
//! {"id":2,"op":"contains","lhs":"a","rhs":"b","deadline_ms":250}
//! {"id":3,"op":"equivalent","lhs":"a","rhs":"b"}
//! {"id":4,"op":"evaluate","name":"a","facts":["P(c)","R(c)"]}
//! {"id":5,"op":"classify","name":"a"}
//! {"id":6,"op":"explain","lhs":"a","rhs":"b"}
//! {"id":7,"op":"stats"}
//! {"id":8,"op":"assert","name":"a","facts":["P(c)"]}
//! {"id":9,"op":"retract","name":"a","facts":["P(c)"]}
//! {"id":10,"op":"snapshot","name":"a"}
//! {"id":11,"op":"evaluate","name":"a","at":3}
//! ```
//!
//! `assert`/`retract` mutate the named OMQ's versioned store (every call
//! advances its version by one) and keep the chase fixpoint incrementally
//! maintained; `snapshot` pins the current version against compaction and
//! returns it. `evaluate` either carries one-shot `"facts"` (stateless, as
//! before) or `"at"` — a store version to answer against (omitting both
//! evaluates the store's head).
//!
//! Any request may carry `"trace":true`: the engine then instruments the
//! solver run and appends a `"trace"` object (per-phase timings + counters)
//! to the response.
//!
//! Responses are `{"id":...,"ok":true,...}` or
//! `{"id":...,"ok":false,"error":{"kind":...,"message":...}}`; a request
//! whose deadline expired additionally carries `"timed_out":true` and a
//! best-effort (`"unknown"` / lower-bound) payload rather than an error.
//! Responses carry no wall-clock fields *unless traced* (`"trace":true`
//! opts the request out of byte-determinism), so equal untraced requests in
//! equal states produce byte-identical lines (the differential suite relies
//! on this).

use crate::error::ServeError;
use crate::json::{self, Json};

/// A parsed request body.
#[derive(Clone, Debug)]
pub enum Op {
    Register {
        name: String,
        program: String,
        schema: Vec<String>,
        query: String,
    },
    Contains {
        lhs: String,
        rhs: String,
    },
    Equivalent {
        lhs: String,
        rhs: String,
    },
    Evaluate {
        name: String,
        /// One-shot facts for a stateless evaluation (empty when the
        /// request evaluates the named OMQ's store instead).
        facts: Vec<String>,
        /// Store version to evaluate at; `None` = the store's head.
        /// Mutually exclusive with non-empty `facts`.
        at: Option<u64>,
    },
    Assert {
        name: String,
        facts: Vec<String>,
    },
    Retract {
        name: String,
        facts: Vec<String>,
    },
    Snapshot {
        name: String,
    },
    Classify {
        name: String,
    },
    Explain {
        lhs: String,
        rhs: String,
    },
    Stats,
    /// Prometheus text exposition of the telemetry plane (also served
    /// over HTTP by `--metrics-listen`).
    Metrics,
    /// Dump the flight recorder: span trees of recent and tail-retained
    /// (shed / timed-out / slow) requests.
    TraceDump,
}

impl Op {
    /// The op's family label in the span/metric taxonomy (`serve.<op>`).
    pub fn label(&self) -> &'static str {
        match self {
            Op::Register { .. } => "serve.register",
            Op::Contains { .. } => "serve.contains",
            Op::Equivalent { .. } => "serve.equivalent",
            Op::Evaluate { .. } => "serve.evaluate",
            Op::Assert { .. } => "serve.assert",
            Op::Retract { .. } => "serve.retract",
            Op::Snapshot { .. } => "serve.snapshot",
            Op::Classify { .. } => "serve.classify",
            Op::Explain { .. } => "serve.explain",
            Op::Stats => "serve.stats",
            Op::Metrics => "serve.metrics",
            Op::TraceDump => "serve.trace_dump",
        }
    }
}

/// A request: optional client id (echoed back), optional per-request
/// deadline in milliseconds (measured from batch arrival), whether to
/// instrument the run (`"trace":true`), and the job.
///
/// Every parsed request is assigned a process-unique `trace_id` at the
/// protocol layer; it follows the request through shard sub-batches,
/// coalescing, shedding, and the flight recorder, but never appears in a
/// default-mode response (only under `"trace":true` and on sink events),
/// preserving byte-determinism.
#[derive(Clone, Debug)]
pub struct Request {
    pub id: Option<Json>,
    pub deadline_ms: Option<u64>,
    pub trace: bool,
    pub trace_id: u64,
    pub op: Op,
}

/// A response: the echoed id plus either ordered payload fields or an
/// error. `timed_out` marks deadline expiry (degraded, not failed).
#[derive(Clone, Debug)]
pub struct Response {
    pub id: Option<Json>,
    pub outcome: Result<Vec<(String, Json)>, ServeError>,
    pub timed_out: bool,
}

impl Response {
    pub fn ok(id: Option<Json>, fields: Vec<(String, Json)>) -> Response {
        Response {
            id,
            outcome: Ok(fields),
            timed_out: false,
        }
    }

    pub fn err(id: Option<Json>, e: ServeError) -> Response {
        Response {
            id,
            outcome: Err(e),
            timed_out: false,
        }
    }
}

fn req_str(obj: &Json, key: &str) -> Result<String, ServeError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ServeError::BadRequest(format!("missing or non-string field {key:?}")))
}

fn req_str_array(obj: &Json, key: &str) -> Result<Vec<String>, ServeError> {
    obj.get(key)
        .and_then(Json::as_str_array)
        .map(|v| v.into_iter().map(str::to_owned).collect())
        .ok_or_else(|| ServeError::BadRequest(format!("missing or non-string-array field {key:?}")))
}

/// Parses one request line. On failure the error [`Response`] already
/// carries the client id when one could be salvaged from the line.
pub fn parse_request(line: &str) -> Result<Request, Box<Response>> {
    let v =
        json::parse(line).map_err(|msg| Box::new(Response::err(None, ServeError::Json(msg))))?;
    let id = v.get("id").cloned();
    let fail = |e: ServeError| Box::new(Response::err(id.clone(), e));
    let op_name = v.get("op").and_then(Json::as_str).ok_or_else(|| {
        fail(ServeError::BadRequest(
            "missing or non-string field \"op\"".into(),
        ))
    })?;
    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(d) => Some(d.as_u64().ok_or_else(|| {
            fail(ServeError::BadRequest(
                "\"deadline_ms\" must be a non-negative integer".into(),
            ))
        })?),
    };
    let trace = match v.get("trace") {
        None => false,
        Some(t) => t
            .as_bool()
            .ok_or_else(|| fail(ServeError::BadRequest("\"trace\" must be a boolean".into())))?,
    };
    let op = match op_name {
        "register" => Op::Register {
            name: req_str(&v, "name").map_err(&fail)?,
            program: req_str(&v, "program").map_err(&fail)?,
            schema: req_str_array(&v, "schema").map_err(&fail)?,
            query: req_str(&v, "query").map_err(&fail)?,
        },
        "contains" => Op::Contains {
            lhs: req_str(&v, "lhs").map_err(&fail)?,
            rhs: req_str(&v, "rhs").map_err(&fail)?,
        },
        "equivalent" => Op::Equivalent {
            lhs: req_str(&v, "lhs").map_err(&fail)?,
            rhs: req_str(&v, "rhs").map_err(&fail)?,
        },
        "evaluate" => {
            let facts = match v.get("facts") {
                None => Vec::new(),
                Some(_) => req_str_array(&v, "facts").map_err(&fail)?,
            };
            let at = match v.get("at") {
                None => None,
                Some(a) => Some(a.as_u64().ok_or_else(|| {
                    fail(ServeError::BadRequest(
                        "\"at\" must be a non-negative integer version".into(),
                    ))
                })?),
            };
            if at.is_some() && !facts.is_empty() {
                return Err(fail(ServeError::BadRequest(
                    "\"facts\" and \"at\" are mutually exclusive: one-shot facts have no versions"
                        .into(),
                )));
            }
            Op::Evaluate {
                name: req_str(&v, "name").map_err(&fail)?,
                facts,
                at,
            }
        }
        "assert" => Op::Assert {
            name: req_str(&v, "name").map_err(&fail)?,
            facts: req_str_array(&v, "facts").map_err(&fail)?,
        },
        "retract" => Op::Retract {
            name: req_str(&v, "name").map_err(&fail)?,
            facts: req_str_array(&v, "facts").map_err(&fail)?,
        },
        "snapshot" => Op::Snapshot {
            name: req_str(&v, "name").map_err(&fail)?,
        },
        "classify" => Op::Classify {
            name: req_str(&v, "name").map_err(&fail)?,
        },
        "explain" => Op::Explain {
            lhs: req_str(&v, "lhs").map_err(&fail)?,
            rhs: req_str(&v, "rhs").map_err(&fail)?,
        },
        "stats" => Op::Stats,
        "metrics" => Op::Metrics,
        "trace_dump" => Op::TraceDump,
        other => return Err(fail(ServeError::UnknownOp(other.to_owned()))),
    };
    Ok(Request {
        id,
        deadline_ms,
        trace,
        trace_id: omq_obs::next_trace_id(),
        op,
    })
}

/// Renders a response as one JSON line (no trailing newline).
pub fn response_to_json(resp: &Response) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::new();
    if let Some(id) = &resp.id {
        fields.push(("id".into(), id.clone()));
    }
    match &resp.outcome {
        Ok(body) => {
            fields.push(("ok".into(), Json::Bool(true)));
            if resp.timed_out {
                fields.push(("timed_out".into(), Json::Bool(true)));
            }
            fields.extend(body.iter().cloned());
        }
        Err(e) => {
            fields.push(("ok".into(), Json::Bool(false)));
            if resp.timed_out {
                fields.push(("timed_out".into(), Json::Bool(true)));
            }
            let mut err_fields = vec![
                ("kind".to_owned(), Json::str(e.kind())),
                ("message".to_owned(), Json::str(e.to_string())),
            ];
            // Shed responses are structured so clients can implement backoff
            // without parsing the message: how deep the queue was, what the
            // watermark is, and that retrying (later) is the right move.
            if let ServeError::Shed {
                queue_depth,
                watermark,
            } = e
            {
                err_fields.push(("queue_depth".to_owned(), Json::num(*queue_depth)));
                err_fields.push(("watermark".to_owned(), Json::num(*watermark)));
                err_fields.push(("retry".to_owned(), Json::Bool(true)));
            }
            fields.push(("error".into(), Json::Obj(err_fields)));
        }
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_op() {
        let r = parse_request(
            r#"{"id":1,"op":"register","name":"a","program":"p","schema":["P"],"query":"q"}"#,
        )
        .unwrap();
        assert!(matches!(r.op, Op::Register { .. }));
        assert_eq!(r.id.as_ref().and_then(Json::as_u64), Some(1));
        let r = parse_request(r#"{"op":"contains","lhs":"a","rhs":"b","deadline_ms":9}"#).unwrap();
        assert!(matches!(r.op, Op::Contains { .. }));
        assert_eq!(r.deadline_ms, Some(9));
        assert!(!r.trace);
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#).unwrap().op,
            Op::Stats
        ));
        let r = parse_request(r#"{"op":"explain","lhs":"a","rhs":"b","trace":true}"#).unwrap();
        assert!(matches!(r.op, Op::Explain { .. }));
        assert!(r.trace);
        let bad = parse_request(r#"{"op":"stats","trace":"yes"}"#).unwrap_err();
        assert!(matches!(bad.outcome, Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn parses_telemetry_ops_and_assigns_trace_ids() {
        let m = parse_request(r#"{"op":"metrics"}"#).unwrap();
        assert!(matches!(m.op, Op::Metrics));
        assert_eq!(m.op.label(), "serve.metrics");
        let d = parse_request(r#"{"op":"trace_dump"}"#).unwrap();
        assert!(matches!(d.op, Op::TraceDump));
        assert_eq!(d.op.label(), "serve.trace_dump");
        // Every parsed request gets a distinct nonzero trace id.
        assert!(m.trace_id != 0 && d.trace_id != 0);
        assert_ne!(m.trace_id, d.trace_id);
    }

    #[test]
    fn parses_mutation_ops_and_versioned_evaluate() {
        let r = parse_request(r#"{"op":"assert","name":"a","facts":["P(c)"]}"#).unwrap();
        assert!(matches!(r.op, Op::Assert { .. }));
        let r = parse_request(r#"{"op":"retract","name":"a","facts":["P(c)"]}"#).unwrap();
        assert!(matches!(r.op, Op::Retract { .. }));
        let r = parse_request(r#"{"op":"snapshot","name":"a"}"#).unwrap();
        assert!(matches!(r.op, Op::Snapshot { .. }));
        let r = parse_request(r#"{"op":"evaluate","name":"a","at":3}"#).unwrap();
        assert!(matches!(
            r.op,
            Op::Evaluate {
                at: Some(3),
                ref facts,
                ..
            } if facts.is_empty()
        ));
        // Omitting both facts and at evaluates the store head.
        let r = parse_request(r#"{"op":"evaluate","name":"a"}"#).unwrap();
        assert!(matches!(r.op, Op::Evaluate { at: None, ref facts, .. } if facts.is_empty()));
        // One-shot facts and store versions cannot mix.
        let bad =
            parse_request(r#"{"op":"evaluate","name":"a","facts":["P(c)"],"at":1}"#).unwrap_err();
        assert!(matches!(bad.outcome, Err(ServeError::BadRequest(_))));
        let bad = parse_request(r#"{"op":"evaluate","name":"a","at":-1}"#).unwrap_err();
        assert!(matches!(bad.outcome, Err(ServeError::BadRequest(_))));
        let bad = parse_request(r#"{"op":"assert","name":"a"}"#).unwrap_err();
        assert!(matches!(bad.outcome, Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn bad_lines_salvage_the_id() {
        let resp = parse_request(r#"{"id":"x7","op":"frobnicate"}"#).unwrap_err();
        assert_eq!(resp.id.as_ref().and_then(Json::as_str), Some("x7"));
        assert!(matches!(resp.outcome, Err(ServeError::UnknownOp(_))));
        let resp = parse_request("not json").unwrap_err();
        assert!(matches!(resp.outcome, Err(ServeError::Json(_))));
    }

    #[test]
    fn missing_fields_are_bad_requests() {
        let resp = parse_request(r#"{"id":2,"op":"contains","lhs":"a"}"#).unwrap_err();
        assert!(matches!(resp.outcome, Err(ServeError::BadRequest(_))));
        let line = response_to_json(&resp).to_string();
        assert!(line.starts_with(r#"{"id":2,"ok":false,"error":{"kind":"bad_request""#));
    }

    #[test]
    fn response_rendering_is_ordered() {
        let resp = Response::ok(
            Some(Json::num(3)),
            vec![("verdict".into(), Json::str("contained"))],
        );
        assert_eq!(
            response_to_json(&resp).to_string(),
            r#"{"id":3,"ok":true,"verdict":"contained"}"#
        );
        let mut timed = Response::ok(Some(Json::num(4)), vec![]);
        timed.timed_out = true;
        assert_eq!(
            response_to_json(&timed).to_string(),
            r#"{"id":4,"ok":true,"timed_out":true}"#
        );
    }
}
