//! Canonical cache keys for registered OMQs and rewriting configurations.
//!
//! The serving layer caches by *meaning*, not by name: two registrations of
//! alpha-variant OMQs (same ontology, isomorphic queries) share one
//! [`OmqKey`] and therefore one cache slot. The query component uses the
//! canonical CQ forms from `omq_chase::cq_ops` — the same isomorphism-class
//! labels XRewrite deduplicates with — so key equality is invariant under
//! bijective variable renaming of the query disjuncts.
//!
//! `CqCanonicalForm` speaks in `PredId`s, which are only meaningful within
//! one vocabulary; the key embeds the id → (name, arity) table of every
//! predicate the OMQ mentions, so keys minted from different vocabularies
//! (or from a registry restarted with a different interning order) can
//! never alias.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use omq_chase::{cq_canonical_form, CqCanonicalForm};
use omq_model::{Cq, Omq, Term, Tgd, VarId, Vocabulary};
use omq_rewrite::{DedupStrategy, XRewriteConfig};

/// Relabeling budget for canonical-labeling calls (mirrors XRewrite's own
/// budget; queries that exceed it fall back to a rendered-text key, which
/// is exact but not alpha-invariant — a conservative cache key).
const SYMMETRY_BUDGET: usize = 5_040;

/// Identity of one query disjunct within a key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum DisjunctKey {
    /// Canonical (alpha-invariant) form.
    Canonical(CqCanonicalForm),
    /// Fallback for pathologically symmetric disjuncts: head variable
    /// indices plus the debug rendering of the body (exact, conservative).
    Rendered(String),
}

/// Canonical identity of an OMQ for caching purposes.
///
/// Two OMQs with equal keys have the same data schema, the same ontology
/// (syntactically, rendered), and isomorphic query disjunct lists — enough
/// to guarantee identical rewritings and containment verdicts.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct OmqKey {
    /// Sorted `(name, arity)` of the data schema.
    schema: Vec<(String, usize)>,
    /// `id → (name, arity)` for every predicate the OMQ mentions, sorted by
    /// id: anchors the `PredId`s inside the canonical forms (module docs).
    preds: Vec<(u32, String, usize)>,
    /// `id → name` for every constant the query mentions, sorted by id:
    /// anchors the `ConstId`s inside the canonical forms the same way.
    consts: Vec<(u32, String)>,
    /// Alpha-invariantly rendered tgds (variables renamed to their
    /// first-occurrence index), in ontology order.
    sigma: Vec<String>,
    /// Per-disjunct canonical forms, in disjunct order.
    query: Vec<DisjunctKey>,
    /// Answer arity (cheap discriminator; also covered by the forms).
    arity: usize,
}

/// Renders `t` with variables replaced by their first-occurrence index
/// (body first, then head), so alpha-variant tgds render identically while
/// distinct rules stay distinct. Constants render by name.
fn tgd_key(t: &Tgd, voc: &Vocabulary) -> String {
    let mut names: HashMap<VarId, usize> = HashMap::new();
    let mut render_atoms = |atoms: &[omq_model::Atom]| -> String {
        atoms
            .iter()
            .map(|a| {
                let args: Vec<String> = a
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => {
                            let next = names.len();
                            format!("V{}", *names.entry(*v).or_insert(next))
                        }
                        Term::Const(c) => format!("'{}'", voc.const_name(*c)),
                        Term::Null(_) => unreachable!("tgds contain no nulls"),
                    })
                    .collect();
                format!("{}({})", voc.pred_name(a.pred), args.join(","))
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    let body = render_atoms(&t.body);
    let head = render_atoms(&t.head);
    format!("{body}->{head}")
}

fn disjunct_key(d: &Cq) -> DisjunctKey {
    match cq_canonical_form(d, SYMMETRY_BUDGET) {
        Some(form) => DisjunctKey::Canonical(form),
        None => DisjunctKey::Rendered(format!("{:?}|{:?}", d.head, d.body)),
    }
}

impl OmqKey {
    /// Computes the key of `omq` under `voc`.
    pub fn of(omq: &Omq, voc: &Vocabulary) -> OmqKey {
        let mut schema: Vec<(String, usize)> = omq
            .data_schema
            .preds()
            .iter()
            .map(|&p| (voc.pred_name(p).to_owned(), voc.arity(p)))
            .collect();
        schema.sort();
        let mut pred_ids: Vec<u32> = omq
            .data_schema
            .preds()
            .iter()
            .copied()
            .chain(
                omq.sigma
                    .iter()
                    .flat_map(|t| t.body.iter().chain(t.head.iter()).map(|a| a.pred)),
            )
            .chain(
                omq.query
                    .disjuncts
                    .iter()
                    .flat_map(|d| d.body.iter().map(|a| a.pred)),
            )
            .map(|p| p.0)
            .collect();
        pred_ids.sort_unstable();
        pred_ids.dedup();
        let preds = pred_ids
            .into_iter()
            .map(|id| {
                let p = omq_model::PredId(id);
                (id, voc.pred_name(p).to_owned(), voc.arity(p))
            })
            .collect();
        let mut const_ids: Vec<u32> = omq
            .query
            .disjuncts
            .iter()
            .flat_map(|d| d.body.iter().flat_map(|a| a.args.iter()))
            .filter_map(|t| match t {
                Term::Const(c) => Some(c.0),
                _ => None,
            })
            .collect();
        const_ids.sort_unstable();
        const_ids.dedup();
        let consts = const_ids
            .into_iter()
            .map(|id| (id, voc.const_name(omq_model::ConstId(id)).to_owned()))
            .collect();
        OmqKey {
            schema,
            preds,
            consts,
            sigma: omq.sigma.iter().map(|t| tgd_key(t, voc)).collect(),
            query: omq.query.disjuncts.iter().map(disjunct_key).collect(),
            arity: omq.query.arity,
        }
    }

    /// A short stable hex digest for responses and logs.
    pub fn digest(&self) -> String {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        format!("{:016x}", h.finish())
    }
}

/// The output-relevant fingerprint of an [`XRewriteConfig`].
///
/// Only knobs that change the *produced rewriting* participate: thread
/// count and prune cadence are scheduling-only (documented bit-identical),
/// and the wall-clock budget is excluded because the cache stores complete
/// artifacts only — a complete rewriting is independent of how much time
/// was allowed for it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RewriteCfgKey {
    max_queries: usize,
    max_atoms: Option<usize>,
    max_subset: usize,
    canonicalize: bool,
    dedup_canonical: bool,
    prune_subsumed: bool,
}

impl RewriteCfgKey {
    /// A short stable hex digest (same scheme as [`OmqKey::digest`]); used
    /// with the OMQ digest to name persisted artifact files.
    pub fn digest(&self) -> String {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        format!("{:016x}", h.finish())
    }

    pub fn of(cfg: &XRewriteConfig) -> RewriteCfgKey {
        RewriteCfgKey {
            max_queries: cfg.max_queries,
            max_atoms: cfg.max_atoms,
            max_subset: cfg.max_subset,
            canonicalize: cfg.canonicalize,
            dedup_canonical: cfg.dedup == DedupStrategy::Canonical,
            prune_subsumed: cfg.prune_subsumed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema};

    fn build(text: &str, data: &[&str], q: &str) -> (Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        (
            Omq::new(schema, prog.tgds.clone(), prog.query(q).unwrap().clone()),
            voc,
        )
    }

    /// Alpha-variant queries (renamed variables) get the same key — the
    /// canonical-sharing property the artifact cache is built on.
    #[test]
    fn alpha_variants_share_a_key() {
        let (a, voc_a) = build(
            "P(X) -> exists Y . R(X,Y)\nq(X) :- R(X,Y), P(Y)\n",
            &["P", "R"],
            "q",
        );
        let (b, voc_b) = build(
            "P(U) -> exists V . R(U,V)\nq(S) :- R(S,T), P(T)\n",
            &["P", "R"],
            "q",
        );
        assert_eq!(OmqKey::of(&a, &voc_a), OmqKey::of(&b, &voc_b));
        assert_eq!(
            OmqKey::of(&a, &voc_a).digest(),
            OmqKey::of(&b, &voc_b).digest()
        );
    }

    /// Different queries, schemas, or ontologies get different keys.
    #[test]
    fn semantic_differences_split_keys() {
        let (a, voc_a) = build(
            "P(X) -> exists Y . R(X,Y)\nq(X) :- R(X,Y), P(Y)\n",
            &["P", "R"],
            "q",
        );
        let (b, voc_b) = build(
            "P(X) -> exists Y . R(X,Y)\nq(X) :- R(X,Y)\n",
            &["P", "R"],
            "q",
        );
        let (c, voc_c) = build(
            "P(X) -> exists Y . R(X,Y)\nq(X) :- R(X,Y), P(Y)\n",
            &["P"],
            "q",
        );
        let ka = OmqKey::of(&a, &voc_a);
        assert_ne!(ka, OmqKey::of(&b, &voc_b), "different query bodies");
        assert_ne!(ka, OmqKey::of(&c, &voc_c), "different data schemas");
    }

    /// The key survives vocabularies with different interning orders.
    #[test]
    fn interning_order_does_not_matter() {
        let (a, voc_a) = build(
            "P(X) -> R(X)\nT(X) -> P(X)\nq(X) :- R(X)\n",
            &["P", "T"],
            "q",
        );
        // Same rules, different line order -> different PredId assignment.
        let (b, voc_b) = build(
            "T(X) -> P(X)\nP(X) -> R(X)\nq(X) :- R(X)\n",
            &["P", "T"],
            "q",
        );
        // Sigma order differs, so keys differ; but rebuilding `a`'s sigma
        // order in `b`'s vocabulary must match `a` exactly.
        assert_ne!(OmqKey::of(&a, &voc_a), OmqKey::of(&b, &voc_b));
        let (b2, voc_b2) = build(
            "T(X) -> P(X)\nP(X) -> R(X)\nq(X) :- R(X)\n",
            &["P", "T"],
            "q",
        );
        assert_eq!(OmqKey::of(&b, &voc_b), OmqKey::of(&b2, &voc_b2));
    }

    #[test]
    fn cfg_key_tracks_output_relevant_knobs_only() {
        let base = XRewriteConfig::default();
        let mut threads = base.clone();
        threads.threads = 7;
        let mut interval = base.clone();
        interval.prune_interval = 1;
        assert_eq!(RewriteCfgKey::of(&base), RewriteCfgKey::of(&threads));
        assert_eq!(RewriteCfgKey::of(&base), RewriteCfgKey::of(&interval));
        let mut budget = base.clone();
        budget.max_queries = 99;
        assert_ne!(RewriteCfgKey::of(&base), RewriteCfgKey::of(&budget));
    }
}
