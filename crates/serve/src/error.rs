//! The serve-layer error type.
//!
//! Every failure a request can hit maps to one variant, and every variant
//! renders as a structured JSON error object — the server reports failures
//! per-request and keeps serving, it never aborts on bad input.

use std::fmt;

use omq_core::ContainmentError;
use omq_model::ParseError;

/// A request-level failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A request line was not valid JSON.
    Json(String),
    /// The request object was malformed (missing/mistyped fields); carries
    /// the field and the problem.
    BadRequest(String),
    /// Unknown `op` value.
    UnknownOp(String),
    /// A program, query, or fact failed to parse.
    Parse(ParseError),
    /// A referenced registration name is not in the registry.
    UnknownName(String),
    /// The named query does not exist in the registered program.
    UnknownQuery(String),
    /// A schema entry references an unknown predicate without declaring an
    /// arity (`"P/2"` declares one).
    UnknownPredicate(String),
    /// The containment engine rejected the question.
    Containment(ContainmentError),
    /// An `evaluate`-at-version request named a version the store can no
    /// longer reconstruct: it predates the compaction floor and no snapshot
    /// pinned it, or it does not exist yet.
    StaleVersion(String),
    /// Admission control refused the request: the server is over its queue
    /// watermark (or the request's deadline cannot survive the predicted
    /// queue wait). Structured and retryable — shedding answers instead of
    /// queueing, so an overload burst never poisons the worker pool.
    Shed {
        /// Requests queued ahead of this one when it was refused.
        queue_depth: usize,
        /// The admission watermark in force.
        watermark: usize,
    },
}

impl ServeError {
    /// Stable machine-readable kind for the JSON error object.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Json(_) => "json",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::UnknownOp(_) => "unknown_op",
            ServeError::Parse(_) => "parse",
            ServeError::UnknownName(_) => "unknown_name",
            ServeError::UnknownQuery(_) => "unknown_query",
            ServeError::UnknownPredicate(_) => "unknown_predicate",
            ServeError::Containment(_) => "containment",
            ServeError::StaleVersion(_) => "stale_version",
            ServeError::Shed { .. } => "shed",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Json(msg) => write!(f, "invalid JSON: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::UnknownOp(op) => write!(f, "unknown op {op:?}"),
            ServeError::Parse(e) => write!(f, "parse error: {e}"),
            ServeError::UnknownName(n) => write!(f, "no registered OMQ named {n:?}"),
            ServeError::UnknownQuery(q) => write!(f, "program declares no query named {q:?}"),
            ServeError::UnknownPredicate(p) => write!(
                f,
                "schema predicate {p:?} is not declared; use \"{p}/N\" to intern it with arity N"
            ),
            ServeError::Containment(e) => write!(f, "containment error: {e}"),
            ServeError::StaleVersion(msg) => write!(f, "stale version: {msg}"),
            ServeError::Shed {
                queue_depth,
                watermark,
            } => write!(
                f,
                "shed: queue depth {queue_depth} at or over the admission watermark {watermark}; retry later"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Parse(e) => Some(e),
            ServeError::Containment(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> Self {
        ServeError::Parse(e)
    }
}

impl From<ContainmentError> for ServeError {
    fn from(e: ContainmentError) -> Self {
        ServeError::Containment(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_cover_all_variants() {
        let variants: Vec<ServeError> = vec![
            ServeError::Json("x".into()),
            ServeError::BadRequest("y".into()),
            ServeError::UnknownOp("z".into()),
            ServeError::UnknownName("a".into()),
            ServeError::UnknownQuery("b".into()),
            ServeError::UnknownPredicate("P".into()),
            ServeError::Containment(ContainmentError::ArityMismatch),
            ServeError::StaleVersion("c".into()),
            ServeError::Shed {
                queue_depth: 9,
                watermark: 4,
            },
        ];
        for v in &variants {
            assert!(!v.to_string().is_empty());
            assert!(!v.kind().is_empty());
        }
        use std::error::Error;
        assert!(ServeError::Containment(ContainmentError::ArityMismatch)
            .source()
            .is_some());
        assert!(ServeError::Json("x".into()).source().is_none());
    }
}
