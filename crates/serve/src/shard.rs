//! Canonical-key registry sharding: N independent [`Engine`]s behind one
//! [`BatchExecutor`], each owning a slice of the name space.
//!
//! Routing is by the *canonical* key (the alpha-invariant [`OmqKey`]
//! digest), not the raw name, so aliases of one OMQ land on one shard and
//! keep sharing its caches. `register` broadcasts to every shard — the
//! registries stay replicas of each other, which is what makes routing a
//! pure performance decision: any shard would answer any request with
//! byte-identical responses (the engine's caches are response-invariant
//! by design), sharding just removes cross-request lock contention on
//! the registry, the caches, and the named stores. Store mutations for a
//! name consistently hit its shard, so each named store lives exactly
//! once. `stats` is answered by shard 0, which carries the serve-tier
//! [`RuntimeStats`] (per-shard occupancy included).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use omq_obs::metrics::{render_prometheus, PROMETHEUS_CONTENT_TYPE};
use omq_obs::JsonlSink;

use crate::engine::{global_samples, Engine, EngineConfig};
use crate::json::Json;
use crate::protocol::{Op, Request, Response};
use crate::reactor::RuntimeStats;
use crate::server::BatchExecutor;

/// N engines plus the shared serve-tier counters.
pub struct ShardedEngine {
    shards: Vec<Engine>,
    runtime: Arc<RuntimeStats>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Target {
    /// Registry mutation: every shard applies it (shard 0 answers).
    Broadcast,
    Shard(usize),
    /// Answered by the front end itself: `metrics` needs every shard's
    /// local samples in one scrape, which no single engine can render.
    Front,
}

impl ShardedEngine {
    /// `shards` engines (at least one) sharing one runtime-stats block;
    /// `watermark` configures the admission gate carried by those stats.
    pub fn new(cfg: EngineConfig, shards: usize, watermark: usize) -> ShardedEngine {
        let n = shards.max(1);
        let runtime = Arc::new(RuntimeStats::new(n, watermark));
        let mut engines: Vec<Engine> = (0..n).map(|_| Engine::new(cfg.clone())).collect();
        // Shard 0 answers `stats`, so it is the one that renders the
        // serve-tier block.
        engines[0].set_runtime_stats(Arc::clone(&runtime));
        // One metrics registry and one flight recorder across every shard
        // (shard 0's become the shared pair): per-op latency windows and
        // the flight rings are process-wide, and the runtime stats can
        // charge sheds against the same SLO-burn accounting.
        let metrics = Arc::clone(engines[0].metrics());
        let flight = Arc::clone(engines[0].flight());
        for engine in engines.iter_mut().skip(1) {
            engine.set_telemetry(Arc::clone(&metrics), Arc::clone(&flight));
        }
        runtime.set_telemetry(metrics, flight);
        ShardedEngine {
            shards: engines,
            runtime,
        }
    }

    /// The full Prometheus exposition for the sharded front end: the
    /// shared registry and process-global samples once, plus every
    /// shard's local samples. `render_prometheus` merges same-name,
    /// same-label series, so per-shard cache/store counters fold into
    /// process totals. Registry-size gauges come from shard 0 only — the
    /// registries are replicas, and summing replicas would overcount.
    pub fn metrics_text(&self) -> String {
        let mut samples = self.shards[0].metrics().samples();
        samples.extend(global_samples(self.shards[0].flight()));
        for (i, shard) in self.shards.iter().enumerate() {
            samples.extend(shard.local_samples().into_iter().filter(|s| {
                i == 0 || !matches!(s.name, "omq_registered" | "omq_registry_distinct_keys")
            }));
        }
        render_prometheus(&samples)
    }

    /// The shared serve-tier counters (hand these to the reactor).
    pub fn runtime(&self) -> Arc<RuntimeStats> {
        Arc::clone(&self.runtime)
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    pub fn shard(&self, i: usize) -> &Engine {
        &self.shards[i]
    }

    /// Streams every shard's request span trees to `sink`.
    pub fn set_trace_sink(&mut self, sink: Arc<JsonlSink>) {
        for shard in &mut self.shards {
            shard.set_trace_sink(Arc::clone(&sink));
        }
    }

    /// The shard owning `name`: hash of the canonical digest when the
    /// name is registered (aliases co-locate), hash of the raw name
    /// otherwise (the routed shard then reports the same unknown-name
    /// error any shard would).
    fn shard_of(&self, name: &str) -> usize {
        let key = self.shards[0]
            .key_digest(name)
            .unwrap_or_else(|| name.to_owned());
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn target(&self, item: &Result<Request, Box<Response>>) -> Target {
        let req = match item {
            Ok(req) => req,
            // Protocol-layer errors pass through any shard unchanged.
            Err(_) => return Target::Shard(0),
        };
        match &req.op {
            Op::Register { .. } => Target::Broadcast,
            Op::Metrics => Target::Front,
            // Shard 0's flight recorder is the shared one, so it can
            // answer `trace_dump` for the whole process.
            Op::Stats | Op::TraceDump => Target::Shard(0),
            Op::Contains { lhs, .. } | Op::Equivalent { lhs, .. } | Op::Explain { lhs, .. } => {
                Target::Shard(self.shard_of(lhs))
            }
            Op::Classify { name }
            | Op::Evaluate { name, .. }
            | Op::Assert { name, .. }
            | Op::Retract { name, .. }
            | Op::Snapshot { name } => Target::Shard(self.shard_of(name)),
        }
    }
}

impl BatchExecutor for ShardedEngine {
    /// Routes the batch: maximal consecutive same-shard runs dispatch as
    /// one sub-batch (keeping the engine's in-batch parallel fan-out and
    /// retract-run batching), registers broadcast in order. Responses
    /// come back in request order, byte-identical to a single engine.
    fn execute_batch(&self, items: &[Result<Request, Box<Response>>]) -> Vec<Response> {
        if self.shards.len() == 1 {
            self.runtime.record_shard(0, items.len());
            return self.shards[0].execute_batch(items);
        }
        let n = items.len();
        let mut out: Vec<Option<Response>> = vec![None; n];
        let mut i = 0;
        while i < n {
            match self.target(&items[i]) {
                Target::Broadcast => {
                    let one = std::slice::from_ref(&items[i]);
                    let mut first = None;
                    for (s, shard) in self.shards.iter().enumerate() {
                        let resp = shard.execute_batch(one).into_iter().next();
                        self.runtime.record_shard(s, 1);
                        if s == 0 {
                            first = resp;
                        }
                    }
                    out[i] = first;
                    i += 1;
                }
                Target::Front => {
                    let id = match &items[i] {
                        Ok(req) => req.id.clone(),
                        Err(_) => None,
                    };
                    self.runtime.record_shard(0, 1);
                    out[i] = Some(Response::ok(
                        id,
                        vec![
                            (
                                "content_type".to_owned(),
                                Json::str(PROMETHEUS_CONTENT_TYPE),
                            ),
                            ("exposition".to_owned(), Json::str(self.metrics_text())),
                        ],
                    ));
                    i += 1;
                }
                Target::Shard(s) => {
                    let mut j = i + 1;
                    while j < n && self.target(&items[j]) == Target::Shard(s) {
                        j += 1;
                    }
                    self.runtime.record_shard(s, j - i);
                    for (off, resp) in self.shards[s]
                        .execute_batch(&items[i..j])
                        .into_iter()
                        .enumerate()
                    {
                        out[i + off] = Some(resp);
                    }
                    i = j;
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every request is answered"))
            .collect()
    }

    fn render_metrics(&self) -> Option<String> {
        Some(self.metrics_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, response_to_json};

    fn run(executor: &dyn BatchExecutor, lines: &[&str]) -> Vec<String> {
        let items: Vec<_> = lines.iter().map(|l| parse_request(l)).collect();
        executor
            .execute_batch(&items)
            .iter()
            .map(|r| response_to_json(r).to_string())
            .collect()
    }

    const LINES: &[&str] = &[
        r#"{"id":1,"op":"register","name":"a","program":"P(X) -> R(X)\nq(X) :- R(X)","schema":["P"],"query":"q"}"#,
        r#"{"id":2,"op":"register","name":"b","program":"q(X) :- P(X)","schema":["P"],"query":"q"}"#,
        r#"{"id":3,"op":"contains","lhs":"a","rhs":"b"}"#,
        r#"{"id":4,"op":"contains","lhs":"b","rhs":"a"}"#,
        r#"{"id":5,"op":"classify","name":"b"}"#,
        r#"{"id":6,"op":"equivalent","lhs":"a","rhs":"a"}"#,
        r#"{"id":7,"op":"contains","lhs":"missing","rhs":"a"}"#,
    ];

    #[test]
    fn sharded_responses_are_byte_identical_to_a_single_engine() {
        let single = ShardedEngine::new(EngineConfig::default(), 1, 0);
        let sharded = ShardedEngine::new(EngineConfig::default(), 3, 0);
        assert_eq!(run(&single, LINES), run(&sharded, LINES));
    }

    #[test]
    fn shard_occupancy_counts_every_request() {
        let sharded = ShardedEngine::new(EngineConfig::default(), 2, 0);
        let _ = run(&sharded, LINES);
        let json = sharded.runtime().to_json().to_string();
        // Both registers broadcast (2 per shard) and the five routed
        // requests land somewhere; totals live in the stats block.
        assert!(json.contains("\"shards\":["), "missing occupancy: {json}");
        let stats = run(&sharded, &[r#"{"id":8,"op":"stats"}"#]);
        assert!(
            stats[0].contains("\"reactor\":{"),
            "missing block: {stats:?}"
        );
        assert!(
            stats[0].contains("\"shards\":["),
            "missing occupancy: {}",
            stats[0]
        );
    }

    #[test]
    fn aliases_land_on_one_shard_and_share_its_caches() {
        let sharded = ShardedEngine::new(EngineConfig::default(), 4, 0);
        let lines = [
            r#"{"id":1,"op":"register","name":"orig","program":"q(X) :- P(X)","schema":["P"],"query":"q"}"#,
            r#"{"id":2,"op":"register","name":"alias","program":"q(Y) :- P(Y)","schema":["P"],"query":"q"}"#,
        ];
        let out = run(&sharded, &lines);
        assert!(out[1].contains("\"alias_of\":\"orig\""), "{}", out[1]);
        assert_eq!(sharded.shard_of("orig"), sharded.shard_of("alias"));
    }
}
