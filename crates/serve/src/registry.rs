//! The session/registry layer: ontologies and OMQs are parsed and
//! registered *once*, into a single shared vocabulary, and every later
//! request refers to them by name.
//!
//! One vocabulary per registry is what makes cross-OMQ requests
//! (containment between two registrations) well-posed — both sides speak
//! the same `PredId`s — and what makes per-request vocabulary clones cheap
//! and deterministic: a request job clones the registry vocabulary, interns
//! whatever fresh symbols it needs (frozen constants, database constants),
//! and throws the clone away, so concurrent requests can never observe each
//! other's interning.

use std::collections::HashMap;

use omq_core::{detect_language, OmqLanguage};
use omq_model::{parse_query, parse_tgd, Omq, Schema, Tgd, Ucq, Vocabulary};

use crate::error::ServeError;
use crate::key::OmqKey;

/// A registered OMQ.
#[derive(Clone, Debug)]
pub struct Registered {
    /// The OMQ, interned in the registry vocabulary.
    pub omq: Omq,
    /// Canonical cache key (see `crate::key`).
    pub key: OmqKey,
    /// Detected language, computed once at registration.
    pub language: OmqLanguage,
    /// Name of the earlier registration this one aliases (same canonical
    /// key), if any. Lets the engine count alias-slot cache hits distinctly.
    pub alias_of: Option<String>,
}

/// What a registration call reports back.
#[derive(Clone, Debug)]
pub struct RegisterInfo {
    /// Digest of the canonical key (for logs / client-side dedup).
    pub digest: String,
    /// Language of the registered OMQ.
    pub language: OmqLanguage,
    /// Name of an earlier registration with the *same canonical key*, if
    /// any — the new name still works, and it shares all cache slots.
    pub alias_of: Option<String>,
}

/// The registry: named OMQs over one shared vocabulary.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    voc: Vocabulary,
    omqs: HashMap<String, Registered>,
    /// First registered name per canonical key (alias detection).
    by_key: HashMap<OmqKey, String>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// The shared vocabulary (request jobs clone it).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.voc
    }

    /// Number of registered OMQs.
    pub fn len(&self) -> usize {
        self.omqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.omqs.is_empty()
    }

    /// Number of distinct canonical keys (≤ `len()`; the gap counts
    /// alias registrations).
    pub fn distinct_keys(&self) -> usize {
        self.by_key.len()
    }

    /// Looks a registration up by name.
    pub fn get(&self, name: &str) -> Result<&Registered, ServeError> {
        self.omqs
            .get(name)
            .ok_or_else(|| ServeError::UnknownName(name.to_owned()))
    }

    /// Parses `program` (tgds and named queries, one per line — the
    /// `omq_model::parser` syntax) into the shared vocabulary and registers
    /// the OMQ `(schema, tgds, program.query(query_name))` under `name`.
    ///
    /// Schema entries are predicate names; `"P/2"` interns `P` with arity 2
    /// when the program itself never mentions it.
    pub fn register(
        &mut self,
        name: &str,
        program: &str,
        schema: &[&str],
        query_name: &str,
    ) -> Result<RegisterInfo, ServeError> {
        // Parse into a scratch clone first: a parse error must not leave
        // half a program's symbols interned in the shared vocabulary.
        let mut voc = self.voc.clone();
        let (tgds, queries) = parse_program_into(&mut voc, program)?;
        let query: Ucq = queries
            .get(query_name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownQuery(query_name.to_owned()))?;
        let mut preds = Vec::with_capacity(schema.len());
        for entry in schema {
            let (pname, arity) = match entry.split_once('/') {
                Some((p, a)) => (
                    p,
                    Some(a.parse::<usize>().map_err(|_| {
                        ServeError::BadRequest(format!("bad schema entry {entry:?}"))
                    })?),
                ),
                None => (*entry, None),
            };
            let id = match (voc.pred_id(pname), arity) {
                (Some(id), _) => id,
                (None, Some(a)) => voc.pred(pname, a),
                (None, None) => return Err(ServeError::UnknownPredicate(pname.to_owned())),
            };
            preds.push(id);
        }
        let omq = Omq::new(Schema::from_preds(preds), tgds, query);
        let language = detect_language(&omq);
        let key = OmqKey::of(&omq, &voc);
        let digest = key.digest();
        let alias_of = self
            .by_key
            .get(&key)
            .filter(|first| first.as_str() != name)
            .cloned();
        // Commit: adopt the scratch vocabulary and store the registration.
        self.voc = voc;
        self.by_key
            .entry(key.clone())
            .or_insert_with(|| name.to_owned());
        self.omqs.insert(
            name.to_owned(),
            Registered {
                omq,
                key,
                language,
                alias_of: alias_of.clone(),
            },
        );
        Ok(RegisterInfo {
            digest,
            language,
            alias_of,
        })
    }
}

/// Parses a program line-by-line into an *existing* vocabulary (unlike
/// `omq_model::parse_program`, which builds a fresh one). Lines whose
/// pre-comment text contains `:-` are queries, lines containing `->` are
/// tgds, anything else non-empty is an error.
fn parse_program_into(
    voc: &mut Vocabulary,
    text: &str,
) -> Result<(Vec<Tgd>, HashMap<String, Ucq>), ServeError> {
    let mut tgds = Vec::new();
    let mut queries: HashMap<String, Ucq> = HashMap::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let code = raw.split(['#', '%']).next().unwrap_or("");
        if code.trim().is_empty() {
            continue;
        }
        if code.contains(":-") {
            let (qname, cq) = parse_query(voc, raw)?;
            match queries.get_mut(&qname) {
                Some(ucq) => {
                    if ucq.arity != cq.head.len() {
                        return Err(ServeError::Parse(omq_model::ParseError {
                            line: lineno,
                            message: format!("query {qname} redeclared with different arity"),
                        }));
                    }
                    ucq.disjuncts.push(cq);
                }
                None => {
                    queries.insert(qname, Ucq::from_cq(cq));
                }
            }
        } else if code.contains("->") {
            tgds.push(parse_tgd(voc, raw)?);
        } else {
            return Err(ServeError::Parse(omq_model::ParseError {
                line: lineno,
                message: "expected a tgd (`->`) or a query (`:-`)".into(),
            }));
        }
    }
    Ok((tgds, queries))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "P(X) -> exists Y . R(X,Y)\n\
                        R(X,Y) -> P(Y)\n\
                        T(X) -> P(X)\n\
                        q(X) :- R(X,Y), P(Y)\n";

    #[test]
    fn register_and_lookup() {
        let mut reg = Registry::new();
        let info = reg.register("ex1", PROG, &["P", "T"], "q").unwrap();
        assert_eq!(info.language, OmqLanguage::Linear);
        assert!(info.alias_of.is_none());
        let r = reg.get("ex1").unwrap();
        assert_eq!(r.omq.arity(), 1);
        assert_eq!(reg.len(), 1);
        assert!(matches!(
            reg.get("nope").unwrap_err(),
            ServeError::UnknownName(_)
        ));
    }

    #[test]
    fn alias_detection_via_canonical_key() {
        let mut reg = Registry::new();
        reg.register("a", PROG, &["P", "T"], "q").unwrap();
        // Alpha-variant program: renamed variables only.
        let variant = "P(U) -> exists V . R(U,V)\n\
                       R(U,V) -> P(V)\n\
                       T(U) -> P(U)\n\
                       q(Z) :- R(Z,W), P(W)\n";
        let info = reg.register("b", variant, &["P", "T"], "q").unwrap();
        assert_eq!(info.alias_of.as_deref(), Some("a"));
        assert_eq!(reg.get("b").unwrap().alias_of.as_deref(), Some("a"));
        assert_eq!(reg.get("a").unwrap().alias_of, None);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.distinct_keys(), 1);
    }

    #[test]
    fn parse_error_leaves_registry_untouched() {
        let mut reg = Registry::new();
        let before = reg.vocabulary().num_preds();
        let err = reg.register("bad", "Zork(X) -> Quux(X\n", &["Zork"], "q");
        assert!(matches!(err.unwrap_err(), ServeError::Parse(_)));
        assert_eq!(reg.vocabulary().num_preds(), before);
        assert!(reg.is_empty());
    }

    #[test]
    fn schema_arity_syntax_interns_unseen_predicates() {
        let mut reg = Registry::new();
        let info = reg.register("u", "q(X) :- R(X,Y)\n", &["R", "Unused/3"], "q");
        assert!(info.is_ok());
        assert_eq!(
            reg.vocabulary()
                .arity(reg.vocabulary().pred_id("Unused").unwrap()),
            3
        );
        let missing = reg.register("v", "q(X) :- R(X,Y)\n", &["Ghost"], "q");
        assert!(matches!(
            missing.unwrap_err(),
            ServeError::UnknownPredicate(_)
        ));
    }

    #[test]
    fn unknown_query_name_rejected() {
        let mut reg = Registry::new();
        let err = reg.register("x", PROG, &["P", "T"], "nope");
        assert!(matches!(err.unwrap_err(), ServeError::UnknownQuery(_)));
    }
}
