//! A small LRU cache with hit/miss/eviction accounting.
//!
//! Backed by a `HashMap` plus a monotone use-stamp per entry: `get` and
//! `insert` are O(1) expected, eviction scans for the minimum stamp —
//! O(capacity), fine for the artifact-cache sizes the server uses
//! (hundreds, not millions; the cached values are whole UCQ rewritings, so
//! capacity is bounded by memory long before scan cost matters).

use std::collections::HashMap;
use std::hash::Hash;

/// Cumulative cache counters (monotone; exposed in `stats` responses and
/// the serve benchmark rows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: usize,
    pub misses: usize,
    pub insertions: usize,
    pub evictions: usize,
    /// Hits where the caller reached the slot through an *alias*
    /// registration — a name other than the one that populated the slot,
    /// sharing it via canonical keying. A subset of `hits` (every alias
    /// hit also counts as a hit); the gap `hits - alias_hits` is the
    /// plain same-name hit count.
    pub alias_hits: usize,
}

/// An LRU map with fixed capacity. Capacity 0 disables storage entirely
/// (every lookup is a miss, every insert a no-op) — the `--no-cache`
/// configuration.
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    capacity: usize,
    clock: u64,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            capacity,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.get_tagged(key, false)
    }

    /// [`LruCache::get`], additionally counting a hit as an *alias* hit
    /// when `alias` is true (the caller reached this slot through a name
    /// other than the one that populated it — see [`CacheStats::alias_hits`]).
    pub fn get_tagged(&mut self, key: &K, alias: bool) -> Option<V> {
        self.clock += 1;
        match self.map.get_mut(key) {
            Some((v, stamp)) => {
                *stamp = self.clock;
                self.stats.hits += 1;
                if alias {
                    self.stats.alias_hits += 1;
                }
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if let Some(slot) = self.map.get_mut(&key) {
            *slot = (value, self.clock);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(key, (value, self.clock));
        self.stats.insertions += 1;
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "a");
        assert_eq!(c.get(&1), Some("a"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
        assert_eq!(s.alias_hits, 0);
    }

    #[test]
    fn alias_hits_are_a_subset_of_hits() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        assert_eq!(c.get_tagged(&1, true), Some("a"));
        assert_eq!(c.get_tagged(&1, false), Some("a"));
        assert_eq!(c.get_tagged(&2, true), None, "an alias miss is a miss");
        let s = c.stats();
        assert_eq!((s.hits, s.alias_hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // refresh 1; 2 is now oldest
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "2 was evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn reinsert_refreshes_value_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.stats().evictions, 0);
    }
}
