//! Queue-depth admission control for the serve tier.
//!
//! The reactor tracks how many requests sit between "read off a socket"
//! and "response bytes queued"; when that depth reaches the configured
//! watermark, *sheddable* work (the solver-heavy read ops) is answered
//! immediately with a structured [`ServeError::Shed`] instead of joining
//! the queue. Shedding never poisons the worker pool and never touches
//! engine state — a shed request simply got a cheap, retryable "busy"
//! answer. Mutating and administrative ops are always admitted: dropping
//! an `assert`/`retract` would silently fork the client's picture of a
//! versioned store, and `stats` is exactly what an operator needs while
//! the server is saturated.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::ServeError;
use crate::protocol::Op;

/// Shared depth counter plus the shed watermark (`0` disables shedding).
#[derive(Debug, Default)]
pub struct Admission {
    depth: AtomicUsize,
    watermark: usize,
}

impl Admission {
    pub fn new(watermark: usize) -> Admission {
        Admission {
            depth: AtomicUsize::new(0),
            watermark,
        }
    }

    /// The configured watermark (`0` = shedding disabled).
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Requests currently admitted and not yet answered.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Admits `n` requests; returns the depth *before* this batch joined,
    /// which is the depth shedding decisions for the batch are made at
    /// (the batch must not shed itself into the watermark).
    pub fn enter(&self, n: usize) -> usize {
        self.depth.fetch_add(n, Ordering::Relaxed)
    }

    /// Retires `n` requests (answered or shed).
    pub fn exit(&self, n: usize) {
        self.depth.fetch_sub(n, Ordering::Relaxed);
    }

    /// Whether a request that observed `depth_at_enqueue` should shed.
    pub fn should_shed(&self, depth_at_enqueue: usize) -> bool {
        self.watermark > 0 && depth_at_enqueue >= self.watermark
    }

    /// The structured shed response body for a request observing
    /// `depth_at_enqueue`.
    pub fn shed_error(&self, depth_at_enqueue: usize) -> ServeError {
        ServeError::Shed {
            queue_depth: depth_at_enqueue,
            watermark: self.watermark,
        }
    }

    /// Only solver-heavy read ops shed; registry and store mutations,
    /// snapshots, and diagnostics always run.
    pub fn sheddable(op: &Op) -> bool {
        matches!(
            op,
            Op::Contains { .. } | Op::Equivalent { .. } | Op::Evaluate { .. } | Op::Explain { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_tracks_enter_and_exit() {
        let a = Admission::new(4);
        assert_eq!(a.enter(3), 0);
        assert_eq!(a.depth(), 3);
        assert_eq!(a.enter(2), 3);
        a.exit(4);
        assert_eq!(a.depth(), 1);
        a.exit(1);
        assert_eq!(a.depth(), 0);
    }

    #[test]
    fn sheds_at_or_over_the_watermark_only() {
        let a = Admission::new(4);
        assert!(!a.should_shed(0));
        assert!(!a.should_shed(3));
        assert!(a.should_shed(4));
        assert!(a.should_shed(100));
        let off = Admission::new(0);
        assert!(!off.should_shed(usize::MAX));
    }

    #[test]
    fn shed_error_is_structured() {
        let a = Admission::new(4);
        match a.shed_error(7) {
            ServeError::Shed {
                queue_depth,
                watermark,
            } => {
                assert_eq!(queue_depth, 7);
                assert_eq!(watermark, 4);
            }
            other => panic!("expected Shed, got {other:?}"),
        }
    }

    #[test]
    fn only_solver_reads_are_sheddable() {
        let sheddable = [
            Op::Contains {
                lhs: "a".into(),
                rhs: "b".into(),
            },
            Op::Equivalent {
                lhs: "a".into(),
                rhs: "b".into(),
            },
            Op::Evaluate {
                name: "a".into(),
                facts: vec![],
                at: None,
            },
            Op::Explain {
                lhs: "a".into(),
                rhs: "b".into(),
            },
        ];
        for op in &sheddable {
            assert!(Admission::sheddable(op), "{op:?} should shed");
        }
        let admitted = [
            Op::Register {
                name: "a".into(),
                program: String::new(),
                schema: vec![],
                query: "q".into(),
            },
            Op::Classify { name: "a".into() },
            Op::Stats,
            Op::Assert {
                name: "a".into(),
                facts: vec![],
            },
            Op::Retract {
                name: "a".into(),
                facts: vec![],
            },
            Op::Snapshot { name: "a".into() },
        ];
        for op in &admitted {
            assert!(!Admission::sheddable(op), "{op:?} must always admit");
        }
    }
}
