//! The `omq-serve` binary.
//!
//! Default mode reads JSON-lines requests from stdin and writes responses
//! to stdout (a blank line flushes a batch; EOF flushes the rest). With
//! `--listen ADDR` it serves the same protocol over TCP instead.

use std::io::{self, BufReader};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use omq_serve::{serve_lines, serve_tcp, Engine, EngineConfig};

const USAGE: &str = "\
omq-serve: serve OMQ containment/evaluation requests over JSON lines

USAGE:
  omq-serve [OPTIONS]

OPTIONS:
  --listen ADDR         serve over TCP on ADDR (e.g. 127.0.0.1:7171)
                        instead of stdin/stdout
  --threads N           worker threads for batch fan-out
                        (0 = available parallelism; default 0)
  --cache-capacity N    capacity of each LRU cache (default 256)
  --no-cache            disable both caches (same as --cache-capacity 0)
  --deadline-ms N       default deadline for requests that carry none
  --store-compact-threshold N
                        novelty rows that trigger store compaction
                        (0 = compact only on demand; default 64)
  --trace-out PATH      append every request's span tree to PATH as JSONL
                        trace events (enter/exit/count; needs the default
                        `obs` feature to produce events)
  -h, --help            print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("omq-serve: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = EngineConfig::default();
    let mut listen: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--listen" => match value("--listen") {
                Ok(v) => listen = Some(v),
                Err(e) => return fail(&e),
            },
            "--threads" => match value("--threads").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.threads = n,
                _ => return fail("--threads needs an unsigned integer"),
            },
            "--cache-capacity" => match value("--cache-capacity").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.cache_capacity = n,
                _ => return fail("--cache-capacity needs an unsigned integer"),
            },
            "--no-cache" => cfg.cache_capacity = 0,
            "--deadline-ms" => match value("--deadline-ms").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.default_deadline_ms = Some(n),
                _ => return fail("--deadline-ms needs an unsigned integer"),
            },
            "--store-compact-threshold" => {
                match value("--store-compact-threshold").map(|v| v.parse()) {
                    Ok(Ok(n)) => cfg.store_compact_threshold = n,
                    _ => return fail("--store-compact-threshold needs an unsigned integer"),
                }
            }
            "--trace-out" => match value("--trace-out") {
                Ok(v) => trace_out = Some(v),
                Err(e) => return fail(&e),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown option {other:?}")),
        }
    }

    let mut engine = Engine::new(cfg);
    if let Some(path) = trace_out {
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("omq-serve: cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        engine.set_trace_sink(Arc::new(omq_obs::JsonlSink::new(Box::new(file), true)));
    }
    let result = match listen {
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("omq-serve: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "omq-serve: listening on {}",
                listener.local_addr().map_or(addr, |a| a.to_string())
            );
            serve_tcp(Arc::new(engine), listener)
        }
        None => {
            let stdin = io::stdin();
            serve_lines(&engine, BufReader::new(stdin.lock()), io::stdout().lock())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("omq-serve: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
