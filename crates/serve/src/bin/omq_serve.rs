//! The `omq-serve` binary.
//!
//! Default mode reads JSON-lines requests from stdin and writes responses
//! to stdout (a blank line flushes a batch; EOF flushes the rest). With
//! `--listen ADDR` it serves the same protocol over TCP through the
//! nonblocking, connection-multiplexed reactor (`--tcp-threaded` falls
//! back to the thread-per-connection transport). Either way the back end
//! is a registry shardable with `--shards`, optionally persisting
//! rewriting artifacts under `--cache-dir` and shedding load past
//! `--queue-watermark`.

use std::io::{self, BufReader};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use omq_serve::{
    serve_lines, serve_reactor, serve_tcp, spawn_metrics_exporter, EngineConfig, ReactorConfig,
    ShardedEngine,
};

const USAGE: &str = "\
omq-serve: serve OMQ containment/evaluation requests over JSON lines

USAGE:
  omq-serve [OPTIONS]

OPTIONS:
  --listen ADDR         serve over TCP on ADDR (e.g. 127.0.0.1:7171)
                        through the nonblocking reactor instead of
                        stdin/stdout
  --tcp-threaded        with --listen: thread-per-connection transport
                        instead of the reactor (no admission control)
  --shards N            shard the registry across N engines by canonical
                        key hash (default 1)
  --queue-watermark N   shed solver requests once the admitted queue
                        depth reaches N (0 = never shed; default 0;
                        reactor mode only)
  --cache-dir PATH      persist complete rewriting artifacts under PATH
                        (portable form; survives restarts)
  --threads N           worker threads for batch fan-out
                        (0 = available parallelism; default 0)
  --workers N           reactor batch-worker threads
                        (0 = available parallelism, capped at 8)
  --cache-capacity N    capacity of each LRU cache (default 256)
  --no-cache            disable both caches (same as --cache-capacity 0)
  --deadline-ms N       default deadline for requests that carry none
  --store-compact-threshold N
                        novelty rows that trigger store compaction
                        (0 = compact only on demand; default 64)
  --trace-out PATH      append every request's span tree to PATH as JSONL
                        trace events (enter/exit/count; needs the default
                        `obs` feature to produce events)
  --trace-sample RATE   fraction of requests captured to --trace-out by a
                        deterministic hash of the trace id (0.0-1.0;
                        default 1.0; \"trace\":true requests are always
                        captured)
  --metrics-listen ADDR serve a Prometheus text exposition over HTTP on
                        ADDR (e.g. 127.0.0.1:9100); same content as the
                        `metrics` op
  -h, --help            print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("omq-serve: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = EngineConfig::default();
    let mut listen: Option<String> = None;
    let mut metrics_listen: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut shards: usize = 1;
    let mut watermark: usize = 0;
    let mut workers: usize = 0;
    let mut threaded = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--listen" => match value("--listen") {
                Ok(v) => listen = Some(v),
                Err(e) => return fail(&e),
            },
            "--tcp-threaded" => threaded = true,
            "--shards" => match value("--shards").map(|v| v.parse()) {
                Ok(Ok(n)) if n >= 1 => shards = n,
                _ => return fail("--shards needs a positive integer"),
            },
            "--queue-watermark" => match value("--queue-watermark").map(|v| v.parse()) {
                Ok(Ok(n)) => watermark = n,
                _ => return fail("--queue-watermark needs an unsigned integer"),
            },
            "--cache-dir" => match value("--cache-dir") {
                Ok(v) => cfg.cache_dir = Some(v.into()),
                Err(e) => return fail(&e),
            },
            "--threads" => match value("--threads").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.threads = n,
                _ => return fail("--threads needs an unsigned integer"),
            },
            "--workers" => match value("--workers").map(|v| v.parse()) {
                Ok(Ok(n)) => workers = n,
                _ => return fail("--workers needs an unsigned integer"),
            },
            "--cache-capacity" => match value("--cache-capacity").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.cache_capacity = n,
                _ => return fail("--cache-capacity needs an unsigned integer"),
            },
            "--no-cache" => cfg.cache_capacity = 0,
            "--deadline-ms" => match value("--deadline-ms").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.default_deadline_ms = Some(n),
                _ => return fail("--deadline-ms needs an unsigned integer"),
            },
            "--store-compact-threshold" => {
                match value("--store-compact-threshold").map(|v| v.parse()) {
                    Ok(Ok(n)) => cfg.store_compact_threshold = n,
                    _ => return fail("--store-compact-threshold needs an unsigned integer"),
                }
            }
            "--trace-out" => match value("--trace-out") {
                Ok(v) => trace_out = Some(v),
                Err(e) => return fail(&e),
            },
            "--trace-sample" => match value("--trace-sample").map(|v| v.parse::<f64>()) {
                Ok(Ok(r)) if (0.0..=1.0).contains(&r) => cfg.trace_sample = r,
                _ => return fail("--trace-sample needs a rate between 0.0 and 1.0"),
            },
            "--metrics-listen" => match value("--metrics-listen") {
                Ok(v) => metrics_listen = Some(v),
                Err(e) => return fail(&e),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown option {other:?}")),
        }
    }

    let mut engine = ShardedEngine::new(cfg, shards, watermark);
    if let Some(path) = trace_out {
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("omq-serve: cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        engine.set_trace_sink(Arc::new(omq_obs::JsonlSink::new(Box::new(file), true)));
    }
    let engine = Arc::new(engine);
    if let Some(addr) = metrics_listen {
        let metrics_listener = match TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("omq-serve: cannot bind metrics listener {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "omq-serve: metrics on {}",
            metrics_listener
                .local_addr()
                .map_or(addr, |a| a.to_string())
        );
        let _ = spawn_metrics_exporter(Arc::clone(&engine), metrics_listener);
    }
    let result = match listen {
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("omq-serve: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "omq-serve: listening on {} ({} shard{}, watermark {})",
                listener.local_addr().map_or(addr, |a| a.to_string()),
                engine.shards(),
                if engine.shards() == 1 { "" } else { "s" },
                watermark,
            );
            let runtime = engine.runtime();
            if threaded {
                serve_tcp(engine, listener)
            } else {
                serve_reactor(engine, listener, ReactorConfig { workers }, runtime)
            }
        }
        None => {
            let stdin = io::stdin();
            serve_lines(&*engine, BufReader::new(stdin.lock()), io::stdout().lock())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("omq-serve: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
