//! The nonblocking, connection-multiplexed TCP front end.
//!
//! One reactor thread owns every socket: it runs a level-triggered
//! readiness loop over [`minipoll`] (a vendored `poll(2)` shim — the
//! workspace builds offline), accepts connections nonblockingly, and
//! moves bytes between per-connection read/write buffers and the kernel.
//! Complete batches (blank-line-terminated runs of JSON-lines requests,
//! the same framing as [`crate::server::serve_lines`]) are handed to a
//! small pool of worker threads that parse, apply admission control, and
//! run [`crate::server::BatchExecutor::execute_batch`]; finished response
//! bytes come back over a results queue and a self-wakeup datagram socket
//! kicks the reactor out of `poll` to flush them.
//!
//! Ordering: at most one batch per connection is in flight at a time, so
//! a connection's responses are written in request order and are
//! byte-identical to what the thread-per-connection transport would have
//! produced — the reactor changes *when* work is scheduled, never what it
//! answers. Admission control is the one deliberate exception: when the
//! queue depth at enqueue time sits at or over the watermark, sheddable
//! requests are answered with a structured `shed` error without touching
//! the executor (see [`crate::admission`]).
//!
//! The reactor itself is Unix-only (it needs `poll(2)` and raw fds);
//! [`serve_reactor`] returns `Unsupported` elsewhere, and the portable
//! [`RuntimeStats`] counters compile everywhere so the rest of the crate
//! never cares.

use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use omq_obs::flight::{FlightRecorder, SpanTree};
use omq_obs::metrics::{MetricsRegistry, Sample, PROMETHEUS_CONTENT_TYPE};

use crate::admission::Admission;
use crate::engine::{counter_sample, gauge_sample};
use crate::json::Json;
use crate::server::BatchExecutor;

/// Reactor construction knobs.
#[derive(Clone, Debug, Default)]
pub struct ReactorConfig {
    /// Worker threads executing batches (`0` = available parallelism,
    /// capped at 8 — the engine fans out *inside* a batch too, so a few
    /// batch workers saturate the machine).
    pub workers: usize,
}

impl ReactorConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
    }
}

/// Serve-tier runtime counters: uptime, connection gauges, batch/request
/// totals, shedding, and per-shard occupancy. Shared by the reactor, the
/// admission gate, and the sharded executor; surfaced by the `stats` op
/// as the `"reactor"` block (obs taxonomy `serve.reactor.*`).
#[derive(Debug)]
pub struct RuntimeStats {
    started: Instant,
    connections_live: AtomicUsize,
    connections_peak: AtomicUsize,
    accepted: AtomicU64,
    batches: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    /// The shared queue-depth gate (watermark `0` = shedding off).
    pub admission: Admission,
    shard_requests: Vec<AtomicU64>,
    /// Telemetry plane, when the owning front end has one: the metrics
    /// registry (SLO-burn accounting for sheds) and the flight recorder
    /// (shed requests leave a retained entry even though they never
    /// reach the engine).
    telemetry: OnceLock<(Arc<MetricsRegistry>, Arc<FlightRecorder>)>,
}

impl RuntimeStats {
    pub fn new(shards: usize, watermark: usize) -> RuntimeStats {
        RuntimeStats {
            started: Instant::now(),
            connections_live: AtomicUsize::new(0),
            connections_peak: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            admission: Admission::new(watermark),
            shard_requests: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            telemetry: OnceLock::new(),
        }
    }

    /// Attach the process-wide telemetry plane (first call wins).
    pub fn set_telemetry(&self, metrics: Arc<MetricsRegistry>, flight: Arc<FlightRecorder>) {
        let _ = self.telemetry.set((metrics, flight));
    }

    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.telemetry.get().map(|(_, f)| f)
    }

    pub fn conn_opened(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let live = self.connections_live.fetch_add(1, Ordering::Relaxed) + 1;
        self.connections_peak.fetch_max(live, Ordering::Relaxed);
        omq_obs::counter("serve.reactor.accept", 1);
    }

    pub fn conn_closed(&self) {
        self.connections_live.fetch_sub(1, Ordering::Relaxed);
    }

    /// One batch of `n` requests entered a worker.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(n as u64, Ordering::Relaxed);
        omq_obs::counter("serve.reactor.batch", 1);
    }

    /// One request was answered with a structured shed error.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        omq_obs::counter("serve.reactor.shed", 1);
    }

    /// A shed with its request identity: updates the counters, charges
    /// the SLO-burn window, and leaves a retained flight-recorder entry
    /// (reason `"shed"`) so `trace_dump` can show requests that were
    /// turned away before reaching the engine.
    pub fn record_shed_request(&self, trace_id: u64, op: &'static str) {
        self.record_shed();
        if let Some((metrics, flight)) = self.telemetry.get() {
            metrics.mark_shed();
            flight.offer(
                trace_id,
                op,
                0,
                SpanTree::root("serve.shed", 0),
                Some("shed"),
            );
        }
    }

    /// Reactor/admission scrape samples. Folded into a scrape once by
    /// whichever engine holds the runtime handle (shard 0).
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = vec![
            gauge_sample(
                "omq_connections_live",
                "Currently open client connections.",
                Vec::new(),
                self.connections_live.load(Ordering::Relaxed) as f64,
            ),
            gauge_sample(
                "omq_connections_peak",
                "High-water mark of concurrently open connections.",
                Vec::new(),
                self.connections_peak.load(Ordering::Relaxed) as f64,
            ),
            counter_sample(
                "omq_connections_accepted_total",
                "Accepted client connections.",
                Vec::new(),
                self.accepted.load(Ordering::Relaxed),
            ),
            counter_sample(
                "omq_batches_total",
                "Request batches entering workers.",
                Vec::new(),
                self.batches.load(Ordering::Relaxed),
            ),
            counter_sample(
                "omq_reactor_requests_total",
                "Requests entering workers (pre-admission).",
                Vec::new(),
                self.requests.load(Ordering::Relaxed),
            ),
            counter_sample(
                "omq_reactor_shed_total",
                "Requests answered with a structured shed error.",
                Vec::new(),
                self.shed.load(Ordering::Relaxed),
            ),
            gauge_sample(
                "omq_admission_queue_depth",
                "Requests admitted but not yet finished.",
                Vec::new(),
                self.admission.depth() as f64,
            ),
            gauge_sample(
                "omq_admission_watermark",
                "Queue-depth shedding watermark (0 = shedding off).",
                Vec::new(),
                self.admission.watermark() as f64,
            ),
        ];
        for (i, slot) in self.shard_requests.iter().enumerate() {
            out.push(counter_sample(
                "omq_shard_requests_total",
                "Requests routed to each shard.",
                vec![("shard", i.to_string())],
                slot.load(Ordering::Relaxed),
            ));
        }
        out
    }

    /// `n` requests were routed to `shard` (see [`crate::shard`]).
    pub fn record_shard(&self, shard: usize, n: usize) {
        if let Some(slot) = self.shard_requests.get(shard) {
            slot.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    pub fn requests_total(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The `stats` op's `"reactor"` block.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "uptime_s",
                Json::num(self.started.elapsed().as_secs() as usize),
            ),
            (
                "connections",
                Json::obj([
                    (
                        "live",
                        Json::num(self.connections_live.load(Ordering::Relaxed)),
                    ),
                    (
                        "peak",
                        Json::num(self.connections_peak.load(Ordering::Relaxed)),
                    ),
                    (
                        "accepted",
                        Json::num(self.accepted.load(Ordering::Relaxed) as usize),
                    ),
                ]),
            ),
            (
                "batches",
                Json::num(self.batches.load(Ordering::Relaxed) as usize),
            ),
            (
                "requests",
                Json::num(self.requests.load(Ordering::Relaxed) as usize),
            ),
            (
                "shed",
                Json::num(self.shed.load(Ordering::Relaxed) as usize),
            ),
            ("queue_depth", Json::num(self.admission.depth())),
            ("watermark", Json::num(self.admission.watermark())),
            (
                "shards",
                Json::Arr(
                    self.shard_requests
                        .iter()
                        .map(|s| Json::num(s.load(Ordering::Relaxed) as usize))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Extracts the first complete batch from a connection's read buffer:
/// lines accumulate until a blank line (the [`crate::server::serve_lines`]
/// framing); at EOF the final unterminated run flushes too. Returns the
/// batch's lines and how many buffer bytes it consumed, or `None` when no
/// complete batch is available yet. Leading blank lines are consumed with
/// the batch they precede, never as a batch of their own.
fn split_batch(buf: &[u8], eof: bool) -> Option<(Vec<String>, usize)> {
    let mut lines = Vec::new();
    let mut pos = 0;
    while let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') {
        let line = String::from_utf8_lossy(&buf[pos..pos + nl]).into_owned();
        pos += nl + 1;
        if line.trim().is_empty() {
            if !lines.is_empty() {
                return Some((lines, pos));
            }
        } else {
            lines.push(line);
        }
    }
    if eof {
        let rest = String::from_utf8_lossy(&buf[pos..]);
        if !rest.trim().is_empty() {
            lines.push(rest.into_owned());
        }
        if !lines.is_empty() {
            return Some((lines, buf.len()));
        }
    }
    None
}

/// Pure stall detector driven by periodic ticks: trips when the queue
/// has been non-empty and the request total unchanged for `trip_after`
/// consecutive ticks — work is waiting but nothing is finishing. Re-arms
/// after tripping so a persistent stall reports once per window instead
/// of every tick.
pub struct StallWatch {
    trip_after: u32,
    last_requests: u64,
    stuck_ticks: u32,
}

impl StallWatch {
    pub fn new(trip_after: u32) -> StallWatch {
        StallWatch {
            trip_after: trip_after.max(1),
            last_requests: 0,
            stuck_ticks: 0,
        }
    }

    /// Feed one observation; `true` means "stalled: dump forensics now".
    pub fn tick(&mut self, queue_depth: usize, requests_total: u64) -> bool {
        if queue_depth == 0 || requests_total != self.last_requests {
            self.last_requests = requests_total;
            self.stuck_ticks = 0;
            return false;
        }
        self.stuck_ticks += 1;
        if self.stuck_ticks >= self.trip_after {
            self.stuck_ticks = 0;
            return true;
        }
        false
    }
}

/// How often the watchdog samples the queue, and how many unchanged
/// samples trip it (≈10 s of stalled queue).
const WATCHDOG_TICK: std::time::Duration = std::time::Duration::from_secs(2);
const WATCHDOG_TRIP_TICKS: u32 = 5;

/// Background stall watchdog: on a trip, dump the flight recorder's
/// retained ring to stderr — the shed/timeout/slow trees are exactly the
/// forensics wanted when the serve loop wedges.
fn spawn_stall_watchdog(stats: Arc<RuntimeStats>) {
    std::thread::spawn(move || {
        let mut watch = StallWatch::new(WATCHDOG_TRIP_TICKS);
        loop {
            std::thread::sleep(WATCHDOG_TICK);
            if !watch.tick(stats.admission.depth(), stats.requests_total()) {
                continue;
            }
            eprintln!(
                "omq-serve: stall watchdog tripped (queue_depth={}, requests_total={})",
                stats.admission.depth(),
                stats.requests_total()
            );
            if let Some(flight) = stats.flight() {
                let (retained, _) = flight.snapshot();
                for e in retained.iter().rev().take(16) {
                    eprintln!(
                        "omq-serve:   flight trace_id={} op={} reason={} wall_us={} spans={}",
                        e.trace_id,
                        e.op,
                        e.reason,
                        e.wall_us,
                        e.spans.len()
                    );
                }
            }
        }
    });
}

/// Answers Prometheus scrapes on a dedicated listener: a minimal
/// blocking HTTP/1.0 responder (one short-lived connection per scrape,
/// which is exactly a scraper's access pattern) that serves the
/// executor's [`BatchExecutor::render_metrics`] exposition on any GET.
/// Returns the spawned thread's handle; the thread runs until the
/// listener fails.
pub fn spawn_metrics_exporter<E: BatchExecutor + 'static>(
    executor: Arc<E>,
    listener: TcpListener,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        use std::io::{Read, Write};
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
            // Drain the request line + headers, best-effort: scrapers
            // send a small GET; stop at the header terminator.
            let mut req = Vec::new();
            let mut buf = [0u8; 1024];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        req.extend_from_slice(&buf[..n]);
                        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 16 * 1024 {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            let response = match executor.render_metrics() {
                Some(body) => format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: {PROMETHEUS_CONTENT_TYPE}\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                ),
                None => {
                    let body = "metrics unavailable\n";
                    format!(
                        "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    )
                }
            };
            let _ = stream.write_all(response.as_bytes());
        }
    })
}

/// Runs the reactor until the listener fails: accepts connections,
/// multiplexes reads/writes, dispatches batches to `cfg.workers` threads,
/// sheds per [`RuntimeStats::admission`]. Never returns under normal
/// operation — spawn it on a dedicated thread.
#[cfg(unix)]
pub fn serve_reactor<E: BatchExecutor + 'static>(
    executor: Arc<E>,
    listener: TcpListener,
    cfg: ReactorConfig,
    stats: Arc<RuntimeStats>,
) -> io::Result<()> {
    spawn_stall_watchdog(Arc::clone(&stats));
    imp::run(executor, listener, &cfg, stats)
}

/// The reactor needs `poll(2)` and raw fds; on non-Unix targets it
/// refuses to start (use [`crate::server::serve_tcp`] there).
#[cfg(not(unix))]
pub fn serve_reactor<E: BatchExecutor + 'static>(
    _executor: Arc<E>,
    _listener: TcpListener,
    _cfg: ReactorConfig,
    _stats: Arc<RuntimeStats>,
) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "the readiness-polled reactor requires a unix target",
    ))
}

#[cfg(unix)]
mod imp {
    use std::collections::{HashMap, VecDeque};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream, UdpSocket};
    use std::os::unix::io::AsRawFd;
    use std::sync::{Arc, Condvar, Mutex};

    use minipoll::{poll_fds, PollFd, POLLIN, POLLOUT};

    use super::{split_batch, ReactorConfig, RuntimeStats};
    use crate::admission::Admission;
    use crate::protocol::{parse_request, response_to_json, Response};
    use crate::server::BatchExecutor;

    /// One multiplexed connection.
    struct Conn {
        stream: TcpStream,
        /// Bytes read but not yet consumed into a batch.
        rbuf: Vec<u8>,
        /// Response bytes not yet accepted by the socket.
        outbox: Vec<u8>,
        /// A batch is at a worker; its responses have not landed yet. At
        /// most one per connection — that is what keeps response order.
        pending: bool,
        /// The peer half-closed (or errored); flush and finish.
        closed_read: bool,
    }

    /// One parsed-off batch travelling to the workers.
    struct Job {
        conn: u64,
        lines: Vec<String>,
        /// Queue depth observed when the batch was admitted — shedding
        /// decisions use this (not the live depth), so a batch never
        /// sheds because of requests that arrived after it.
        depth_at_enqueue: usize,
    }

    struct Shared {
        jobs: Mutex<VecDeque<Job>>,
        jobs_cv: Condvar,
        results: Mutex<Vec<(u64, Vec<u8>)>>,
        /// Connected to the reactor's wake socket; one datagram per
        /// finished batch kicks the reactor out of `poll`.
        wake_tx: UdpSocket,
    }

    fn worker_loop<E: BatchExecutor>(executor: &E, shared: &Shared, stats: &RuntimeStats) {
        loop {
            let job = {
                let mut jobs = shared.jobs.lock().unwrap();
                loop {
                    if let Some(job) = jobs.pop_front() {
                        break job;
                    }
                    jobs = shared.jobs_cv.wait(jobs).unwrap();
                }
            };
            let n = job.lines.len();
            stats.record_batch(n);
            let mut items: Vec<Result<_, Box<Response>>> =
                job.lines.iter().map(|l| parse_request(l)).collect();
            for item in &mut items {
                if let Ok(req) = item {
                    if stats.admission.should_shed(job.depth_at_enqueue)
                        && Admission::sheddable(&req.op)
                    {
                        let resp = Response::err(
                            req.id.clone(),
                            stats.admission.shed_error(job.depth_at_enqueue),
                        );
                        stats.record_shed_request(req.trace_id, req.op.label());
                        *item = Err(Box::new(resp));
                    }
                }
            }
            let responses = executor.execute_batch(&items);
            let mut bytes = Vec::new();
            for resp in &responses {
                bytes.extend_from_slice(response_to_json(resp).to_string().as_bytes());
                bytes.push(b'\n');
            }
            stats.admission.exit(n);
            shared.results.lock().unwrap().push((job.conn, bytes));
            // A failed wake is not fatal: the reactor also drains results
            // on every loop iteration.
            let _ = shared.wake_tx.send(&[1]);
        }
    }

    pub(super) fn run<E: BatchExecutor + 'static>(
        executor: Arc<E>,
        listener: TcpListener,
        cfg: &ReactorConfig,
        stats: Arc<RuntimeStats>,
    ) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let wake_rx = UdpSocket::bind("127.0.0.1:0")?;
        wake_rx.set_nonblocking(true)?;
        let wake_tx = UdpSocket::bind("127.0.0.1:0")?;
        wake_tx.connect(wake_rx.local_addr()?)?;
        let shared = Arc::new(Shared {
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            results: Mutex::new(Vec::new()),
            wake_tx,
        });
        for _ in 0..cfg.effective_workers() {
            let executor = Arc::clone(&executor);
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || worker_loop(&*executor, &shared, &stats));
        }

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_id: u64 = 0;
        let mut read_buf = [0u8; 64 * 1024];
        loop {
            // (Re)build the poll set: listener, wake socket, then every
            // connection — POLLIN while the peer may still send, POLLOUT
            // only while there are bytes to flush (level-triggered, so an
            // always-on POLLOUT would spin).
            let mut fds = vec![
                PollFd::new(listener.as_raw_fd(), POLLIN),
                PollFd::new(wake_rx.as_raw_fd(), POLLIN),
            ];
            let mut ids = Vec::with_capacity(conns.len());
            for (&id, conn) in &conns {
                let mut events = 0;
                if !conn.closed_read {
                    events |= POLLIN;
                }
                if !conn.outbox.is_empty() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                ids.push(id);
            }
            poll_fds(&mut fds, -1)?;

            if fds[0].readable() {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            stats.conn_opened();
                            conns.insert(
                                next_id,
                                Conn {
                                    stream,
                                    rbuf: Vec::new(),
                                    outbox: Vec::new(),
                                    pending: false,
                                    closed_read: false,
                                },
                            );
                            next_id += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                }
            }
            if fds[1].readable() {
                let mut drain = [0u8; 64];
                while wake_rx.recv(&mut drain).is_ok() {}
            }

            // Deliver finished batches into their connections' outboxes.
            for (conn_id, bytes) in shared.results.lock().unwrap().drain(..) {
                if let Some(conn) = conns.get_mut(&conn_id) {
                    conn.outbox.extend_from_slice(&bytes);
                    conn.pending = false;
                }
            }

            // Per-connection I/O for the ready sockets.
            for (slot, &id) in ids.iter().enumerate() {
                let fd = &fds[slot + 2];
                let conn = conns.get_mut(&id).expect("ids mirror conns");
                if fd.invalid() {
                    conn.closed_read = true;
                    conn.outbox.clear();
                }
                if fd.readable() && !conn.closed_read {
                    loop {
                        match conn.stream.read(&mut read_buf) {
                            Ok(0) => {
                                conn.closed_read = true;
                                break;
                            }
                            Ok(n) => conn.rbuf.extend_from_slice(&read_buf[..n]),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                conn.closed_read = true;
                                break;
                            }
                        }
                    }
                }
                if fd.writable() && !conn.outbox.is_empty() {
                    loop {
                        match conn.stream.write(&conn.outbox) {
                            Ok(0) => {
                                conn.closed_read = true;
                                conn.outbox.clear();
                                break;
                            }
                            Ok(n) => {
                                conn.outbox.drain(..n);
                                if conn.outbox.is_empty() {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                conn.closed_read = true;
                                conn.outbox.clear();
                                break;
                            }
                        }
                    }
                }
            }

            // Dispatch at most one batch per idle connection (order), then
            // retire connections that are fully drained.
            let mut done = Vec::new();
            for (&id, conn) in &mut conns {
                if !conn.pending {
                    if let Some((lines, consumed)) = split_batch(&conn.rbuf, conn.closed_read) {
                        conn.rbuf.drain(..consumed);
                        conn.pending = true;
                        let depth_at_enqueue = stats.admission.enter(lines.len());
                        shared.jobs.lock().unwrap().push_back(Job {
                            conn: id,
                            lines,
                            depth_at_enqueue,
                        });
                        shared.jobs_cv.notify_one();
                    }
                }
                if conn.closed_read
                    && !conn.pending
                    && conn.outbox.is_empty()
                    && split_batch(&conn.rbuf, true).is_none()
                {
                    done.push(id);
                }
            }
            for id in done {
                conns.remove(&id);
                stats.conn_closed();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_batch_waits_for_the_blank_line() {
        assert!(split_batch(b"{\"op\":\"stats\"}\n", false).is_none());
        let (lines, used) = split_batch(b"{\"op\":\"stats\"}\n\nrest", false).unwrap();
        assert_eq!(lines, vec!["{\"op\":\"stats\"}".to_owned()]);
        assert_eq!(used, b"{\"op\":\"stats\"}\n\n".len());
    }

    #[test]
    fn split_batch_flushes_everything_at_eof() {
        let (lines, used) = split_batch(b"a\nb", true).unwrap();
        assert_eq!(lines, vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(used, 3);
        assert!(split_batch(b"", true).is_none());
        assert!(split_batch(b"\n\n \n", true).is_none());
    }

    #[test]
    fn split_batch_consumes_leading_blank_lines_with_the_batch() {
        let (lines, used) = split_batch(b"\n\na\n\n", false).unwrap();
        assert_eq!(lines, vec!["a".to_owned()]);
        assert_eq!(used, 5);
    }

    #[test]
    fn runtime_stats_json_has_the_taxonomy_fields() {
        let stats = RuntimeStats::new(3, 16);
        stats.conn_opened();
        stats.record_batch(5);
        stats.record_shed();
        stats.record_shard(1, 4);
        let json = stats.to_json().to_string();
        for field in [
            "\"uptime_s\":",
            "\"connections\":",
            "\"live\":1",
            "\"peak\":1",
            "\"accepted\":1",
            "\"batches\":1",
            "\"requests\":5",
            "\"shed\":1",
            "\"queue_depth\":0",
            "\"watermark\":16",
            "\"shards\":[0,4,0]",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        stats.conn_closed();
        assert!(stats.to_json().to_string().contains("\"live\":0"));
    }

    #[test]
    fn stall_watch_trips_only_on_a_stuck_nonempty_queue() {
        let mut w = StallWatch::new(3);
        // Empty queue never trips, no matter how long.
        for _ in 0..10 {
            assert!(!w.tick(0, 5));
        }
        // Progress resets the stall count.
        assert!(!w.tick(4, 6));
        assert!(!w.tick(4, 7));
        // Stuck: same total, non-empty queue, three ticks in a row.
        assert!(!w.tick(4, 7));
        assert!(!w.tick(4, 7));
        assert!(w.tick(4, 7));
        // Re-armed: needs another full window before tripping again.
        assert!(!w.tick(4, 7));
        assert!(!w.tick(4, 7));
        assert!(w.tick(4, 7));
    }

    #[test]
    fn runtime_samples_cover_the_reactor_taxonomy() {
        let stats = RuntimeStats::new(2, 16);
        stats.conn_opened();
        stats.record_batch(5);
        stats.record_shed_request(7, "serve.contains");
        stats.record_shard(1, 4);
        let samples = stats.samples();
        let find = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing sample {name}"))
        };
        for name in [
            "omq_connections_live",
            "omq_connections_peak",
            "omq_connections_accepted_total",
            "omq_batches_total",
            "omq_reactor_requests_total",
            "omq_reactor_shed_total",
            "omq_admission_queue_depth",
            "omq_admission_watermark",
            "omq_shard_requests_total",
        ] {
            find(name);
        }
        assert_eq!(
            samples
                .iter()
                .filter(|s| s.name == "omq_shard_requests_total")
                .count(),
            2
        );
    }

    #[test]
    fn shed_requests_leave_a_retained_flight_entry() {
        use omq_obs::flight::FlightRecorder;
        use omq_obs::metrics::MetricsRegistry;

        let stats = RuntimeStats::new(1, 4);
        let metrics = Arc::new(MetricsRegistry::new());
        let flight = Arc::new(FlightRecorder::new(250_000));
        stats.set_telemetry(Arc::clone(&metrics), Arc::clone(&flight));
        stats.record_shed_request(42, "serve.contains");
        assert_eq!(stats.shed_total(), 1);
        assert_eq!(metrics.shed_total(), 1);
        let (retained, _) = flight.snapshot();
        assert_eq!(retained.len(), 1);
        assert_eq!(retained[0].trace_id, 42);
        assert_eq!(retained[0].reason, "shed");
        assert_eq!(retained[0].op, "serve.contains");
    }
}
