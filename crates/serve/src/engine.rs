//! The request engine: schedules batches across a bounded worker pool,
//! enforces per-request deadlines, and fronts the solver stack with two
//! canonical-key caches.
//!
//! * **Rewrite-artifact cache** — keyed by `(OmqKey, RewriteCfgKey)`; stores
//!   only *complete* rewritings (a truncated rewriting depends on the budget
//!   that truncated it, a complete one does not). Supplied to the solvers as
//!   a [`RewriteSource`], so a warm `contains`/`evaluate` skips XRewrite
//!   entirely.
//! * **Verdict cache** — keyed by `(op, OmqKey, OmqKey)`; stores the fully
//!   rendered response fields of *definitive* containment verdicts. Never
//!   stores `Unknown`: a later, less-constrained request must be free to do
//!   better.
//! * **Encoding cache** — keyed by the lhs `OmqKey`; stores the compiled
//!   C-tree/2WAPA encoding artifact (`omq_guarded::compile_encoding`) of
//!   guarded left-hand sides. The artifact depends only on the OMQ, so a
//!   warm guarded `contains` (same lhs, any rhs) skips automaton
//!   construction entirely; only *complete* artifacts are stored (an
//!   incomplete one depends on the budget that truncated its emptiness
//!   check).
//!
//! Scheduling: a batch runs in input order. `register` requests are
//! barriers (they mutate the registry), as are the versioned-store ops
//! (`assert`/`retract`/`snapshot` and store-backed `evaluate` — they
//! advance or read a named store's version history and maintained chase
//! fixpoint); maximal runs of parallel-safe requests between barriers are
//! fanned out across the pool with
//! `omq_chase::parallel_indexed`. Every solver invocation inside a worker
//! runs with inner `threads = 1` — the pool parallelism is *across*
//! requests, never nested — which also makes every response byte-identical
//! to a sequential execution of the same batch.
//!
//! Deadlines: a request's budget is `arrival + deadline_ms` where arrival
//! is the batch entry time. Expiry is cooperative (the chase, XRewrite, and
//! the containment sweeps poll it) and always degrades: `contains` reports
//! `"verdict":"unknown"` with partial stats, `evaluate` reports its sound
//! lower bound, and the response carries `"timed_out":true`. The worker
//! pool itself is never poisoned by an expired request.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use omq_chase::{effective_threads, parallel_indexed, Budget};
use omq_core::{
    contains_with, equivalent_with, evaluate_with, explain_with, ContainmentConfig,
    ContainmentOutcome, ContainmentResult, EvalConfig, EvalGuarantee, ExplainDetail, OmqLanguage,
};
use omq_guarded::{compile_encoding, EncodingArtifact, EncodingConfig};
use omq_model::display::render_atom;
use omq_model::{parse_tgd, Instance, Omq, Term, Vocabulary};
use omq_obs::flight::{FlightRecorder, SpanTree, TreeSink};
use omq_obs::metrics::{MetricsRegistry, Sample, Value};
use omq_obs::{Aggregator, JsonlSink, Sink};
use omq_rewrite::{DirectRewrite, RewriteArtifact, RewriteSource, XRewriteConfig};
use omq_store::{MaintainedStore, StoreConfig, StoreStats};

use crate::cache::{CacheStats, LruCache};
use crate::error::ServeError;
use crate::json::Json;
use crate::key::{OmqKey, RewriteCfgKey};
use crate::protocol::{Op, Request, Response};
use crate::reactor::RuntimeStats;
use crate::registry::Registry;
use crate::tier::{DiskTier, DiskTierStats, PortableArtifact};

/// Key of the rewrite-artifact cache.
pub type RewriteKey = (OmqKey, RewriteCfgKey);

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum VerdictOp {
    Contains,
    Equivalent,
}

type VerdictKey = (VerdictOp, OmqKey, OmqKey);

/// Engine construction knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads for batch fan-out. `0` = available parallelism,
    /// `1` = sequential.
    pub threads: usize,
    /// Capacity of *each* cache (artifacts and verdicts). `0` disables
    /// caching.
    pub cache_capacity: usize,
    /// Deadline applied to requests that carry none. `None` = unlimited.
    pub default_deadline_ms: Option<u64>,
    /// Novelty rows that trigger a store compaction after a mutation
    /// (`0` disables automatic compaction). See [`omq_store::StoreConfig`].
    pub store_compact_threshold: usize,
    /// Directory of the persisted artifact tier (`None` = in-memory tiers
    /// only). Complete rewriting artifacts are written there in portable
    /// form and survive restarts; see [`crate::tier`].
    pub cache_dir: Option<PathBuf>,
    /// Fraction of requests whose span tree is streamed to the process
    /// trace sink (`--trace-out`). Sampling is a deterministic hash of the
    /// request's trace id, so one request's spans are never split across
    /// the sample boundary; `"trace":true` requests are always captured.
    pub trace_sample: f64,
    /// Flight-recorder slow threshold in milliseconds: requests slower
    /// than this are tail-retained even when they neither shed nor timed
    /// out.
    pub flight_slow_ms: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cache_capacity: 256,
            default_deadline_ms: None,
            store_compact_threshold: StoreConfig::default().compact_threshold,
            cache_dir: None,
            trace_sample: 1.0,
            flight_slow_ms: 250,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn cfg_flight_slow_us(cfg: &EngineConfig) -> u64 {
    cfg.flight_slow_ms.saturating_mul(1_000)
}

/// Deterministic per-request sampling decision: a request is in the
/// sample iff the hash of its trace id falls under `rate`. The decision
/// depends only on the id, so every span of a request lands on the same
/// side of the boundary.
fn sample_trace(trace_id: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    (splitmix64(trace_id) as f64) < rate * (u64::MAX as f64)
}

pub(crate) fn counter_sample(
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    v: u64,
) -> Sample {
    Sample {
        name,
        help,
        labels,
        value: Value::Counter(v),
    }
}

pub(crate) fn gauge_sample(
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    v: f64,
) -> Sample {
    Sample {
        name,
        help,
        labels,
        value: Value::Gauge(v),
    }
}

/// Process-global scrape samples: flight-recorder occupancy and the hom
/// kernel's global counters. These must be folded into a scrape exactly
/// once per process — per-engine (`local_samples`) placement would
/// multiply them by the shard count.
pub(crate) fn global_samples(flight: &FlightRecorder) -> Vec<Sample> {
    let (offered, retained_total, recent_len, retained_len) = flight.counts();
    let h = omq_chase::global_hom_snapshot();
    let mut out = vec![
        counter_sample(
            "omq_flight_offered_total",
            "Request trees offered to the flight recorder.",
            Vec::new(),
            offered,
        ),
        counter_sample(
            "omq_flight_retained_total",
            "Request trees retained by tail-based sampling (shed/timeout/slow).",
            Vec::new(),
            retained_total,
        ),
        gauge_sample(
            "omq_flight_ring_entries",
            "Current flight-recorder ring occupancy.",
            vec![("ring", "recent".to_owned())],
            recent_len as f64,
        ),
        gauge_sample(
            "omq_flight_ring_entries",
            "Current flight-recorder ring occupancy.",
            vec![("ring", "retained".to_owned())],
            retained_len as f64,
        ),
    ];
    for (kind, v) in [
        ("candidates_scanned", h.candidates_scanned),
        ("backtracks", h.backtracks),
        ("homs_found", h.homs_found),
        ("plans_compiled", h.plans_compiled),
        ("plan_cache_hits", h.plan_cache_hits),
        ("prefilter_rejects", h.prefilter_rejects),
        ("plans_reoptimized", h.plans_reoptimized),
    ] {
        out.push(counter_sample(
            "omq_hom_events_total",
            "Homomorphism-kernel events (process-global), by kind.",
            vec![("kind", kind.to_owned())],
            v,
        ));
    }
    out
}

/// Shared body of the `trace_dump` op (the sharded front end answers it
/// from shard 0, whose recorder is the process-shared one).
pub(crate) fn trace_dump_fields(flight: &FlightRecorder) -> Vec<(String, Json)> {
    let (retained, recent) = flight.snapshot();
    let arr = |entries: Vec<omq_obs::flight::FlightEntry>| {
        Json::Arr(entries.iter().map(flight_entry_json).collect())
    };
    vec![
        (
            "slow_threshold_us".to_owned(),
            Json::num(flight.slow_threshold_us() as usize),
        ),
        ("retained".to_owned(), arr(retained)),
        ("recent".to_owned(), arr(recent)),
    ]
}

fn flight_entry_json(e: &omq_obs::flight::FlightEntry) -> Json {
    let mut fields: Vec<(&'static str, Json)> = vec![
        ("trace_id", Json::num(e.trace_id as usize)),
        ("op", Json::str(e.op)),
        ("reason", Json::str(e.reason)),
        ("wall_us", Json::num(e.wall_us as usize)),
    ];
    if e.truncated {
        fields.push(("truncated", Json::Bool(true)));
    }
    fields.push((
        "spans",
        Json::Arr(
            e.spans
                .iter()
                .map(|s| {
                    Json::obj([
                        ("id", Json::num(s.id as usize)),
                        ("parent", Json::num(s.parent as usize)),
                        ("name", Json::str(s.name)),
                        ("dur_us", Json::num(s.dur_us as usize)),
                    ])
                })
                .collect(),
        ),
    ));
    fields.push((
        "counts",
        Json::Obj(
            e.counts
                .iter()
                .map(|&(name, delta)| (name.to_owned(), Json::num(delta as usize)))
                .collect(),
        ),
    ));
    Json::obj(fields)
}

/// A [`RewriteSource`] backed by the engine's tiered artifact cache: hot
/// in-memory LRU, then the persisted disk tier, then XRewrite. Both cache
/// tiers store the *portable* (vocabulary-independent) form, rehydrated
/// into the request vocabulary on every use — and a fresh computation is
/// round-tripped through the same portable form before it is returned, so
/// response bytes never depend on which tier (if any) served the artifact.
/// That round trip is also what lets `explain` read the cache again: the
/// rehydrated artifact's VarIds are interned in *this* request's
/// vocabulary, so rendering them always resolves. Complete artifacts are
/// shared across requests (and across alias registrations, thanks to
/// canonical keying); incomplete ones pass through uncached, as do the
/// rare non-portable ones (a null-carrying disjunct). `alias` marks
/// lookups made on behalf of an alias registration, so hits reached
/// through canonical-key sharing are counted distinctly.
struct CachingSource<'a> {
    cache: &'a Mutex<LruCache<RewriteKey, PortableArtifact>>,
    disk: Option<&'a DiskTier>,
    alias: bool,
}

/// The disk tier's file name for one cache key (stable across restarts of
/// the same binary: both digests hash with fixed-key `DefaultHasher`s).
fn artifact_file_key(key: &RewriteKey) -> String {
    format!("{}-{}", key.0.digest(), key.1.digest())
}

impl RewriteSource for CachingSource<'_> {
    fn rewrite(
        &mut self,
        omq: &Omq,
        voc: &mut Vocabulary,
        cfg: &XRewriteConfig,
    ) -> RewriteArtifact {
        let key = (OmqKey::of(omq, voc), RewriteCfgKey::of(cfg));
        if let Some(hit) = self.cache.lock().unwrap().get_tagged(&key, self.alias) {
            return hit.rehydrate(voc);
        }
        if let Some(disk) = self.disk {
            if let Some(portable) = disk.load(&artifact_file_key(&key)) {
                let art = portable.rehydrate(voc);
                self.cache.lock().unwrap().insert(key, portable);
                return art;
            }
        }
        let raw = DirectRewrite.rewrite(omq, voc, cfg);
        match PortableArtifact::of(&raw, voc) {
            Some(portable) => {
                let art = portable.rehydrate(voc);
                if raw.complete {
                    if let Some(disk) = self.disk {
                        disk.store(&artifact_file_key(&key), &portable);
                    }
                    self.cache.lock().unwrap().insert(key, portable);
                }
                art
            }
            // Non-portable artifacts can't round-trip; return them raw and
            // uncached (deterministic: such an artifact *never* caches, so
            // every request recomputes it identically).
            None => raw,
        }
    }
}

/// A finished verdict computation as published to followers: the rendered
/// fields (or structured error) plus the `timed_out` flag.
type VerdictOutcome = (Result<Vec<(String, Json)>, ServeError>, bool);

/// One in-flight `contains`/`equivalent` computation that concurrent
/// requests on the same verdict key wait on instead of repeating.
struct InflightSlot {
    done: Mutex<Option<VerdictOutcome>>,
    cv: Condvar,
    /// Trace id of the leader request, so followers can link their own
    /// trace to the computation that actually answered them.
    leader_trace: u64,
}

/// One registration name's versioned store plus the vocabulary its facts
/// and maintenance chases intern into (a registry-snapshot clone taken at
/// store creation, grown monotonically ever since).
struct NamedStore {
    voc: Vocabulary,
    store: MaintainedStore,
}

/// The concurrent OMQ serving engine. Shared across connections; all
/// methods take `&self`.
pub struct Engine {
    cfg: EngineConfig,
    registry: RwLock<Registry>,
    rewrites: Mutex<LruCache<RewriteKey, PortableArtifact>>,
    verdicts: Mutex<LruCache<VerdictKey, Vec<(String, Json)>>>,
    encodings: Mutex<LruCache<OmqKey, EncodingArtifact>>,
    /// Persisted artifact tier (see [`crate::tier`]); `None` without a
    /// `cache_dir` (or when opening the directory failed at startup).
    disk: Option<DiskTier>,
    /// In-flight `contains`/`equivalent` computations, keyed like the
    /// verdict cache; concurrent deadline-free requests on the same key
    /// join the leader instead of recomputing.
    inflight: Mutex<HashMap<VerdictKey, Arc<InflightSlot>>>,
    /// Requests answered by joining an in-flight computation.
    coalesced_hits: AtomicU64,
    /// Underlying solver invocations for `contains`/`equivalent` (the
    /// denominator the coalescing tests pin: a burst of identical requests
    /// must show exactly one).
    verdict_computations: AtomicU64,
    /// Per-name versioned fact stores with incrementally maintained chase
    /// fixpoints, created lazily on the first mutation or store-backed
    /// evaluation of a name. Each store owns a vocabulary that grows
    /// monotonically across mutations (constants from asserted facts, nulls
    /// from maintenance chases), so resumed fixpoints never collide on
    /// null ids the way per-request vocabulary clones would.
    stores: Mutex<HashMap<String, NamedStore>>,
    /// Per-op wall-clock histograms, fed directly (no recorder needed, so
    /// they survive `--no-default-features`); exposed by the `stats` op.
    latencies: Aggregator,
    /// When set, every sampled request runs under a recorder that also
    /// streams its span tree here (the binary's `--trace-out`, thinned by
    /// `trace_sample`).
    trace_sink: Option<Arc<JsonlSink>>,
    /// Live metrics registry fed on every request completion; per-engine
    /// by default, shared across shards by [`Engine::set_telemetry`].
    metrics: Arc<MetricsRegistry>,
    /// Always-on flight recorder with tail retention (shed / timed-out /
    /// slow requests); shared across shards like `metrics`.
    flight: Arc<FlightRecorder>,
    /// When set (by the reactor / sharded front end), the `stats` op
    /// appends a `"reactor"` block with uptime, connection, queue, and
    /// shard-occupancy counters.
    runtime: Option<Arc<RuntimeStats>>,
}

impl Engine {
    pub fn new(cfg: EngineConfig) -> Engine {
        let cap = cfg.cache_capacity;
        // A cache dir that cannot be opened degrades to no disk tier: the
        // server still works, `stats` simply shows no `artifact_disk`.
        let disk = cfg.cache_dir.as_deref().and_then(|d| DiskTier::new(d).ok());
        Engine {
            registry: RwLock::new(Registry::new()),
            rewrites: Mutex::new(LruCache::new(cap)),
            verdicts: Mutex::new(LruCache::new(cap)),
            encodings: Mutex::new(LruCache::new(cap)),
            disk,
            inflight: Mutex::new(HashMap::new()),
            coalesced_hits: AtomicU64::new(0),
            verdict_computations: AtomicU64::new(0),
            stores: Mutex::new(HashMap::new()),
            latencies: Aggregator::new(),
            trace_sink: None,
            metrics: Arc::new(MetricsRegistry::new()),
            flight: Arc::new(FlightRecorder::new(cfg_flight_slow_us(&cfg))),
            cfg,
            runtime: None,
        }
    }

    /// Stream every request's span tree to `sink` (call before sharing the
    /// engine). With the workspace `obs` feature off this is accepted but
    /// inert — spans compile to no-ops.
    pub fn set_trace_sink(&mut self, sink: Arc<JsonlSink>) {
        self.trace_sink = Some(sink);
    }

    /// Attach the serve-tier runtime counters (call before sharing the
    /// engine); the `stats` op then reports them as a `"reactor"` block.
    pub fn set_runtime_stats(&mut self, runtime: Arc<RuntimeStats>) {
        self.runtime = Some(runtime);
    }

    /// Replace this engine's metrics registry and flight recorder with
    /// shared ones (the sharded front end installs one pair across every
    /// shard, so per-op counters and the flight rings are process-wide).
    pub fn set_telemetry(&mut self, metrics: Arc<MetricsRegistry>, flight: Arc<FlightRecorder>) {
        self.metrics = metrics;
        self.flight = flight;
    }

    /// The live metrics registry this engine reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The flight recorder this engine offers span trees to.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// `(coalesced_hits, verdict_computations)` — how many requests joined
    /// an in-flight computation vs. how many solver runs actually happened.
    pub fn coalescing_stats(&self) -> (u64, u64) {
        (
            self.coalesced_hits.load(Ordering::Relaxed),
            self.verdict_computations.load(Ordering::Relaxed),
        )
    }

    /// Disk-tier counters, when a persisted tier is configured.
    pub fn disk_stats(&self) -> Option<DiskTierStats> {
        self.disk.as_ref().map(DiskTier::stats)
    }

    /// The canonical digest of a registered name (used by the sharded
    /// front end to route requests by canonical key).
    pub fn key_digest(&self, name: &str) -> Option<String> {
        self.registry
            .read()
            .unwrap()
            .get(name)
            .ok()
            .map(|r| r.key.digest())
    }

    /// Current cache counters `(artifact cache, verdict cache, encoding
    /// cache)`.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (
            self.rewrites.lock().unwrap().stats(),
            self.verdicts.lock().unwrap().stats(),
            self.encodings.lock().unwrap().stats(),
        )
    }

    /// Executes one batch: responses come back in request order. Items that
    /// already failed at the protocol layer pass through as-is.
    pub fn execute_batch(&self, items: &[Result<Request, Box<Response>>]) -> Vec<Response> {
        let arrival = Instant::now();
        let n = items.len();
        let mut out: Vec<Option<Response>> = vec![None; n];
        let mut i = 0;
        while i < n {
            // Ops that touch shared engine state sequentially (the registry,
            // or a named store's version history and maintained fixpoint)
            // are barriers: they run alone, in input order, so a batch's
            // responses are byte-identical to a sequential execution.
            // Store-backed evaluates (no one-shot facts) are barriers too —
            // they may advance fixpoint maintenance under their own budget.
            let parallel_safe = |op: &Op| match op {
                Op::Register { .. }
                | Op::Assert { .. }
                | Op::Retract { .. }
                | Op::Snapshot { .. } => false,
                Op::Evaluate { facts, .. } => !facts.is_empty(),
                _ => true,
            };
            let is_barrier = |item: &Result<Request, Box<Response>>| !matches!(item, Ok(r) if parallel_safe(&r.op));
            if is_barrier(&items[i]) {
                // A maximal run of untraced, deadline-free retracts on one
                // name shares a single DRed cone pass (see
                // [`omq_store::MaintainedStore::retract_batch`]) instead of
                // paying per-call maintenance.
                let run = self.retract_run_len(items, i);
                if run >= 2 {
                    for (off, resp) in self
                        .execute_retract_run(&items[i..i + run])
                        .into_iter()
                        .enumerate()
                    {
                        out[i + off] = Some(resp);
                    }
                    i += run;
                    continue;
                }
                out[i] = Some(self.execute_one(&items[i], arrival));
                i += 1;
                continue;
            }
            let mut j = i;
            while j < n && !is_barrier(&items[j]) {
                j += 1;
            }
            let len = j - i;
            let threads = effective_threads(self.cfg.threads, len);
            if threads <= 1 || len < 2 {
                for k in i..j {
                    out[k] = Some(self.execute_one(&items[k], arrival));
                }
            } else {
                let slots: Vec<OnceLock<Response>> = (0..len).map(|_| OnceLock::new()).collect();
                parallel_indexed(
                    threads,
                    len,
                    || (),
                    |(), idx| {
                        let _ = slots[idx].set(self.execute_one(&items[i + idx], arrival));
                    },
                );
                for (off, slot) in slots.into_iter().enumerate() {
                    out[i + off] = slot.into_inner();
                }
            }
            i = j;
        }
        out.into_iter()
            .map(|r| r.expect("every request is answered"))
            .collect()
    }

    fn execute_one(&self, item: &Result<Request, Box<Response>>, arrival: Instant) -> Response {
        let req = match item {
            Ok(req) => req,
            Err(resp) => return (**resp).clone(),
        };
        let budget = match req.deadline_ms.or(self.cfg.default_deadline_ms) {
            Some(ms) => Budget::deadline_at(arrival + Duration::from_millis(ms)),
            None => Budget::unlimited(),
        };
        // Per-request instrumentation: a recorder is installed only when
        // someone is listening (a `"trace":true` request and/or a process
        // trace sink) — untraced requests pay a single thread-local read
        // per span site. Never `install(None)` here: that would tear down a
        // recorder an embedding application installed around the engine.
        let trace_agg: Option<Arc<Aggregator>> = req.trace.then(|| Arc::new(Aggregator::new()));
        let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
        if let Some(agg) = &trace_agg {
            sinks.push(agg.clone());
        }
        if let Some(ts) = &self.trace_sink {
            // JSONL capture is sampled (deterministically, by trace id);
            // explicit `"trace":true` requests are always captured.
            if req.trace || sample_trace(req.trace_id, self.cfg.trace_sample) {
                sinks.push(ts.clone());
            }
        }
        // Flight capture: rebuild this request's span tree in memory so the
        // recorder can tail-retain it. Skipped when an ambient recorder is
        // already installed (an embedder such as the bench harness owns
        // instrumentation then — shadowing it would drop its events); a
        // synthetic root-only tree is offered instead, below.
        let flight_sink: Option<Arc<TreeSink>> = if omq_obs::active() {
            None
        } else {
            let fs = Arc::new(TreeSink::new());
            sinks.push(fs.clone());
            Some(fs)
        };
        let _guard = (!sinks.is_empty())
            .then(|| omq_obs::install(Some(omq_obs::Recorder::with_trace(sinks, req.trace_id))));
        // Only deadline-free, untraced requests coalesce: a follower shares
        // the leader's outcome byte-for-byte, which is only sound when that
        // outcome cannot depend on a deadline (a leader's budget-truncated
        // "unknown" must never masquerade as another request's answer) or
        // carry another request's instrumentation.
        let coalesce = req.deadline_ms.or(self.cfg.default_deadline_ms).is_none() && !req.trace;
        let started = Instant::now();
        let (mut outcome, timed_out) = {
            let _root = omq_obs::span(op_name(&req.op));
            self.run_op(&req.op, &budget, coalesce, req.trace_id)
        };
        let elapsed = started.elapsed();
        self.latencies.record(op_name(&req.op), elapsed);
        let wall_us = elapsed.as_micros() as u64;
        self.metrics
            .observe_op(op_name(&req.op), wall_us, timed_out);
        let mut tree = match &flight_sink {
            Some(fs) => fs.take(),
            None => SpanTree::default(),
        };
        if tree.spans.is_empty() {
            // No captured spans (obs compiled out, or an ambient recorder
            // owned the events): offer a root-only tree so the flight
            // recorder still explains shed/slow/timed-out requests.
            tree.spans = SpanTree::root(op_name(&req.op), wall_us).spans;
        }
        self.flight.offer(
            req.trace_id,
            op_name(&req.op),
            wall_us,
            tree,
            timed_out.then_some("timeout"),
        );
        if let (Some(agg), Ok(fields)) = (&trace_agg, &mut outcome) {
            fields.push(("trace".to_owned(), trace_json(agg, req.trace_id)));
        }
        Response {
            id: req.id.clone(),
            outcome,
            timed_out,
        }
    }

    /// Length of the maximal run of coalesceable retracts starting at `i`:
    /// consecutive `Ok` retract requests on one name, untraced and
    /// deadline-free (both per-request and by default), so the shared cone
    /// pass runs under one unlimited budget and responses stay
    /// deterministic. `0`/`1` means "no run — execute normally".
    fn retract_run_len(&self, items: &[Result<Request, Box<Response>>], i: usize) -> usize {
        if self.cfg.default_deadline_ms.is_some() {
            return 0;
        }
        let run_name = |item: &Result<Request, Box<Response>>| match item {
            Ok(req) if !req.trace && req.deadline_ms.is_none() => match &req.op {
                Op::Retract { name, .. } => Some(name.clone()),
                _ => None,
            },
            _ => None,
        };
        let Some(name) = run_name(&items[i]) else {
            return 0;
        };
        items[i..]
            .iter()
            .take_while(|item| run_name(item).as_deref() == Some(&name))
            .count()
    }

    /// Executes a retract run (≥ 2 requests, one name) through the store's
    /// batched-cone path: every request appends its own version, then one
    /// DRed cone pass maintains the fixpoint for all of them. Responses
    /// mirror the per-call shape; the maintenance counters
    /// (`novelty_size`/`compactions`/`maintained`/`complete`) report the
    /// post-batch state for every member, which is also each request's
    /// observable store state once the batch lands.
    fn execute_retract_run(&self, items: &[Result<Request, Box<Response>>]) -> Vec<Response> {
        let started = Instant::now();
        let budget = Budget::unlimited();
        let cfg = self.eval_cfg(&budget).chase;
        let reqs: Vec<&Request> = items
            .iter()
            .map(|item| match item {
                Ok(req) => req,
                Err(_) => unreachable!("retract_run_len only accepts Ok items"),
            })
            .collect();
        let name = match &reqs[0].op {
            Op::Retract { name, .. } => name.clone(),
            _ => unreachable!("retract_run_len only accepts retracts"),
        };
        let res = self.with_store(&name, |entry, reg| {
            // Parse every request's facts first (in request order, exactly
            // as sequential execution would intern them); a group that
            // fails to parse gets its error in place and appends no
            // version, like a sequential parse failure.
            let parsed: Vec<Result<Vec<omq_model::Atom>, ServeError>> = reqs
                .iter()
                .map(|req| match &req.op {
                    Op::Retract { facts, .. } => parse_ground_facts(&mut entry.voc, facts),
                    _ => unreachable!(),
                })
                .collect();
            let groups: Vec<Vec<omq_model::Atom>> = parsed
                .iter()
                .filter_map(|p| p.as_ref().ok().cloned())
                .collect();
            let mut versions = entry
                .store
                .retract_batch(&groups, &reg.omq.sigma, &mut entry.voc, &cfg)
                .into_iter();
            let outcomes: Vec<Result<(u64, usize), ServeError>> = parsed
                .into_iter()
                .map(|p| {
                    let atoms = p?;
                    versions
                        .next()
                        .expect("one store result per parsed group")
                        .map(|v| (v, atoms.len()))
                        .map_err(|e| ServeError::BadRequest(e.to_string()))
                })
                .collect();
            (outcomes, entry.store.stats(), entry.store.head_complete())
        });
        let (outcomes, stats, head_complete) = match res {
            Ok(t) => t,
            Err(e) => {
                // Unknown name: every request in the run gets the error,
                // just as each would sequentially.
                return reqs
                    .iter()
                    .map(|req| Response::err(req.id.clone(), e.clone()))
                    .collect();
            }
        };
        let elapsed = started.elapsed();
        reqs.iter()
            .zip(outcomes)
            .map(|(req, outcome)| {
                self.latencies.record("serve.retract", elapsed);
                let outcome = outcome.map(|(version, changed)| {
                    vec![
                        ("retracted".to_owned(), Json::str(&name)),
                        ("version".to_owned(), Json::num(version as usize)),
                        ("facts".to_owned(), Json::num(changed)),
                        (
                            "novelty_size".to_owned(),
                            Json::num(stats.novelty_size as usize),
                        ),
                        (
                            "compactions".to_owned(),
                            Json::num(stats.compactions as usize),
                        ),
                        (
                            "maintained".to_owned(),
                            Json::Bool(stats.incremental_resumes + stats.full_rechases > 0),
                        ),
                        ("complete".to_owned(), Json::Bool(head_complete)),
                    ]
                });
                Response {
                    id: req.id.clone(),
                    outcome,
                    timed_out: false,
                }
            })
            .collect()
    }

    /// Runs `compute` for the verdict key, sharing one in-flight
    /// computation among concurrent coalesceable requests: the first
    /// arrival (the leader) computes, everyone else waits on the slot and
    /// clones the outcome. Non-coalesceable requests (deadline-bearing or
    /// traced — see `execute_one`) always compute.
    fn coalesced(
        &self,
        vkey: &VerdictKey,
        coalesce: bool,
        trace_id: u64,
        compute: impl FnOnce() -> (Result<Vec<(String, Json)>, ServeError>, bool),
    ) -> (Result<Vec<(String, Json)>, ServeError>, bool) {
        if !coalesce {
            self.verdict_computations.fetch_add(1, Ordering::Relaxed);
            return compute();
        }
        let (slot, leader) = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(vkey) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(InflightSlot {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                        leader_trace: trace_id,
                    });
                    inflight.insert(vkey.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if leader {
            self.verdict_computations.fetch_add(1, Ordering::Relaxed);
            let out = compute();
            *slot.done.lock().unwrap() = Some(out.clone());
            slot.cv.notify_all();
            self.inflight.lock().unwrap().remove(vkey);
            out
        } else {
            self.coalesced_hits.fetch_add(1, Ordering::Relaxed);
            omq_obs::counter("serve.coalesced", 1);
            // Link this follower's trace to the leader's computation: the
            // counter value is the leader's trace id, so a flight-recorder
            // or JSONL capture of the follower names the span tree that
            // actually did the work.
            omq_obs::counter("serve.coalesced.leader_trace", slot.leader_trace);
            let mut done = slot.done.lock().unwrap();
            while done.is_none() {
                done = slot.cv.wait(done).unwrap();
            }
            done.clone().expect("leader published before notifying")
        }
    }

    /// Runs one job; the bool is the timed-out flag (expiry observed *and*
    /// the answer degraded because of it).
    fn run_op(
        &self,
        op: &Op,
        budget: &Budget,
        coalesce: bool,
        trace_id: u64,
    ) -> (Result<Vec<(String, Json)>, ServeError>, bool) {
        match op {
            Op::Register {
                name,
                program,
                schema,
                query,
            } => (self.op_register(name, program, schema, query), false),
            Op::Classify { name } => (self.op_classify(name), false),
            Op::Stats => (Ok(self.op_stats()), false),
            Op::Metrics => (Ok(self.op_metrics()), false),
            Op::TraceDump => (Ok(self.op_trace_dump()), false),
            Op::Contains { lhs, rhs } => self.op_contains(lhs, rhs, budget, coalesce, trace_id),
            Op::Equivalent { lhs, rhs } => self.op_equivalent(lhs, rhs, budget, coalesce, trace_id),
            Op::Evaluate { name, facts, at } => self.op_evaluate(name, facts, *at, budget),
            Op::Assert { name, facts } => self.op_mutate(name, facts, true, budget),
            Op::Retract { name, facts } => self.op_mutate(name, facts, false, budget),
            Op::Snapshot { name } => (self.op_snapshot(name), false),
            Op::Explain { lhs, rhs } => self.op_explain(lhs, rhs, budget),
        }
    }

    fn op_register(
        &self,
        name: &str,
        program: &str,
        schema: &[String],
        query: &str,
    ) -> Result<Vec<(String, Json)>, ServeError> {
        let entries: Vec<&str> = schema.iter().map(String::as_str).collect();
        let info = self
            .registry
            .write()
            .unwrap()
            .register(name, program, &entries, query)?;
        let mut fields = vec![
            ("registered".to_owned(), Json::str(name)),
            ("language".to_owned(), Json::str(info.language.to_string())),
            ("key".to_owned(), Json::str(info.digest)),
        ];
        if let Some(first) = info.alias_of {
            fields.push(("alias_of".to_owned(), Json::str(first)));
        }
        Ok(fields)
    }

    fn op_classify(&self, name: &str) -> Result<Vec<(String, Json)>, ServeError> {
        let reg = self.registry.read().unwrap();
        let r = reg.get(name)?;
        Ok(vec![
            ("name".to_owned(), Json::str(name)),
            ("language".to_owned(), Json::str(r.language.to_string())),
            ("key".to_owned(), Json::str(r.key.digest())),
            ("arity".to_owned(), Json::num(r.omq.arity())),
            ("tgds".to_owned(), Json::num(r.omq.sigma.len())),
            (
                "disjuncts".to_owned(),
                Json::num(r.omq.query.disjuncts.len()),
            ),
        ])
    }

    fn op_stats(&self) -> Vec<(String, Json)> {
        let (rw, vd, enc) = self.cache_stats();
        let reg = self.registry.read().unwrap();
        let cache_obj = |s: CacheStats, entries: usize| {
            Json::obj([
                ("hits", Json::num(s.hits)),
                ("alias_hits", Json::num(s.alias_hits)),
                ("misses", Json::num(s.misses)),
                ("insertions", Json::num(s.insertions)),
                ("evictions", Json::num(s.evictions)),
                ("entries", Json::num(entries)),
            ])
        };
        let mut fields = vec![
            ("registered".to_owned(), Json::num(reg.len())),
            ("distinct_keys".to_owned(), Json::num(reg.distinct_keys())),
            // Per-op latency histograms since engine start (wall-clock of
            // the whole request, including cache hits). Present regardless
            // of the `obs` feature: the engine feeds the aggregator
            // directly rather than through spans.
            (
                "latency".to_owned(),
                Json::Obj(
                    self.latencies
                        .phases()
                        .into_iter()
                        .map(|p| {
                            (
                                p.name.clone(),
                                Json::obj([
                                    ("count", Json::num(p.count as usize)),
                                    ("p50_us", Json::num(p.p50_us as usize)),
                                    ("p99_us", Json::num(p.p99_us as usize)),
                                    ("total_us", Json::num((p.total_ns / 1_000) as usize)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "rewrite_cache".to_owned(),
                cache_obj(rw, self.rewrites.lock().unwrap().len()),
            ),
            (
                "verdict_cache".to_owned(),
                cache_obj(vd, self.verdicts.lock().unwrap().len()),
            ),
            (
                "encoding_cache".to_owned(),
                cache_obj(enc, self.encodings.lock().unwrap().len()),
            ),
            // Duplicated at the top level as the headline warm-path signal
            // (dashboards and the CI gate key on this one number).
            ("encoding_cache_hits".to_owned(), Json::num(enc.hits)),
            // Versioned-store mutation and fixpoint-maintenance counters,
            // summed across every named store (see `omq_store::StoreStats`).
            ("store".to_owned(), {
                let (s, stores) = self.store_stats();
                Json::obj([
                    ("stores", Json::num(stores)),
                    ("asserts", Json::num(s.asserts as usize)),
                    ("retracts", Json::num(s.retracts as usize)),
                    ("facts_asserted", Json::num(s.facts_asserted as usize)),
                    ("facts_retracted", Json::num(s.facts_retracted as usize)),
                    ("snapshots", Json::num(s.snapshots as usize)),
                    ("compactions", Json::num(s.compactions as usize)),
                    ("novelty_size", Json::num(s.novelty_size as usize)),
                    ("dred_deleted", Json::num(s.dred_deleted as usize)),
                    ("rederived", Json::num(s.rederived as usize)),
                    (
                        "incremental_resumes",
                        Json::num(s.incremental_resumes as usize),
                    ),
                    ("full_rechases", Json::num(s.full_rechases as usize)),
                    ("cone_batches", Json::num(s.cone_batches as usize)),
                    ("cone_reuses", Json::num(s.cone_reuses as usize)),
                ])
            }),
            (
                "threads".to_owned(),
                Json::num(effective_threads(self.cfg.threads, usize::MAX)),
            ),
            (
                "cache_capacity".to_owned(),
                Json::num(self.cfg.cache_capacity),
            ),
            // Process-global homomorphism-kernel counters: monotone across
            // the process lifetime, so they aggregate work from every
            // request (and every engine) seen so far.
            ("hom_kernel".to_owned(), {
                let h = omq_chase::global_hom_snapshot();
                Json::obj([
                    (
                        "candidates_scanned",
                        Json::num(h.candidates_scanned as usize),
                    ),
                    ("backtracks", Json::num(h.backtracks as usize)),
                    ("homs_found", Json::num(h.homs_found as usize)),
                    ("plans_compiled", Json::num(h.plans_compiled as usize)),
                    ("plan_cache_hits", Json::num(h.plan_cache_hits as usize)),
                    ("prefilter_rejects", Json::num(h.prefilter_rejects as usize)),
                    ("plans_reoptimized", Json::num(h.plans_reoptimized as usize)),
                    ("est_ratio_le_1", Json::num(h.est_ratio_le_1 as usize)),
                    ("est_ratio_le_4", Json::num(h.est_ratio_le_4 as usize)),
                    ("est_ratio_gt_4", Json::num(h.est_ratio_gt_4 as usize)),
                    (
                        "sketch_build_us",
                        Json::num((h.sketch_build_ns / 1_000) as usize),
                    ),
                ])
            }),
        ];
        // In-flight request coalescing: followers answered without a solver
        // run. The flat `coalesced_hits` is the headline number CI gates on;
        // the object adds the computation denominator.
        let (co_hits, co_runs) = self.coalescing_stats();
        fields.push(("coalesced_hits".to_owned(), Json::num(co_hits as usize)));
        fields.push((
            "coalescing".to_owned(),
            Json::obj([
                ("hits", Json::num(co_hits as usize)),
                ("computations", Json::num(co_runs as usize)),
            ]),
        ));
        if let Some(d) = self.disk_stats() {
            fields.push((
                "artifact_disk".to_owned(),
                Json::obj([
                    ("hits", Json::num(d.hits as usize)),
                    ("misses", Json::num(d.misses as usize)),
                    ("stores", Json::num(d.stores as usize)),
                    ("errors", Json::num(d.errors as usize)),
                ]),
            ));
        }
        if let Some(rt) = &self.runtime {
            fields.push(("reactor".to_owned(), rt.to_json()));
        }
        fields
    }

    /// Scrape samples for engine-local state: cache tiers, coalescing,
    /// the disk tier, store maintenance, the registry size, and the
    /// per-op latency histograms (from [`Aggregator`], so present even
    /// with `obs` compiled out). Excludes process-global series — the
    /// flight recorder, the hom kernel, and the metrics registry itself —
    /// which the front end adds exactly once (a sharded engine folds one
    /// `local_samples` per shard into a single scrape; duplicated global
    /// series would multiply by the shard count).
    pub fn local_samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        let (rw, vd, enc) = self.cache_stats();
        let caches = [
            ("rewrite", rw, self.rewrites.lock().unwrap().len()),
            ("verdict", vd, self.verdicts.lock().unwrap().len()),
            ("encoding", enc, self.encodings.lock().unwrap().len()),
        ];
        for (cache, s, entries) in caches {
            let lbl = || vec![("cache", cache.to_owned())];
            out.push(counter_sample(
                "omq_cache_hits_total",
                "Cache hits, by cache tier.",
                lbl(),
                s.hits as u64,
            ));
            out.push(counter_sample(
                "omq_cache_misses_total",
                "Cache misses, by cache tier.",
                lbl(),
                s.misses as u64,
            ));
            out.push(counter_sample(
                "omq_cache_insertions_total",
                "Cache insertions, by cache tier.",
                lbl(),
                s.insertions as u64,
            ));
            out.push(counter_sample(
                "omq_cache_evictions_total",
                "Cache evictions, by cache tier.",
                lbl(),
                s.evictions as u64,
            ));
            out.push(gauge_sample(
                "omq_cache_entries",
                "Live cache entries, by cache tier.",
                lbl(),
                entries as f64,
            ));
        }
        let (co_hits, co_runs) = self.coalescing_stats();
        out.push(counter_sample(
            "omq_coalesced_total",
            "Requests answered by joining an in-flight computation.",
            Vec::new(),
            co_hits,
        ));
        out.push(counter_sample(
            "omq_verdict_computations_total",
            "Underlying solver invocations for contains/equivalent.",
            Vec::new(),
            co_runs,
        ));
        if let Some(d) = self.disk_stats() {
            for (event, v) in [
                ("hit", d.hits),
                ("miss", d.misses),
                ("store", d.stores),
                ("error", d.errors),
            ] {
                out.push(counter_sample(
                    "omq_artifact_disk_total",
                    "Persisted artifact tier events.",
                    vec![("event", event.to_owned())],
                    v,
                ));
            }
        }
        let (s, stores) = self.store_stats();
        for (op, v) in [
            ("assert", s.asserts),
            ("retract", s.retracts),
            ("snapshot", s.snapshots),
            ("compact", s.compactions),
        ] {
            out.push(counter_sample(
                "omq_store_ops_total",
                "Versioned-store operations, by kind.",
                vec![("op", op.to_owned())],
                v,
            ));
        }
        for (dir, v) in [
            ("asserted", s.facts_asserted),
            ("retracted", s.facts_retracted),
        ] {
            out.push(counter_sample(
                "omq_store_facts_total",
                "Base facts asserted/retracted across stores.",
                vec![("dir", dir.to_owned())],
                v,
            ));
        }
        for (kind, v) in [
            ("incremental_resume", s.incremental_resumes),
            ("full_rechase", s.full_rechases),
            ("dred_deleted", s.dred_deleted),
            ("rederived", s.rederived),
            ("cone_batch", s.cone_batches),
            ("cone_reuse", s.cone_reuses),
        ] {
            out.push(counter_sample(
                "omq_store_maintenance_total",
                "Incremental chase-maintenance events, by kind.",
                vec![("kind", kind.to_owned())],
                v,
            ));
        }
        out.push(gauge_sample(
            "omq_store_novelty_rows",
            "Uncompacted novelty-overlay rows across stores.",
            Vec::new(),
            s.novelty_size as f64,
        ));
        out.push(gauge_sample(
            "omq_stores",
            "Named versioned stores.",
            Vec::new(),
            stores as f64,
        ));
        let reg = self.registry.read().unwrap();
        out.push(gauge_sample(
            "omq_registered",
            "Registered OMQ names.",
            Vec::new(),
            reg.len() as f64,
        ));
        out.push(gauge_sample(
            "omq_registry_distinct_keys",
            "Distinct canonical OMQ keys.",
            Vec::new(),
            reg.distinct_keys() as f64,
        ));
        drop(reg);
        // Engine-start latency histograms (full history, not windowed).
        for p in self.latencies.raw_phases() {
            out.push(Sample {
                name: "omq_op_latency_us",
                help: "Per-op wall time since engine start (us, log-bucketed).",
                labels: vec![("op", p.name)],
                value: Value::Histogram {
                    buckets: p.buckets.to_vec(),
                    count: p.count,
                    sum_us: p.total_ns / 1_000,
                },
            });
        }
        // The runtime block is attached to exactly one engine (shard 0),
        // so reactor gauges appear once per process.
        if let Some(rt) = &self.runtime {
            out.extend(rt.samples());
        }
        out
    }

    /// Render the full Prometheus text exposition for this engine:
    /// registry samples + process-global samples + engine-local samples.
    /// (The sharded front end assembles its own scrape from the shared
    /// registry plus every shard's `local_samples`.)
    pub fn metrics_text(&self) -> String {
        let mut samples = self.metrics.samples();
        samples.extend(global_samples(&self.flight));
        samples.extend(self.local_samples());
        omq_obs::metrics::render_prometheus(&samples)
    }

    fn op_metrics(&self) -> Vec<(String, Json)> {
        vec![
            (
                "content_type".to_owned(),
                Json::str(omq_obs::metrics::PROMETHEUS_CONTENT_TYPE),
            ),
            ("exposition".to_owned(), Json::str(self.metrics_text())),
        ]
    }

    fn op_trace_dump(&self) -> Vec<(String, Json)> {
        trace_dump_fields(&self.flight)
    }

    /// Clones everything a solver job needs out of the registry, holding the
    /// read lock only for the duration of the clone.
    fn snapshot(
        &self,
        names: &[&str],
    ) -> Result<(Vec<crate::registry::Registered>, Vocabulary), ServeError> {
        let reg = self.registry.read().unwrap();
        let mut regs = Vec::with_capacity(names.len());
        for name in names {
            regs.push(reg.get(name)?.clone());
        }
        Ok((regs, reg.vocabulary().clone()))
    }

    /// Fetches (or compiles and caches) the encoding artifact of a guarded
    /// left-hand side; `None` for non-guarded OMQs and for OMQs the
    /// name-pool bounds cannot encode. Compilation runs on a *clone* of the
    /// request vocabulary, so cache state (compile vs. hit) can never leak
    /// into the interning order — and therefore the rendered bytes — of the
    /// main solver run. Only complete artifacts are stored.
    fn guarded_encoding(
        &self,
        reg: &crate::registry::Registered,
        voc: &Vocabulary,
        budget: &Budget,
    ) -> Option<EncodingArtifact> {
        if reg.language != OmqLanguage::Guarded {
            return None;
        }
        let alias = reg.alias_of.is_some();
        if let Some(hit) = self.encodings.lock().unwrap().get_tagged(&reg.key, alias) {
            return Some(hit);
        }
        let cfg = EncodingConfig {
            budget: budget.clone(),
            ..EncodingConfig::default()
        };
        let art = compile_encoding(&reg.omq, &mut voc.clone(), &cfg)?;
        if art.complete {
            self.encodings
                .lock()
                .unwrap()
                .insert(reg.key.clone(), art.clone());
        }
        Some(art)
    }

    fn containment_cfg(&self, budget: &Budget) -> ContainmentConfig {
        let mut cfg = ContainmentConfig::default().with_budget(budget.clone());
        cfg.threads = 1;
        cfg.rewrite.threads = 1;
        cfg.eval.rewrite.threads = 1;
        cfg
    }

    fn eval_cfg(&self, budget: &Budget) -> EvalConfig {
        let mut cfg = EvalConfig::default().with_budget(budget.clone());
        cfg.rewrite.threads = 1;
        cfg
    }

    fn op_contains(
        &self,
        lhs: &str,
        rhs: &str,
        budget: &Budget,
        coalesce: bool,
        trace_id: u64,
    ) -> (Result<Vec<(String, Json)>, ServeError>, bool) {
        let (regs, mut voc) = match self.snapshot(&[lhs, rhs]) {
            Ok(s) => s,
            Err(e) => return (Err(e), false),
        };
        let (l, r) = (&regs[0], &regs[1]);
        let alias = l.alias_of.is_some() || r.alias_of.is_some();
        let vkey = (VerdictOp::Contains, l.key.clone(), r.key.clone());
        if let Some(fields) = self.verdicts.lock().unwrap().get_tagged(&vkey, alias) {
            return (Ok(fields), false);
        }
        self.coalesced(&vkey.clone(), coalesce, trace_id, || {
            let encoding = self.guarded_encoding(l, &voc, budget);
            let mut cfg = self.containment_cfg(budget);
            // Hand the cached (or freshly compiled) lhs artifact to the
            // anytime ladder: its guarded rung reuses the
            // NTA/satisfiability verdict instead of recompiling the
            // encoding from scratch.
            cfg.lhs_encoding = encoding.clone().map(Arc::new);
            let mut src = CachingSource {
                cache: &self.rewrites,
                disk: self.disk.as_ref(),
                alias,
            };
            let outcome = match contains_with(&l.omq, &r.omq, &mut voc, &cfg, &mut src) {
                Ok(o) => o,
                Err(e) => return (Err(e.into()), false),
            };
            let definitive = !matches!(outcome.result, ContainmentResult::Unknown(_));
            let mut fields = contains_fields(&outcome, &voc);
            if let Some(art) = &encoding {
                fields.push(("guarded_encoding".to_owned(), encoding_json(art)));
            }
            if definitive {
                self.verdicts.lock().unwrap().insert(vkey, fields.clone());
            }
            (Ok(fields), !definitive && budget.expired())
        })
    }

    fn op_equivalent(
        &self,
        lhs: &str,
        rhs: &str,
        budget: &Budget,
        coalesce: bool,
        trace_id: u64,
    ) -> (Result<Vec<(String, Json)>, ServeError>, bool) {
        let (regs, mut voc) = match self.snapshot(&[lhs, rhs]) {
            Ok(s) => s,
            Err(e) => return (Err(e), false),
        };
        let (l, r) = (&regs[0], &regs[1]);
        let alias = l.alias_of.is_some() || r.alias_of.is_some();
        let vkey = (VerdictOp::Equivalent, l.key.clone(), r.key.clone());
        if let Some(fields) = self.verdicts.lock().unwrap().get_tagged(&vkey, alias) {
            return (Ok(fields), false);
        }
        self.coalesced(&vkey.clone(), coalesce, trace_id, || {
            let cfg = self.containment_cfg(budget);
            let mut src = CachingSource {
                cache: &self.rewrites,
                disk: self.disk.as_ref(),
                alias,
            };
            let (fwd, back) = match equivalent_with(&l.omq, &r.omq, &mut voc, &cfg, &mut src) {
                Ok(p) => p,
                Err(e) => return (Err(e.into()), false),
            };
            let definitive = !matches!(fwd.result, ContainmentResult::Unknown(_))
                && !matches!(back.result, ContainmentResult::Unknown(_));
            let verdict = if fwd.result.is_not_contained() || back.result.is_not_contained() {
                "not_equivalent"
            } else if fwd.result.is_contained() && back.result.is_contained() {
                "equivalent"
            } else {
                "unknown"
            };
            let fields = vec![
                ("verdict".to_owned(), Json::str(verdict)),
                ("forward".to_owned(), Json::Obj(contains_fields(&fwd, &voc))),
                (
                    "backward".to_owned(),
                    Json::Obj(contains_fields(&back, &voc)),
                ),
            ];
            // A `not_equivalent` with one refuted and one unknown direction
            // is sound but its sub-report could still improve; cache only
            // when both directions are settled.
            if definitive {
                self.verdicts.lock().unwrap().insert(vkey, fields.clone());
            }
            (Ok(fields), verdict == "unknown" && budget.expired())
        })
    }

    /// Runs `f` on the named OMQ's store entry, creating it (with a fresh
    /// registry-snapshot vocabulary) on first touch. The stores lock is held
    /// for the duration of `f` — store ops are batch barriers, so `f` never
    /// blocks a parallel fan-out.
    fn with_store<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut NamedStore, &crate::registry::Registered) -> T,
    ) -> Result<T, ServeError> {
        let (regs, voc) = self.snapshot(&[name])?;
        let mut stores = self.stores.lock().unwrap();
        let entry = stores.entry(name.to_owned()).or_insert_with(|| NamedStore {
            voc,
            store: MaintainedStore::new(StoreConfig {
                compact_threshold: self.cfg.store_compact_threshold,
            }),
        });
        Ok(f(entry, &regs[0]))
    }

    /// Store + maintenance counters summed across every named store.
    fn store_stats(&self) -> (StoreStats, usize) {
        let stores = self.stores.lock().unwrap();
        let mut total = StoreStats::default();
        for entry in stores.values() {
            let s = entry.store.stats();
            total.asserts += s.asserts;
            total.retracts += s.retracts;
            total.facts_asserted += s.facts_asserted;
            total.facts_retracted += s.facts_retracted;
            total.snapshots += s.snapshots;
            total.compactions += s.compactions;
            total.novelty_size += s.novelty_size;
            total.dred_deleted += s.dred_deleted;
            total.rederived += s.rederived;
            total.incremental_resumes += s.incremental_resumes;
            total.full_rechases += s.full_rechases;
            total.cone_batches += s.cone_batches;
            total.cone_reuses += s.cone_reuses;
        }
        (total, stores.len())
    }

    fn op_evaluate(
        &self,
        name: &str,
        facts: &[String],
        at: Option<u64>,
        budget: &Budget,
    ) -> (Result<Vec<(String, Json)>, ServeError>, bool) {
        if facts.is_empty() {
            return self.op_evaluate_store(name, at, budget);
        }
        let (regs, mut voc) = match self.snapshot(&[name]) {
            Ok(s) => s,
            Err(e) => return (Err(e), false),
        };
        let atoms = match parse_ground_facts(&mut voc, facts) {
            Ok(a) => a,
            Err(e) => return (Err(e), false),
        };
        let db = Instance::from_atoms(atoms);
        let cfg = self.eval_cfg(budget);
        let mut src = CachingSource {
            cache: &self.rewrites,
            disk: self.disk.as_ref(),
            alias: regs[0].alias_of.is_some(),
        };
        let out = evaluate_with(&regs[0].omq, &db, &mut voc, &cfg, &mut src);
        let mut answers: Vec<Vec<String>> = out
            .answers
            .iter()
            .map(|t| t.iter().map(|&c| voc.const_name(c).to_owned()).collect())
            .collect();
        answers.sort();
        let fields = vec![
            (
                "answers".to_owned(),
                Json::Arr(
                    answers
                        .iter()
                        .map(|t| Json::Arr(t.iter().map(Json::str).collect()))
                        .collect(),
                ),
            ),
            ("count".to_owned(), Json::num(answers.len())),
            (
                "guarantee".to_owned(),
                Json::str(match out.guarantee {
                    EvalGuarantee::Exact => "exact",
                    EvalGuarantee::Stabilized => "stabilized",
                    EvalGuarantee::SoundLowerBound => "sound_lower_bound",
                }),
            ),
            ("language".to_owned(), Json::str(out.language.to_string())),
        ];
        let degraded = matches!(out.guarantee, EvalGuarantee::SoundLowerBound);
        (Ok(fields), degraded && budget.expired())
    }

    /// Store-backed evaluation: certain answers of the named OMQ over the
    /// chase of its store at `at` (default: the head, served straight from
    /// the maintained fixpoint). The guarantee is `exact` when the chase
    /// reached its fixpoint and `sound_lower_bound` when a budget truncated
    /// it — in which case the fixpoint stays marked incomplete and the next
    /// store op resumes the maintenance, so expiry never poisons the store.
    fn op_evaluate_store(
        &self,
        name: &str,
        at: Option<u64>,
        budget: &Budget,
    ) -> (Result<Vec<(String, Json)>, ServeError>, bool) {
        let cfg = self.eval_cfg(budget).chase;
        let res = self.with_store(name, |entry, reg| {
            let eval =
                entry
                    .store
                    .evaluate(at, &reg.omq.query, &reg.omq.sigma, &mut entry.voc, &cfg);
            (eval, reg.language, entry.voc.clone())
        });
        let (eval, language, voc) = match res {
            Ok(t) => t,
            Err(e) => return (Err(e), false),
        };
        let eval = match eval {
            Ok(ev) => ev,
            Err(e) => return (Err(ServeError::StaleVersion(e.to_string())), false),
        };
        let mut answers: Vec<Vec<String>> = eval
            .answers
            .iter()
            .map(|t| t.iter().map(|&c| voc.const_name(c).to_owned()).collect())
            .collect();
        answers.sort();
        let fields = vec![
            (
                "answers".to_owned(),
                Json::Arr(
                    answers
                        .iter()
                        .map(|t| Json::Arr(t.iter().map(Json::str).collect()))
                        .collect(),
                ),
            ),
            ("count".to_owned(), Json::num(answers.len())),
            (
                "guarantee".to_owned(),
                Json::str(if eval.complete {
                    "exact"
                } else {
                    "sound_lower_bound"
                }),
            ),
            ("language".to_owned(), Json::str(language.to_string())),
            ("version".to_owned(), Json::num(eval.version as usize)),
        ];
        (Ok(fields), !eval.complete && budget.expired())
    }

    /// `assert` / `retract`: parses the ground facts into the store's own
    /// vocabulary, appends a new version, and maintains the chase fixpoint
    /// incrementally (watermark resume for asserts, DRed for retracts) —
    /// provided a fixpoint exists; before the first store evaluation the
    /// store stays lazy and mutations are pure version appends.
    fn op_mutate(
        &self,
        name: &str,
        facts: &[String],
        is_assert: bool,
        budget: &Budget,
    ) -> (Result<Vec<(String, Json)>, ServeError>, bool) {
        let cfg = self.eval_cfg(budget).chase;
        let res = self.with_store(name, |entry, reg| {
            let atoms = parse_ground_facts(&mut entry.voc, facts)?;
            let version = if is_assert {
                entry
                    .store
                    .assert_facts(&atoms, &reg.omq.sigma, &mut entry.voc, &cfg)
            } else {
                entry
                    .store
                    .retract_facts(&atoms, &reg.omq.sigma, &mut entry.voc, &cfg)
            }
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
            let stats = entry.store.stats();
            Ok((version, atoms.len(), stats, entry.store.head_complete()))
        });
        let (version, changed, stats, head_complete) = match res.and_then(|r| r) {
            Ok(t) => t,
            Err(e) => return (Err(e), false),
        };
        let fields = vec![
            (
                if is_assert { "asserted" } else { "retracted" }.to_owned(),
                Json::str(name),
            ),
            ("version".to_owned(), Json::num(version as usize)),
            ("facts".to_owned(), Json::num(changed)),
            (
                "novelty_size".to_owned(),
                Json::num(stats.novelty_size as usize),
            ),
            (
                "compactions".to_owned(),
                Json::num(stats.compactions as usize),
            ),
            (
                "maintained".to_owned(),
                Json::Bool(stats.incremental_resumes + stats.full_rechases > 0),
            ),
            ("complete".to_owned(), Json::Bool(head_complete)),
        ];
        // Degraded when this mutation's maintenance was truncated by the
        // deadline; the fixpoint stays resumable either way.
        let maintained = stats.incremental_resumes + stats.full_rechases > 0;
        (Ok(fields), maintained && !head_complete && budget.expired())
    }

    /// `snapshot`: pins the named store's current version against
    /// compaction and returns it; `evaluate` with `"at"` stays answerable
    /// at that version for as long as the pin is held.
    fn op_snapshot(&self, name: &str) -> Result<Vec<(String, Json)>, ServeError> {
        let (version, head_complete) = self.with_store(name, |entry, _| {
            (entry.store.snapshot(), entry.store.head_complete())
        })?;
        Ok(vec![
            ("snapshot".to_owned(), Json::str(name)),
            ("version".to_owned(), Json::num(version as usize)),
            ("pinned".to_owned(), Json::Bool(true)),
            ("complete".to_owned(), Json::Bool(head_complete)),
        ])
    }

    /// `contains` plus evidence: a replayable chase derivation for
    /// `not_contained`, per-disjunct homomorphism coverage for `contained`.
    /// The explanation itself is uncached (bulky, rare relative to
    /// verdicts), but the rewriting underneath comes from the tiered
    /// artifact cache like every other op: cached artifacts are stored in
    /// portable form and rehydrated into *this* request's vocabulary, so
    /// every rendered variable resolves and the response is byte-identical
    /// whatever the cache state (this used to require bypassing the cache).
    fn op_explain(
        &self,
        lhs: &str,
        rhs: &str,
        budget: &Budget,
    ) -> (Result<Vec<(String, Json)>, ServeError>, bool) {
        let (regs, mut voc) = match self.snapshot(&[lhs, rhs]) {
            Ok(s) => s,
            Err(e) => return (Err(e), false),
        };
        let (l, r) = (&regs[0], &regs[1]);
        let cfg = self.containment_cfg(budget);
        let mut src = CachingSource {
            cache: &self.rewrites,
            disk: self.disk.as_ref(),
            alias: l.alias_of.is_some() || r.alias_of.is_some(),
        };
        let ex = match explain_with(&l.omq, &r.omq, &mut voc, &cfg, &mut src) {
            Ok(e) => e,
            Err(e) => return (Err(e.into()), false),
        };
        let mut fields = contains_fields(&ex.outcome, &voc);
        match &ex.detail {
            ExplainDetail::NotContained(we) => {
                fields.push((
                    "witness_facts".to_owned(),
                    Json::Arr(we.witness_facts.iter().map(Json::str).collect()),
                ));
                fields.push((
                    "derivation".to_owned(),
                    Json::Arr(
                        we.derivation
                            .iter()
                            .map(|s| {
                                Json::obj([
                                    ("tgd_index", Json::num(s.tgd_index)),
                                    ("tgd", Json::str(s.tgd.clone())),
                                    (
                                        "inputs",
                                        Json::Arr(s.inputs.iter().map(Json::str).collect()),
                                    ),
                                    (
                                        "outputs",
                                        Json::Arr(s.outputs.iter().map(Json::str).collect()),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            ExplainDetail::Contained(cov) => {
                fields.push((
                    "coverage".to_owned(),
                    Json::obj([
                        ("total_disjuncts", Json::num(cov.total_disjuncts)),
                        (
                            "shown",
                            Json::Arr(
                                cov.shown
                                    .iter()
                                    .map(|dc| {
                                        Json::obj([
                                            ("disjunct", Json::num(dc.disjunct)),
                                            ("disjunct_cq", Json::str(dc.disjunct_cq.clone())),
                                            (
                                                "rhs_disjunct",
                                                dc.rhs_disjunct.map_or(Json::Null, Json::num),
                                            ),
                                            (
                                                "homomorphism",
                                                Json::Obj(
                                                    dc.homomorphism
                                                        .iter()
                                                        .map(|(v, t)| (v.clone(), Json::str(t)))
                                                        .collect(),
                                                ),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                ));
            }
            ExplainDetail::Unknown(reason) => {
                fields.push(("explain_unknown".to_owned(), Json::str(reason.clone())));
            }
        }
        let definitive = !matches!(ex.outcome.result, ContainmentResult::Unknown(_));
        (Ok(fields), !definitive && budget.expired())
    }
}

/// Parses `"P(a,b)"`-style fact strings (via the tgd parser, as the head
/// of `true -> fact`) and rejects anything non-ground. Used by the one-shot
/// `evaluate` path (request-vocabulary clone) and by store mutations (the
/// store's own persistent vocabulary).
fn parse_ground_facts(
    voc: &mut Vocabulary,
    facts: &[String],
) -> Result<Vec<omq_model::Atom>, ServeError> {
    let mut atoms = Vec::new();
    for fact in facts {
        let tgd = parse_tgd(voc, &format!("true -> {fact}"))?;
        for atom in tgd.head {
            if atom.args.iter().any(|t| !matches!(t, Term::Const(_))) {
                return Err(ServeError::BadRequest(format!(
                    "fact {fact:?} must be ground (constants start lowercase)"
                )));
            }
            atoms.push(atom);
        }
    }
    Ok(atoms)
}

/// The span/latency name of an op (`serve.<op>`).
fn op_name(op: &Op) -> &'static str {
    op.label()
}

/// The `"trace"` response field: the request's trace id (the one stamped
/// on its sink events) plus the per-phase wall-clock breakdown and
/// counters (empty when the workspace `obs` feature is off — spans are
/// no-ops then). Only `"trace":true` responses carry this, so the id
/// never reaches a byte-determinism-pinned default response.
fn trace_json(agg: &Aggregator, trace_id: u64) -> Json {
    Json::obj([
        ("trace_id", Json::num(trace_id as usize)),
        (
            "phases",
            Json::Obj(
                agg.phases()
                    .into_iter()
                    .map(|p| {
                        (
                            p.name.clone(),
                            Json::obj([
                                ("count", Json::num(p.count as usize)),
                                ("total_us", Json::num((p.total_ns / 1_000) as usize)),
                                ("p50_us", Json::num(p.p50_us as usize)),
                                ("p99_us", Json::num(p.p99_us as usize)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "counters",
            Json::Obj(
                agg.counters()
                    .into_iter()
                    .map(|(name, v)| (name, Json::num(v as usize)))
                    .collect(),
            ),
        ),
    ])
}

/// The `"guarded_encoding"` response field: the lhs artifact's summary —
/// counts and certification bits only, nothing vocabulary-dependent, so a
/// cached artifact renders byte-identically to a freshly compiled one.
fn encoding_json(a: &EncodingArtifact) -> Json {
    Json::obj([
        ("ctree_nodes", Json::num(a.ctree_nodes)),
        ("alphabet", Json::num(a.alphabet_size)),
        ("twapa_states", Json::num(a.twapa_states)),
        ("nta_states", Json::num(a.nta_states)),
        ("nta_transitions", Json::num(a.nta_transitions)),
        ("consistent", Json::Bool(a.consistent)),
        ("nonempty", a.nonempty.map_or(Json::Null, Json::Bool)),
    ])
}

/// Renders a containment outcome as response fields (deterministic: the
/// witness database is in `Instance` insertion order, which the parallel
/// sweep reproduces exactly).
fn contains_fields(outcome: &ContainmentOutcome, voc: &Vocabulary) -> Vec<(String, Json)> {
    let mut fields: Vec<(String, Json)> = Vec::new();
    match &outcome.result {
        ContainmentResult::Contained => {
            fields.push(("verdict".to_owned(), Json::str("contained")));
        }
        ContainmentResult::NotContained(w) => {
            fields.push(("verdict".to_owned(), Json::str("not_contained")));
            fields.push((
                "witness".to_owned(),
                Json::Arr(
                    w.database
                        .atoms()
                        .iter()
                        .map(|a| Json::str(render_atom(voc, a)))
                        .collect(),
                ),
            ));
            if !w.tuple.is_empty() {
                fields.push((
                    "witness_tuple".to_owned(),
                    Json::Arr(
                        w.tuple
                            .iter()
                            .map(|&c| Json::str(voc.const_name(c)))
                            .collect(),
                    ),
                ));
            }
        }
        ContainmentResult::Unknown(reason) => {
            fields.push(("verdict".to_owned(), Json::str("unknown")));
            fields.push(("reason".to_owned(), Json::str(reason.clone())));
        }
    }
    fields.push((
        "lhs_language".to_owned(),
        Json::str(outcome.lhs_language.to_string()),
    ));
    fields.push((
        "rhs_language".to_owned(),
        Json::str(outcome.rhs_language.to_string()),
    ));
    fields.push((
        "witnesses_checked".to_owned(),
        Json::num(outcome.witnesses_checked),
    ));
    fields.push((
        "max_witness_size".to_owned(),
        Json::num(outcome.max_witness_size),
    ));
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn req(line: &str) -> Result<Request, Box<Response>> {
        parse_request(line)
    }

    fn register_line(name: &str) -> String {
        format!(
            r#"{{"op":"register","name":"{name}","program":"P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nq(X) :- R(X,Y), P(Y)","schema":["P","R"],"query":"q"}}"#
        )
    }

    #[test]
    fn register_then_contains_hits_the_verdict_cache() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let batch = vec![
            req(&register_line("a")),
            req(r#"{"id":1,"op":"contains","lhs":"a","rhs":"a"}"#),
            req(r#"{"id":2,"op":"contains","lhs":"a","rhs":"a"}"#),
        ];
        let out = eng.execute_batch(&batch);
        assert!(out.iter().all(|r| r.outcome.is_ok()));
        let fields = out[1].outcome.as_ref().unwrap();
        assert_eq!(fields[0].1.as_str(), Some("contained"));
        assert_eq!(out[1].outcome, out[2].outcome, "cache replays the verdict");
        let (_, vd, _) = eng.cache_stats();
        assert_eq!(vd.hits, 1);
        assert_eq!(vd.insertions, 1);
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let batch: Vec<_> = std::iter::once(req(&register_line("a")))
            .chain((0..12).map(|i| {
                req(&format!(
                    r#"{{"id":{i},"op":"contains","lhs":"a","rhs":"a"}}"#
                ))
            }))
            .collect();
        let seq = Engine::new(EngineConfig {
            threads: 1,
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        let par = Engine::new(EngineConfig {
            threads: 0,
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        let a = seq.execute_batch(&batch);
        let b = par.execute_batch(&batch);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                crate::protocol::response_to_json(x).to_string(),
                crate::protocol::response_to_json(y).to_string()
            );
        }
    }

    #[test]
    fn zero_deadline_times_out_and_pool_survives() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let batch = vec![
            req(&register_line("a")),
            req(r#"{"id":1,"op":"contains","lhs":"a","rhs":"a","deadline_ms":0}"#),
            req(r#"{"id":2,"op":"contains","lhs":"a","rhs":"a"}"#),
        ];
        let out = eng.execute_batch(&batch);
        assert!(out[1].timed_out, "zero deadline must time out");
        let f1 = out[1].outcome.as_ref().unwrap();
        assert_eq!(f1[0].1.as_str(), Some("unknown"));
        assert!(!out[2].timed_out, "next request unaffected");
        assert_eq!(
            out[2].outcome.as_ref().unwrap()[0].1.as_str(),
            Some("contained")
        );
    }

    #[test]
    fn evaluate_returns_sorted_answers() {
        let eng = Engine::new(EngineConfig::default());
        let batch = vec![
            req(&register_line("a")),
            req(r#"{"id":1,"op":"evaluate","name":"a","facts":["P(c)","P(b)"]}"#),
        ];
        let out = eng.execute_batch(&batch);
        let fields = out[1].outcome.as_ref().unwrap();
        let line = Json::Obj(fields.clone()).to_string();
        assert_eq!(
            line,
            r#"{"answers":[["b"],["c"]],"count":2,"guarantee":"exact","language":"(L,CQ)"}"#
        );
    }

    #[test]
    fn traced_request_reports_phases_and_stats_reports_latency() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let batch = vec![
            req(&register_line("a")),
            req(r#"{"id":1,"op":"contains","lhs":"a","rhs":"a","trace":true}"#),
            req(r#"{"id":2,"op":"contains","lhs":"a","rhs":"a"}"#),
            req(r#"{"id":3,"op":"stats"}"#),
        ];
        let out = eng.execute_batch(&batch);
        let traced = Json::Obj(out[1].outcome.as_ref().unwrap().clone());
        let trace = traced
            .get("trace")
            .expect("traced request has a trace field");
        // With `obs` compiled in, the trace carries the root span and the
        // solver phases; without it, spans are no-ops and it is empty.
        #[cfg(feature = "obs")]
        {
            let phases = trace.get("phases").unwrap();
            assert!(phases.get("serve.contains").is_some(), "root span present");
            assert!(phases.get("contain").is_some(), "solver phases present");
        }
        #[cfg(not(feature = "obs"))]
        assert!(trace.get("phases").is_some());
        let untraced = Json::Obj(out[2].outcome.as_ref().unwrap().clone());
        assert!(untraced.get("trace").is_none(), "untraced stays untraced");
        let stats = Json::Obj(out[3].outcome.as_ref().unwrap().clone());
        let lat = stats.get("latency").expect("stats has latency histograms");
        let contains = lat.get("serve.contains").unwrap();
        assert_eq!(contains.get("count").and_then(Json::as_u64), Some(2));
        assert!(contains.get("p50_us").is_some());
        assert!(contains.get("p99_us").is_some());
        assert_eq!(
            lat.get("serve.register")
                .and_then(|o| o.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn explain_not_contained_derivation_replays_to_witness_facts() {
        use std::collections::HashSet;
        let eng = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        // lhs needs a chase step (Q is not in the data schema), rhs never
        // holds over the lhs schema — so the witness derivation is non-empty.
        let batch = vec![
            req(
                r#"{"op":"register","name":"a","program":"P(X) -> Q(X)\nq(X) :- Q(X)","schema":["P"],"query":"q"}"#,
            ),
            req(
                r#"{"op":"register","name":"b","program":"q(X) :- T(X)","schema":["T"],"query":"q"}"#,
            ),
            req(r#"{"id":1,"op":"explain","lhs":"a","rhs":"b"}"#),
        ];
        let out = eng.execute_batch(&batch);
        let fields = Json::Obj(out[2].outcome.as_ref().unwrap().clone());
        assert_eq!(
            fields.get("verdict").and_then(Json::as_str),
            Some("not_contained")
        );
        let strings = |v: &Json| -> Vec<String> {
            v.as_array()
                .unwrap()
                .iter()
                .map(|s| s.as_str().unwrap().to_owned())
                .collect()
        };
        // Replay: start from the witness database, fire each derivation
        // step (inputs must already be derived), end with the witness facts.
        let mut state: HashSet<String> = strings(fields.get("witness").unwrap())
            .into_iter()
            .collect();
        let derivation = fields.get("derivation").unwrap().as_array().unwrap();
        assert!(!derivation.is_empty(), "chase step expected");
        for step in derivation {
            for input in strings(step.get("inputs").unwrap()) {
                assert!(state.contains(&input), "unjustified input {input}");
            }
            state.extend(strings(step.get("outputs").unwrap()));
            assert!(step.get("tgd").and_then(Json::as_str).is_some());
        }
        let witness_facts = strings(fields.get("witness_facts").unwrap());
        assert!(!witness_facts.is_empty());
        for fact in &witness_facts {
            assert!(state.contains(fact), "witness fact {fact} not derived");
        }
    }

    #[test]
    fn explain_contained_reports_coverage() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let batch = vec![
            req(&register_line("a")),
            req(r#"{"id":1,"op":"explain","lhs":"a","rhs":"a"}"#),
        ];
        let out = eng.execute_batch(&batch);
        let fields = Json::Obj(out[1].outcome.as_ref().unwrap().clone());
        assert_eq!(
            fields.get("verdict").and_then(Json::as_str),
            Some("contained")
        );
        let cov = fields
            .get("coverage")
            .expect("contained explain has coverage");
        let shown = cov.get("shown").unwrap().as_array().unwrap();
        assert!(!shown.is_empty());
        for dc in shown {
            assert!(dc.get("rhs_disjunct").and_then(Json::as_u64).is_some());
            assert!(matches!(dc.get("homomorphism"), Some(Json::Obj(pairs)) if !pairs.is_empty()));
        }
    }

    /// Regression: `explain` after a cache-warming `contains` must not read
    /// the rewrite cache — cached artifacts carry VarIds interned in a
    /// *previous* request's vocabulary clone, which have no names in this
    /// request's snapshot (rendering them used to panic).
    /// The PR-5 regression, now with the cache *on*: `explain` reads the
    /// tiered artifact cache (portable artifacts rehydrate into the
    /// request vocabulary, so every rendered VarId resolves), and warm
    /// bytes still match cold bytes exactly.
    #[test]
    fn explain_after_warm_contains_matches_cold_explain() {
        let run = |warm: bool| {
            let eng = Engine::new(EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            });
            let mut batch = vec![req(&register_line("a"))];
            if warm {
                batch.push(req(r#"{"id":1,"op":"contains","lhs":"a","rhs":"a"}"#));
            }
            batch.push(req(r#"{"id":2,"op":"explain","lhs":"a","rhs":"a"}"#));
            let out = eng.execute_batch(&batch);
            let bytes =
                Json::Obj(out.last().unwrap().outcome.as_ref().unwrap().clone()).to_string();
            let (rw, _, _) = eng.cache_stats();
            (bytes, rw)
        };
        let (warm_bytes, warm_rw) = run(true);
        let (cold_bytes, _) = run(false);
        assert_eq!(
            warm_bytes, cold_bytes,
            "cache state must not leak into explain"
        );
        assert!(
            warm_rw.hits >= 1,
            "warm explain must hit the artifact cache, not bypass it: {warm_rw:?}"
        );
    }

    /// A burst of identical deadline-free `contains` coalesces: exactly
    /// one solver computation, every follower answered from the leader's
    /// (or the verdict cache's) bytes, and the responses are
    /// byte-identical to a sequential run.
    #[test]
    fn identical_burst_coalesces_to_one_computation() {
        const N: usize = 12;
        let burst = |threads: usize| {
            let eng = Engine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            let batch: Vec<_> = std::iter::once(req(&register_line("a")))
                .chain((0..N).map(|i| {
                    req(&format!(
                        r#"{{"id":{i},"op":"contains","lhs":"a","rhs":"a"}}"#
                    ))
                }))
                .collect();
            let out = eng.execute_batch(&batch);
            let lines: Vec<String> = out
                .iter()
                .map(|r| crate::protocol::response_to_json(r).to_string())
                .collect();
            let (hits, computations) = eng.coalescing_stats();
            let (_, vd, _) = eng.cache_stats();
            (lines, hits, computations, vd)
        };
        let (seq_lines, _, seq_runs, _) = burst(1);
        let (par_lines, hits, runs, vd) = burst(0);
        assert_eq!(seq_lines, par_lines, "burst responses are deterministic");
        assert_eq!(seq_runs, 1, "sequential burst computes once");
        assert_eq!(runs, 1, "parallel burst computes once");
        assert_eq!(
            hits + vd.hits as u64,
            N as u64 - 1,
            "every follower was answered by coalescing or the verdict cache"
        );
    }

    /// Deadline-bearing requests never coalesce: a leader's
    /// budget-truncated answer must not masquerade as another request's.
    #[test]
    fn deadline_requests_do_not_coalesce() {
        let eng = Engine::new(EngineConfig {
            threads: 0,
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        let batch: Vec<_> = std::iter::once(req(&register_line("a")))
            .chain((0..4).map(|i| {
                req(&format!(
                    r#"{{"id":{i},"op":"contains","lhs":"a","rhs":"a","deadline_ms":60000}}"#
                ))
            }))
            .collect();
        let out = eng.execute_batch(&batch);
        assert!(out.iter().all(|r| r.outcome.is_ok()));
        let (hits, runs) = eng.coalescing_stats();
        assert_eq!(hits, 0, "deadline-bearing requests must not share outcomes");
        assert_eq!(runs, 4);
    }

    /// The persisted artifact tier survives a restart: a second engine on
    /// the same `cache_dir` answers from disk (rehydrated through its own
    /// vocabulary) with byte-identical responses and no XRewrite run.
    #[test]
    fn persisted_artifacts_survive_an_engine_restart() {
        let dir = std::env::temp_dir().join(format!(
            "omq-engine-tier-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || EngineConfig {
            threads: 1,
            cache_dir: Some(dir.clone()),
            ..EngineConfig::default()
        };
        let batch = || {
            vec![
                req(&register_line("a")),
                req(r#"{"id":1,"op":"contains","lhs":"a","rhs":"a"}"#),
            ]
        };
        let cold = Engine::new(cfg());
        let cold_out = cold.execute_batch(&batch());
        let stored = cold.disk_stats().expect("disk tier is configured");
        assert!(
            stored.stores >= 1,
            "cold run persists artifacts: {stored:?}"
        );
        assert_eq!(stored.hits, 0);

        let warm = Engine::new(cfg());
        let warm_out = warm.execute_batch(&batch());
        let loaded = warm.disk_stats().expect("disk tier is configured");
        assert!(loaded.hits >= 1, "restart answers from disk: {loaded:?}");
        assert_eq!(
            crate::protocol::response_to_json(&cold_out[1]).to_string(),
            crate::protocol::response_to_json(&warm_out[1]).to_string(),
            "disk-served bytes match freshly computed bytes"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Consecutive retracts on one name share a single DRed cone pass;
    /// responses match what per-call execution produces for the final
    /// state, and the batch counters show the reuse.
    #[test]
    fn consecutive_retracts_share_one_cone_pass() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let batch = vec![
            req(&register_line("a")),
            req(r#"{"op":"assert","name":"a","facts":["P(c1)","P(c2)","P(c3)"]}"#),
            // A store-backed evaluate materializes the maintained
            // fixpoint — the thing the shared cone pass maintains.
            req(r#"{"op":"evaluate","name":"a","facts":[]}"#),
            req(r#"{"id":1,"op":"retract","name":"a","facts":["P(c1)"]}"#),
            req(r#"{"id":2,"op":"retract","name":"a","facts":["P(c2)"]}"#),
            req(r#"{"id":3,"op":"stats"}"#),
        ];
        let out = eng.execute_batch(&batch);
        assert!(out.iter().all(|r| r.outcome.is_ok()), "{out:?}");
        let v1 = Json::Obj(out[3].outcome.as_ref().unwrap().clone());
        let v2 = Json::Obj(out[4].outcome.as_ref().unwrap().clone());
        assert_eq!(v1.get("version").and_then(Json::as_u64), Some(2));
        assert_eq!(v2.get("version").and_then(Json::as_u64), Some(3));
        let stats = Json::Obj(out[5].outcome.as_ref().unwrap().clone());
        let store = stats.get("store").expect("store block");
        assert_eq!(store.get("retracts").and_then(Json::as_u64), Some(2));
        assert_eq!(store.get("cone_batches").and_then(Json::as_u64), Some(1));
        assert_eq!(store.get("cone_reuses").and_then(Json::as_u64), Some(1));
    }

    /// The retract run must answer like sequential execution: same
    /// versions, same facts counts, errors in place.
    #[test]
    fn retract_run_matches_sequential_semantics() {
        let lines = [
            r#"{"op":"assert","name":"a","facts":["P(c1)","P(c2)"]}"#,
            r#"{"id":1,"op":"retract","name":"a","facts":["P(c1)"]}"#,
            r#"{"id":2,"op":"retract","name":"a","facts":["P(X)"]}"#,
            r#"{"id":3,"op":"retract","name":"a","facts":["P(c2)"]}"#,
        ];
        let run = |batched: bool| {
            let eng = Engine::new(EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            });
            let mut batch = vec![req(&register_line("a"))];
            if batched {
                batch.extend(lines.iter().map(|l| req(l)));
                let out = eng.execute_batch(&batch);
                out[2..]
                    .iter()
                    .map(|r| r.outcome.clone())
                    .collect::<Vec<_>>()
            } else {
                // One batch per request: no run forms, the per-call path
                // answers.
                let mut outs = Vec::new();
                let out = eng.execute_batch(&batch);
                assert!(out[0].outcome.is_ok());
                for l in &lines {
                    outs.push(eng.execute_batch(&[req(l)])[0].outcome.clone());
                }
                let _ = outs.remove(0);
                outs
            }
        };
        let batched = run(true);
        let sequential = run(false);
        assert_eq!(batched.len(), sequential.len());
        assert!(
            matches!(batched[1], Err(ServeError::BadRequest(_))),
            "non-ground retract fails in place: {:?}",
            batched[1]
        );
        for (b, s) in batched.iter().zip(&sequential) {
            match (b, s) {
                (Ok(bf), Ok(sf)) => {
                    let get = |fields: &Vec<(String, Json)>, k: &str| {
                        Json::Obj(fields.clone()).get(k).map(|v| v.to_string())
                    };
                    for k in ["retracted", "version", "facts", "complete"] {
                        assert_eq!(get(bf, k), get(sf, k), "field {k}");
                    }
                }
                (Err(be), Err(se)) => assert_eq!(be.kind(), se.kind()),
                other => panic!("outcome shape diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn alias_hits_are_counted_distinctly() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let batch = vec![
            req(&register_line("a")),
            req(&register_line("b")), // identical program: alias of "a"
            req(r#"{"id":1,"op":"contains","lhs":"a","rhs":"a"}"#),
            req(r#"{"id":2,"op":"contains","lhs":"b","rhs":"b"}"#),
            req(r#"{"id":3,"op":"contains","lhs":"a","rhs":"a"}"#),
        ];
        let out = eng.execute_batch(&batch);
        assert_eq!(out[2].outcome, out[3].outcome);
        let (_, vd, _) = eng.cache_stats();
        assert_eq!(vd.insertions, 1);
        assert_eq!(vd.hits, 2, "alias and same-name hits both count as hits");
        assert_eq!(
            vd.alias_hits, 1,
            "only the alias-name probe is an alias hit"
        );
    }

    /// The encoding artifact of a guarded lhs is compiled once per
    /// canonical key: a second `contains` with the same lhs (any rhs)
    /// probes the encoding cache instead of rebuilding the automaton, and
    /// the response bytes are identical either way.
    #[test]
    fn warm_guarded_contains_hits_the_encoding_cache() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let guarded = r#"{"op":"register","name":"g","program":"G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\nq :- R(X,Y), R(Y,Z)","schema":["G","R"],"query":"q"}"#;
        let r1 = r#"{"op":"register","name":"r1","program":"q :- R(X,Y)","schema":["G","R"],"query":"q"}"#;
        let r2 = r#"{"op":"register","name":"r2","program":"q :- G(X,Y,Z)","schema":["G","R"],"query":"q"}"#;
        let batch = vec![
            req(guarded),
            req(r1),
            req(r2),
            req(r#"{"id":1,"op":"contains","lhs":"g","rhs":"r1"}"#),
            req(r#"{"id":2,"op":"contains","lhs":"g","rhs":"r2"}"#),
            req(r#"{"id":3,"op":"stats"}"#),
        ];
        let out = eng.execute_batch(&batch);
        assert!(out.iter().all(|r| r.outcome.is_ok()));
        let f1 = Json::Obj(out[3].outcome.as_ref().unwrap().clone());
        let f2 = Json::Obj(out[4].outcome.as_ref().unwrap().clone());
        let e1 = f1.get("guarded_encoding").expect("artifact on cold call");
        let e2 = f2.get("guarded_encoding").expect("artifact on warm call");
        assert_eq!(
            e1.to_string(),
            e2.to_string(),
            "cache state must not change the rendered artifact"
        );
        assert_eq!(e1.get("consistent"), Some(&Json::Bool(true)));
        assert_eq!(e1.get("nonempty"), Some(&Json::Bool(true)));
        let (_, _, enc) = eng.cache_stats();
        assert_eq!(enc.insertions, 1, "compiled exactly once");
        assert_eq!(enc.hits, 1, "warm lhs probe hits");
        let stats = Json::Obj(out[5].outcome.as_ref().unwrap().clone());
        assert_eq!(
            stats.get("encoding_cache_hits").and_then(Json::as_u64),
            Some(1)
        );
    }

    /// Non-guarded left-hand sides never touch the encoding cache.
    #[test]
    fn linear_contains_skips_the_encoding_cache() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let batch = vec![
            req(&register_line("a")),
            req(r#"{"id":1,"op":"contains","lhs":"a","rhs":"a"}"#),
        ];
        let out = eng.execute_batch(&batch);
        assert!(out.iter().all(|r| r.outcome.is_ok()));
        let fields = Json::Obj(out[1].outcome.as_ref().unwrap().clone());
        assert!(fields.get("guarded_encoding").is_none());
        let (_, _, enc) = eng.cache_stats();
        assert_eq!(enc.hits + enc.misses + enc.insertions, 0, "untouched");
    }

    #[test]
    fn bad_facts_and_unknown_names_fail_cleanly() {
        let eng = Engine::new(EngineConfig::default());
        let batch = vec![
            req(&register_line("a")),
            req(r#"{"id":1,"op":"evaluate","name":"a","facts":["P(X)"]}"#),
            req(r#"{"id":2,"op":"contains","lhs":"a","rhs":"ghost"}"#),
        ];
        let out = eng.execute_batch(&batch);
        assert!(matches!(out[1].outcome, Err(ServeError::BadRequest(_))));
        assert!(matches!(out[2].outcome, Err(ServeError::UnknownName(_))));
    }
}
