//! `omq-serve`: a concurrent serving layer for ontology-mediated queries.
//!
//! Wraps the solver stack (`omq-core` containment and evaluation,
//! `omq-rewrite` XRewrite) in a long-lived server: ontologies and OMQs are
//! registered once under canonical keys, requests arrive as JSON lines
//! (stdin/stdout or TCP), batches are scheduled across a bounded worker
//! pool, per-request deadlines cancel work cooperatively mid-round, and two
//! LRU caches (rewrite artifacts, containment verdicts) make repeated
//! questions cheap.
//!
//! Layering:
//!
//! * [`json`] — dependency-free JSON parsing/printing (ordered objects, so
//!   responses are byte-deterministic);
//! * [`key`] — canonical, alpha-invariant cache keys for OMQs and rewrite
//!   configurations;
//! * [`cache`] — an LRU with hit/miss/eviction accounting;
//! * [`registry`] — named OMQs over one shared vocabulary;
//! * [`protocol`] — request/response schema;
//! * [`tier`] — the portable (vocabulary-independent) artifact form and
//!   the persisted disk tier behind the in-memory artifact LRU;
//! * [`engine`] — scheduling, deadlines, caching, coalescing, solver
//!   dispatch;
//! * [`shard`] — canonical-key-hash sharding across N engines;
//! * [`admission`] — queue-depth admission control (load shedding);
//! * [`server`] — stream and (thread-per-connection) TCP transports;
//! * [`reactor`] — the nonblocking, readiness-polled TCP front end.

pub mod admission;
pub mod cache;
pub mod engine;
pub mod error;
pub mod json;
pub mod key;
pub mod protocol;
pub mod reactor;
pub mod registry;
pub mod server;
pub mod shard;
pub mod tier;

pub use admission::Admission;
pub use cache::{CacheStats, LruCache};
pub use engine::{Engine, EngineConfig};
pub use error::ServeError;
pub use json::Json;
pub use key::{OmqKey, RewriteCfgKey};
pub use protocol::{parse_request, response_to_json, Op, Request, Response};
pub use reactor::{serve_reactor, spawn_metrics_exporter, ReactorConfig, RuntimeStats, StallWatch};
pub use registry::{RegisterInfo, Registered, Registry};
pub use server::{serve_lines, serve_tcp, BatchExecutor};
pub use shard::ShardedEngine;
pub use tier::{DiskTier, DiskTierStats, PortableArtifact};
