//! Transport: JSON-lines over any `BufRead`/`Write` pair (stdin/stdout
//! batch mode) and over TCP (one connection per client, one thread per
//! connection — compute is bounded by the engine's worker pool either way).
//! For the nonblocking, connection-multiplexed TCP front end see
//! [`crate::reactor`].
//!
//! Every transport talks to its back end through [`BatchExecutor`], so a
//! single [`crate::engine::Engine`] and a [`crate::shard::ShardedEngine`]
//! plug in interchangeably.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use crate::engine::Engine;
use crate::protocol::{parse_request, response_to_json, Request, Response};

/// Anything that can answer one parsed batch, in order. Items that already
/// failed at the protocol layer pass through as-is.
pub trait BatchExecutor: Send + Sync {
    fn execute_batch(&self, items: &[Result<Request, Box<Response>>]) -> Vec<Response>;

    /// Prometheus text exposition for this executor, if it has a metrics
    /// plane (see [`crate::reactor::spawn_metrics_exporter`]). The default
    /// is `None`: the exporter answers 404 rather than inventing an empty
    /// scrape.
    fn render_metrics(&self) -> Option<String> {
        None
    }
}

impl BatchExecutor for Engine {
    fn execute_batch(&self, items: &[Result<Request, Box<Response>>]) -> Vec<Response> {
        Engine::execute_batch(self, items)
    }

    fn render_metrics(&self) -> Option<String> {
        Some(self.metrics_text())
    }
}

/// Serves one stream: lines accumulate into a batch, a blank line (or EOF)
/// executes it and writes one response line per request, in order.
pub fn serve_lines<E: BatchExecutor + ?Sized, R: BufRead, W: Write>(
    engine: &E,
    reader: R,
    mut writer: W,
) -> io::Result<()> {
    let mut batch: Vec<Result<Request, Box<Response>>> = Vec::new();
    let flush =
        |batch: &mut Vec<Result<Request, Box<Response>>>, writer: &mut W| -> io::Result<()> {
            if batch.is_empty() {
                return Ok(());
            }
            let responses = engine.execute_batch(batch);
            batch.clear();
            for resp in &responses {
                writeln!(writer, "{}", response_to_json(resp))?;
            }
            writer.flush()
        };
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            flush(&mut batch, &mut writer)?;
        } else {
            batch.push(parse_request(&line));
        }
    }
    flush(&mut batch, &mut writer)
}

/// Accept loop: serves each TCP connection on its own thread until the
/// listener errors out. Never returns under normal operation.
pub fn serve_tcp<E: BatchExecutor + 'static>(
    engine: Arc<E>,
    listener: TcpListener,
) -> io::Result<()> {
    for conn in listener.incoming() {
        let stream: TcpStream = conn?;
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            // Connection I/O errors end that connection only.
            let _ = serve_lines(&*engine, reader, stream);
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    const BATCH: &str = concat!(
        r#"{"id":1,"op":"register","name":"a","program":"P(X) -> R(X)\nq(X) :- R(X)","schema":["P"],"query":"q"}"#,
        "\n",
        r#"{"id":2,"op":"contains","lhs":"a","rhs":"a"}"#,
        "\n\n",
        r#"{"id":3,"op":"classify","name":"a"}"#,
        "\n",
    );

    #[test]
    fn stdin_style_round_trip() {
        let engine = Engine::new(EngineConfig::default());
        let mut out = Vec::new();
        serve_lines(&engine, BATCH.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""ok":true"#) && lines[0].contains("registered"));
        assert!(lines[1].contains(r#""verdict":"contained""#));
        assert!(lines[2].contains(r#""language":"#));
    }

    #[test]
    fn tcp_round_trip() {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = Arc::clone(&engine);
        std::thread::spawn(move || serve_tcp(server, listener));
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(BATCH.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut text = String::new();
        BufReader::new(stream).read_to_string(&mut text).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains(r#""verdict":"contained""#));
    }

    use std::io::Read;
}
