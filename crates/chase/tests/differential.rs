//! Randomized differential test: the semi-naive delta chase must agree with
//! a naive (full re-enumeration) reference implementation on hundreds of
//! generated programs.
//!
//! The reference chase below re-enumerates every trigger of every tgd on
//! every round, deduplicating fired triggers with plain `(tgd, image)` keys
//! — deliberately sharing nothing with the production engine's generation
//! watermarks, delta pivoting, or 64-bit fingerprints.
//!
//! Comparison discipline per generated shape:
//!
//! * **full (Datalog)** programs, restricted variant: the chase is a
//!   confluent least fixpoint, so the atom *sets* must match exactly.
//! * **linear / guarded** programs with existentials, oblivious variant with
//!   a null-depth budget: the set of fired triggers (all triggers of null
//!   depth within budget) is order-independent, so the results must match up
//!   to null renaming — equal per-predicate counts, equal step counts, and
//!   mutual homomorphisms with nulls read as variables.

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use omq_chase::{chase, find_hom, for_each_hom, Assignment, ChaseConfig, ChaseVariant};
use omq_model::rng::SplitMix64;
use omq_model::{Atom, ConstId, Instance, NullId, PredId, Term, Tgd, VarId, Vocabulary};

// ---------------------------------------------------------------------------
// Naive reference chase
// ---------------------------------------------------------------------------

struct Naive {
    inst: Instance,
    fired: HashSet<(usize, Vec<Term>)>,
    depth: HashMap<NullId, usize>,
    steps: usize,
    truncated: bool,
}

fn naive_fire(
    st: &mut Naive,
    sigma: &[Tgd],
    voc: &mut Vocabulary,
    cfg: &ChaseConfig,
    ti: usize,
    h: &Assignment,
) {
    let tgd = &sigma[ti];
    let key: Vec<Term> = tgd
        .body_vars()
        .iter()
        .map(|v| h.get(v).copied().unwrap_or(Term::Var(*v)))
        .collect();
    match cfg.variant {
        ChaseVariant::Oblivious => {
            if st.fired.contains(&(ti, key.clone())) {
                return;
            }
        }
        ChaseVariant::Restricted => {
            let mut seed = Assignment::new();
            for v in tgd.frontier() {
                if let Some(&t) = h.get(&v) {
                    seed.insert(v, t);
                }
            }
            if find_hom(&tgd.head, &st.inst, &seed).is_some() {
                return;
            }
        }
    }
    let base = key
        .iter()
        .map(|&t| match t {
            Term::Null(n) => st.depth.get(&n).copied().unwrap_or(0),
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    let new_depth = base + 1;
    if !tgd.existential_vars().is_empty() {
        if let Some(max) = cfg.max_depth {
            if new_depth > max {
                st.truncated = true;
                return;
            }
        }
    }
    let mut ext = h.clone();
    for z in tgd.existential_vars() {
        let n = voc.fresh_null();
        st.depth.insert(n, new_depth);
        ext.insert(z, Term::Null(n));
    }
    for atom in &tgd.head {
        let img = atom.map_terms(|t| match t {
            Term::Var(v) => ext.get(&v).copied().unwrap_or(t),
            other => other,
        });
        st.inst.insert(img);
    }
    if cfg.variant == ChaseVariant::Oblivious {
        st.fired.insert((ti, key));
    }
    st.steps += 1;
}

/// Round-based naive chase: every round re-enumerates all triggers of every
/// tgd over the whole instance. Returns `(instance, steps, complete)`.
fn naive_chase(
    db: &Instance,
    sigma: &[Tgd],
    voc: &mut Vocabulary,
    cfg: &ChaseConfig,
) -> (Instance, usize, bool) {
    let mut st = Naive {
        inst: db.clone(),
        fired: HashSet::new(),
        depth: HashMap::new(),
        steps: 0,
        truncated: false,
    };
    loop {
        let before = st.inst.len();
        for (ti, tgd) in sigma.iter().enumerate() {
            let mut triggers: Vec<Assignment> = Vec::new();
            let _ = for_each_hom(&tgd.body, &st.inst, &Assignment::new(), |h| {
                triggers.push(h.clone());
                ControlFlow::<()>::Continue(())
            });
            for h in triggers {
                if st.steps >= cfg.max_steps {
                    return (st.inst, st.steps, false);
                }
                naive_fire(&mut st, sigma, voc, cfg, ti, &h);
            }
        }
        if st.inst.len() == before {
            return (st.inst, st.steps, !st.truncated);
        }
    }
}

// ---------------------------------------------------------------------------
// Program generator (SplitMix64-driven, no external crates)
// ---------------------------------------------------------------------------

const LINEAR: usize = 0;
const FULL: usize = 1;
// Any other shape value generates guarded programs.

fn gen_case(rng: &mut SplitMix64, shape: usize) -> (Vec<Tgd>, Instance, Vocabulary) {
    let mut voc = Vocabulary::new();
    let preds: Vec<PredId> = (0..rng.range(3..6))
        .map(|i| {
            let arity = rng.range(1..4);
            voc.pred(&format!("P{i}"), arity)
        })
        .collect();
    let consts: Vec<ConstId> = (0..3).map(|i| voc.constant(&format!("c{i}"))).collect();

    let mut db = Instance::new();
    for _ in 0..rng.range(3..7) {
        let p = preds[rng.below(preds.len())];
        let args: Vec<Term> = (0..voc.arity(p))
            .map(|_| Term::Const(consts[rng.below(consts.len())]))
            .collect();
        db.insert(Atom::new(p, args));
    }

    let ntgds = rng.range(2..5);
    let mut sigma = Vec::new();
    for t in 0..ntgds {
        let pool: Vec<VarId> = (0..3).map(|j| voc.var(&format!("V{t}_{j}"))).collect();
        let tgd = match shape {
            LINEAR => {
                let p = preds[rng.below(preds.len())];
                let args: Vec<Term> = (0..voc.arity(p))
                    .map(|_| Term::Var(pool[rng.below(pool.len())]))
                    .collect();
                let body = vec![Atom::new(p, args.clone())];
                let body_vars: Vec<VarId> = args
                    .iter()
                    .filter_map(|t| match t {
                        Term::Var(v) => Some(*v),
                        _ => None,
                    })
                    .collect();
                let head = head_atom(rng, &mut voc, &preds, &consts, &body_vars, true, t);
                Tgd::new(body, vec![head])
            }
            FULL => {
                let natoms = rng.range(1..4);
                let mut body = Vec::new();
                for _ in 0..natoms {
                    let p = preds[rng.below(preds.len())];
                    let args: Vec<Term> = (0..voc.arity(p))
                        .map(|_| {
                            if rng.chance(1, 6) {
                                Term::Const(consts[rng.below(consts.len())])
                            } else {
                                Term::Var(pool[rng.below(pool.len())])
                            }
                        })
                        .collect();
                    body.push(Atom::new(p, args));
                }
                let body_vars: Vec<VarId> = body
                    .iter()
                    .flat_map(Atom::vars)
                    .collect::<HashSet<_>>()
                    .into_iter()
                    .collect();
                let head = head_atom(rng, &mut voc, &preds, &consts, &body_vars, false, t);
                Tgd::new(body, vec![head])
            }
            _ => {
                // Guard atom holding every body variable, plus side atoms
                // over subsets of the guard's variables.
                let guard_pred = preds[rng.below(preds.len())];
                let ga = voc.arity(guard_pred);
                let gvars: Vec<VarId> = pool[..ga.min(pool.len())].to_vec();
                let gargs: Vec<Term> = (0..ga).map(|k| Term::Var(gvars[k % gvars.len()])).collect();
                let mut body = vec![Atom::new(guard_pred, gargs)];
                for _ in 0..rng.range(0..3) {
                    let p = preds[rng.below(preds.len())];
                    let args: Vec<Term> = (0..voc.arity(p))
                        .map(|_| {
                            if rng.chance(1, 6) {
                                Term::Const(consts[rng.below(consts.len())])
                            } else {
                                Term::Var(gvars[rng.below(gvars.len())])
                            }
                        })
                        .collect();
                    body.push(Atom::new(p, args));
                }
                let head = head_atom(rng, &mut voc, &preds, &consts, &gvars, true, t);
                Tgd::new(body, vec![head])
            }
        };
        sigma.push(tgd);
    }
    (sigma, db, voc)
}

fn head_atom(
    rng: &mut SplitMix64,
    voc: &mut Vocabulary,
    preds: &[PredId],
    consts: &[ConstId],
    body_vars: &[VarId],
    allow_existential: bool,
    t: usize,
) -> Atom {
    let p = preds[rng.below(preds.len())];
    let mut existential = None;
    let args: Vec<Term> = (0..voc.arity(p))
        .map(|k| {
            if allow_existential && rng.chance(1, 4) {
                let z = *existential.get_or_insert_with(|| voc.var(&format!("Z{t}_{k}")));
                Term::Var(z)
            } else if body_vars.is_empty() || rng.chance(1, 8) {
                Term::Const(consts[rng.below(consts.len())])
            } else {
                Term::Var(body_vars[rng.below(body_vars.len())])
            }
        })
        .collect();
    Atom::new(p, args)
}

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

fn sorted_atoms(inst: &Instance) -> Vec<Atom> {
    let mut v = inst.atoms().to_vec();
    v.sort();
    v
}

fn pred_counts(inst: &Instance) -> HashMap<PredId, usize> {
    let mut m = HashMap::new();
    for a in inst.atoms() {
        *m.entry(a.pred).or_insert(0) += 1;
    }
    m
}

/// Reads `from`'s atoms as a pattern (each null becomes a variable) and asks
/// whether the pattern maps homomorphically into `into`.
fn maps_into(from: &Instance, into: &Instance, voc: &mut Vocabulary) -> bool {
    let mut renaming: HashMap<NullId, VarId> = HashMap::new();
    let pattern: Vec<Atom> = from
        .atoms()
        .iter()
        .map(|a| {
            a.map_terms(|t| match t {
                Term::Null(n) => {
                    Term::Var(*renaming.entry(n).or_insert_with(|| voc.fresh_var("null")))
                }
                other => other,
            })
        })
        .collect();
    find_hom(&pattern, into, &Assignment::new()).is_some()
}

// ---------------------------------------------------------------------------
// The differential test
// ---------------------------------------------------------------------------

const CASES: u64 = 240;
/// Skip the (expensive) mutual-homomorphism check above this instance size;
/// the per-predicate count and step-count checks still apply.
const HOM_CHECK_MAX_ATOMS: usize = 80;

#[test]
fn semi_naive_chase_matches_naive_reference() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0dde_ca5e_0001);
    let mut compared_full = 0usize;
    let mut compared_existential = 0usize;

    for case in 0..CASES {
        let shape = (case % 3) as usize;
        let (sigma, db, voc) = gen_case(&mut rng, shape);
        let cfg = if shape == FULL {
            ChaseConfig {
                variant: ChaseVariant::Restricted,
                max_steps: 50_000,
                max_depth: None,
                ..Default::default()
            }
        } else {
            ChaseConfig {
                variant: ChaseVariant::Oblivious,
                max_steps: 50_000,
                max_depth: Some(2),
                ..Default::default()
            }
        };

        let mut voc_semi = voc.clone();
        let out = chase(&db, &sigma, &mut voc_semi, &cfg);
        let mut voc_naive = voc.clone();
        let (ninst, nsteps, ncomplete) = naive_chase(&db, &sigma, &mut voc_naive, &cfg);

        // Step-budget truncation cuts the two runs at different points of
        // the same round, so only depth-truncated or complete runs are
        // content-comparable; none of the generated cases should come close
        // to the 50k-step budget.
        assert!(
            out.steps < cfg.max_steps && nsteps < cfg.max_steps,
            "case {case}: step budget hit (semi={}, naive={nsteps})",
            out.steps
        );

        if shape == FULL {
            assert!(
                out.complete && ncomplete,
                "case {case}: full chase must finish"
            );
            assert_eq!(
                sorted_atoms(&out.instance),
                sorted_atoms(&ninst),
                "case {case}: Datalog atom sets differ\nsigma: {sigma:?}\ndb: {db:?}"
            );
            assert_eq!(out.steps, nsteps, "case {case}: step counts differ");
            compared_full += 1;
        } else {
            assert_eq!(
                out.complete, ncomplete,
                "case {case}: completeness flags differ"
            );
            assert_eq!(
                pred_counts(&out.instance),
                pred_counts(&ninst),
                "case {case}: per-predicate counts differ\nsigma: {sigma:?}\ndb: {db:?}"
            );
            assert_eq!(out.steps, nsteps, "case {case}: step counts differ");
            if out.instance.len() <= HOM_CHECK_MAX_ATOMS {
                let mut voc_h = voc_semi.clone();
                assert!(
                    maps_into(&out.instance, &ninst, &mut voc_h),
                    "case {case}: semi-naive result does not map into naive result"
                );
                let mut voc_h = voc_naive.clone();
                assert!(
                    maps_into(&ninst, &out.instance, &mut voc_h),
                    "case {case}: naive result does not map into semi-naive result"
                );
            }
            compared_existential += 1;
        }
    }

    assert!(
        compared_full >= 80,
        "too few Datalog comparisons: {compared_full}"
    );
    assert!(
        compared_existential >= 160,
        "too few existential comparisons: {compared_existential}"
    );
}
