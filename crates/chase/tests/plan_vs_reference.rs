//! Property test for the compiled homomorphism kernel: on randomized
//! CQs/instances, plan execution (through the legacy `for_each_hom` /
//! `for_each_hom_with_delta` wrappers, which compile a plan per call) must
//! agree with the pre-refactor backtracking search kept verbatim in
//! `omq_chase::hom::reference` — same existence verdict, same full
//! enumeration, in the same order, with the same work counters.

use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::Arc;

use omq_chase::hom::{reference, REOPT_FACTOR, REOPT_FLOOR};
use omq_chase::{
    for_each_hom, for_each_hom_with_delta, Assignment, HomStats, HomView, JoinPlan, PlanCache,
};
use omq_model::rng::SplitMix64;
use omq_model::{Atom, ConstId, Instance, PredId, Term, VarId};

const CASES: usize = 400;

/// One random schema: predicate arities, indexable by `PredId`.
fn gen_arities(rng: &mut SplitMix64) -> Vec<usize> {
    (0..rng.range(1..4)).map(|_| rng.range(1..4)).collect()
}

fn gen_instance(rng: &mut SplitMix64, arities: &[usize]) -> Instance {
    let mut inst = Instance::new();
    for _ in 0..rng.range(0..14) {
        let p = rng.below(arities.len());
        let args = (0..arities[p])
            .map(|_| Term::Const(ConstId(rng.below(5) as u32)))
            .collect();
        inst.insert(Atom::new(PredId(p as u32), args));
    }
    inst
}

fn gen_body(rng: &mut SplitMix64, arities: &[usize]) -> Vec<Atom> {
    (0..rng.range(1..6))
        .map(|_| {
            let p = rng.below(arities.len());
            let args = (0..arities[p])
                .map(|_| {
                    if rng.chance(3, 4) {
                        Term::Var(VarId(rng.below(4) as u32))
                    } else {
                        Term::Const(ConstId(rng.below(5) as u32))
                    }
                })
                .collect();
            Atom::new(PredId(p as u32), args)
        })
        .collect()
}

/// A random partial seed over the body's variables.
fn gen_seed(rng: &mut SplitMix64, body: &[Atom]) -> Assignment {
    let mut vars: Vec<VarId> = body.iter().flat_map(|a| a.vars()).collect();
    vars.sort_unstable();
    vars.dedup();
    let mut seed = Assignment::new();
    for v in vars {
        if rng.chance(1, 4) {
            seed.insert(v, Term::Const(ConstId(rng.below(5) as u32)));
        }
    }
    seed
}

/// Materializes an assignment as a sorted pair list for comparison.
fn canon(h: &Assignment) -> Vec<(VarId, Term)> {
    let mut v: Vec<(VarId, Term)> = h.iter().map(|(&k, &t)| (k, t)).collect();
    v.sort_unstable();
    v
}

#[test]
fn compiled_plans_agree_with_reference_kernel() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0000_c0de_0004);
    let mut nonempty = 0usize;
    let mut delta_runs = 0usize;
    for case in 0..CASES {
        let arities = gen_arities(&mut rng);
        let inst = gen_instance(&mut rng, &arities);
        let body = gen_body(&mut rng, &arities);
        let seed = gen_seed(&mut rng, &body);

        // Full enumeration, in order.
        let mut got: Vec<Vec<(VarId, Term)>> = Vec::new();
        let _ = for_each_hom(&body, &inst, &seed, |h| {
            got.push(canon(h));
            ControlFlow::<()>::Continue(())
        });
        let mut want: Vec<Vec<(VarId, Term)>> = Vec::new();
        let _ = reference::for_each_hom(&body, &inst, &seed, |h| {
            want.push(canon(h));
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(got, want, "case {case}: enumeration diverged");
        if !got.is_empty() {
            nonempty += 1;
        }

        // Existence (first-hit short circuit) must agree with enumeration.
        let found = omq_chase::find_hom(&body, &inst, &seed).is_some();
        assert_eq!(found, !want.is_empty(), "case {case}: existence diverged");

        // Delta-restricted enumeration: same homs, same order, same
        // candidates/backtracks counters as the reference pivot loop.
        let delta_start = rng.below(inst.len() + 2);
        let mut got_d: Vec<Vec<(VarId, Term)>> = Vec::new();
        let mut stats_d = HomStats::default();
        let _ = for_each_hom_with_delta(&body, &inst, &seed, delta_start, &mut stats_d, |h| {
            got_d.push(canon(h));
            ControlFlow::<()>::Continue(())
        });
        let mut want_d: Vec<Vec<(VarId, Term)>> = Vec::new();
        let mut stats_r = HomStats::default();
        let _ = reference::for_each_hom_with_delta(
            &body,
            &inst,
            &seed,
            delta_start,
            &mut stats_r,
            |h| {
                want_d.push(canon(h));
                ControlFlow::<()>::Continue(())
            },
        );
        assert_eq!(got_d, want_d, "case {case}: delta enumeration diverged");
        assert_eq!(
            (stats_d.candidates_scanned, stats_d.backtracks),
            (stats_r.candidates_scanned, stats_r.backtracks),
            "case {case}: delta work counters diverged"
        );
        if !got_d.is_empty() {
            delta_runs += 1;
        }

        // The delta homs are exactly the full homs that touch the delta:
        // sanity-check subset-ness against the full enumeration.
        let full: HashMap<Vec<(VarId, Term)>, usize> =
            want.iter().cloned().map(|h| (h, 0)).collect();
        for h in &got_d {
            assert!(
                delta_start == 0 || full.contains_key(h),
                "case {case}: delta hom not among full homs"
            );
        }
    }
    // The generator must actually exercise the kernel, not just vacuous
    // empty matches.
    assert!(nonempty >= CASES / 10, "only {nonempty} non-empty cases");
    assert!(delta_runs >= CASES / 20, "only {delta_runs} delta matches");
}

// ---------------------------------------------------------------------------
// Cost-model fixtures (adaptive planner): on skewed, empty, and single-fact
// predicate shapes the costed order must never scan more candidates than the
// statically pinned greedy order, while enumerating the same answer set.
// ---------------------------------------------------------------------------

fn unary(p: u32, c: u32) -> Atom {
    Atom::new(PredId(p), vec![Term::Const(ConstId(c))])
}

/// A complete hom rendered as a sorted `(var, value)` list via the plan's
/// slot layout (comparable across plans with different join orders).
fn canon_view(plan: &JoinPlan, h: &HomView) -> Vec<(VarId, Term)> {
    let mut v: Vec<(VarId, Term)> = plan
        .slots()
        .iter()
        .enumerate()
        .map(|(s, &var)| (var, h.slot(s).expect("complete hom binds all slots")))
        .collect();
    v.sort_unstable();
    v
}

/// Runs an unseeded `plan`, returning the sorted answer set and the
/// candidates-scanned counter.
fn run_plan(plan: &JoinPlan, inst: &Instance) -> (Vec<Vec<(VarId, Term)>>, u64) {
    let mut stats = HomStats::default();
    let mut homs = Vec::new();
    let _ = plan.execute(inst, &[], None, &mut stats, |h| {
        homs.push(canon_view(plan, h));
        ControlFlow::<()>::Continue(())
    });
    homs.sort();
    (homs, stats.candidates_scanned)
}

/// Compiles `body` both ways, checks answer-set equality and the
/// no-more-candidates invariant, and returns `(costed, greedy)` scan counts
/// so fixtures can additionally assert a strict win.
fn assert_costed_no_worse(body: &[Atom], inst: &Instance) -> (u64, u64) {
    let greedy = JoinPlan::compile(body, &[], None);
    let costed = JoinPlan::compile_costed(body, &[], None, &inst.card_sketch());
    let (homs_g, cands_g) = run_plan(&greedy, inst);
    let (homs_c, cands_c) = run_plan(&costed, inst);
    assert_eq!(homs_c, homs_g, "costed plan changed the answer set");
    assert!(
        cands_c <= cands_g,
        "costed plan scanned more candidates ({cands_c}) than greedy ({cands_g})"
    );
    (cands_c, cands_g)
}

#[test]
fn costed_order_beats_greedy_on_skewed_sizes() {
    let (big, small) = (0u32, 1u32);
    let mut inst = Instance::new();
    for c in 0..400 {
        inst.insert(unary(big, c));
    }
    inst.insert(unary(small, 0));
    inst.insert(unary(small, 1));
    let x = Term::Var(VarId(0));
    let body = vec![
        Atom::new(PredId(big), vec![x]),
        Atom::new(PredId(small), vec![x]),
    ];
    // Greedy ties on (bound, unbound) counts and keeps atom order — Big
    // first, ~400 scans. The sketch starts from Small's 2 rows instead.
    let (c, g) = assert_costed_no_worse(&body, &inst);
    assert!(
        c < g,
        "skewed fixture should reward the costed order ({c} vs {g})"
    );
}

#[test]
fn costed_order_starts_at_empty_predicates() {
    let (big, empty) = (0u32, 1u32);
    let mut inst = Instance::new();
    for c in 0..400 {
        inst.insert(unary(big, c));
    }
    let (x, y) = (Term::Var(VarId(0)), Term::Var(VarId(1)));
    let body = vec![
        Atom::new(PredId(big), vec![x]),
        Atom::new(PredId(empty), vec![x, y]),
    ];
    // Greedy prefers Big (one unbound var vs two); the sketch knows the
    // binary predicate has no rows and proves emptiness without a scan.
    let (c, g) = assert_costed_no_worse(&body, &inst);
    assert_eq!(
        c, 0,
        "empty-predicate body should scan nothing under the costed order"
    );
    assert!(g > 0, "greedy order should pay for the skew (got {g})");
}

#[test]
fn costed_order_pins_single_fact_predicates_first() {
    let (a, b) = (0u32, 1u32);
    let mut inst = Instance::new();
    let (x, y) = (Term::Var(VarId(0)), Term::Var(VarId(1)));
    inst.insert(Atom::new(
        PredId(a),
        vec![Term::Const(ConstId(0)), Term::Const(ConstId(1))],
    ));
    for c in 0..300 {
        inst.insert(unary(b, c));
    }
    let body = vec![
        Atom::new(PredId(a), vec![x, y]),
        Atom::new(PredId(b), vec![y]),
    ];
    // Greedy starts at B (fewer unbound vars) and scans all 300 rows; the
    // sketch starts at the single A fact and probes B bound on y.
    let (c, g) = assert_costed_no_worse(&body, &inst);
    assert!(
        c < g,
        "single-fact fixture should reward the costed order ({c} vs {g})"
    );
}

/// Randomized sweep: the costed order is a pure reordering — on arbitrary
/// bodies, instances, and partial seeds it must enumerate exactly the
/// reference kernel's answer set (order may differ, membership may not).
#[test]
fn costed_plans_agree_with_reference_on_random_cases() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0000_c0de_0005);
    let mut nonempty = 0usize;
    for case in 0..200 {
        let arities = gen_arities(&mut rng);
        let inst = gen_instance(&mut rng, &arities);
        let body = gen_body(&mut rng, &arities);
        let seed = gen_seed(&mut rng, &body);

        let seeded: Vec<VarId> = seed.keys().copied().collect();
        let plan = JoinPlan::compile_costed(&body, &seeded, None, &inst.card_sketch());
        let pairs: Vec<(VarId, Term)> = seed.iter().map(|(&v, &t)| (v, t)).collect();
        let seed_vals = plan
            .seed_values(&pairs)
            .expect("distinct vars cannot conflict");
        let mut got: Vec<Vec<(VarId, Term)>> = Vec::new();
        let mut stats = HomStats::default();
        let _ = plan.execute(&inst, &seed_vals, None, &mut stats, |h| {
            got.push(canon_view(&plan, h));
            ControlFlow::<()>::Continue(())
        });
        got.sort();

        let mut want: Vec<Vec<(VarId, Term)>> = Vec::new();
        let _ = reference::for_each_hom(&body, &inst, &seed, |h| {
            want.push(canon(h));
            ControlFlow::<()>::Continue(())
        });
        want.sort();
        assert_eq!(got, want, "case {case}: costed answer set diverged");
        if !got.is_empty() {
            nonempty += 1;
        }
    }
    assert!(nonempty >= 20, "only {nonempty} non-empty costed cases");
}

/// Re-optimization is a pure function of instance content and call order:
/// the same grow-then-probe sequence must produce the same replan decision,
/// the same estimate-quality buckets, and the same cache-hit counts on
/// every run.
#[test]
fn reoptimization_decision_is_deterministic() {
    let run = || {
        let x = Term::Var(VarId(0));
        let body = vec![Atom::new(PredId(0), vec![x])];
        let mut inst = Instance::new();
        inst.insert(unary(0, 0));

        let mut cache = PlanCache::new();
        let mut stats = HomStats::default();
        let plan = cache.get_or_compile_costed(&body, &[], None, &inst, &mut stats);
        assert_eq!(
            plan.predicted_cost(),
            Some(1),
            "one row, one predicted scan"
        );

        // Grow the relation far past the divergence allowance
        // (REOPT_FACTOR * REOPT_FLOOR candidates per execution).
        for c in 1..=(REOPT_FACTOR * REOPT_FLOOR * 2) as u32 {
            inst.insert(unary(0, c));
        }
        let mut exec = HomStats::default();
        let _ = plan.execute(&inst, &[], None, &mut exec, |_| {
            ControlFlow::<()>::Continue(())
        });
        cache.note_execution(&plan, exec.candidates_scanned, &mut stats);
        assert!(
            exec.candidates_scanned > REOPT_FACTOR * REOPT_FLOOR,
            "fixture must actually diverge"
        );

        // The next fetch sees observed >> predicted and replans against the
        // current sketch; the refreshed prediction matches the new reality.
        let replanned = cache.get_or_compile_costed(&body, &[], None, &inst, &mut stats);
        assert_eq!(
            stats.plans_reoptimized, 1,
            "divergence triggers exactly one replan"
        );
        assert!(
            !Arc::ptr_eq(&plan, &replanned),
            "replan produces a fresh plan"
        );
        assert_eq!(replanned.predicted_cost(), Some(exec.candidates_scanned));

        // With the prediction refreshed, the same workload no longer
        // diverges: the following fetch is a plain cache hit.
        let mut exec2 = HomStats::default();
        let _ = replanned.execute(&inst, &[], None, &mut exec2, |_| {
            ControlFlow::<()>::Continue(())
        });
        cache.note_execution(&replanned, exec2.candidates_scanned, &mut stats);
        let again = cache.get_or_compile_costed(&body, &[], None, &inst, &mut stats);
        assert!(Arc::ptr_eq(&replanned, &again), "refreshed plan is stable");
        assert_eq!(stats.plans_reoptimized, 1);

        (
            stats.plans_reoptimized,
            stats.est_ratio_le_1,
            stats.est_ratio_le_4,
            stats.est_ratio_gt_4,
            stats.plan_cache_hits,
            stats.plans_compiled,
        )
    };
    assert_eq!(
        run(),
        run(),
        "same data must produce the same replan decision"
    );
}
