//! Property test for the compiled homomorphism kernel: on randomized
//! CQs/instances, plan execution (through the legacy `for_each_hom` /
//! `for_each_hom_with_delta` wrappers, which compile a plan per call) must
//! agree with the pre-refactor backtracking search kept verbatim in
//! `omq_chase::hom::reference` — same existence verdict, same full
//! enumeration, in the same order, with the same work counters.

use std::collections::HashMap;
use std::ops::ControlFlow;

use omq_chase::hom::reference;
use omq_chase::{for_each_hom, for_each_hom_with_delta, Assignment, HomStats};
use omq_model::rng::SplitMix64;
use omq_model::{Atom, ConstId, Instance, PredId, Term, VarId};

const CASES: usize = 400;

/// One random schema: predicate arities, indexable by `PredId`.
fn gen_arities(rng: &mut SplitMix64) -> Vec<usize> {
    (0..rng.range(1..4)).map(|_| rng.range(1..4)).collect()
}

fn gen_instance(rng: &mut SplitMix64, arities: &[usize]) -> Instance {
    let mut inst = Instance::new();
    for _ in 0..rng.range(0..14) {
        let p = rng.below(arities.len());
        let args = (0..arities[p])
            .map(|_| Term::Const(ConstId(rng.below(5) as u32)))
            .collect();
        inst.insert(Atom::new(PredId(p as u32), args));
    }
    inst
}

fn gen_body(rng: &mut SplitMix64, arities: &[usize]) -> Vec<Atom> {
    (0..rng.range(1..6))
        .map(|_| {
            let p = rng.below(arities.len());
            let args = (0..arities[p])
                .map(|_| {
                    if rng.chance(3, 4) {
                        Term::Var(VarId(rng.below(4) as u32))
                    } else {
                        Term::Const(ConstId(rng.below(5) as u32))
                    }
                })
                .collect();
            Atom::new(PredId(p as u32), args)
        })
        .collect()
}

/// A random partial seed over the body's variables.
fn gen_seed(rng: &mut SplitMix64, body: &[Atom]) -> Assignment {
    let mut vars: Vec<VarId> = body.iter().flat_map(|a| a.vars()).collect();
    vars.sort_unstable();
    vars.dedup();
    let mut seed = Assignment::new();
    for v in vars {
        if rng.chance(1, 4) {
            seed.insert(v, Term::Const(ConstId(rng.below(5) as u32)));
        }
    }
    seed
}

/// Materializes an assignment as a sorted pair list for comparison.
fn canon(h: &Assignment) -> Vec<(VarId, Term)> {
    let mut v: Vec<(VarId, Term)> = h.iter().map(|(&k, &t)| (k, t)).collect();
    v.sort_unstable();
    v
}

#[test]
fn compiled_plans_agree_with_reference_kernel() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0000_c0de_0004);
    let mut nonempty = 0usize;
    let mut delta_runs = 0usize;
    for case in 0..CASES {
        let arities = gen_arities(&mut rng);
        let inst = gen_instance(&mut rng, &arities);
        let body = gen_body(&mut rng, &arities);
        let seed = gen_seed(&mut rng, &body);

        // Full enumeration, in order.
        let mut got: Vec<Vec<(VarId, Term)>> = Vec::new();
        let _ = for_each_hom(&body, &inst, &seed, |h| {
            got.push(canon(h));
            ControlFlow::<()>::Continue(())
        });
        let mut want: Vec<Vec<(VarId, Term)>> = Vec::new();
        let _ = reference::for_each_hom(&body, &inst, &seed, |h| {
            want.push(canon(h));
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(got, want, "case {case}: enumeration diverged");
        if !got.is_empty() {
            nonempty += 1;
        }

        // Existence (first-hit short circuit) must agree with enumeration.
        let found = omq_chase::find_hom(&body, &inst, &seed).is_some();
        assert_eq!(found, !want.is_empty(), "case {case}: existence diverged");

        // Delta-restricted enumeration: same homs, same order, same
        // candidates/backtracks counters as the reference pivot loop.
        let delta_start = rng.below(inst.len() + 2);
        let mut got_d: Vec<Vec<(VarId, Term)>> = Vec::new();
        let mut stats_d = HomStats::default();
        let _ = for_each_hom_with_delta(&body, &inst, &seed, delta_start, &mut stats_d, |h| {
            got_d.push(canon(h));
            ControlFlow::<()>::Continue(())
        });
        let mut want_d: Vec<Vec<(VarId, Term)>> = Vec::new();
        let mut stats_r = HomStats::default();
        let _ = reference::for_each_hom_with_delta(
            &body,
            &inst,
            &seed,
            delta_start,
            &mut stats_r,
            |h| {
                want_d.push(canon(h));
                ControlFlow::<()>::Continue(())
            },
        );
        assert_eq!(got_d, want_d, "case {case}: delta enumeration diverged");
        assert_eq!(
            (stats_d.candidates_scanned, stats_d.backtracks),
            (stats_r.candidates_scanned, stats_r.backtracks),
            "case {case}: delta work counters diverged"
        );
        if !got_d.is_empty() {
            delta_runs += 1;
        }

        // The delta homs are exactly the full homs that touch the delta:
        // sanity-check subset-ness against the full enumeration.
        let full: HashMap<Vec<(VarId, Term)>, usize> =
            want.iter().cloned().map(|h| (h, 0)).collect();
        for h in &got_d {
            assert!(
                delta_start == 0 || full.contains_key(h),
                "case {case}: delta hom not among full homs"
            );
        }
    }
    // The generator must actually exercise the kernel, not just vacuous
    // empty matches.
    assert!(nonempty >= CASES / 10, "only {nonempty} non-empty cases");
    assert!(delta_runs >= CASES / 20, "only {delta_runs} delta matches");
}
