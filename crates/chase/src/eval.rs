//! (U)CQ evaluation over instances (paper §2).
//!
//! `q(I)` is the set of tuples `h(x̄)` **of constants** for homomorphisms `h`
//! from `q` to `I`. Following the paper's definition, answer tuples
//! containing nulls are excluded (this matters when evaluating over chase
//! results); Boolean queries are satisfied by any homomorphism.

use std::collections::HashSet;
use std::ops::ControlFlow;

use omq_model::{ConstId, Cq, Instance, Term, Ucq};

use crate::hom::{for_each_hom, Assignment};

/// Evaluates a CQ: all constant answer tuples `h(x̄)`.
pub fn eval_cq(q: &Cq, inst: &Instance) -> HashSet<Vec<ConstId>> {
    let mut out = HashSet::new();
    let _ = for_each_hom(&q.body, inst, &Assignment::new(), |h| {
        let mut tuple = Vec::with_capacity(q.head.len());
        for &v in &q.head {
            match h.get(&v) {
                Some(Term::Const(c)) => tuple.push(*c),
                _ => return ControlFlow::<()>::Continue(()), // null answer: skip
            }
        }
        out.insert(tuple);
        ControlFlow::Continue(())
    });
    out
}

/// Evaluates a UCQ: the union of its disjuncts' answers.
pub fn eval_ucq(q: &Ucq, inst: &Instance) -> HashSet<Vec<ConstId>> {
    let mut out = HashSet::new();
    for d in &q.disjuncts {
        out.extend(eval_cq(d, inst));
    }
    out
}

/// Does the Boolean CQ hold in the instance (∃ homomorphism)?
///
/// Unlike [`eval_cq`], works for non-Boolean queries too: it asks whether
/// the answer set would be non-empty *ignoring* the constants-only filter,
/// i.e. whether some homomorphism exists at all.
pub fn holds_cq(q: &Cq, inst: &Instance) -> bool {
    crate::hom::find_hom(&q.body, inst, &Assignment::new()).is_some()
}

/// Does some disjunct of the UCQ hold in the instance?
pub fn holds_ucq(q: &Ucq, inst: &Instance) -> bool {
    q.disjuncts.iter().any(|d| holds_cq(d, inst))
}

/// Is the fixed tuple `c̄` an answer of `q` on `inst`?
pub fn is_answer(q: &Cq, inst: &Instance, tuple: &[ConstId]) -> bool {
    if tuple.len() != q.head.len() {
        return false;
    }
    let mut seed = Assignment::new();
    for (&v, &c) in q.head.iter().zip(tuple) {
        match seed.get(&v) {
            Some(&t) if t != Term::Const(c) => return false,
            _ => {
                seed.insert(v, Term::Const(c));
            }
        }
    }
    crate::hom::find_hom(&q.body, inst, &seed).is_some()
}

/// Is the fixed tuple `c̄` an answer of some disjunct of `q` on `inst`?
pub fn is_answer_ucq(q: &Ucq, inst: &Instance, tuple: &[ConstId]) -> bool {
    q.disjuncts.iter().any(|d| is_answer(d, inst, tuple))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_query, parse_tgd, Atom, Vocabulary};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    #[test]
    fn unary_projection() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(a,c)", "R(b,c)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- R(X,Y)").unwrap();
        let ans = eval_cq(&q, &d);
        assert_eq!(ans.len(), 2); // a and b
    }

    #[test]
    fn boolean_query() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y)").unwrap();
        let ans = eval_cq(&q, &d);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![]));
        assert!(holds_cq(&q, &d));
    }

    #[test]
    fn null_answers_are_filtered() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let a = voc.constant("a");
        let n = voc.fresh_null();
        let mut inst = Instance::new();
        inst.insert(Atom::new(r, vec![Term::Const(a), Term::Null(n)]));
        let (_, q) = parse_query(&mut voc, "q(Y) :- R(X,Y)").unwrap();
        // The only witness maps Y to a null: no certain answer tuple.
        assert!(eval_cq(&q, &inst).is_empty());
        // But the Boolean version holds.
        assert!(holds_cq(&q, &inst));
    }

    #[test]
    fn ucq_unions_answers() {
        let prog = omq_model::parse_program("q(X) :- P(X)\nq(X) :- T(X)\n").unwrap();
        let mut voc = prog.voc.clone();
        let d = db(&mut voc, &["P(a)", "T(b)"]);
        let ans = eval_ucq(prog.query("q").unwrap(), &d);
        assert_eq!(ans.len(), 2);
        assert!(holds_ucq(prog.query("q").unwrap(), &d));
    }

    #[test]
    fn fixed_tuple_check() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "P(b)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- R(X,Y), P(Y)").unwrap();
        let a = voc.const_id("a").unwrap();
        let b = voc.const_id("b").unwrap();
        assert!(is_answer(&q, &d, &[a]));
        assert!(!is_answer(&q, &d, &[b]));
        assert!(!is_answer(&q, &d, &[a, b])); // arity mismatch
    }

    #[test]
    fn repeated_head_variable() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,a)", "R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q(X,X) :- R(X,X)").unwrap();
        let a = voc.const_id("a").unwrap();
        let b = voc.const_id("b").unwrap();
        assert!(is_answer(&q, &d, &[a, a]));
        assert!(!is_answer(&q, &d, &[a, b]));
    }
}
