//! (U)CQ evaluation over instances (paper §2).
//!
//! `q(I)` is the set of tuples `h(x̄)` **of constants** for homomorphisms `h`
//! from `q` to `I`. Following the paper's definition, answer tuples
//! containing nulls are excluded (this matters when evaluating over chase
//! results); Boolean queries are satisfied by any homomorphism.

use std::collections::HashSet;
use std::ops::ControlFlow;
use std::sync::Arc;

use omq_model::{ConstId, Cq, Instance, Term, Ucq, VarId};

use crate::hom::{
    instance_sig, record_prefilter_reject, sig_may_hom, HomStats, HomView, JoinPlan, PlanCache,
};

/// Evaluates a CQ: all constant answer tuples `h(x̄)`.
pub fn eval_cq(q: &Cq, inst: &Instance) -> HashSet<Vec<ConstId>> {
    let mut stats = HomStats::default();
    let plan = crate::hom::compile_costed_for(&q.body, &[], None, inst, &mut stats);
    let head_slots: Vec<usize> = q
        .head
        .iter()
        .map(|&v| plan.slot_of(v).expect("head variables occur in the body"))
        .collect();
    let mut out = HashSet::new();
    let _ = plan.execute(inst, &[], None, &mut stats, |h| {
        if let Some(tuple) = const_tuple(h, &head_slots) {
            out.insert(tuple);
        }
        ControlFlow::<()>::Continue(())
    });
    out
}

/// The head tuple of a complete homomorphism, or `None` when some head
/// position maps to a null (excluded per the paper's answer semantics).
fn const_tuple(h: &HomView, head_slots: &[usize]) -> Option<Vec<ConstId>> {
    let mut tuple = Vec::with_capacity(head_slots.len());
    for &s in head_slots {
        match h.slot(s) {
            Some(Term::Const(c)) => tuple.push(c),
            _ => return None,
        }
    }
    Some(tuple)
}

/// Evaluates a UCQ: the union of its disjuncts' answers.
pub fn eval_ucq(q: &Ucq, inst: &Instance) -> HashSet<Vec<ConstId>> {
    let mut out = HashSet::new();
    for d in &q.disjuncts {
        out.extend(eval_cq(d, inst));
    }
    out
}

/// Does the Boolean CQ hold in the instance (∃ homomorphism)?
///
/// Unlike [`eval_cq`], works for non-Boolean queries too: it asks whether
/// the answer set would be non-empty *ignoring* the constants-only filter,
/// i.e. whether some homomorphism exists at all.
pub fn holds_cq(q: &Cq, inst: &Instance) -> bool {
    let mut stats = HomStats::default();
    let plan = crate::hom::compile_costed_for(&q.body, &[], None, inst, &mut stats);
    plan.execute(inst, &[], None, &mut stats, |_| ControlFlow::Break(()))
        .is_break()
}

/// Does some disjunct of the UCQ hold in the instance?
pub fn holds_ucq(q: &Ucq, inst: &Instance) -> bool {
    q.disjuncts.iter().any(|d| holds_cq(d, inst))
}

/// Is the fixed tuple `c̄` an answer of `q` on `inst`?
pub fn is_answer(q: &Cq, inst: &Instance, tuple: &[ConstId]) -> bool {
    CompiledCq::new(q).is_answer(inst, instance_sig(inst), tuple, &mut HomStats::default())
}

/// Is the fixed tuple `c̄` an answer of some disjunct of `q` on `inst`?
pub fn is_answer_ucq(q: &Ucq, inst: &Instance, tuple: &[ConstId]) -> bool {
    let isig = instance_sig(inst);
    let mut stats = HomStats::default();
    q.disjuncts
        .iter()
        .any(|d| CompiledCq::new(d).is_answer(inst, isig, tuple, &mut stats))
}

/// A CQ compiled for repeated fixed-tuple membership probes: the body plan
/// is seeded on the head variables, so `is_answer` is one plan execution,
/// gated by the predicate-signature prefilter.
#[derive(Clone)]
pub struct CompiledCq {
    plan: Arc<JoinPlan>,
    head: Vec<VarId>,
}

impl CompiledCq {
    /// Compiles `q` (uncached; use [`CompiledCq::from_cache`] when many
    /// queries share bodies).
    pub fn new(q: &Cq) -> CompiledCq {
        CompiledCq {
            plan: Arc::new(JoinPlan::compile(&q.body, &q.head, None)),
            head: q.head.clone(),
        }
    }

    /// Compiles `q` through a [`PlanCache`].
    pub fn from_cache(q: &Cq, cache: &mut PlanCache, stats: &mut HomStats) -> CompiledCq {
        CompiledCq {
            plan: cache.get_or_compile(&q.body, &q.head, None, stats),
            head: q.head.clone(),
        }
    }

    /// The predicate signature of the body (see [`crate::hom::pred_sig`]).
    pub fn sig(&self) -> u64 {
        self.plan.sig()
    }

    /// Is `tuple` an answer on `inst`? `inst_sig` is the instance signature
    /// ([`instance_sig`]), computed once by the caller across many probes.
    pub fn is_answer(
        &self,
        inst: &Instance,
        inst_sig: u64,
        tuple: &[ConstId],
        stats: &mut HomStats,
    ) -> bool {
        if tuple.len() != self.head.len() {
            return false;
        }
        if !sig_may_hom(self.plan.sig(), inst_sig) {
            record_prefilter_reject(stats);
            return false;
        }
        let pairs: Vec<(VarId, Term)> = self
            .head
            .iter()
            .copied()
            .zip(tuple.iter().map(|&c| Term::Const(c)))
            .collect();
        let Some(seed) = self.plan.seed_values(&pairs) else {
            return false; // repeated head variable, conflicting constants
        };
        self.plan
            .execute(inst, &seed, None, stats, |_| ControlFlow::Break(()))
            .is_break()
    }
}

/// A UCQ with every disjunct compiled ([`CompiledCq`]): build once, probe
/// many `(instance, tuple)` pairs.
#[derive(Clone)]
pub struct CompiledUcq {
    arity: usize,
    disjuncts: Vec<CompiledCq>,
}

impl CompiledUcq {
    pub fn new(q: &Ucq) -> CompiledUcq {
        CompiledUcq {
            arity: q.arity,
            disjuncts: q.disjuncts.iter().map(CompiledCq::new).collect(),
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Is `tuple` an answer of some disjunct on `inst`? The instance
    /// signature is computed once and prefilters every disjunct.
    pub fn is_answer(&self, inst: &Instance, tuple: &[ConstId], stats: &mut HomStats) -> bool {
        let _span = omq_obs::span("hom.probe");
        let isig = instance_sig(inst);
        self.disjuncts
            .iter()
            .any(|d| d.is_answer(inst, isig, tuple, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_query, parse_tgd, Atom, Vocabulary};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    #[test]
    fn unary_projection() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(a,c)", "R(b,c)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- R(X,Y)").unwrap();
        let ans = eval_cq(&q, &d);
        assert_eq!(ans.len(), 2); // a and b
    }

    #[test]
    fn boolean_query() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y)").unwrap();
        let ans = eval_cq(&q, &d);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![]));
        assert!(holds_cq(&q, &d));
    }

    #[test]
    fn null_answers_are_filtered() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let a = voc.constant("a");
        let n = voc.fresh_null();
        let mut inst = Instance::new();
        inst.insert(Atom::new(r, vec![Term::Const(a), Term::Null(n)]));
        let (_, q) = parse_query(&mut voc, "q(Y) :- R(X,Y)").unwrap();
        // The only witness maps Y to a null: no certain answer tuple.
        assert!(eval_cq(&q, &inst).is_empty());
        // But the Boolean version holds.
        assert!(holds_cq(&q, &inst));
    }

    #[test]
    fn ucq_unions_answers() {
        let prog = omq_model::parse_program("q(X) :- P(X)\nq(X) :- T(X)\n").unwrap();
        let mut voc = prog.voc.clone();
        let d = db(&mut voc, &["P(a)", "T(b)"]);
        let ans = eval_ucq(prog.query("q").unwrap(), &d);
        assert_eq!(ans.len(), 2);
        assert!(holds_ucq(prog.query("q").unwrap(), &d));
    }

    #[test]
    fn fixed_tuple_check() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "P(b)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- R(X,Y), P(Y)").unwrap();
        let a = voc.const_id("a").unwrap();
        let b = voc.const_id("b").unwrap();
        assert!(is_answer(&q, &d, &[a]));
        assert!(!is_answer(&q, &d, &[b]));
        assert!(!is_answer(&q, &d, &[a, b])); // arity mismatch
    }

    #[test]
    fn repeated_head_variable() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,a)", "R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q(X,X) :- R(X,X)").unwrap();
        let a = voc.const_id("a").unwrap();
        let b = voc.const_id("b").unwrap();
        assert!(is_answer(&q, &d, &[a, a]));
        assert!(!is_answer(&q, &d, &[a, b]));
    }
}
