//! Chase-based OMQ evaluation and the critical-instance satisfiability test.

use std::collections::HashSet;
use std::fmt;

use omq_classes::is_non_recursive;
use omq_model::{Atom, ConstId, Instance, Omq, Schema, Term, Vocabulary};

use crate::chase::{chase, stratified_chase, ChaseConfig};
use crate::eval::eval_ucq;

/// Errors surfaced by evaluation strategies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The chase hit a budget before reaching a fixpoint, so the computed
    /// answer set may be incomplete (it is always sound).
    ChaseIncomplete {
        /// Steps performed before the budget ran out.
        steps: usize,
    },
    /// The database mentions predicates outside the OMQ's data schema.
    DatabaseNotOverDataSchema,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::ChaseIncomplete { steps } => {
                write!(f, "chase did not terminate within budget ({steps} steps)")
            }
            EvalError::DatabaseNotOverDataSchema => {
                write!(f, "database is not over the OMQ's data schema")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `Q(D) = q(chase(D, Σ))` by materializing the chase.
///
/// For non-recursive ontologies the stratified chase is used and the result
/// is exact. Otherwise the budgeted restricted chase runs; if it reaches a
/// fixpoint the result is exact, else `Err(ChaseIncomplete)` is returned.
/// (Classes with a non-terminating chase — linear, sticky, guarded — have
/// dedicated complete engines in `omq-rewrite` and `omq-guarded`.)
pub fn certain_answers_via_chase(
    omq: &Omq,
    db: &Instance,
    voc: &mut Vocabulary,
    cfg: &ChaseConfig,
) -> Result<HashSet<Vec<ConstId>>, EvalError> {
    for a in db.atoms() {
        if !omq.data_schema.contains(a.pred) {
            return Err(EvalError::DatabaseNotOverDataSchema);
        }
    }
    let outcome = if is_non_recursive(&omq.sigma) {
        stratified_chase(db, &omq.sigma, voc, cfg).expect("checked non-recursive")
    } else {
        chase(db, &omq.sigma, voc, cfg)
    };
    if !outcome.complete {
        return Err(EvalError::ChaseIncomplete {
            steps: outcome.steps,
        });
    }
    Ok(eval_ucq(&omq.query, &outcome.instance))
}

/// Builds the *critical instance* for a schema: one constant `*` and, for
/// every predicate, the atom with `*` at every position.
///
/// Every `S`-database maps homomorphically into the critical instance, and
/// OMQs are closed under homomorphisms; hence an OMQ `Q` with data schema
/// `S` is satisfiable iff `Q(D_crit) ≠ ∅`. Used by the unsatisfiability
/// check behind distribution over components (§7.1).
pub fn critical_instance(schema: &Schema, voc: &mut Vocabulary) -> (Instance, ConstId) {
    let star = voc.fresh_const("star");
    let mut inst = Instance::new();
    for &p in schema.preds() {
        let args = vec![Term::Const(star); voc.arity(p)];
        inst.insert(Atom::new(p, args));
    }
    (inst, star)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, parse_tgd, Ucq};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    #[test]
    fn nr_evaluation_is_exact() {
        let prog = parse_program(
            "Emp(X) -> exists D . Works(X,D)\n\
             Works(X,D) -> Unit(D)\n\
             q(X) :- Works(X,D), Unit(D)\n",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let emp = voc.pred_id("Emp").unwrap();
        let works = voc.pred_id("Works").unwrap();
        let omq = Omq::new(
            Schema::from_preds([emp, works]),
            prog.tgds.clone(),
            prog.query("q").unwrap().clone(),
        );
        let d = db(&mut voc, &["Emp(alice)", "Works(bob, sales)"]);
        let ans = certain_answers_via_chase(&omq, &d, &mut voc, &ChaseConfig::default()).unwrap();
        // alice's department is a null => only bob is a certain answer...
        // but alice still matches q because Works(alice,⊥), Unit(⊥) holds
        // and X binds to alice (a constant).
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn rejects_out_of_schema_database() {
        let prog = parse_program("P(X) -> Q(X)\nq(X) :- Q(X)\n").unwrap();
        let mut voc = prog.voc.clone();
        let p = voc.pred_id("P").unwrap();
        let omq = Omq::new(
            Schema::from_preds([p]),
            prog.tgds.clone(),
            prog.query("q").unwrap().clone(),
        );
        let d = db(&mut voc, &["Q(a)"]);
        assert_eq!(
            certain_answers_via_chase(&omq, &d, &mut voc, &ChaseConfig::default()),
            Err(EvalError::DatabaseNotOverDataSchema)
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . P(Y), Q(X,Y)").unwrap()];
        let p = voc.pred_id("P").unwrap();
        let (_, q) = omq_model::parse_query(&mut voc, "ans :- Q(X,Y)").unwrap();
        let omq = Omq::new(Schema::from_preds([p]), sigma, Ucq::from_cq(q));
        let d = db(&mut voc, &["P(a)"]);
        let r = certain_answers_via_chase(&omq, &d, &mut voc, &ChaseConfig::with_steps(10));
        assert!(matches!(r, Err(EvalError::ChaseIncomplete { .. })));
    }

    #[test]
    fn critical_instance_detects_satisfiability() {
        let prog = parse_program(
            "P(X) -> exists Y . R(X,Y)\n\
             q :- R(X,Y)\n\
             unsat :- Z0(X)\n",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let p = voc.pred_id("P").unwrap();
        let schema = Schema::from_preds([p]);
        let (crit, _) = critical_instance(&schema, &mut voc);
        assert_eq!(crit.len(), 1);
        let omq = Omq::new(
            schema.clone(),
            prog.tgds.clone(),
            prog.query("q").unwrap().clone(),
        );
        let ans =
            certain_answers_via_chase(&omq, &crit, &mut voc, &ChaseConfig::default()).unwrap();
        assert!(!ans.is_empty());
        // An OMQ asking for a predicate outside S ∪ heads is unsatisfiable.
        let omq2 = Omq::new(
            schema,
            prog.tgds.clone(),
            prog.query("unsat").unwrap().clone(),
        );
        let ans2 =
            certain_answers_via_chase(&omq2, &crit, &mut voc, &ChaseConfig::default()).unwrap();
        assert!(ans2.is_empty());
    }
}
