//! Shared execution-runtime utilities: cooperative cancellation budgets and
//! the scoped worker-pool pattern used by every parallel sweep in the
//! workspace (chase rounds, XRewrite frontier expansion, the containment
//! disjunct sweep, and the serving layer's request engine).
//!
//! ## Budgets and cancellation
//!
//! Long-running algorithms in this workspace (the chase, XRewrite, the
//! anytime containment search) already carry *work* budgets — step counts,
//! query counts, null depths. [`Budget`] adds the *wall-clock* dimension: a
//! deadline and/or an externally triggered cancel flag, polled cooperatively
//! at the algorithms' existing round/step boundaries. An expired budget
//! never flips a verdict — every engine reports budget expiry through the
//! same "incomplete/partial" channel as its work budgets, so results stay
//! sound (a refutation found before expiry is still a refutation; a missing
//! fixpoint is reported as `complete == false` / `Unknown`).
//!
//! ## Worker pools
//!
//! [`effective_threads`] resolves a `threads` config knob (0 = machine
//! parallelism) and [`parallel_indexed`] runs the fetch-add-over-indices
//! loop with per-worker state that chase/rewrite/containment previously
//! each re-implemented.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative wall-clock/cancellation budget.
///
/// Cloning shares the cancel flag: cancelling through a [`CancelToken`]
/// expires every clone at once, which is how a serving request threads one
/// budget through the nested chase/rewrite/containment configs.
///
/// The default budget is unlimited and costs two `Option` checks per poll.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

/// Handle that expires the [`Budget`] it was split from (and all clones).
#[derive(Clone, Debug)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Expires the associated budget(s). Idempotent, callable from any
    /// thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has this token been cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

impl Budget {
    /// The unlimited budget (never expires).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget that expires `d` from now.
    pub fn deadline_in(d: Duration) -> Self {
        Budget {
            deadline: Instant::now().checked_add(d),
            cancel: None,
        }
    }

    /// A budget that expires at `t`.
    pub fn deadline_at(t: Instant) -> Self {
        Budget {
            deadline: Some(t),
            cancel: None,
        }
    }

    /// Attaches a cancel flag, returning the budget and its token.
    pub fn cancellable(mut self) -> (Self, CancelToken) {
        let flag = Arc::new(AtomicBool::new(false));
        self.cancel = Some(flag.clone());
        (self, CancelToken(flag))
    }

    /// Does this budget ever expire?
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Polls the budget. Cheap enough for per-trigger / per-disjunct call
    /// sites: a relaxed load plus (when a deadline is set) one clock read.
    pub fn expired(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Time until the deadline (`None` when no deadline is set; zero when
    /// already past it).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// Resolves a `threads` configuration knob for `work` independent items:
/// `0` means "the machine's available parallelism", any other value is
/// taken as-is; the result is clamped to `[1, work]`.
pub fn effective_threads(requested: usize, work: usize) -> usize {
    let t = match requested {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        t => t,
    };
    t.min(work).max(1)
}

/// Runs `body(&mut state, i)` for every `i in 0..n` across `threads` scoped
/// workers, each pulling indices from a shared atomic counter. `init` builds
/// one per-worker state (a scratch buffer, a cloned vocabulary, …).
///
/// Scheduling is dynamic but index-complete: every index is handed to
/// exactly one worker (the body may still decide to skip it, e.g. under a
/// cancellation protocol). Determinism is the *caller's* contract — the
/// bodies in this workspace write to per-index slots or reduce through
/// lowest-index-wins atomics.
pub fn parallel_indexed<S>(
    threads: usize,
    n: usize,
    init: impl Fn() -> S + Sync,
    body: impl Fn(&mut S, usize) + Sync,
) {
    if n == 0 {
        return;
    }
    let next = AtomicUsize::new(0);
    // The obs recorder is thread-local; propagate the caller's recorder (if
    // any) into each worker so spans/counters from the pool attach to the
    // same trace. A no-op without the `obs` feature.
    let recorder = omq_obs::current();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let (next, init, body) = (&next, &init, &body);
            let recorder = recorder.clone();
            scope.spawn(move || {
                let _obs = omq_obs::install(recorder);
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    body(&mut state, i);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(!b.expired());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn deadline_expires() {
        let b = Budget::deadline_in(Duration::ZERO);
        assert!(b.is_limited());
        assert!(b.expired());
        let far = Budget::deadline_in(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancel_token_expires_all_clones() {
        let (b, token) = Budget::unlimited().cancellable();
        let clone = b.clone();
        assert!(!b.expired() && !clone.expired());
        token.cancel();
        assert!(token.is_cancelled());
        assert!(b.expired() && clone.expired());
    }

    #[test]
    fn effective_threads_resolves_and_clamps() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(4, 100), 4);
        assert_eq!(effective_threads(1, 0), 1);
        assert!(effective_threads(0, usize::MAX) >= 1);
    }

    #[test]
    fn parallel_indexed_covers_every_index() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_indexed(
            4,
            n,
            || 0usize,
            |state, i| {
                *state += 1;
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
