//! The chase procedure (paper §2).
//!
//! A chase step fires a tgd `τ = φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)` on a trigger (a
//! homomorphism from `φ` into the instance), extending the instance with
//! `ψ(ā, ⊥̄)` for fresh nulls `⊥̄`. We provide the **restricted** variant
//! (fire only when the head is not already satisfied by an extension of the
//! trigger) and the **oblivious** variant (fire every trigger once).
//!
//! The chase need not terminate (e.g. under guarded or sticky sets), so all
//! entry points take step and null-depth budgets and report honestly whether
//! a fixpoint was reached. For non-recursive sets, [`stratified_chase`]
//! always terminates (§2, "Non-recursiveness").

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use omq_classes::stratify;
use omq_model::{Instance, NullId, Term, Tgd, VarId, Vocabulary};

use crate::hom::{find_hom, for_each_hom_with_delta, Assignment, HomStats};
use crate::runtime::Budget;

/// Which chase variant to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ChaseVariant {
    /// Fire a trigger only if its head has no extension in the instance.
    #[default]
    Restricted,
    /// Fire every trigger exactly once (larger, but order-independent).
    Oblivious,
}

/// Budgets and variant selection for a chase run.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Restricted or oblivious.
    pub variant: ChaseVariant,
    /// Maximum number of chase steps (fired triggers).
    pub max_steps: usize,
    /// Maximum null depth: a null created by a trigger whose body image only
    /// involves terms of depth `< d` has depth `d`. `None` = unbounded.
    pub max_depth: Option<usize>,
    /// Wall-clock/cancellation budget, polled at trigger granularity. An
    /// expired budget aborts the run with `complete == false` — the partial
    /// instance is still a sound under-approximation, exactly as when the
    /// step budget runs out.
    pub budget: Budget,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            variant: ChaseVariant::Restricted,
            max_steps: 200_000,
            max_depth: None,
            budget: Budget::unlimited(),
        }
    }
}

impl ChaseConfig {
    /// A config with the given step budget.
    pub fn with_steps(max_steps: usize) -> Self {
        ChaseConfig {
            max_steps,
            ..Default::default()
        }
    }

    /// A config with the given null-depth budget.
    pub fn with_depth(max_depth: usize) -> Self {
        ChaseConfig {
            max_depth: Some(max_depth),
            ..Default::default()
        }
    }
}

/// The result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseOutcome {
    /// The (partial) chase result.
    pub instance: Instance,
    /// `true` iff a fixpoint was reached: the instance satisfies `Σ`.
    /// When `false`, a budget was exhausted and the result is a sound but
    /// possibly incomplete under-approximation of `chase(D, Σ)`.
    pub complete: bool,
    /// Number of fired triggers.
    pub steps: usize,
    /// Depth of the deepest null created.
    pub deepest: usize,
    /// Work counters for the run.
    pub stats: ChaseStats,
}

/// Work counters for a chase run: how much the semi-naive engine actually
/// did, as opposed to how long it took. Surfaced by `ChaseOutcome` and the
/// benchmark reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Semi-naive rounds executed (including the final fixpoint round).
    pub rounds: usize,
    /// Triggers enumerated (delta-restricted body homomorphisms).
    pub triggers_considered: usize,
    /// Triggers fired (equals `ChaseOutcome::steps`).
    pub triggers_fired: usize,
    /// Oblivious-variant triggers skipped via the fingerprint set.
    pub dedup_hits: usize,
    /// Restricted-variant triggers skipped because the head was satisfied.
    pub satisfied_skips: usize,
    /// Candidate instance atoms inspected during homomorphism search.
    pub candidates_scanned: u64,
    /// Rolled-back candidate bindings during homomorphism search.
    pub backtracks: u64,
}

impl ChaseStats {
    /// Accumulates homomorphism-search counters.
    fn absorb_hom(&mut self, h: HomStats) {
        self.candidates_scanned += h.candidates_scanned;
        self.backtracks += h.backtracks;
    }
}

/// A 64-bit fingerprint of a trigger: the tgd index plus the body-variable
/// image, mixed SplitMix64-style. Collisions would silently drop an
/// oblivious-chase firing, but at 64 bits the chance is negligible for any
/// feasible trigger count (~2⁻²⁴ even at a billion triggers).
fn trigger_fingerprint(ti: usize, key: &[Term]) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let mut h = mix(ti as u64 ^ 0xd6e8_feb8_6659_fd93);
    for &t in key {
        let enc = match t {
            Term::Const(c) => u64::from(c.0) << 2,
            Term::Null(n) => (u64::from(n.0) << 2) | 1,
            Term::Var(v) => (u64::from(v.0) << 2) | 2,
        };
        h = mix(h ^ enc);
    }
    h
}

struct Runner<'a> {
    sigma: &'a [Tgd],
    voc: &'a mut Vocabulary,
    cfg: &'a ChaseConfig,
    instance: Instance,
    depth: HashMap<NullId, usize>,
    /// Fingerprints of already-fired triggers (oblivious variant only; the
    /// restricted variant's firing condition is the head-satisfaction check).
    fired: HashSet<u64>,
    steps: usize,
    deepest: usize,
    /// Set when a trigger was skipped due to the depth budget.
    truncated: bool,
    stats: ChaseStats,
    /// Per-tgd body variables, computed once up front.
    body_vars: Vec<Vec<VarId>>,
}

impl<'a> Runner<'a> {
    fn new(db: &Instance, sigma: &'a [Tgd], voc: &'a mut Vocabulary, cfg: &'a ChaseConfig) -> Self {
        Runner {
            sigma,
            voc,
            cfg,
            instance: db.clone(),
            depth: HashMap::new(),
            fired: HashSet::new(),
            steps: 0,
            deepest: 0,
            truncated: false,
            stats: ChaseStats::default(),
            body_vars: sigma.iter().map(Tgd::body_vars).collect(),
        }
    }

    fn term_depth(&self, t: Term) -> usize {
        match t {
            Term::Null(n) => self.depth.get(&n).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Fires tgd `ti` on trigger `h` if the variant's condition allows;
    /// returns whether the instance grew.
    fn fire(&mut self, ti: usize, h: &Assignment) -> bool {
        let tgd = &self.sigma[ti];
        let key: Vec<Term> = self.body_vars[ti]
            .iter()
            .map(|v| h.get(v).copied().unwrap_or(Term::Var(*v)))
            .collect();
        let fp = trigger_fingerprint(ti, &key);
        match self.cfg.variant {
            ChaseVariant::Oblivious => {
                if self.fired.contains(&fp) {
                    self.stats.dedup_hits += 1;
                    return false;
                }
            }
            ChaseVariant::Restricted => {
                // Applicable iff there is no extension of h|frontier mapping
                // the head into the instance.
                let mut seed = Assignment::new();
                for v in tgd.frontier() {
                    if let Some(&t) = h.get(&v) {
                        seed.insert(v, t);
                    }
                }
                if find_hom(&tgd.head, &self.instance, &seed).is_some() {
                    self.stats.satisfied_skips += 1;
                    return false;
                }
            }
        }

        // Depth of nulls this step would create.
        let base_depth = key.iter().map(|&t| self.term_depth(t)).max().unwrap_or(0);
        let new_depth = base_depth + 1;
        if !tgd.existential_vars().is_empty() {
            if let Some(max) = self.cfg.max_depth {
                if new_depth > max {
                    self.truncated = true;
                    return false;
                }
            }
        }

        let mut ext = h.clone();
        for z in tgd.existential_vars() {
            let n = self.voc.fresh_null();
            self.depth.insert(n, new_depth);
            self.deepest = self.deepest.max(new_depth);
            ext.insert(z, Term::Null(n));
        }
        let mut grew = false;
        for atom in &tgd.head {
            let img = atom.map_terms(|t| match t {
                Term::Var(v) => ext.get(&v).copied().unwrap_or(t),
                other => other,
            });
            grew |= self.instance.insert(img);
        }
        if self.cfg.variant == ChaseVariant::Oblivious {
            self.fired.insert(fp);
        }
        self.steps += 1;
        self.stats.triggers_fired += 1;
        grew
    }

    /// Can any body atom of `tgd` map onto an atom at index `>= delta_start`?
    /// Cheap per-predicate pre-filter for skipping whole tgds in a round.
    fn body_touches_delta(&self, tgd: &Tgd, delta_start: usize) -> bool {
        tgd.body.iter().any(|a| {
            !self
                .instance
                .atoms_with_pred_from(a.pred, delta_start)
                .is_empty()
        })
    }

    /// Runs semi-naive rounds until fixpoint or budget exhaustion over the
    /// tgds whose indices are in `active`.
    ///
    /// Round 0 enumerates every trigger; each later round only enumerates
    /// triggers that touch the delta — the atoms inserted since the previous
    /// round began. Because head satisfaction (restricted) and the fired set
    /// (oblivious) are both monotone in the instance, a trigger skipped once
    /// stays skippable, so old-only triggers never need revisiting.
    fn run(&mut self, active: &[usize]) -> bool {
        let sigma = self.sigma;
        // Atoms at or past this index are "new" for the current round.
        let mut delta_start = 0usize;
        let mut triggers: Vec<Assignment> = Vec::new();
        loop {
            self.stats.rounds += 1;
            // Atoms inserted during this round carry a fresh generation; its
            // start index is the next round's delta watermark.
            let round_gen = self.instance.begin_generation();
            let round_start = self.instance.generation_start(round_gen);
            for &ti in active {
                if self.cfg.budget.expired() {
                    return false;
                }
                let tgd = &sigma[ti];
                if tgd.body.is_empty() {
                    // Fact tgds have a single, empty trigger; it only exists
                    // while the whole instance is the delta (round 0).
                    if delta_start == 0 {
                        if self.steps >= self.cfg.max_steps {
                            return false;
                        }
                        self.stats.triggers_considered += 1;
                        self.fire(ti, &Assignment::new());
                    }
                    continue;
                }
                if delta_start > 0 && !self.body_touches_delta(tgd, delta_start) {
                    continue;
                }
                // Collect triggers against the current instance first, then
                // fire, so the enumeration is not invalidated by inserts.
                triggers.clear();
                let mut hstats = HomStats::default();
                let _ = for_each_hom_with_delta(
                    &tgd.body,
                    &self.instance,
                    &Assignment::new(),
                    delta_start,
                    &mut hstats,
                    |h| {
                        triggers.push(h.clone());
                        ControlFlow::<()>::Continue(())
                    },
                );
                self.stats.absorb_hom(hstats);
                self.stats.triggers_considered += triggers.len();
                for h in triggers.drain(..) {
                    if self.steps >= self.cfg.max_steps || self.cfg.budget.expired() {
                        return false;
                    }
                    self.fire(ti, &h);
                }
            }
            if self.instance.len() == round_start {
                // Fixpoint, unless depth truncation hid some work.
                return !self.truncated;
            }
            delta_start = round_start;
        }
    }
}

/// Runs the chase of `db` under `sigma` with the given budgets.
pub fn chase(
    db: &Instance,
    sigma: &[Tgd],
    voc: &mut Vocabulary,
    cfg: &ChaseConfig,
) -> ChaseOutcome {
    let mut runner = Runner::new(db, sigma, voc, cfg);
    let active: Vec<usize> = (0..sigma.len()).collect();
    let complete = runner.run(&active);
    ChaseOutcome {
        instance: runner.instance,
        complete,
        steps: runner.steps,
        deepest: runner.deepest,
        stats: runner.stats,
    }
}

/// Runs the stratified chase for a non-recursive `sigma` (Lemma 32):
/// saturates each stratum bottom-up. Returns `None` when `sigma` is
/// recursive.
///
/// Always terminates and always returns a complete chase, so the outcome's
/// `complete` flag is `true` (the step budget of `cfg` still applies as a
/// safety net; exceeding it yields `complete == false`).
pub fn stratified_chase(
    db: &Instance,
    sigma: &[Tgd],
    voc: &mut Vocabulary,
    cfg: &ChaseConfig,
) -> Option<ChaseOutcome> {
    let strata = stratify(sigma)?;
    let mut runner = Runner::new(db, sigma, voc, cfg);
    let mut complete = true;
    for stratum in &strata {
        complete &= runner.run(stratum);
    }
    Some(ChaseOutcome {
        instance: runner.instance,
        complete,
        steps: runner.steps,
        deepest: runner.deepest,
        stats: runner.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::holds_cq;
    use omq_model::{parse_query, parse_tgd};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    #[test]
    fn full_tgds_reach_fixpoint() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "E(X,Y) -> T(X,Y)").unwrap(),
            parse_tgd(&mut voc, "E(X,Y), T(Y,Z) -> T(X,Z)").unwrap(),
        ];
        let d = db(&mut voc, &["E(a,b)", "E(b,c)", "E(c,d)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        // Transitive closure: T has 3+2+1 = 6 atoms.
        let t = voc.pred_id("T").unwrap();
        assert_eq!(out.instance.atoms_with_pred(t).len(), 6);
    }

    #[test]
    fn restricted_chase_reuses_witnesses() {
        let mut voc = Vocabulary::new();
        // Every P-node has an R-successor; b already has one.
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap()];
        let d = db(&mut voc, &["P(a)", "P(b)", "R(b,c)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        let r = voc.pred_id("R").unwrap();
        // Only one new R-atom (for a); b's obligation was already satisfied.
        assert_eq!(out.instance.atoms_with_pred(r).len(), 2);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn oblivious_chase_fires_everything() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap()];
        let d = db(&mut voc, &["P(a)", "P(b)", "R(b,c)"]);
        let cfg = ChaseConfig {
            variant: ChaseVariant::Oblivious,
            ..Default::default()
        };
        let out = chase(&d, &sigma, &mut voc, &cfg);
        assert!(out.complete);
        let r = voc.pred_id("R").unwrap();
        assert_eq!(out.instance.atoms_with_pred(r).len(), 3); // b gets a fresh one too
    }

    #[test]
    fn nonterminating_chase_hits_budget() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . Q(X,Y), P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::with_steps(50));
        assert!(!out.complete);
        assert_eq!(out.steps, 50);
    }

    #[test]
    fn depth_budget_truncates() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . Q(X,Y), P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::with_depth(3));
        assert!(!out.complete);
        assert_eq!(out.deepest, 3);
        let q = voc.pred_id("Q").unwrap();
        assert_eq!(out.instance.atoms_with_pred(q).len(), 3);
    }

    #[test]
    fn certain_atoms_via_chase_result() {
        let mut voc = Vocabulary::new();
        // Example 1 of the paper (linear set).
        let sigma = vec![
            parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap(),
            parse_tgd(&mut voc, "R(X,Y) -> P(Y)").unwrap(),
            parse_tgd(&mut voc, "T(X) -> P(X)").unwrap(),
        ];
        let d = db(&mut voc, &["T(a)"]);
        // Infinite chase: budget by depth.
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::with_depth(4));
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y), P(Y)").unwrap();
        assert!(holds_cq(&q, &out.instance));
    }

    #[test]
    fn stratified_chase_terminates_and_matches() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "A(X) -> exists Y . B(X,Y)").unwrap(),
            parse_tgd(&mut voc, "B(X,Y) -> C(Y)").unwrap(),
            parse_tgd(&mut voc, "C(X) -> D(X)").unwrap(),
        ];
        let d = db(&mut voc, &["A(a)", "A(b)"]);
        let out = stratified_chase(&d, &sigma, &mut voc, &ChaseConfig::default()).unwrap();
        assert!(out.complete);
        let dpred = voc.pred_id("D").unwrap();
        assert_eq!(out.instance.atoms_with_pred(dpred).len(), 2);
        // Same atoms as the plain restricted chase.
        let out2 = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert_eq!(out.instance.len(), out2.instance.len());
    }

    #[test]
    fn stratified_chase_rejects_recursion() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        assert!(stratified_chase(&d, &sigma, &mut voc, &ChaseConfig::default()).is_none());
    }

    #[test]
    fn fact_tgds_fire_on_empty_database() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "true -> Bit(0), Bit(1)").unwrap(),
            parse_tgd(&mut voc, "Bit(X) -> Num(X)").unwrap(),
        ];
        let out = chase(&Instance::new(), &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        assert_eq!(out.instance.len(), 4);
    }

    #[test]
    fn stats_count_rounds_and_triggers() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "E(X,Y) -> T(X,Y)").unwrap(),
            parse_tgd(&mut voc, "E(X,Y), T(Y,Z) -> T(X,Z)").unwrap(),
        ];
        let d = db(&mut voc, &["E(a,b)", "E(b,c)", "E(c,d)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        assert_eq!(out.stats.triggers_fired, out.steps);
        assert!(out.stats.rounds >= 3, "chain of 3 needs several rounds");
        assert!(out.stats.triggers_considered >= out.stats.triggers_fired);
        assert!(out.stats.candidates_scanned > 0);
        // The restricted variant records its skips, not dedup hits.
        assert_eq!(out.stats.dedup_hits, 0);
    }

    #[test]
    fn oblivious_stats_record_dedup() {
        let mut voc = Vocabulary::new();
        // B(a) appears mid-round, so the trigger B(a) of the second tgd is
        // enumerated both in the round that created it and in the next one;
        // the second consideration must hit the fingerprint set.
        let sigma = vec![
            parse_tgd(&mut voc, "A(X) -> B(X)").unwrap(),
            parse_tgd(&mut voc, "B(X) -> C(X)").unwrap(),
        ];
        let d = db(&mut voc, &["A(a)"]);
        let cfg = ChaseConfig {
            variant: ChaseVariant::Oblivious,
            ..Default::default()
        };
        let out = chase(&d, &sigma, &mut voc, &cfg);
        assert!(out.complete);
        assert_eq!(out.stats.triggers_fired, 2);
        assert!(out.stats.dedup_hits >= 1);
    }

    #[test]
    fn expired_budget_aborts_with_incomplete() {
        let mut voc = Vocabulary::new();
        // Non-terminating set: without the budget this would run to the step
        // cap; the pre-expired budget must stop it almost immediately.
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . Q(X,Y), P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let (budget, token) = crate::runtime::Budget::unlimited().cancellable();
        token.cancel();
        let cfg = ChaseConfig {
            budget,
            ..Default::default()
        };
        let out = chase(&d, &sigma, &mut voc, &cfg);
        assert!(!out.complete);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn unlimited_budget_preserves_fixpoint() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "E(X,Y) -> T(X,Y)").unwrap()];
        let d = db(&mut voc, &["E(a,b)"]);
        let cfg = ChaseConfig {
            budget: crate::runtime::Budget::deadline_in(std::time::Duration::from_secs(600)),
            ..Default::default()
        };
        let out = chase(&d, &sigma, &mut voc, &cfg);
        assert!(out.complete);
    }

    #[test]
    fn constants_in_heads() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> R(X, marker)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        let (_, q) = parse_query(&mut voc, "q :- R(a, marker)").unwrap();
        assert!(holds_cq(&q, &out.instance));
    }
}
