//! The chase procedure (paper §2).
//!
//! A chase step fires a tgd `τ = φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)` on a trigger (a
//! homomorphism from `φ` into the instance), extending the instance with
//! `ψ(ā, ⊥̄)` for fresh nulls `⊥̄`. We provide the **restricted** variant
//! (fire only when the head is not already satisfied by an extension of the
//! trigger) and the **oblivious** variant (fire every trigger once).
//!
//! The chase need not terminate (e.g. under guarded or sticky sets), so all
//! entry points take step and null-depth budgets and report honestly whether
//! a fixpoint was reached. For non-recursive sets, [`stratified_chase`]
//! always terminates (§2, "Non-recursiveness").

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;
use std::sync::Arc;

use omq_classes::stratify;
use omq_model::{Atom, Instance, NullId, PredId, Term, Tgd, Vocabulary};

use crate::hom::{HomStats, JoinPlan, PlanCache, NO_LIMIT};
use crate::runtime::Budget;

/// Which chase variant to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ChaseVariant {
    /// Fire a trigger only if its head has no extension in the instance.
    #[default]
    Restricted,
    /// Fire every trigger exactly once (larger, but order-independent).
    Oblivious,
}

/// Budgets and variant selection for a chase run.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Restricted or oblivious.
    pub variant: ChaseVariant,
    /// Maximum number of chase steps (fired triggers).
    pub max_steps: usize,
    /// Maximum null depth: a null created by a trigger whose body image only
    /// involves terms of depth `< d` has depth `d`. `None` = unbounded.
    pub max_depth: Option<usize>,
    /// Wall-clock/cancellation budget, polled at trigger granularity. An
    /// expired budget aborts the run with `complete == false` — the partial
    /// instance is still a sound under-approximation, exactly as when the
    /// step budget runs out.
    pub budget: Budget,
    /// Record a [`DerivationStep`] for every firing that grew the instance
    /// (inputs = body image, outputs = head image). Off by default: the log
    /// can be as large as the chase itself. Used by the `explain` machinery.
    pub record_derivation: bool,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            variant: ChaseVariant::Restricted,
            max_steps: 200_000,
            max_depth: None,
            budget: Budget::unlimited(),
            record_derivation: false,
        }
    }
}

impl ChaseConfig {
    /// A config with the given step budget.
    pub fn with_steps(max_steps: usize) -> Self {
        ChaseConfig {
            max_steps,
            ..Default::default()
        }
    }

    /// A config with the given null-depth budget.
    pub fn with_depth(max_depth: usize) -> Self {
        ChaseConfig {
            max_depth: Some(max_depth),
            ..Default::default()
        }
    }
}

/// One recorded chase firing: tgd index, the body image that triggered it,
/// and the head image it inserted. A derivation log is a replayable proof
/// tree — every output is justified by inputs that are database atoms or
/// outputs of earlier steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivationStep {
    /// Index of the fired tgd in the `sigma` slice passed to the chase.
    pub tgd: usize,
    /// The trigger's body image (atoms present before the firing).
    pub inputs: Vec<Atom>,
    /// The head image (atoms the firing inserted; fresh nulls included).
    pub outputs: Vec<Atom>,
}

/// The result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseOutcome {
    /// The (partial) chase result.
    pub instance: Instance,
    /// `true` iff a fixpoint was reached: the instance satisfies `Σ`.
    /// When `false`, a budget was exhausted and the result is a sound but
    /// possibly incomplete under-approximation of `chase(D, Σ)`.
    pub complete: bool,
    /// Number of fired triggers.
    pub steps: usize,
    /// Depth of the deepest null created.
    pub deepest: usize,
    /// Work counters for the run.
    pub stats: ChaseStats,
    /// Firing log, in firing order (empty unless
    /// [`ChaseConfig::record_derivation`] was set).
    pub derivation: Vec<DerivationStep>,
}

/// Work counters for a chase run: how much the semi-naive engine actually
/// did, as opposed to how long it took. Surfaced by `ChaseOutcome` and the
/// benchmark reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Semi-naive rounds executed (including the final fixpoint round).
    pub rounds: usize,
    /// Triggers enumerated (delta-restricted body homomorphisms).
    pub triggers_considered: usize,
    /// Triggers fired (equals `ChaseOutcome::steps`).
    pub triggers_fired: usize,
    /// Oblivious-variant triggers skipped via the fingerprint set.
    pub dedup_hits: usize,
    /// Restricted-variant triggers skipped because the head was satisfied.
    pub satisfied_skips: usize,
    /// Candidate instance atoms inspected during homomorphism search.
    pub candidates_scanned: u64,
    /// Rolled-back candidate bindings during homomorphism search.
    pub backtracks: u64,
    /// Join plans compiled (per-tgd body, pivot, and head plans).
    pub plans_compiled: u64,
    /// Plan-cache hits for body/pivot plans across semi-naive rounds.
    pub plan_cache_hits: u64,
    /// Homomorphism checks rejected by the predicate-signature prefilter.
    pub prefilter_rejects: u64,
    /// Cached plans recompiled after observed probe work diverged from the
    /// cost model's prediction (see [`crate::hom::REOPT_FACTOR`]).
    pub plans_reoptimized: u64,
    /// Costed-plan executions whose observed candidates were ≤ prediction.
    pub est_ratio_le_1: u64,
    /// Costed-plan executions within `REOPT_FACTOR`× of prediction.
    pub est_ratio_le_4: u64,
    /// Costed-plan executions beyond `REOPT_FACTOR`× of prediction.
    pub est_ratio_gt_4: u64,
    /// Nanoseconds spent building cardinality sketches for plan costing.
    pub sketch_build_ns: u64,
}

impl ChaseStats {
    /// Accumulates homomorphism-search counters.
    fn absorb_hom(&mut self, h: HomStats) {
        self.candidates_scanned += h.candidates_scanned;
        self.backtracks += h.backtracks;
        self.plans_compiled += h.plans_compiled;
        self.plan_cache_hits += h.plan_cache_hits;
        self.prefilter_rejects += h.prefilter_rejects;
        self.plans_reoptimized += h.plans_reoptimized;
        self.est_ratio_le_1 += h.est_ratio_le_1;
        self.est_ratio_le_4 += h.est_ratio_le_4;
        self.est_ratio_gt_4 += h.est_ratio_gt_4;
        self.sketch_build_ns += h.sketch_build_ns;
    }

    /// Mirrors the counters into the installed omq-obs recorder, once per
    /// run (a no-op without a recorder, and compiled out entirely without
    /// the `obs` feature).
    pub fn emit_obs(&self) {
        if !omq_obs::active() {
            return;
        }
        omq_obs::counters(&[
            ("chase.rounds", self.rounds as u64),
            ("chase.triggers_considered", self.triggers_considered as u64),
            ("chase.triggers_fired", self.triggers_fired as u64),
            ("chase.dedup_hits", self.dedup_hits as u64),
            ("chase.satisfied_skips", self.satisfied_skips as u64),
            ("hom.candidates_scanned", self.candidates_scanned),
            ("hom.backtracks", self.backtracks),
            ("hom.plans_compiled", self.plans_compiled),
            ("hom.plan_cache_hits", self.plan_cache_hits),
            ("hom.prefilter_rejects", self.prefilter_rejects),
            ("hom.plans_reoptimized", self.plans_reoptimized),
            ("hom.est_ratio_le_1", self.est_ratio_le_1),
            ("hom.est_ratio_le_4", self.est_ratio_le_4),
            ("hom.est_ratio_gt_4", self.est_ratio_gt_4),
        ]);
    }
}

/// A 64-bit fingerprint of a trigger: the tgd index plus the body-variable
/// image, mixed SplitMix64-style. Collisions would silently drop an
/// oblivious-chase firing, but at 64 bits the chance is negligible for any
/// feasible trigger count (~2⁻²⁴ even at a billion triggers).
fn trigger_fingerprint(ti: usize, key: &[Term]) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let mut h = mix(ti as u64 ^ 0xd6e8_feb8_6659_fd93);
    for &t in key {
        let enc = match t {
            Term::Const(c) => u64::from(c.0) << 2,
            Term::Null(n) => (u64::from(n.0) << 2) | 1,
            Term::Var(v) => (u64::from(v.0) << 2) | 2,
        };
        h = mix(h ^ enc);
    }
    h
}

/// How to build one head-atom argument from a dense trigger key.
#[derive(Copy, Clone, Debug)]
enum HeadArg {
    /// A constant or null written literally in the tgd head.
    Fixed(Term),
    /// The body slot (trigger-key position) of a frontier variable.
    FromBody(usize),
    /// The `i`-th fresh null of this firing (existential variable).
    Fresh(usize),
}

/// Per-tgd compiled artifacts: the body join plan (pivot variants are pulled
/// from the runner's [`PlanCache`] on demand), the head-satisfaction plan of
/// the restricted variant, and a dense recipe for building head atoms from a
/// trigger key without any `HashMap` assignment.
struct TgdPlan {
    /// Body plan with no pivot (round 0); its slot order defines the
    /// trigger key, which equals `Tgd::body_vars` order.
    body_base: Arc<JoinPlan>,
    /// Trigger-key slot of each sorted frontier variable — the seed order of
    /// `head_plan`.
    frontier_slots: Vec<usize>,
    /// Head plan seeded on the frontier (restricted variant only).
    head_plan: Option<Arc<JoinPlan>>,
    /// Number of existential variables (fresh nulls per firing).
    n_exist: usize,
    /// Head atoms as `(pred, arg recipes)`.
    head_atoms: Vec<(PredId, Vec<HeadArg>)>,
}

impl TgdPlan {
    fn new(
        t: &Tgd,
        variant: ChaseVariant,
        cache: &mut PlanCache,
        db: &Instance,
        hstats: &mut HomStats,
    ) -> Self {
        // Cost the body plan against the initial database; the runner's
        // round-0 fetch revisits the same cache entry and re-optimizes it if
        // observed probe work diverges. Slot layout (and thus the trigger
        // key) depends only on the atom set, not the join order.
        let body_base = cache.get_or_compile_costed(&t.body, &[], None, db, hstats);
        let mut frontier = t.frontier();
        frontier.sort_unstable();
        frontier.dedup();
        let frontier_slots: Vec<usize> = frontier
            .iter()
            .map(|&v| {
                body_base
                    .slot_of(v)
                    .expect("frontier vars occur in the body")
            })
            .collect();
        let head_plan = (variant == ChaseVariant::Restricted).then(|| {
            hstats.plans_compiled += 1;
            Arc::new(JoinPlan::compile(&t.head, &frontier, None))
        });
        let existentials = t.existential_vars();
        let head_atoms = t
            .head
            .iter()
            .map(|a| {
                let args = a
                    .args
                    .iter()
                    .map(|&tm| match tm {
                        Term::Var(v) => match body_base.slot_of(v) {
                            Some(s) => HeadArg::FromBody(s),
                            None => HeadArg::Fresh(
                                existentials
                                    .iter()
                                    .position(|&z| z == v)
                                    .expect("non-body head var is existential"),
                            ),
                        },
                        other => HeadArg::Fixed(other),
                    })
                    .collect();
                (a.pred, args)
            })
            .collect();
        TgdPlan {
            body_base,
            frontier_slots,
            head_plan,
            n_exist: existentials.len(),
            head_atoms,
        }
    }
}

struct Runner<'a> {
    sigma: &'a [Tgd],
    voc: &'a mut Vocabulary,
    cfg: &'a ChaseConfig,
    instance: Instance,
    depth: HashMap<NullId, usize>,
    /// Fingerprints of already-fired triggers (oblivious variant only; the
    /// restricted variant's firing condition is the head-satisfaction check).
    fired: HashSet<u64>,
    steps: usize,
    deepest: usize,
    /// Set when a trigger was skipped due to the depth budget.
    truncated: bool,
    stats: ChaseStats,
    /// Firing log (only populated when `cfg.record_derivation`).
    derivation: Vec<DerivationStep>,
    /// Per-tgd compiled plans and head recipes, built once up front.
    tgd_plans: Vec<TgdPlan>,
    /// Cache of pivoted body plans across semi-naive rounds.
    plans: PlanCache,
}

impl<'a> Runner<'a> {
    fn new(db: &Instance, sigma: &'a [Tgd], voc: &'a mut Vocabulary, cfg: &'a ChaseConfig) -> Self {
        Self::with_instance(db.clone(), sigma, voc, cfg)
    }

    /// Like [`Runner::new`] but takes ownership of the starting instance —
    /// the resume path hands a prior fixpoint straight back to the engine
    /// without cloning it.
    fn with_instance(
        instance: Instance,
        sigma: &'a [Tgd],
        voc: &'a mut Vocabulary,
        cfg: &'a ChaseConfig,
    ) -> Self {
        let mut stats = ChaseStats::default();
        let mut plans = PlanCache::new();
        let mut hstats = HomStats::default();
        let tgd_plans = sigma
            .iter()
            .map(|t| TgdPlan::new(t, cfg.variant, &mut plans, &instance, &mut hstats))
            .collect();
        stats.absorb_hom(hstats);
        Runner {
            sigma,
            voc,
            cfg,
            instance,
            depth: HashMap::new(),
            fired: HashSet::new(),
            steps: 0,
            deepest: 0,
            truncated: false,
            stats,
            derivation: Vec::new(),
            tgd_plans,
            plans,
        }
    }

    fn term_depth(&self, t: Term) -> usize {
        match t {
            Term::Null(n) => self.depth.get(&n).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Fires tgd `ti` on the trigger with dense key `key` (the body-variable
    /// image in body-plan slot order) if the variant's condition allows;
    /// returns whether the instance grew.
    fn fire(&mut self, ti: usize, key: &[Term]) -> bool {
        let fp = trigger_fingerprint(ti, key);
        match self.cfg.variant {
            ChaseVariant::Oblivious => {
                if self.fired.contains(&fp) {
                    self.stats.dedup_hits += 1;
                    return false;
                }
            }
            ChaseVariant::Restricted => {
                // Applicable iff there is no extension of h|frontier mapping
                // the head into the instance.
                let tp = &self.tgd_plans[ti];
                let plan = tp.head_plan.as_ref().expect("restricted head plan");
                let seed: Vec<Term> = tp.frontier_slots.iter().map(|&s| key[s]).collect();
                let mut hstats = HomStats::default();
                let satisfied = plan
                    .execute(&self.instance, &seed, None, &mut hstats, |_| {
                        ControlFlow::Break(())
                    })
                    .is_break();
                self.stats.absorb_hom(hstats);
                if satisfied {
                    self.stats.satisfied_skips += 1;
                    return false;
                }
            }
        }

        // Depth of nulls this step would create.
        let base_depth = key.iter().map(|&t| self.term_depth(t)).max().unwrap_or(0);
        let new_depth = base_depth + 1;
        let n_exist = self.tgd_plans[ti].n_exist;
        if n_exist > 0 {
            if let Some(max) = self.cfg.max_depth {
                if new_depth > max {
                    self.truncated = true;
                    return false;
                }
            }
        }

        let mut fresh: Vec<Term> = Vec::with_capacity(n_exist);
        for _ in 0..n_exist {
            let n = self.voc.fresh_null();
            self.depth.insert(n, new_depth);
            self.deepest = self.deepest.max(new_depth);
            fresh.push(Term::Null(n));
        }
        let mut grew = false;
        let mut outputs: Vec<Atom> = Vec::new();
        for (pred, args) in &self.tgd_plans[ti].head_atoms {
            let img: Vec<Term> = args
                .iter()
                .map(|a| match *a {
                    HeadArg::Fixed(t) => t,
                    HeadArg::FromBody(s) => key[s],
                    HeadArg::Fresh(i) => fresh[i],
                })
                .collect();
            let atom = Atom::new(*pred, img);
            if self.cfg.record_derivation {
                outputs.push(atom.clone());
            }
            grew |= self.instance.insert(atom);
        }
        if self.cfg.variant == ChaseVariant::Oblivious {
            self.fired.insert(fp);
        }
        if self.cfg.record_derivation && grew {
            // Reconstruct the body image by substituting the trigger key
            // back into the tgd body (the key is in body-plan slot order).
            let tp = &self.tgd_plans[ti];
            let inputs: Vec<Atom> = self.sigma[ti]
                .body
                .iter()
                .map(|a| {
                    let args: Vec<Term> = a
                        .args
                        .iter()
                        .map(|&tm| match tm {
                            Term::Var(v) => {
                                key[tp.body_base.slot_of(v).expect("body var has a slot")]
                            }
                            other => other,
                        })
                        .collect();
                    Atom::new(a.pred, args)
                })
                .collect();
            self.derivation.push(DerivationStep {
                tgd: ti,
                inputs,
                outputs,
            });
        }
        self.steps += 1;
        self.stats.triggers_fired += 1;
        grew
    }

    /// Can any body atom of `tgd` map onto an atom at index `>= delta_start`?
    /// Cheap per-predicate pre-filter for skipping whole tgds in a round.
    fn body_touches_delta(&self, tgd: &Tgd, delta_start: usize) -> bool {
        tgd.body.iter().any(|a| {
            !self
                .instance
                .atoms_with_pred_from(a.pred, delta_start)
                .is_empty()
        })
    }

    /// Runs semi-naive rounds until fixpoint or budget exhaustion over the
    /// tgds whose indices are in `active`.
    ///
    /// Round 0 enumerates every trigger; each later round only enumerates
    /// triggers that touch the delta — the atoms inserted since the previous
    /// round began. Because head satisfaction (restricted) and the fired set
    /// (oblivious) are both monotone in the instance, a trigger skipped once
    /// stays skippable, so old-only triggers never need revisiting.
    fn run(&mut self, active: &[usize]) -> bool {
        self.run_from(active, 0)
    }

    /// [`Runner::run`], with the first round's delta watermark supplied by
    /// the caller: atoms at index `>= initial_delta` are treated as new. A
    /// resumed chase passes the prior fixpoint's length here, so the first
    /// round only enumerates triggers touching the freshly asserted atoms —
    /// the semi-naive invariant (skipped triggers stay skippable) makes
    /// re-enumerating the old fixpoint unnecessary.
    fn run_from(&mut self, active: &[usize], initial_delta: usize) -> bool {
        let sigma = self.sigma;
        // Atoms at or past this index are "new" for the current round.
        let mut delta_start = initial_delta;
        let mut triggers: Vec<Vec<Term>> = Vec::new();
        loop {
            self.stats.rounds += 1;
            let _round = omq_obs::span("chase.round");
            // Atoms inserted during this round carry a fresh generation; its
            // start index is the next round's delta watermark.
            let round_gen = self.instance.begin_generation();
            let round_start = self.instance.generation_start(round_gen);
            for &ti in active {
                if self.cfg.budget.expired() {
                    return false;
                }
                let tgd = &sigma[ti];
                if tgd.body.is_empty() {
                    // Fact tgds have a single, empty trigger; it only exists
                    // while the whole instance is the delta (round 0).
                    if delta_start == 0 {
                        if self.steps >= self.cfg.max_steps {
                            return false;
                        }
                        self.stats.triggers_considered += 1;
                        self.fire(ti, &[]);
                    }
                    continue;
                }
                if delta_start > 0 && !self.body_touches_delta(tgd, delta_start) {
                    continue;
                }
                // Collect triggers against the current instance first, then
                // fire, so the enumeration is not invalidated by inserts. A
                // complete homomorphism binds every slot, so the dense
                // binding vector unwraps directly into the trigger key.
                triggers.clear();
                let mut hstats = HomStats::default();
                let push = |triggers: &mut Vec<Vec<Term>>, h: &crate::hom::HomView| {
                    triggers.push(h.codes().iter().map(|&c| Term::from_code(c)).collect());
                };
                if delta_start == 0 {
                    let plan = self.plans.get_or_compile_costed(
                        &tgd.body,
                        &[],
                        None,
                        &self.instance,
                        &mut hstats,
                    );
                    let before = hstats.candidates_scanned;
                    let _ = plan.execute(&self.instance, &[], None, &mut hstats, |h| {
                        push(&mut triggers, h);
                        ControlFlow::<()>::Continue(())
                    });
                    self.plans.note_execution(
                        &plan,
                        hstats.candidates_scanned - before,
                        &mut hstats,
                    );
                } else if delta_start < self.instance.len() {
                    // One pivoted plan per body atom that can touch the
                    // delta: the pivot atom is confined to new instance
                    // atoms, earlier atoms to old ones, later atoms roam.
                    for p in 0..tgd.body.len() {
                        if self
                            .instance
                            .atoms_with_pred_from(tgd.body[p].pred, delta_start)
                            .is_empty()
                        {
                            continue;
                        }
                        let plan = self.plans.get_or_compile_costed(
                            &tgd.body,
                            &[],
                            Some(p),
                            &self.instance,
                            &mut hstats,
                        );
                        let ranges: Vec<(usize, usize)> = (0..tgd.body.len())
                            .map(|i| match i.cmp(&p) {
                                std::cmp::Ordering::Less => (0, delta_start),
                                std::cmp::Ordering::Equal => (delta_start, NO_LIMIT),
                                std::cmp::Ordering::Greater => (0, NO_LIMIT),
                            })
                            .collect();
                        let before = hstats.candidates_scanned;
                        let _ =
                            plan.execute(&self.instance, &[], Some(&ranges), &mut hstats, |h| {
                                push(&mut triggers, h);
                                ControlFlow::<()>::Continue(())
                            });
                        self.plans.note_execution(
                            &plan,
                            hstats.candidates_scanned - before,
                            &mut hstats,
                        );
                    }
                }
                self.stats.absorb_hom(hstats);
                self.stats.triggers_considered += triggers.len();
                for key in triggers.drain(..) {
                    if self.steps >= self.cfg.max_steps || self.cfg.budget.expired() {
                        return false;
                    }
                    self.fire(ti, &key);
                }
            }
            if self.instance.len() == round_start {
                // Fixpoint, unless depth truncation hid some work.
                return !self.truncated;
            }
            delta_start = round_start;
        }
    }
}

/// Runs the chase of `db` under `sigma` with the given budgets.
pub fn chase(
    db: &Instance,
    sigma: &[Tgd],
    voc: &mut Vocabulary,
    cfg: &ChaseConfig,
) -> ChaseOutcome {
    let _span = omq_obs::span("chase");
    let mut runner = Runner::new(db, sigma, voc, cfg);
    let active: Vec<usize> = (0..sigma.len()).collect();
    let complete = runner.run(&active);
    runner.stats.emit_obs();
    ChaseOutcome {
        instance: runner.instance,
        complete,
        steps: runner.steps,
        deepest: runner.deepest,
        stats: runner.stats,
        derivation: runner.derivation,
    }
}

/// Resumes a chase from a prior fixpoint instead of re-chasing from
/// scratch: `prior` is the result of an earlier chase of some database
/// under the same `sigma`, extended with newly asserted facts, and atoms at
/// index `>= delta_start` are exactly those new facts (append them under a
/// fresh [`Instance::begin_generation`] and pass that generation's start).
///
/// The first semi-naive round then enumerates only triggers touching the
/// delta — the prior fixpoint is never re-enumerated, which is what makes
/// incremental maintenance of a live store cheap. Sound for the
/// **restricted** variant: its skip condition (head satisfaction) is
/// monotone in the instance and carries no state across runs. The oblivious
/// fingerprint set is *not* persisted, so an oblivious resume may re-fire
/// old triggers; incremental callers should use `ChaseVariant::Restricted`.
///
/// Passing `delta_start == 0` re-enumerates every trigger (a "re-derive"
/// pass): still cheap on a near-fixpoint instance because almost every
/// trigger is skipped by head satisfaction. The DRed deletion algorithm in
/// `omq-store` uses exactly this after over-deleting a support cone.
///
/// Null depths of the prior run are not carried over (old nulls resume at
/// depth 0), so `cfg.max_depth` budgets are measured per-resume; callers
/// that rely on depth budgets should re-chase from scratch instead.
pub fn resume_chase(
    prior: Instance,
    delta_start: usize,
    sigma: &[Tgd],
    voc: &mut Vocabulary,
    cfg: &ChaseConfig,
) -> ChaseOutcome {
    let _span = omq_obs::span("chase.incremental");
    let mut runner = Runner::with_instance(prior, sigma, voc, cfg);
    let active: Vec<usize> = (0..sigma.len()).collect();
    let complete = runner.run_from(&active, delta_start);
    runner.stats.emit_obs();
    omq_obs::counter("chase.incremental", 1);
    ChaseOutcome {
        instance: runner.instance,
        complete,
        steps: runner.steps,
        deepest: runner.deepest,
        stats: runner.stats,
        derivation: runner.derivation,
    }
}

/// Runs the stratified chase for a non-recursive `sigma` (Lemma 32):
/// saturates each stratum bottom-up. Returns `None` when `sigma` is
/// recursive.
///
/// Always terminates and always returns a complete chase, so the outcome's
/// `complete` flag is `true` (the step budget of `cfg` still applies as a
/// safety net; exceeding it yields `complete == false`).
pub fn stratified_chase(
    db: &Instance,
    sigma: &[Tgd],
    voc: &mut Vocabulary,
    cfg: &ChaseConfig,
) -> Option<ChaseOutcome> {
    let strata = stratify(sigma)?;
    let _span = omq_obs::span("chase");
    let mut runner = Runner::new(db, sigma, voc, cfg);
    let mut complete = true;
    for stratum in &strata {
        complete &= runner.run(stratum);
    }
    runner.stats.emit_obs();
    Some(ChaseOutcome {
        instance: runner.instance,
        complete,
        steps: runner.steps,
        deepest: runner.deepest,
        stats: runner.stats,
        derivation: runner.derivation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::holds_cq;
    use omq_model::{parse_query, parse_tgd};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    #[test]
    fn full_tgds_reach_fixpoint() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "E(X,Y) -> T(X,Y)").unwrap(),
            parse_tgd(&mut voc, "E(X,Y), T(Y,Z) -> T(X,Z)").unwrap(),
        ];
        let d = db(&mut voc, &["E(a,b)", "E(b,c)", "E(c,d)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        // Transitive closure: T has 3+2+1 = 6 atoms.
        let t = voc.pred_id("T").unwrap();
        assert_eq!(out.instance.atoms_with_pred(t).len(), 6);
    }

    #[test]
    fn restricted_chase_reuses_witnesses() {
        let mut voc = Vocabulary::new();
        // Every P-node has an R-successor; b already has one.
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap()];
        let d = db(&mut voc, &["P(a)", "P(b)", "R(b,c)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        let r = voc.pred_id("R").unwrap();
        // Only one new R-atom (for a); b's obligation was already satisfied.
        assert_eq!(out.instance.atoms_with_pred(r).len(), 2);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn oblivious_chase_fires_everything() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap()];
        let d = db(&mut voc, &["P(a)", "P(b)", "R(b,c)"]);
        let cfg = ChaseConfig {
            variant: ChaseVariant::Oblivious,
            ..Default::default()
        };
        let out = chase(&d, &sigma, &mut voc, &cfg);
        assert!(out.complete);
        let r = voc.pred_id("R").unwrap();
        assert_eq!(out.instance.atoms_with_pred(r).len(), 3); // b gets a fresh one too
    }

    #[test]
    fn nonterminating_chase_hits_budget() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . Q(X,Y), P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::with_steps(50));
        assert!(!out.complete);
        assert_eq!(out.steps, 50);
    }

    #[test]
    fn depth_budget_truncates() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . Q(X,Y), P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::with_depth(3));
        assert!(!out.complete);
        assert_eq!(out.deepest, 3);
        let q = voc.pred_id("Q").unwrap();
        assert_eq!(out.instance.atoms_with_pred(q).len(), 3);
    }

    #[test]
    fn certain_atoms_via_chase_result() {
        let mut voc = Vocabulary::new();
        // Example 1 of the paper (linear set).
        let sigma = vec![
            parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap(),
            parse_tgd(&mut voc, "R(X,Y) -> P(Y)").unwrap(),
            parse_tgd(&mut voc, "T(X) -> P(X)").unwrap(),
        ];
        let d = db(&mut voc, &["T(a)"]);
        // Infinite chase: budget by depth.
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::with_depth(4));
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y), P(Y)").unwrap();
        assert!(holds_cq(&q, &out.instance));
    }

    #[test]
    fn stratified_chase_terminates_and_matches() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "A(X) -> exists Y . B(X,Y)").unwrap(),
            parse_tgd(&mut voc, "B(X,Y) -> C(Y)").unwrap(),
            parse_tgd(&mut voc, "C(X) -> D(X)").unwrap(),
        ];
        let d = db(&mut voc, &["A(a)", "A(b)"]);
        let out = stratified_chase(&d, &sigma, &mut voc, &ChaseConfig::default()).unwrap();
        assert!(out.complete);
        let dpred = voc.pred_id("D").unwrap();
        assert_eq!(out.instance.atoms_with_pred(dpred).len(), 2);
        // Same atoms as the plain restricted chase.
        let out2 = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert_eq!(out.instance.len(), out2.instance.len());
    }

    #[test]
    fn stratified_chase_rejects_recursion() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        assert!(stratified_chase(&d, &sigma, &mut voc, &ChaseConfig::default()).is_none());
    }

    #[test]
    fn fact_tgds_fire_on_empty_database() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "true -> Bit(0), Bit(1)").unwrap(),
            parse_tgd(&mut voc, "Bit(X) -> Num(X)").unwrap(),
        ];
        let out = chase(&Instance::new(), &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        assert_eq!(out.instance.len(), 4);
    }

    #[test]
    fn stats_count_rounds_and_triggers() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "E(X,Y) -> T(X,Y)").unwrap(),
            parse_tgd(&mut voc, "E(X,Y), T(Y,Z) -> T(X,Z)").unwrap(),
        ];
        let d = db(&mut voc, &["E(a,b)", "E(b,c)", "E(c,d)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        assert_eq!(out.stats.triggers_fired, out.steps);
        assert!(out.stats.rounds >= 3, "chain of 3 needs several rounds");
        assert!(out.stats.triggers_considered >= out.stats.triggers_fired);
        assert!(out.stats.candidates_scanned > 0);
        // The restricted variant records its skips, not dedup hits.
        assert_eq!(out.stats.dedup_hits, 0);
    }

    #[test]
    fn oblivious_stats_record_dedup() {
        let mut voc = Vocabulary::new();
        // B(a) appears mid-round, so the trigger B(a) of the second tgd is
        // enumerated both in the round that created it and in the next one;
        // the second consideration must hit the fingerprint set.
        let sigma = vec![
            parse_tgd(&mut voc, "A(X) -> B(X)").unwrap(),
            parse_tgd(&mut voc, "B(X) -> C(X)").unwrap(),
        ];
        let d = db(&mut voc, &["A(a)"]);
        let cfg = ChaseConfig {
            variant: ChaseVariant::Oblivious,
            ..Default::default()
        };
        let out = chase(&d, &sigma, &mut voc, &cfg);
        assert!(out.complete);
        assert_eq!(out.stats.triggers_fired, 2);
        assert!(out.stats.dedup_hits >= 1);
    }

    #[test]
    fn expired_budget_aborts_with_incomplete() {
        let mut voc = Vocabulary::new();
        // Non-terminating set: without the budget this would run to the step
        // cap; the pre-expired budget must stop it almost immediately.
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . Q(X,Y), P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let (budget, token) = crate::runtime::Budget::unlimited().cancellable();
        token.cancel();
        let cfg = ChaseConfig {
            budget,
            ..Default::default()
        };
        let out = chase(&d, &sigma, &mut voc, &cfg);
        assert!(!out.complete);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn unlimited_budget_preserves_fixpoint() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "E(X,Y) -> T(X,Y)").unwrap()];
        let d = db(&mut voc, &["E(a,b)"]);
        let cfg = ChaseConfig {
            budget: crate::runtime::Budget::deadline_in(std::time::Duration::from_secs(600)),
            ..Default::default()
        };
        let out = chase(&d, &sigma, &mut voc, &cfg);
        assert!(out.complete);
    }

    #[test]
    fn resumed_chase_matches_from_scratch() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "E(X,Y) -> T(X,Y)").unwrap(),
            parse_tgd(&mut voc, "E(X,Y), T(Y,Z) -> T(X,Z)").unwrap(),
        ];
        let d = db(&mut voc, &["E(a,b)", "E(b,c)", "E(c,d)"]);
        let cfg = ChaseConfig::default();
        let out = chase(&d, &sigma, &mut voc, &cfg);
        assert!(out.complete);

        // Assert a new edge as a fresh delta generation and resume.
        let mut inst = out.instance;
        inst.begin_generation();
        let delta_start = inst.len();
        let extra = parse_tgd(&mut voc, "true -> E(d,e)").unwrap();
        for a in extra.head.clone() {
            inst.insert(a);
        }
        let resumed = resume_chase(inst, delta_start, &sigma, &mut voc, &cfg);
        assert!(resumed.complete);

        // From-scratch chase of the full database: same atom set (no
        // existentials, so no null-renaming slack).
        let mut full = d.clone();
        for a in extra.head {
            full.insert(a);
        }
        let scratch = chase(&full, &sigma, &mut voc, &cfg);
        assert_eq!(resumed.instance, scratch.instance);
        // The resume did strictly less work than the re-chase.
        assert!(resumed.stats.triggers_considered < scratch.stats.triggers_considered);
    }

    #[test]
    fn resume_with_empty_delta_is_a_fixpoint_check() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "E(X,Y) -> T(X,Y)").unwrap()];
        let d = db(&mut voc, &["E(a,b)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        let len = out.instance.len();
        let mut inst = out.instance;
        inst.begin_generation();
        let resumed = resume_chase(inst, len, &sigma, &mut voc, &ChaseConfig::default());
        assert!(resumed.complete);
        assert_eq!(resumed.steps, 0);
        assert_eq!(resumed.stats.rounds, 1);
        assert_eq!(resumed.instance.len(), len);
    }

    #[test]
    fn resumed_chase_with_existentials_preserves_answers() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap(),
            parse_tgd(&mut voc, "R(X,Y) -> S(X)").unwrap(),
        ];
        let d = db(&mut voc, &["P(a)"]);
        let cfg = ChaseConfig::default();
        let out = chase(&d, &sigma, &mut voc, &cfg);
        let mut inst = out.instance;
        inst.begin_generation();
        let delta_start = inst.len();
        for a in parse_tgd(&mut voc, "true -> P(b)").unwrap().head {
            inst.insert(a);
        }
        let resumed = resume_chase(inst, delta_start, &sigma, &mut voc, &cfg);
        assert!(resumed.complete);
        let full = db(&mut voc, &["P(a)", "P(b)"]);
        let scratch = chase(&full, &sigma, &mut voc, &cfg);
        // Nulls differ across the two runs; the constant-only certain
        // answers must not.
        let (_, q) = parse_query(&mut voc, "q(X) :- S(X)").unwrap();
        let mut a1: Vec<_> = crate::eval::eval_cq(&q, &resumed.instance)
            .into_iter()
            .collect();
        let mut a2: Vec<_> = crate::eval::eval_cq(&q, &scratch.instance)
            .into_iter()
            .collect();
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2);
    }

    #[test]
    fn constants_in_heads() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> R(X, marker)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        let (_, q) = parse_query(&mut voc, "q :- R(a, marker)").unwrap();
        assert!(holds_cq(&q, &out.instance));
    }
}
