//! The chase procedure (paper §2).
//!
//! A chase step fires a tgd `τ = φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)` on a trigger (a
//! homomorphism from `φ` into the instance), extending the instance with
//! `ψ(ā, ⊥̄)` for fresh nulls `⊥̄`. We provide the **restricted** variant
//! (fire only when the head is not already satisfied by an extension of the
//! trigger) and the **oblivious** variant (fire every trigger once).
//!
//! The chase need not terminate (e.g. under guarded or sticky sets), so all
//! entry points take step and null-depth budgets and report honestly whether
//! a fixpoint was reached. For non-recursive sets, [`stratified_chase`]
//! always terminates (§2, "Non-recursiveness").

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use omq_classes::stratify;
use omq_model::{Instance, NullId, Term, Tgd, VarId, Vocabulary};

use crate::hom::{find_hom, for_each_hom, Assignment};

/// Which chase variant to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ChaseVariant {
    /// Fire a trigger only if its head has no extension in the instance.
    #[default]
    Restricted,
    /// Fire every trigger exactly once (larger, but order-independent).
    Oblivious,
}

/// Budgets and variant selection for a chase run.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Restricted or oblivious.
    pub variant: ChaseVariant,
    /// Maximum number of chase steps (fired triggers).
    pub max_steps: usize,
    /// Maximum null depth: a null created by a trigger whose body image only
    /// involves terms of depth `< d` has depth `d`. `None` = unbounded.
    pub max_depth: Option<usize>,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            variant: ChaseVariant::Restricted,
            max_steps: 200_000,
            max_depth: None,
        }
    }
}

impl ChaseConfig {
    /// A config with the given step budget.
    pub fn with_steps(max_steps: usize) -> Self {
        ChaseConfig {
            max_steps,
            ..Default::default()
        }
    }

    /// A config with the given null-depth budget.
    pub fn with_depth(max_depth: usize) -> Self {
        ChaseConfig {
            max_depth: Some(max_depth),
            ..Default::default()
        }
    }
}

/// The result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseOutcome {
    /// The (partial) chase result.
    pub instance: Instance,
    /// `true` iff a fixpoint was reached: the instance satisfies `Σ`.
    /// When `false`, a budget was exhausted and the result is a sound but
    /// possibly incomplete under-approximation of `chase(D, Σ)`.
    pub complete: bool,
    /// Number of fired triggers.
    pub steps: usize,
    /// Depth of the deepest null created.
    pub deepest: usize,
}

struct Runner<'a> {
    sigma: &'a [Tgd],
    voc: &'a mut Vocabulary,
    cfg: &'a ChaseConfig,
    instance: Instance,
    depth: HashMap<NullId, usize>,
    fired: HashSet<(usize, Vec<Term>)>,
    steps: usize,
    deepest: usize,
    /// Set when a trigger was skipped due to the depth budget.
    truncated: bool,
}

impl<'a> Runner<'a> {
    fn term_depth(&self, t: Term) -> usize {
        match t {
            Term::Null(n) => self.depth.get(&n).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Fires `tgd` on trigger `h` if the variant's condition allows; returns
    /// whether the instance grew.
    fn fire(&mut self, ti: usize, tgd: &Tgd, h: &Assignment, body_vars: &[VarId]) -> bool {
        let key: Vec<Term> = body_vars
            .iter()
            .map(|v| h.get(v).copied().unwrap_or(Term::Var(*v)))
            .collect();
        match self.cfg.variant {
            ChaseVariant::Oblivious => {
                if self.fired.contains(&(ti, key.clone())) {
                    return false;
                }
            }
            ChaseVariant::Restricted => {
                // Applicable iff there is no extension of h|frontier mapping
                // the head into the instance.
                let mut seed = Assignment::new();
                for v in tgd.frontier() {
                    if let Some(&t) = h.get(&v) {
                        seed.insert(v, t);
                    }
                }
                if find_hom(&tgd.head, &self.instance, &seed).is_some() {
                    return false;
                }
            }
        }

        // Depth of nulls this step would create.
        let base_depth = key.iter().map(|&t| self.term_depth(t)).max().unwrap_or(0);
        let new_depth = base_depth + 1;
        if !tgd.existential_vars().is_empty() {
            if let Some(max) = self.cfg.max_depth {
                if new_depth > max {
                    self.truncated = true;
                    return false;
                }
            }
        }

        let mut ext = h.clone();
        for z in tgd.existential_vars() {
            let n = self.voc.fresh_null();
            self.depth.insert(n, new_depth);
            self.deepest = self.deepest.max(new_depth);
            ext.insert(z, Term::Null(n));
        }
        let mut grew = false;
        for atom in &tgd.head {
            let img = atom.map_terms(|t| match t {
                Term::Var(v) => ext.get(&v).copied().unwrap_or(t),
                other => other,
            });
            grew |= self.instance.insert(img);
        }
        self.fired.insert((ti, key));
        self.steps += 1;
        grew
    }

    /// Runs rounds until fixpoint or budget exhaustion over the tgds whose
    /// indices are in `active`.
    fn run(&mut self, active: &[usize]) -> bool {
        loop {
            let mut grew = false;
            for &ti in active {
                let tgd = self.sigma[ti].clone();
                let body_vars = tgd.body_vars();
                // Collect triggers against the current instance first, then
                // fire, so the enumeration is not invalidated by inserts.
                let mut triggers: Vec<Assignment> = Vec::new();
                if tgd.body.is_empty() {
                    triggers.push(Assignment::new());
                } else {
                    let _ = for_each_hom(
                        &tgd.body,
                        &self.instance,
                        &Assignment::new(),
                        |h| {
                            triggers.push(h.clone());
                            ControlFlow::<()>::Continue(())
                        },
                    );
                }
                for h in triggers {
                    if self.steps >= self.cfg.max_steps {
                        return false;
                    }
                    grew |= self.fire(ti, &tgd, &h, &body_vars);
                }
            }
            if !grew {
                // Fixpoint, unless depth truncation hid some work.
                return !self.truncated;
            }
        }
    }
}

/// Runs the chase of `db` under `sigma` with the given budgets.
pub fn chase(
    db: &Instance,
    sigma: &[Tgd],
    voc: &mut Vocabulary,
    cfg: &ChaseConfig,
) -> ChaseOutcome {
    let mut runner = Runner {
        sigma,
        voc,
        cfg,
        instance: db.clone(),
        depth: HashMap::new(),
        fired: HashSet::new(),
        steps: 0,
        deepest: 0,
        truncated: false,
    };
    let active: Vec<usize> = (0..sigma.len()).collect();
    let complete = runner.run(&active);
    ChaseOutcome {
        instance: runner.instance,
        complete,
        steps: runner.steps,
        deepest: runner.deepest,
    }
}

/// Runs the stratified chase for a non-recursive `sigma` (Lemma 32):
/// saturates each stratum bottom-up. Returns `None` when `sigma` is
/// recursive.
///
/// Always terminates and always returns a complete chase, so the outcome's
/// `complete` flag is `true` (the step budget of `cfg` still applies as a
/// safety net; exceeding it yields `complete == false`).
pub fn stratified_chase(
    db: &Instance,
    sigma: &[Tgd],
    voc: &mut Vocabulary,
    cfg: &ChaseConfig,
) -> Option<ChaseOutcome> {
    let strata = stratify(sigma)?;
    let mut runner = Runner {
        sigma,
        voc,
        cfg,
        instance: db.clone(),
        depth: HashMap::new(),
        fired: HashSet::new(),
        steps: 0,
        deepest: 0,
        truncated: false,
    };
    let mut complete = true;
    for stratum in &strata {
        complete &= runner.run(stratum);
    }
    Some(ChaseOutcome {
        instance: runner.instance,
        complete,
        steps: runner.steps,
        deepest: runner.deepest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::holds_cq;
    use omq_model::{parse_query, parse_tgd};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    #[test]
    fn full_tgds_reach_fixpoint() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "E(X,Y) -> T(X,Y)").unwrap(),
            parse_tgd(&mut voc, "E(X,Y), T(Y,Z) -> T(X,Z)").unwrap(),
        ];
        let d = db(&mut voc, &["E(a,b)", "E(b,c)", "E(c,d)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        // Transitive closure: T has 3+2+1 = 6 atoms.
        let t = voc.pred_id("T").unwrap();
        assert_eq!(out.instance.atoms_with_pred(t).len(), 6);
    }

    #[test]
    fn restricted_chase_reuses_witnesses() {
        let mut voc = Vocabulary::new();
        // Every P-node has an R-successor; b already has one.
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap()];
        let d = db(&mut voc, &["P(a)", "P(b)", "R(b,c)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        let r = voc.pred_id("R").unwrap();
        // Only one new R-atom (for a); b's obligation was already satisfied.
        assert_eq!(out.instance.atoms_with_pred(r).len(), 2);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn oblivious_chase_fires_everything() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap()];
        let d = db(&mut voc, &["P(a)", "P(b)", "R(b,c)"]);
        let cfg = ChaseConfig {
            variant: ChaseVariant::Oblivious,
            ..Default::default()
        };
        let out = chase(&d, &sigma, &mut voc, &cfg);
        assert!(out.complete);
        let r = voc.pred_id("R").unwrap();
        assert_eq!(out.instance.atoms_with_pred(r).len(), 3); // b gets a fresh one too
    }

    #[test]
    fn nonterminating_chase_hits_budget() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . Q(X,Y), P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::with_steps(50));
        assert!(!out.complete);
        assert_eq!(out.steps, 50);
    }

    #[test]
    fn depth_budget_truncates() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . Q(X,Y), P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::with_depth(3));
        assert!(!out.complete);
        assert_eq!(out.deepest, 3);
        let q = voc.pred_id("Q").unwrap();
        assert_eq!(out.instance.atoms_with_pred(q).len(), 3);
    }

    #[test]
    fn certain_atoms_via_chase_result() {
        let mut voc = Vocabulary::new();
        // Example 1 of the paper (linear set).
        let sigma = vec![
            parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap(),
            parse_tgd(&mut voc, "R(X,Y) -> P(Y)").unwrap(),
            parse_tgd(&mut voc, "T(X) -> P(X)").unwrap(),
        ];
        let d = db(&mut voc, &["T(a)"]);
        // Infinite chase: budget by depth.
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::with_depth(4));
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y), P(Y)").unwrap();
        assert!(holds_cq(&q, &out.instance));
    }

    #[test]
    fn stratified_chase_terminates_and_matches() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "A(X) -> exists Y . B(X,Y)").unwrap(),
            parse_tgd(&mut voc, "B(X,Y) -> C(Y)").unwrap(),
            parse_tgd(&mut voc, "C(X) -> D(X)").unwrap(),
        ];
        let d = db(&mut voc, &["A(a)", "A(b)"]);
        let out = stratified_chase(&d, &sigma, &mut voc, &ChaseConfig::default()).unwrap();
        assert!(out.complete);
        let dpred = voc.pred_id("D").unwrap();
        assert_eq!(out.instance.atoms_with_pred(dpred).len(), 2);
        // Same atoms as the plain restricted chase.
        let out2 = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        assert_eq!(out.instance.len(), out2.instance.len());
    }

    #[test]
    fn stratified_chase_rejects_recursion() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . P(Y)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        assert!(stratified_chase(&d, &sigma, &mut voc, &ChaseConfig::default()).is_none());
    }

    #[test]
    fn fact_tgds_fire_on_empty_database() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "true -> Bit(0), Bit(1)").unwrap(),
            parse_tgd(&mut voc, "Bit(X) -> Num(X)").unwrap(),
        ];
        let out = chase(&Instance::new(), &sigma, &mut voc, &ChaseConfig::default());
        assert!(out.complete);
        assert_eq!(out.instance.len(), 4);
    }

    #[test]
    fn constants_in_heads() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> R(X, marker)").unwrap()];
        let d = db(&mut voc, &["P(a)"]);
        let out = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        let (_, q) = parse_query(&mut voc, "q :- R(a, marker)").unwrap();
        assert!(holds_cq(&q, &out.instance));
    }
}
