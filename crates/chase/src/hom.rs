//! Homomorphism search: mapping a set of atoms with variables into an
//! instance, the workhorse behind CQ evaluation (paper §2), chase triggers,
//! and Chandra–Merlin containment.
//!
//! The kernel is organised around a compiled, reusable [`JoinPlan`]: a CQ
//! body is compiled **once** into (a) a fixed atom order chosen by the
//! greedy join heuristic, (b) a dense variable-slot layout replacing the
//! per-candidate `HashMap` bindings with a `Vec<Option<Term>>`, and (c) a
//! per-atom probe strategy — which `(pred, pos, term)` index of
//! [`Instance`] can be hit given which slots are bound at that point. Plans
//! are pure functions of `(atoms, seeded vars, pivot)`, so a [`PlanCache`]
//! lets the thousands of subsumption/containment probes above this layer
//! reuse plans instead of re-deriving orderings.
//!
//! Plan execution is byte-for-byte equivalent to the historical
//! backtracking search (kept verbatim in [`reference`]): the same atom
//! order, the same runtime probe selection (first strictly smaller
//! candidate list wins), the same candidate scan order, and therefore the
//! same enumeration order and the same `candidates_scanned`/`backtracks`
//! counters.
//!
//! For CQ→CQ checks a 64-bit predicate **signature prefilter** applies
//! before any plan executes: a homomorphism from `q1` into `q2` maps every
//! atom onto an atom of the same predicate, so it is impossible unless
//! `sig(q1) & !sig(q2) == 0` (see [`pred_sig`]). The filter is sound — it
//! only ever rejects pairs where no homomorphism exists — and rejections
//! are counted as `prefilter_rejects`.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use omq_model::{Atom, CardSketch, Instance, PredId, Term, VarId};

/// A variable assignment: the mapping `h` restricted to variables. Constants
/// are always mapped to themselves (homomorphisms are the identity on `C`).
pub type Assignment = HashMap<VarId, Term>;

/// Work counters for one or more homomorphism searches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HomStats {
    /// Candidate instance atoms inspected while extending partial matches.
    pub candidates_scanned: u64,
    /// Candidate atoms rejected (bindings rolled back).
    pub backtracks: u64,
    /// Complete homomorphisms handed to the callback.
    pub homs_found: u64,
    /// Join plans compiled (cache misses plus uncached compilations).
    pub plans_compiled: u64,
    /// Join plans served from a [`PlanCache`] without recompiling.
    pub plan_cache_hits: u64,
    /// CQ→CQ checks rejected by the predicate-signature prefilter before
    /// any plan executed.
    pub prefilter_rejects: u64,
    /// Cached cost-based plans recompiled because their observed probe work
    /// diverged from the predicted cost (see [`PlanCache`]).
    pub plans_reoptimized: u64,
    /// Costed-plan executions whose scanned candidates were at or under the
    /// predicted cost (estimate held).
    pub est_ratio_le_1: u64,
    /// Costed-plan executions whose scanned candidates exceeded the
    /// prediction by up to the re-optimization factor.
    pub est_ratio_le_4: u64,
    /// Costed-plan executions whose scanned candidates exceeded the
    /// prediction by more than the re-optimization factor.
    pub est_ratio_gt_4: u64,
    /// Nanoseconds spent building cardinality sketches for cost-based
    /// planning (timing-derived: deterministic across runs only in the
    /// sense of "some positive number"; never compare exact values).
    pub sketch_build_ns: u64,
}

impl HomStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: HomStats) {
        self.candidates_scanned += other.candidates_scanned;
        self.backtracks += other.backtracks;
        self.homs_found += other.homs_found;
        self.plans_compiled += other.plans_compiled;
        self.plan_cache_hits += other.plan_cache_hits;
        self.prefilter_rejects += other.prefilter_rejects;
        self.plans_reoptimized += other.plans_reoptimized;
        self.est_ratio_le_1 += other.est_ratio_le_1;
        self.est_ratio_le_4 += other.est_ratio_le_4;
        self.est_ratio_gt_4 += other.est_ratio_gt_4;
        self.sketch_build_ns += other.sketch_build_ns;
    }
}

// Process-global kernel counters, mirrored from every top-level plan
// execution / cache interaction (relaxed: they are monotone telemetry for
// the serve `stats` response, never synchronisation).
static G_CANDIDATES_SCANNED: AtomicU64 = AtomicU64::new(0);
static G_BACKTRACKS: AtomicU64 = AtomicU64::new(0);
static G_HOMS_FOUND: AtomicU64 = AtomicU64::new(0);
static G_PLANS_COMPILED: AtomicU64 = AtomicU64::new(0);
static G_PLAN_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static G_PREFILTER_REJECTS: AtomicU64 = AtomicU64::new(0);
static G_PLANS_REOPTIMIZED: AtomicU64 = AtomicU64::new(0);
static G_EST_RATIO_LE_1: AtomicU64 = AtomicU64::new(0);
static G_EST_RATIO_LE_4: AtomicU64 = AtomicU64::new(0);
static G_EST_RATIO_GT_4: AtomicU64 = AtomicU64::new(0);
static G_SKETCH_BUILD_NS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide kernel counters (all searches since
/// process start, across every thread). Monotone between calls.
pub fn global_hom_snapshot() -> HomStats {
    HomStats {
        candidates_scanned: G_CANDIDATES_SCANNED.load(Ordering::Relaxed),
        backtracks: G_BACKTRACKS.load(Ordering::Relaxed),
        homs_found: G_HOMS_FOUND.load(Ordering::Relaxed),
        plans_compiled: G_PLANS_COMPILED.load(Ordering::Relaxed),
        plan_cache_hits: G_PLAN_CACHE_HITS.load(Ordering::Relaxed),
        prefilter_rejects: G_PREFILTER_REJECTS.load(Ordering::Relaxed),
        plans_reoptimized: G_PLANS_REOPTIMIZED.load(Ordering::Relaxed),
        est_ratio_le_1: G_EST_RATIO_LE_1.load(Ordering::Relaxed),
        est_ratio_le_4: G_EST_RATIO_LE_4.load(Ordering::Relaxed),
        est_ratio_gt_4: G_EST_RATIO_GT_4.load(Ordering::Relaxed),
        sketch_build_ns: G_SKETCH_BUILD_NS.load(Ordering::Relaxed),
    }
}

/// Records one signature-prefilter rejection (local and global counters).
pub fn record_prefilter_reject(stats: &mut HomStats) {
    stats.prefilter_rejects += 1;
    G_PREFILTER_REJECTS.fetch_add(1, Ordering::Relaxed);
}

/// Records one plan reuse that bypassed compilation — for callers that
/// store compiled plans inline (e.g. per sieve entry) instead of going
/// through a [`PlanCache`], which counts its own hits.
pub fn record_plan_reuse(stats: &mut HomStats) {
    stats.plan_cache_hits += 1;
    G_PLAN_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Sentinel for "no upper bound" in an atom's candidate index range.
pub const NO_LIMIT: usize = usize::MAX;

/// Restricts a sorted slice of atom indices to those in `[lo, hi)`.
fn clamp(c: &[usize], lo: usize, hi: usize) -> &[usize] {
    let start = if lo == 0 {
        0
    } else {
        c.partition_point(|&i| i < lo)
    };
    let end = if hi == NO_LIMIT {
        c.len()
    } else {
        c.partition_point(|&i| i < hi)
    };
    &c[start..end.max(start)]
}

/// The 64-bit predicate signature of a set of atoms: bit `p mod 64` is set
/// for every predicate `p` that occurs. A homomorphism maps each atom onto
/// an atom of the *same* predicate, so `hom(q1 → q2)` requires
/// `pred_sig(q1) & !pred_sig(q2) == 0` — a sound, constant-time prefilter.
pub fn pred_sig(atoms: &[Atom]) -> u64 {
    atoms.iter().fold(0u64, |s, a| s | 1u64 << (a.pred.0 % 64))
}

/// The predicate signature of an instance (see [`pred_sig`]).
pub fn instance_sig(inst: &Instance) -> u64 {
    inst.atoms()
        .iter()
        .fold(0u64, |s, a| s | 1u64 << (a.pred.0 % 64))
}

/// Can a homomorphism from something with signature `src` exist into
/// something with signature `dst`? (Necessary, not sufficient.)
pub fn sig_may_hom(src: u64, dst: u64) -> bool {
    src & !dst == 0
}

/// Orders atoms so that atoms sharing variables with already-placed atoms
/// come early (greedy join ordering); reduces backtracking dramatically on
/// chain/star queries. When `first` is given, that atom is pinned to the
/// front (used to lead with the delta pivot, whose candidate set is small)
/// and the greedy rule orders the rest.
///
/// Fully deterministic: the bound-variable set is a sorted vector (no hash
/// iteration anywhere), candidates are scanned in atom-index order, and a
/// tie on (bound terms, unbound variables) keeps the earliest atom.
pub(crate) fn join_order(atoms: &[Atom], seeded: &[VarId], first: Option<usize>) -> Vec<usize> {
    let n = atoms.len();
    let mut placed = vec![false; n];
    let mut bound: Vec<VarId> = seeded.to_vec();
    debug_assert!(
        bound.windows(2).all(|w| w[0] < w[1]),
        "seeded sorted+deduped"
    );
    fn bind(bound: &mut Vec<VarId>, atom: &Atom) {
        for v in atom.vars() {
            if let Err(i) = bound.binary_search(&v) {
                bound.insert(i, v);
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    if let Some(i) = first {
        placed[i] = true;
        order.push(i);
        bind(&mut bound, &atoms[i]);
    }
    while order.len() < n {
        // Pick the unplaced atom with the most bound terms (constants and
        // bound variables), tie-breaking on fewer unbound variables; a full
        // tie keeps the lowest atom index.
        let mut best: Option<(usize, usize, usize)> = None; // (idx, bound#, unbound#)
        for (i, a) in atoms.iter().enumerate() {
            if placed[i] {
                continue;
            }
            let mut b = 0usize;
            let mut u = 0usize;
            for &t in &a.args {
                match t {
                    Term::Var(v) => {
                        if bound.binary_search(&v).is_ok() {
                            b += 1;
                        } else {
                            u += 1;
                        }
                    }
                    _ => b += 1,
                }
            }
            let better = match best {
                None => true,
                Some((_, bb, bu)) => b > bb || (b == bb && u < bu),
            };
            if better {
                best = Some((i, b, u));
            }
        }
        let (i, _, _) = best.unwrap();
        placed[i] = true;
        order.push(i);
        bind(&mut bound, &atoms[i]);
    }
    order
}

/// A costed plan's observed probe work may exceed its prediction by this
/// factor before a [`PlanCache`] re-optimizes it against fresh statistics.
/// Deterministic by construction: the decision depends only on counters
/// that are themselves deterministic per call sequence.
pub const REOPT_FACTOR: u64 = 4;

/// Predictions below this floor are never re-optimization triggers — tiny
/// plans mispredict by large *ratios* while the absolute waste is noise.
pub const REOPT_FLOOR: u64 = 64;

/// Cost-based join ordering over a [`CardSketch`]: picks, at each step, the
/// unplaced atom with the fewest *estimated candidates per probe* and
/// propagates bound variables forward. Returns the order plus the predicted
/// total candidate scans (`Σ frontier × est_candidates`, saturating).
///
/// Estimation: an atom over predicate `p` with `rows` matching atoms is
/// probed through its most selective bound position (`rows / distinct`,
/// rounded up); with no bound position the probe is a full predicate scan
/// (`rows`). The estimated match count per partial assignment — the
/// frontier multiplier — divides `rows` by the product of the bound
/// positions' distinct counts (floored at 1 while the predicate is
/// non-empty). Empty predicates cost 0 and zero the frontier, which sorts
/// them to the front — exactly where a doomed search should start.
///
/// Like [`join_order`], fully deterministic: sketch lookups are keyed (no
/// hash iteration), ties keep (fewer unbound variables, lowest atom index),
/// and `first` pins the semi-naive pivot.
pub(crate) fn cost_order(
    atoms: &[Atom],
    seeded: &[VarId],
    first: Option<usize>,
    sketch: &CardSketch,
) -> (Vec<usize>, u64) {
    let n = atoms.len();
    let mut placed = vec![false; n];
    let mut bound: Vec<VarId> = seeded.to_vec();
    debug_assert!(
        bound.windows(2).all(|w| w[0] < w[1]),
        "seeded sorted+deduped"
    );
    fn bind(bound: &mut Vec<VarId>, atom: &Atom) {
        for v in atom.vars() {
            if let Err(i) = bound.binary_search(&v) {
                bound.insert(i, v);
            }
        }
    }
    // Estimated candidate scans per probe and estimated matches per probe
    // for `atom` under the current bound set; also reports the unbound
    // variable count for tie-breaking.
    let estimate = |atom: &Atom, bound: &[VarId]| -> (u64, u64, usize) {
        let rows = sketch.rows(atom.pred);
        if rows == 0 {
            return (0, 0, 0);
        }
        let mut best_distinct = 1u64; // no bound position => full scan
        let mut sel_product = 1u128;
        let mut unbound = 0usize;
        for (pos, &t) in atom.args.iter().enumerate() {
            let is_bound = match t {
                Term::Var(v) => bound.binary_search(&v).is_ok(),
                _ => true,
            };
            if !is_bound {
                unbound += 1;
                continue;
            }
            let d = sketch.distinct(atom.pred, pos).max(1);
            best_distinct = best_distinct.max(d);
            sel_product = sel_product.saturating_mul(d as u128);
        }
        let cands = rows.div_ceil(best_distinct);
        let matches = ((rows as u128) / sel_product).max(1) as u64;
        (cands, matches, unbound)
    };
    let mut order = Vec::with_capacity(n);
    let mut predicted: u64 = 0;
    let mut frontier: u64 = 1;
    let mut pending = first;
    while order.len() < n {
        let i = match pending.take() {
            Some(i) => i, // the pinned pivot goes first, cost notwithstanding
            None => {
                let mut best: Option<(usize, u64, usize)> = None; // (idx, cands, unbound#)
                for (i, a) in atoms.iter().enumerate() {
                    if placed[i] {
                        continue;
                    }
                    let (cands, _, unbound) = estimate(a, &bound);
                    let better = match best {
                        None => true,
                        Some((_, bc, bu)) => cands < bc || (cands == bc && unbound < bu),
                    };
                    if better {
                        best = Some((i, cands, unbound));
                    }
                }
                best.unwrap().0
            }
        };
        let (cands, matches, _) = estimate(&atoms[i], &bound);
        predicted = predicted.saturating_add(frontier.saturating_mul(cands));
        frontier = frontier.saturating_mul(matches);
        placed[i] = true;
        order.push(i);
        bind(&mut bound, &atoms[i]);
    }
    (order, predicted)
}

/// What to do with one argument position of a plan step when matching a
/// candidate atom.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotAction {
    /// The pattern term is ground: the candidate value must equal it. The
    /// term's [`Term::code`] is precomputed so the inner scan compares
    /// plain `i64`s against the columnar store.
    Fixed(Term, i64),
    /// First occurrence of an unbound variable: write the candidate value
    /// into the slot.
    Bind(usize),
    /// The slot is already bound (seed, earlier step, or earlier position
    /// of this atom): the candidate value must equal the slot.
    Eq(usize),
}

/// The "unbound" sentinel in a dense binding vector. [`Term::code`] is
/// always non-negative, so the sentinel can never collide with a real
/// binding.
const UNBOUND: i64 = i64::MIN;

/// One atom of a compiled plan, in execution order.
#[derive(Clone, Debug, PartialEq, Eq)]
struct PlanStep {
    /// Index of the atom in the *original* body (delta ranges are keyed by
    /// original atom index, not execution position).
    atom: usize,
    pred: PredId,
    /// Per-position actions, left to right.
    actions: Vec<SlotAction>,
    /// Positions whose value is known *before* the candidate scan starts
    /// (ground terms, and variables bound by the seed or an earlier step —
    /// not by an earlier position of the same atom). Ascending; these are
    /// the positions eligible for `(pred, pos, term)` index probes.
    probes: Vec<usize>,
}

/// A compiled homomorphism search: fixed atom order, dense variable slots,
/// and a precomputed per-atom probe strategy. Compile once with
/// [`JoinPlan::compile`] (or fetch from a [`PlanCache`]), then
/// [`JoinPlan::execute`] any number of times against different instances,
/// seeds, and delta ranges.
///
/// The slot layout is independent of the pivot: seeded variables occupy
/// slots `0..seeded.len()` in sorted order, followed by the remaining body
/// variables in first-occurrence order over the *original* atom list. All
/// per-pivot plans of one body therefore share a layout, so callers can
/// precompute slot indices once and reuse them across every pivot plan.
#[derive(Clone, Debug)]
pub struct JoinPlan {
    atoms: Vec<Atom>,
    seeded: Vec<VarId>,
    pivot: Option<usize>,
    order: Vec<usize>,
    slots: Vec<VarId>,
    steps: Vec<PlanStep>,
    sig: u64,
    /// Predicted candidate scans per execution for cost-based plans;
    /// `u64::MAX` for greedy (uncosted) plans, which never re-optimize.
    predicted_cost: u64,
}

/// The slot layout shared by every plan over `(atoms, seeded)`: seeded
/// variables first (sorted), then body variables in first-occurrence order.
fn slot_layout(atoms: &[Atom], seeded: &[VarId]) -> Vec<VarId> {
    let mut slots: Vec<VarId> = seeded.to_vec();
    for a in atoms {
        for v in a.vars() {
            if !slots.contains(&v) {
                slots.push(v);
            }
        }
    }
    slots
}

impl JoinPlan {
    /// Compiles a plan for homomorphisms from `atoms` extending a seed over
    /// `seeded` (sorted and deduplicated internally). `pivot` pins that atom
    /// to the front of the join order (the semi-naive delta pivot). Uses the
    /// statically pinned greedy [`join_order`]; see [`JoinPlan::compile_costed`]
    /// for the statistics-driven variant.
    pub fn compile(atoms: &[Atom], seeded: &[VarId], pivot: Option<usize>) -> JoinPlan {
        let _span = omq_obs::span("hom.compile");
        let mut seeded: Vec<VarId> = seeded.to_vec();
        seeded.sort_unstable();
        seeded.dedup();
        let order = join_order(atoms, &seeded, pivot);
        Self::finish(atoms, seeded, pivot, order, u64::MAX)
    }

    /// Compiles a cost-based plan: the atom order comes from [`cost_order`]
    /// over `sketch` (per-predicate cardinalities and per-position
    /// distinct-value counts) and the resulting predicted candidate count is
    /// stored on the plan, enabling the [`PlanCache`] divergence check.
    /// Deterministic for a given `(atoms, seeded, pivot, sketch)` — and the
    /// sketch itself is a function of instance content only.
    pub fn compile_costed(
        atoms: &[Atom],
        seeded: &[VarId],
        pivot: Option<usize>,
        sketch: &CardSketch,
    ) -> JoinPlan {
        let _span = omq_obs::span("hom.plan.cost");
        let mut seeded: Vec<VarId> = seeded.to_vec();
        seeded.sort_unstable();
        seeded.dedup();
        let (order, predicted) = cost_order(atoms, &seeded, pivot, sketch);
        Self::finish(atoms, seeded, pivot, order, predicted)
    }

    fn finish(
        atoms: &[Atom],
        seeded: Vec<VarId>,
        pivot: Option<usize>,
        order: Vec<usize>,
        predicted_cost: u64,
    ) -> JoinPlan {
        let slots = slot_layout(atoms, &seeded);
        let slot_of = |v: VarId| slots.iter().position(|&w| w == v).unwrap();
        let mut bound = vec![false; slots.len()];
        bound[..seeded.len()].fill(true);
        let mut steps = Vec::with_capacity(order.len());
        for &ai in &order {
            let a = &atoms[ai];
            let mut actions = Vec::with_capacity(a.args.len());
            let mut probes = Vec::new();
            let mut bound_now = bound.clone();
            for (pos, &t) in a.args.iter().enumerate() {
                match t {
                    Term::Var(v) => {
                        let s = slot_of(v);
                        if bound_now[s] {
                            actions.push(SlotAction::Eq(s));
                            if bound[s] {
                                probes.push(pos); // known before the scan
                            }
                        } else {
                            actions.push(SlotAction::Bind(s));
                            bound_now[s] = true;
                        }
                    }
                    ground => {
                        actions.push(SlotAction::Fixed(ground, ground.code()));
                        probes.push(pos);
                    }
                }
            }
            bound = bound_now;
            steps.push(PlanStep {
                atom: ai,
                pred: a.pred,
                actions,
                probes,
            });
        }
        let sig = pred_sig(atoms);
        G_PLANS_COMPILED.fetch_add(1, Ordering::Relaxed);
        JoinPlan {
            atoms: atoms.to_vec(),
            seeded,
            pivot,
            order,
            slots,
            steps,
            sig,
            predicted_cost,
        }
    }

    /// The predicted candidate scans per execution, for cost-based plans.
    pub fn predicted_cost(&self) -> Option<u64> {
        (self.predicted_cost != u64::MAX).then_some(self.predicted_cost)
    }

    /// The atoms this plan matches (original order).
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The seeded variables, sorted and deduplicated; [`JoinPlan::execute`]
    /// seeds are parallel to this list.
    pub fn seeded(&self) -> &[VarId] {
        &self.seeded
    }

    /// The pinned delta pivot, if any.
    pub fn pivot(&self) -> Option<usize> {
        self.pivot
    }

    /// The compiled join order (original atom indices, execution order).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The slot layout: `slots()[s]` is the variable stored in slot `s`.
    pub fn slots(&self) -> &[VarId] {
        &self.slots
    }

    /// The slot of `v`, if `v` occurs in the plan.
    pub fn slot_of(&self, v: VarId) -> Option<usize> {
        self.slots.iter().position(|&w| w == v)
    }

    /// The predicate signature of the plan's atoms (see [`pred_sig`]).
    pub fn sig(&self) -> u64 {
        self.sig
    }

    /// Converts seed `(var, value)` pairs into the dense seed vector
    /// expected by [`JoinPlan::execute`] (parallel to [`JoinPlan::seeded`]).
    /// Returns `None` when duplicate pairs conflict — the caller should
    /// treat that as "no homomorphism" (e.g. `q(x,x)` probed with tuple
    /// `(a,b)`).
    ///
    /// # Panics
    /// Panics (debug) if the pairs do not cover exactly the seeded set.
    pub fn seed_values(&self, pairs: &[(VarId, Term)]) -> Option<Vec<Term>> {
        let mut vals: Vec<Option<Term>> = vec![None; self.seeded.len()];
        for &(v, t) in pairs {
            let i = self
                .seeded
                .binary_search(&v)
                .expect("seed var not in the plan's seeded set");
            match vals[i] {
                Some(prev) if prev != t => return None,
                _ => vals[i] = Some(t),
            }
        }
        Some(
            vals.into_iter()
                .map(|o| o.expect("seed pairs must cover the seeded set"))
                .collect(),
        )
    }

    /// Enumerates homomorphisms from the plan's atoms into `inst` extending
    /// `seed` (parallel to [`JoinPlan::seeded`]), invoking `f` for each;
    /// stop early by returning [`ControlFlow::Break`]. `ranges`, when given,
    /// restricts each *original* atom index to candidate instance-atom
    /// indices in `[lo, hi)` (`hi == NO_LIMIT` for unbounded) — the
    /// semi-naive delta discipline.
    ///
    /// Work counters accumulate into `stats` (and the process-global
    /// counters behind [`global_hom_snapshot`]).
    pub fn execute<B>(
        &self,
        inst: &Instance,
        seed: &[Term],
        ranges: Option<&[(usize, usize)]>,
        stats: &mut HomStats,
        mut f: impl FnMut(&HomView) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        debug_assert_eq!(seed.len(), self.seeded.len());
        let mut bindings: Vec<i64> = vec![UNBOUND; self.slots.len()];
        for (b, &t) in bindings.iter_mut().zip(seed) {
            *b = t.code();
        }
        let mut local = HomStats::default();
        let res = self.step(0, inst, ranges, &mut bindings, &mut local, &mut f);
        stats.absorb(local);
        G_CANDIDATES_SCANNED.fetch_add(local.candidates_scanned, Ordering::Relaxed);
        G_BACKTRACKS.fetch_add(local.backtracks, Ordering::Relaxed);
        G_HOMS_FOUND.fetch_add(local.homs_found, Ordering::Relaxed);
        res
    }

    /// The backtracking core over compiled steps: candidates come from the
    /// most selective probe index (first strictly smaller candidate list in
    /// position order — the same runtime rule as the reference kernel),
    /// restricted to the atom's `[lo, hi)` range. The per-candidate match
    /// runs over the instance's columnar `i64` store (one flat column per
    /// argument position) rather than the boxed `Atom` vector — same
    /// candidate lists, same scan order, same counters, but the inner loop
    /// is branch-light integer compares with no pointer chasing.
    fn step<B>(
        &self,
        depth: usize,
        inst: &Instance,
        ranges: Option<&[(usize, usize)]>,
        bindings: &mut Vec<i64>,
        stats: &mut HomStats,
        f: &mut impl FnMut(&HomView) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        if depth == self.steps.len() {
            stats.homs_found += 1;
            return f(&HomView {
                slots: &self.slots,
                bindings,
            });
        }
        let st = &self.steps[depth];
        let (lo, hi) = match ranges {
            Some(r) => r[st.atom],
            None => (0, NO_LIMIT),
        };
        let mut best: Option<&[usize]> = None;
        for &pos in &st.probes {
            let val = match st.actions[pos] {
                SlotAction::Fixed(t, _) => t,
                SlotAction::Eq(s) => {
                    debug_assert_ne!(bindings[s], UNBOUND, "probe slot is bound");
                    Term::from_code(bindings[s])
                }
                SlotAction::Bind(_) => unreachable!("a bind position is never a probe"),
            };
            let c = clamp(inst.atoms_with_pred_term(st.pred, pos, val), lo, hi);
            if best.is_none_or(|b| c.len() < b.len()) {
                best = Some(c);
            }
        }
        let candidates = best.unwrap_or_else(|| clamp(inst.atoms_with_pred(st.pred), lo, hi));
        let cols = inst.columns(st.pred);

        // SIMD-width unrolled probe scan. Every probe position compares the
        // candidate against a value that is *constant for the whole scan*
        // (a ground code, or a slot bound before this step — deeper steps
        // never rebind it and this step's own binds are reset per row), so
        // those compares are hoisted into an 8-candidate-at-a-time filter
        // pass over the columnar store with compile-time lane counts. Only
        // survivors run the per-row bind/intra-row-equality actions.
        // Candidates are *attributed* strictly in order — a lane's counters
        // are bumped only when its turn comes, and an early `Break` leaves
        // later lanes uncounted — so enumeration order, `candidates_scanned`
        // and `backtracks` are bit-identical to the scalar reference (a
        // candidate fails iff some compare fails, wherever it runs).
        const LANES: usize = 8;
        let arity = st.actions.len();
        let mut pre_vals = [0i64; 64];
        let mut probe_mask = 0u64;
        let unrolled = arity <= 64;
        if unrolled {
            for (k, &pos) in st.probes.iter().enumerate() {
                probe_mask |= 1u64 << pos;
                pre_vals[k] = match st.actions[pos] {
                    SlotAction::Fixed(_, code) => code,
                    SlotAction::Eq(s) => bindings[s],
                    SlotAction::Bind(_) => unreachable!("a bind position is never a probe"),
                };
            }
        }
        let full = if unrolled {
            candidates.len() / LANES * LANES
        } else {
            0
        };
        for chunk in candidates[..full].chunks_exact(LANES) {
            let mut rows = [0usize; LANES];
            for j in 0..LANES {
                rows[j] = inst.row_of(chunk[j]);
            }
            let mut fail = [false; LANES];
            for (k, &pos) in st.probes.iter().enumerate() {
                let expected = pre_vals[k];
                let col = &cols[pos];
                for j in 0..LANES {
                    fail[j] |= col[rows[j]] != expected;
                }
            }
            for j in 0..LANES {
                stats.candidates_scanned += 1;
                if fail[j] {
                    stats.backtracks += 1;
                    continue;
                }
                let row = rows[j];
                let mut failed_at = None;
                for (pos, action) in st.actions.iter().enumerate() {
                    if probe_mask >> pos & 1 == 1 {
                        continue; // already filtered
                    }
                    let val = cols[pos][row];
                    let ok = match *action {
                        SlotAction::Fixed(_, code) => code == val,
                        SlotAction::Eq(s) => bindings[s] == val,
                        SlotAction::Bind(s) => {
                            bindings[s] = val;
                            true
                        }
                    };
                    if !ok {
                        failed_at = Some(pos);
                        break;
                    }
                }
                if let Some(pos) = failed_at {
                    for (p, a) in st.actions.iter().enumerate().take(pos) {
                        if probe_mask >> p & 1 == 0 {
                            if let SlotAction::Bind(s) = *a {
                                bindings[s] = UNBOUND;
                            }
                        }
                    }
                    stats.backtracks += 1;
                    continue;
                }
                let res = self.step(depth + 1, inst, ranges, bindings, stats, f);
                for a in &st.actions {
                    if let SlotAction::Bind(s) = *a {
                        bindings[s] = UNBOUND;
                    }
                }
                res?;
            }
        }

        // Scalar tail (and fallback for atoms wider than the 64-position
        // probe mask): the original reference loop, byte for byte.
        'cands: for &ci in &candidates[full..] {
            stats.candidates_scanned += 1;
            let row = inst.row_of(ci);
            for (pos, action) in st.actions.iter().enumerate() {
                let val = cols[pos][row];
                let ok = match *action {
                    SlotAction::Fixed(_, code) => code == val,
                    SlotAction::Eq(s) => bindings[s] == val,
                    SlotAction::Bind(s) => {
                        bindings[s] = val;
                        true
                    }
                };
                if !ok {
                    for a in &st.actions[..pos] {
                        if let SlotAction::Bind(s) = *a {
                            bindings[s] = UNBOUND;
                        }
                    }
                    stats.backtracks += 1;
                    continue 'cands;
                }
            }
            let res = self.step(depth + 1, inst, ranges, bindings, stats, f);
            for a in &st.actions {
                if let SlotAction::Bind(s) = *a {
                    bindings[s] = UNBOUND;
                }
            }
            res?;
        }
        ControlFlow::Continue(())
    }
}

/// A complete homomorphism as seen by a plan-execution callback: dense slot
/// bindings (as [`Term::code`]s) plus the plan's slot layout. Borrow-only;
/// call [`HomView::to_assignment`] to materialise a map (the legacy shape).
pub struct HomView<'a> {
    slots: &'a [VarId],
    bindings: &'a [i64],
}

impl HomView<'_> {
    /// The image of variable `v`, if bound.
    pub fn get(&self, v: VarId) -> Option<Term> {
        self.slots
            .iter()
            .position(|&w| w == v)
            .and_then(|s| self.slot(s))
    }

    /// The value in slot `s` (precompute slots via [`JoinPlan::slot_of`]).
    pub fn slot(&self, s: usize) -> Option<Term> {
        let code = self.bindings[s];
        (code != UNBOUND).then(|| Term::from_code(code))
    }

    /// The raw dense binding codes, parallel to [`JoinPlan::slots`]; every
    /// slot of a complete homomorphism holds a [`Term::code`].
    pub fn codes(&self) -> &[i64] {
        self.bindings
    }

    /// Materialises the bound slots as an [`Assignment`] (seed entries
    /// included — exactly the map the pre-plan kernel handed out).
    pub fn to_assignment(&self) -> Assignment {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(s, &v)| self.slot(s).map(|t| (v, t)))
            .collect()
    }
}

/// Fingerprint of a plan's identity `(atoms, seeded, pivot)` for cache
/// bucketing; buckets resolve collisions by full structural comparison.
fn plan_fingerprint(atoms: &[Atom], seeded: &[VarId], pivot: Option<usize>) -> u64 {
    let mut h = DefaultHasher::new();
    atoms.hash(&mut h);
    seeded.hash(&mut h);
    pivot.hash(&mut h);
    h.finish()
}

/// One cached plan plus its running estimate-vs-observation ledger, the
/// state behind adaptive re-optimization.
struct CachedPlan {
    plan: Arc<JoinPlan>,
    /// Candidate scans reported through [`PlanCache::note_execution`] since
    /// the plan was (re)compiled.
    observed: u64,
    /// Executions reported since the plan was (re)compiled.
    execs: u64,
}

impl CachedPlan {
    fn fresh(plan: Arc<JoinPlan>) -> CachedPlan {
        CachedPlan {
            plan,
            observed: 0,
            execs: 0,
        }
    }

    /// Has the observed per-execution probe work diverged from the
    /// prediction by more than [`REOPT_FACTOR`]? Only costed plans with at
    /// least one observed execution can diverge; predictions below
    /// [`REOPT_FLOOR`] are clamped up so tiny plans never churn.
    fn diverged(&self) -> bool {
        if self.plan.predicted_cost == u64::MAX || self.execs == 0 {
            return false;
        }
        let allowance = REOPT_FACTOR
            .saturating_mul(self.plan.predicted_cost.max(REOPT_FLOOR))
            .saturating_mul(self.execs);
        self.observed > allowance
    }
}

/// A cache of compiled [`JoinPlan`]s keyed by `(atoms, seeded, pivot)`.
/// Single-owner (`&mut` API); share plans across threads via the returned
/// `Arc`s. Hits and misses are counted into the caller's [`HomStats`] and
/// the process-global counters.
///
/// Plans fetched through [`PlanCache::get_or_compile_costed`] are
/// *adaptive*: callers report each execution's candidate scans back via
/// [`PlanCache::note_execution`], and a later fetch whose accumulated
/// observation exceeds the plan's prediction by [`REOPT_FACTOR`] recompiles
/// the plan against fresh instance statistics (counted as
/// `plans_reoptimized`). Both the estimates and the observations are
/// deterministic per call sequence, so replan decisions are reproducible at
/// any thread count.
#[derive(Default)]
pub struct PlanCache {
    map: HashMap<u64, Vec<CachedPlan>>,
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns the cached plan for `(atoms, seeded, pivot)`, compiling and
    /// inserting it on a miss (greedy order; never re-optimized).
    pub fn get_or_compile(
        &mut self,
        atoms: &[Atom],
        seeded: &[VarId],
        pivot: Option<usize>,
        stats: &mut HomStats,
    ) -> Arc<JoinPlan> {
        self.fetch(atoms, seeded, pivot, stats, None)
    }

    /// Like [`PlanCache::get_or_compile`], but misses compile a cost-based
    /// plan from `inst`'s cardinality sketch, and hits whose observed probe
    /// work has diverged from the prediction (see [`REOPT_FACTOR`]) are
    /// recompiled against the *current* sketch first.
    pub fn get_or_compile_costed(
        &mut self,
        atoms: &[Atom],
        seeded: &[VarId],
        pivot: Option<usize>,
        inst: &Instance,
        stats: &mut HomStats,
    ) -> Arc<JoinPlan> {
        self.fetch(atoms, seeded, pivot, stats, Some(inst))
    }

    fn fetch(
        &mut self,
        atoms: &[Atom],
        seeded: &[VarId],
        pivot: Option<usize>,
        stats: &mut HomStats,
        inst: Option<&Instance>,
    ) -> Arc<JoinPlan> {
        let mut norm: Vec<VarId> = seeded.to_vec();
        norm.sort_unstable();
        norm.dedup();
        let fp = plan_fingerprint(atoms, &norm, pivot);
        let bucket = self.map.entry(fp).or_default();
        if let Some(entry) = bucket
            .iter_mut()
            .find(|e| e.plan.pivot == pivot && e.plan.seeded == norm && e.plan.atoms == atoms)
        {
            if let Some(inst) = inst {
                if entry.diverged() {
                    let sketch = timed_sketch(inst, stats);
                    *entry = CachedPlan::fresh(Arc::new(JoinPlan::compile_costed(
                        atoms, &norm, pivot, &sketch,
                    )));
                    stats.plans_reoptimized += 1;
                    G_PLANS_REOPTIMIZED.fetch_add(1, Ordering::Relaxed);
                    omq_obs::counter("hom.plan.reopt", 1);
                    return Arc::clone(&entry.plan);
                }
            }
            stats.plan_cache_hits += 1;
            G_PLAN_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&entry.plan);
        }
        let plan = match inst {
            Some(inst) => {
                let sketch = timed_sketch(inst, stats);
                Arc::new(JoinPlan::compile_costed(atoms, &norm, pivot, &sketch))
            }
            None => Arc::new(JoinPlan::compile(atoms, &norm, pivot)),
        };
        stats.plans_compiled += 1;
        bucket.push(CachedPlan::fresh(Arc::clone(&plan)));
        plan
    }

    /// Reports one execution of `plan`: `candidates` is the execution's
    /// `candidates_scanned` delta. Feeds the divergence ledger and the
    /// estimate-quality buckets (`est_ratio_*`). No-op for plans this cache
    /// does not hold (e.g. compiled inline by the caller).
    pub fn note_execution(&mut self, plan: &Arc<JoinPlan>, candidates: u64, stats: &mut HomStats) {
        record_estimate_quality(plan, candidates, stats);
        let fp = plan_fingerprint(&plan.atoms, &plan.seeded, plan.pivot);
        if let Some(entry) = self
            .map
            .get_mut(&fp)
            .and_then(|b| b.iter_mut().find(|e| Arc::ptr_eq(&e.plan, plan)))
        {
            entry.observed = entry.observed.saturating_add(candidates);
            entry.execs += 1;
        }
    }
}

/// Builds `inst`'s cardinality sketch, charging the build time to the
/// sketch counters (local and global).
fn timed_sketch(inst: &Instance, stats: &mut HomStats) -> CardSketch {
    let t = Instant::now();
    let sketch = inst.card_sketch();
    let ns = t.elapsed().as_nanos() as u64;
    stats.sketch_build_ns += ns;
    G_SKETCH_BUILD_NS.fetch_add(ns, Ordering::Relaxed);
    sketch
}

/// Buckets one costed-plan execution by observed/predicted candidate ratio
/// (`≤1`, `≤REOPT_FACTOR`, `>REOPT_FACTOR`). Greedy plans carry no
/// prediction and are not bucketed.
pub(crate) fn record_estimate_quality(plan: &JoinPlan, candidates: u64, stats: &mut HomStats) {
    let Some(predicted) = plan.predicted_cost() else {
        return;
    };
    let predicted = predicted.max(1);
    if candidates <= predicted {
        stats.est_ratio_le_1 += 1;
        G_EST_RATIO_LE_1.fetch_add(1, Ordering::Relaxed);
    } else if candidates <= REOPT_FACTOR.saturating_mul(predicted) {
        stats.est_ratio_le_4 += 1;
        G_EST_RATIO_LE_4.fetch_add(1, Ordering::Relaxed);
    } else {
        stats.est_ratio_gt_4 += 1;
        G_EST_RATIO_GT_4.fetch_add(1, Ordering::Relaxed);
    }
}

/// Builds the instance's cardinality sketch (timed into the sketch
/// counters) and compiles an uncached cost-based plan — the convenience
/// path for call sites that hold plans inline rather than in a
/// [`PlanCache`].
pub fn compile_costed_for(
    atoms: &[Atom],
    seeded: &[VarId],
    pivot: Option<usize>,
    inst: &Instance,
    stats: &mut HomStats,
) -> JoinPlan {
    let sketch = timed_sketch(inst, stats);
    JoinPlan::compile_costed(atoms, seeded, pivot, &sketch)
}

/// Splits a legacy [`Assignment`] seed into the sorted var list and the
/// parallel value vector a plan expects.
fn split_seed(seed: &Assignment) -> (Vec<VarId>, Vec<Term>) {
    let mut pairs: Vec<(VarId, Term)> = seed.iter().map(|(&v, &t)| (v, t)).collect();
    pairs.sort_unstable_by_key(|&(v, _)| v);
    pairs.into_iter().unzip()
}

/// Enumerates homomorphisms from `atoms` into `inst` extending `seed`,
/// invoking `f` for each; stop early by returning [`ControlFlow::Break`].
///
/// Returns `Break(x)` when `f` broke with `x`, `Continue(())` when the
/// enumeration was exhausted.
///
/// Thin wrapper over uncached plan compilation; hot callers should compile
/// (or cache) a [`JoinPlan`] and call [`JoinPlan::execute`] directly.
pub fn for_each_hom<B>(
    atoms: &[Atom],
    inst: &Instance,
    seed: &Assignment,
    mut f: impl FnMut(&Assignment) -> ControlFlow<B>,
) -> ControlFlow<B> {
    let mut stats = HomStats::default();
    for_each_hom_with_delta(atoms, inst, seed, 0, &mut stats, &mut f)
}

/// Like [`for_each_hom`], but restricted to homomorphisms whose image uses
/// at least one atom with index `>= delta_start` — the "new" atoms of a
/// semi-naive round. With `delta_start == 0` this is exactly
/// [`for_each_hom`] (everything is new).
///
/// The delta constraint is enforced by pivoting: for each body-atom position
/// `p`, one enumeration pass maps atoms before `p` into the old prefix
/// (`< delta_start`), atom `p` into the delta (`>= delta_start`), and later
/// atoms anywhere. Each qualifying homomorphism has exactly one first-new
/// position, so the passes partition the delta-touching homomorphisms: no
/// duplicates, no misses, no dedup set.
///
/// Work counters accumulate into `stats`.
pub fn for_each_hom_with_delta<B>(
    atoms: &[Atom],
    inst: &Instance,
    seed: &Assignment,
    delta_start: usize,
    stats: &mut HomStats,
    mut f: impl FnMut(&Assignment) -> ControlFlow<B>,
) -> ControlFlow<B> {
    let (vars, vals) = split_seed(seed);
    if delta_start == 0 {
        let plan = JoinPlan::compile(atoms, &vars, None);
        return plan.execute(inst, &vals, None, stats, |h| f(&h.to_assignment()));
    }
    if delta_start >= inst.len() {
        return ControlFlow::Continue(()); // no new atoms, hence no new homs
    }
    let mut ranges = vec![(0usize, NO_LIMIT); atoms.len()];
    for pivot in 0..atoms.len() {
        if inst
            .atoms_with_pred_from(atoms[pivot].pred, delta_start)
            .is_empty()
        {
            continue; // this pivot's delta slice is empty
        }
        for (i, r) in ranges.iter_mut().enumerate() {
            *r = match i.cmp(&pivot) {
                std::cmp::Ordering::Less => (0, delta_start),
                std::cmp::Ordering::Equal => (delta_start, NO_LIMIT),
                std::cmp::Ordering::Greater => (0, NO_LIMIT),
            };
        }
        let plan = JoinPlan::compile(atoms, &vars, Some(pivot));
        plan.execute(inst, &vals, Some(&ranges), stats, |h| f(&h.to_assignment()))?;
    }
    ControlFlow::Continue(())
}

/// Finds one homomorphism from `atoms` into `inst` extending `seed`.
pub fn find_hom(atoms: &[Atom], inst: &Instance, seed: &Assignment) -> Option<Assignment> {
    match for_each_hom(atoms, inst, seed, |h| ControlFlow::Break(h.clone())) {
        ControlFlow::Break(h) => Some(h),
        ControlFlow::Continue(()) => None,
    }
}

/// The pre-plan backtracking kernel, kept verbatim as the differential
/// oracle for the compiled executor (see the `plan_vs_reference` property
/// test). Not part of the supported API.
#[doc(hidden)]
pub mod reference {
    use std::collections::HashSet;

    use super::*;

    /// Applies an assignment to a term (identity on constants and nulls;
    /// unbound variables stay put).
    fn image(h: &Assignment, t: Term) -> Term {
        match t {
            Term::Var(v) => h.get(&v).copied().unwrap_or(t),
            other => other,
        }
    }

    fn join_order(atoms: &[Atom], seed: &Assignment, first: Option<usize>) -> Vec<usize> {
        let n = atoms.len();
        let mut placed = vec![false; n];
        let mut bound: HashSet<VarId> = seed.keys().copied().collect();
        let mut order = Vec::with_capacity(n);
        if let Some(i) = first {
            placed[i] = true;
            order.push(i);
            bound.extend(atoms[i].vars());
        }
        while order.len() < n {
            let mut best: Option<(usize, usize, usize)> = None;
            for (i, a) in atoms.iter().enumerate() {
                if placed[i] {
                    continue;
                }
                let mut b = 0usize;
                let mut u = 0usize;
                for &t in &a.args {
                    match t {
                        Term::Var(v) => {
                            if bound.contains(&v) {
                                b += 1;
                            } else {
                                u += 1;
                            }
                        }
                        _ => b += 1,
                    }
                }
                let better = match best {
                    None => true,
                    Some((_, bb, bu)) => b > bb || (b == bb && u < bu),
                };
                if better {
                    best = Some((i, b, u));
                }
            }
            let (i, _, _) = best.unwrap();
            placed[i] = true;
            order.push(i);
            bound.extend(atoms[i].vars());
        }
        order
    }

    /// Reference twin of [`super::for_each_hom`].
    pub fn for_each_hom<B>(
        atoms: &[Atom],
        inst: &Instance,
        seed: &Assignment,
        mut f: impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let mut stats = HomStats::default();
        for_each_hom_with_delta(atoms, inst, seed, 0, &mut stats, &mut f)
    }

    /// Reference twin of [`super::for_each_hom_with_delta`].
    pub fn for_each_hom_with_delta<B>(
        atoms: &[Atom],
        inst: &Instance,
        seed: &Assignment,
        delta_start: usize,
        stats: &mut HomStats,
        mut f: impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        if delta_start == 0 {
            let order = join_order(atoms, seed, None);
            let ranges = vec![(0, NO_LIMIT); atoms.len()];
            let mut h = seed.clone();
            return rec(atoms, &order, &ranges, 0, inst, &mut h, stats, &mut f);
        }
        if delta_start >= inst.len() {
            return ControlFlow::Continue(());
        }
        let mut ranges = vec![(0usize, NO_LIMIT); atoms.len()];
        for pivot in 0..atoms.len() {
            if inst
                .atoms_with_pred_from(atoms[pivot].pred, delta_start)
                .is_empty()
            {
                continue;
            }
            for (i, r) in ranges.iter_mut().enumerate() {
                *r = match i.cmp(&pivot) {
                    std::cmp::Ordering::Less => (0, delta_start),
                    std::cmp::Ordering::Equal => (delta_start, NO_LIMIT),
                    std::cmp::Ordering::Greater => (0, NO_LIMIT),
                };
            }
            let order = join_order(atoms, seed, Some(pivot));
            let mut h = seed.clone();
            rec(atoms, &order, &ranges, 0, inst, &mut h, stats, &mut f)?;
        }
        ControlFlow::Continue(())
    }

    #[allow(clippy::too_many_arguments)]
    fn rec<B>(
        atoms: &[Atom],
        order: &[usize],
        ranges: &[(usize, usize)],
        depth: usize,
        inst: &Instance,
        h: &mut Assignment,
        stats: &mut HomStats,
        f: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        if depth == order.len() {
            stats.homs_found += 1;
            return f(h);
        }
        let ai = order[depth];
        let a = &atoms[ai];
        let (lo, hi) = ranges[ai];
        let mut best: Option<&[usize]> = None;
        for (pos, &t) in a.args.iter().enumerate() {
            let ti = image(h, t);
            if !ti.is_var() {
                let c = clamp(inst.atoms_with_pred_term(a.pred, pos, ti), lo, hi);
                if best.is_none_or(|b| c.len() < b.len()) {
                    best = Some(c);
                }
            }
        }
        let candidates = best.unwrap_or_else(|| clamp(inst.atoms_with_pred(a.pred), lo, hi));
        'cands: for &ci in candidates {
            stats.candidates_scanned += 1;
            let cand = inst.atom(ci);
            let mut newly: Vec<VarId> = Vec::new();
            for (&pat, &val) in a.args.iter().zip(&cand.args) {
                match pat {
                    Term::Var(v) => match h.get(&v) {
                        Some(&bound) => {
                            if bound != val {
                                for w in newly.drain(..) {
                                    h.remove(&w);
                                }
                                stats.backtracks += 1;
                                continue 'cands;
                            }
                        }
                        None => {
                            h.insert(v, val);
                            newly.push(v);
                        }
                    },
                    t => {
                        if t != val {
                            for w in newly.drain(..) {
                                h.remove(&w);
                            }
                            stats.backtracks += 1;
                            continue 'cands;
                        }
                    }
                }
            }
            let res = rec(atoms, order, ranges, depth + 1, inst, h, stats, f);
            for w in newly.drain(..) {
                h.remove(&w);
            }
            res?;
        }
        ControlFlow::Continue(())
    }

    /// Reference twin of [`super::find_hom`].
    pub fn find_hom(atoms: &[Atom], inst: &Instance, seed: &Assignment) -> Option<Assignment> {
        match for_each_hom(atoms, inst, seed, |h| ControlFlow::Break(h.clone())) {
            ControlFlow::Break(h) => Some(h),
            ControlFlow::Continue(()) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, parse_query, Vocabulary};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            // Parse each fact as a fact tgd head.
            let t = omq_model::parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    #[test]
    fn finds_simple_hom() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(b,c)", "P(c)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y), R(Y,Z), P(Z)").unwrap();
        let h = find_hom(&q.body, &d, &Assignment::new()).expect("hom exists");
        let a = voc.const_id("a").unwrap();
        assert_eq!(h[&voc.var_id("X").unwrap()], Term::Const(a));
    }

    #[test]
    fn no_hom_when_pattern_absent() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "P(a)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y), P(Y)").unwrap();
        assert!(find_hom(&q.body, &d, &Assignment::new()).is_none());
    }

    #[test]
    fn respects_seed() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(c,b)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- R(X,Y)").unwrap();
        let x = voc.var_id("X").unwrap();
        let c = voc.const_id("c").unwrap();
        let mut seed = Assignment::new();
        seed.insert(x, Term::Const(c));
        let h = find_hom(&q.body, &d, &seed).unwrap();
        assert_eq!(h[&x], Term::Const(c));
        let a = voc.const_id("a").unwrap();
        let mut bad = Assignment::new();
        bad.insert(x, Term::Const(voc.constant("zz")));
        assert!(find_hom(&q.body, &d, &bad).is_none());
        let _ = a;
    }

    #[test]
    fn repeated_variables_must_agree() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,X)").unwrap();
        assert!(find_hom(&q.body, &d, &Assignment::new()).is_none());
        let d2 = db(&mut voc, &["R(a,a)"]);
        assert!(find_hom(&q.body, &d2, &Assignment::new()).is_some());
    }

    #[test]
    fn constants_in_query_must_match() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(a,X)").unwrap();
        assert!(find_hom(&q.body, &d, &Assignment::new()).is_some());
        let (_, q2) = parse_query(&mut voc, "q :- R(b,X)").unwrap();
        assert!(find_hom(&q2.body, &d, &Assignment::new()).is_none());
    }

    #[test]
    fn enumerates_all_homs() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(a,c)", "R(b,c)"]);
        let (_, q) = parse_query(&mut voc, "q(X,Y) :- R(X,Y)").unwrap();
        let mut count = 0;
        let _ = for_each_hom(&q.body, &d, &Assignment::new(), |_| {
            count += 1;
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["P(a)", "P(b)", "P(c)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- P(X)").unwrap();
        let mut count = 0;
        let r = for_each_hom(&q.body, &d, &Assignment::new(), |_| {
            count += 1;
            if count == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(r, ControlFlow::Break(()));
        assert_eq!(count, 2);
    }

    #[test]
    fn delta_enumeration_partitions_new_homs() {
        let mut voc = Vocabulary::new();
        let mut d = db(&mut voc, &["R(a,b)", "R(b,c)"]);
        let (_, q) = parse_query(&mut voc, "q(X,Z) :- R(X,Y), R(Y,Z)").unwrap();
        // Baseline: one hom (a,b,c).
        let delta_start = d.len();
        // Add R(c,d): the new homs are exactly those using it.
        let t = omq_model::parse_tgd(&mut voc, "true -> R(c,d)").unwrap();
        for a in t.head {
            d.insert(a);
        }
        let mut stats = HomStats::default();
        let mut delta_homs = 0;
        let _ = for_each_hom_with_delta(
            &q.body,
            &d,
            &Assignment::new(),
            delta_start,
            &mut stats,
            |_| {
                delta_homs += 1;
                ControlFlow::<()>::Continue(())
            },
        );
        // Only (b,c,d) is new; (a,b,c) predates the watermark.
        assert_eq!(delta_homs, 1);
        assert_eq!(stats.homs_found, 1);
        assert!(stats.candidates_scanned > 0);
        // Full enumeration still sees both.
        let mut all = 0;
        let _ = for_each_hom(&q.body, &d, &Assignment::new(), |_| {
            all += 1;
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(all, 2);
    }

    #[test]
    fn delta_enumeration_no_duplicates_on_multi_new() {
        // Both body atoms can map into the delta; the pivot decomposition
        // must yield each new hom exactly once.
        let mut voc = Vocabulary::new();
        let mut d = db(&mut voc, &["P(z)"]);
        let delta_start = d.len();
        for f in ["R(a,b)", "R(b,c)", "R(c,a)"] {
            let t = omq_model::parse_tgd(&mut voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                d.insert(a);
            }
        }
        let (_, q) = parse_query(&mut voc, "q(X,Z) :- R(X,Y), R(Y,Z)").unwrap();
        let mut stats = HomStats::default();
        let mut seen = Vec::new();
        let _ = for_each_hom_with_delta(
            &q.body,
            &d,
            &Assignment::new(),
            delta_start,
            &mut stats,
            |h| {
                let mut tuple: Vec<String> =
                    h.iter().map(|(k, v)| format!("{k:?}->{v:?}")).collect();
                tuple.sort();
                seen.push(tuple);
                ControlFlow::<()>::Continue(())
            },
        );
        let n = seen.len();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), n, "pivot passes must not duplicate homs");
        assert_eq!(n, 3, "the 3-cycle has 3 R-R paths, all new");
    }

    #[test]
    fn delta_enumeration_empty_when_no_new_atoms() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y)").unwrap();
        let mut stats = HomStats::default();
        let mut count = 0;
        let _ =
            for_each_hom_with_delta(&q.body, &d, &Assignment::new(), d.len(), &mut stats, |_| {
                count += 1;
                ControlFlow::<()>::Continue(())
            });
        assert_eq!(count, 0);
        assert_eq!(stats.candidates_scanned, 0);
    }

    #[test]
    fn larger_join_uses_program_parser() {
        let prog =
            parse_program("q(X,Z) :- E(X,Y), E(Y,Z), Color(X, red), Color(Z, red)\n").unwrap();
        let mut voc = prog.voc.clone();
        let d = db(
            &mut voc,
            &[
                "E(n1,n2)",
                "E(n2,n3)",
                "E(n3,n4)",
                "Color(n1, red)",
                "Color(n3, red)",
                "Color(n4, blue)",
            ],
        );
        let q = prog.query("q").unwrap().as_cq().unwrap();
        let h = find_hom(&q.body, &d, &Assignment::new()).expect("n1 -E-> n2 -E-> n3");
        let n1 = voc.const_id("n1").unwrap();
        assert_eq!(h[&q.head[0]], Term::Const(n1));
    }

    /// Satellite: the greedy join order is pinned for a chain query. All
    /// three atoms tie initially (0 bound, 2 unbound), so the earliest atom
    /// wins; each later pick has one bound variable.
    #[test]
    fn join_order_is_pinned_for_chain() {
        let mut voc = Vocabulary::new();
        let (_, q) = parse_query(&mut voc, "q(X,W) :- E(X,Y), E(Y,Z), E(Z,W)").unwrap();
        let plan = JoinPlan::compile(&q.body, &[], None);
        assert_eq!(plan.order(), &[0, 1, 2]);
        // Seeding W flips the chain: the last atom now has a bound term.
        let w = voc.var_id("W").unwrap();
        let plan = JoinPlan::compile(&q.body, &[w], None);
        assert_eq!(plan.order(), &[2, 1, 0]);
    }

    /// Satellite: the greedy join order is pinned for a star query. The
    /// unary hub atom wins the unbound tie-break, then the spokes follow in
    /// atom-index order (full ties keep the earliest index).
    #[test]
    fn join_order_is_pinned_for_star() {
        let mut voc = Vocabulary::new();
        let (_, q) = parse_query(&mut voc, "q(X) :- E(X,A), E(X,B), E(X,C), Hub(X)").unwrap();
        let plan = JoinPlan::compile(&q.body, &[], None);
        assert_eq!(plan.order(), &[3, 0, 1, 2]);
        // Pinning a pivot keeps the greedy rule for the rest.
        let plan = JoinPlan::compile(&q.body, &[], Some(1));
        assert_eq!(plan.order(), &[1, 3, 0, 2]);
    }

    /// The compiled executor reproduces the reference kernel exactly:
    /// same homs, same order, same counters.
    #[test]
    fn plan_matches_reference_on_join() {
        let mut voc = Vocabulary::new();
        let d = db(
            &mut voc,
            &["R(a,b)", "R(b,c)", "R(a,c)", "R(c,d)", "P(c)", "P(d)"],
        );
        let (_, q) = parse_query(&mut voc, "q(X,Z) :- R(X,Y), R(Y,Z), P(Z)").unwrap();
        let mut plan_homs = Vec::new();
        let mut plan_stats = HomStats::default();
        let plan = JoinPlan::compile(&q.body, &[], None);
        let _ = plan.execute(&d, &[], None, &mut plan_stats, |h| {
            plan_homs.push(h.to_assignment());
            ControlFlow::<()>::Continue(())
        });
        let mut ref_homs = Vec::new();
        let mut ref_stats = HomStats::default();
        let _ = reference::for_each_hom_with_delta(
            &q.body,
            &d,
            &Assignment::new(),
            0,
            &mut ref_stats,
            |h| {
                ref_homs.push(h.clone());
                ControlFlow::<()>::Continue(())
            },
        );
        assert_eq!(plan_homs, ref_homs);
        assert_eq!(plan_stats.candidates_scanned, ref_stats.candidates_scanned);
        assert_eq!(plan_stats.backtracks, ref_stats.backtracks);
        assert_eq!(plan_stats.homs_found, ref_stats.homs_found);
    }

    #[test]
    fn plan_cache_counts_hits_and_misses() {
        let mut voc = Vocabulary::new();
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y), P(Y)").unwrap();
        let mut cache = PlanCache::new();
        let mut stats = HomStats::default();
        let p1 = cache.get_or_compile(&q.body, &[], None, &mut stats);
        let p2 = cache.get_or_compile(&q.body, &[], None, &mut stats);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(stats.plans_compiled, 1);
        assert_eq!(stats.plan_cache_hits, 1);
        // A different pivot is a different plan.
        let _ = cache.get_or_compile(&q.body, &[], Some(1), &mut stats);
        assert_eq!(stats.plans_compiled, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn seed_values_detects_conflicts() {
        let mut voc = Vocabulary::new();
        let (_, q) = parse_query(&mut voc, "q(X,X) :- R(X,X)").unwrap();
        let x = voc.var_id("X").unwrap();
        let a = Term::Const(voc.constant("a"));
        let b = Term::Const(voc.constant("b"));
        let plan = JoinPlan::compile(&q.body, &[x, x], None);
        assert_eq!(plan.seeded(), &[x]);
        assert_eq!(plan.seed_values(&[(x, a), (x, a)]), Some(vec![a]));
        assert_eq!(plan.seed_values(&[(x, a), (x, b)]), None);
    }

    #[test]
    fn signature_prefilter_is_sound() {
        let mut voc = Vocabulary::new();
        let (_, q1) = parse_query(&mut voc, "q :- R(X,Y), P(Y)").unwrap();
        let (_, q2) = parse_query(&mut voc, "q :- R(X,Y)").unwrap();
        // q1 mentions P, q2 does not: no hom q1 -> q2 can exist.
        assert!(!sig_may_hom(pred_sig(&q1.body), pred_sig(&q2.body)));
        // The other direction stays possible.
        assert!(sig_may_hom(pred_sig(&q2.body), pred_sig(&q1.body)));
        let d = db(&mut voc, &["R(a,b)", "P(b)"]);
        assert!(sig_may_hom(pred_sig(&q1.body), instance_sig(&d)));
    }

    #[test]
    fn empty_body_fires_callback_once_with_seed() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["P(a)"]);
        let x = voc.var("X");
        let a = Term::Const(voc.constant("a"));
        let plan = JoinPlan::compile(&[], &[x], None);
        let mut stats = HomStats::default();
        let mut homs = Vec::new();
        let _ = plan.execute(&d, &[a], None, &mut stats, |h| {
            homs.push(h.to_assignment());
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0][&x], a);
        assert_eq!(stats.homs_found, 1);
        assert_eq!(stats.candidates_scanned, 0);
    }

    #[test]
    fn global_counters_are_monotone() {
        let before = global_hom_snapshot();
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["P(a)", "P(b)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- P(X)").unwrap();
        let _ = find_hom(&q.body, &d, &Assignment::new());
        let mut stats = HomStats::default();
        record_prefilter_reject(&mut stats);
        let after = global_hom_snapshot();
        assert!(after.candidates_scanned > before.candidates_scanned);
        assert!(after.plans_compiled > before.plans_compiled);
        assert!(after.prefilter_rejects > before.prefilter_rejects);
        assert_eq!(stats.prefilter_rejects, 1);
    }
}
