//! Homomorphism search: mapping a set of atoms with variables into an
//! instance, the workhorse behind CQ evaluation (paper §2), chase triggers,
//! and Chandra–Merlin containment.

use std::collections::HashMap;
use std::ops::ControlFlow;

use omq_model::{Atom, Instance, Term, VarId};

/// A variable assignment: the mapping `h` restricted to variables. Constants
/// are always mapped to themselves (homomorphisms are the identity on `C`).
pub type Assignment = HashMap<VarId, Term>;

/// Applies an assignment to a term (identity on constants and nulls;
/// unbound variables stay put).
fn image(h: &Assignment, t: Term) -> Term {
    match t {
        Term::Var(v) => h.get(&v).copied().unwrap_or(t),
        other => other,
    }
}

/// Orders atoms so that atoms sharing variables with already-placed atoms
/// come early (greedy join ordering); reduces backtracking dramatically on
/// chain/star queries.
fn join_order(atoms: &[Atom], seed: &Assignment) -> Vec<usize> {
    let n = atoms.len();
    let mut placed = vec![false; n];
    let mut bound: Vec<VarId> = seed.keys().copied().collect();
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Pick the unplaced atom with the most bound terms (constants and
        // bound variables), tie-breaking on fewer unbound variables.
        let mut best: Option<(usize, usize, usize)> = None; // (idx, bound#, unbound#)
        for (i, a) in atoms.iter().enumerate() {
            if placed[i] {
                continue;
            }
            let mut b = 0usize;
            let mut u = 0usize;
            for &t in &a.args {
                match t {
                    Term::Var(v) => {
                        if bound.contains(&v) {
                            b += 1;
                        } else {
                            u += 1;
                        }
                    }
                    _ => b += 1,
                }
            }
            let better = match best {
                None => true,
                Some((_, bb, bu)) => b > bb || (b == bb && u < bu),
            };
            if better {
                best = Some((i, b, u));
            }
        }
        let (i, _, _) = best.unwrap();
        placed[i] = true;
        order.push(i);
        for v in atoms[i].vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    order
}

/// Enumerates homomorphisms from `atoms` into `inst` extending `seed`,
/// invoking `f` for each; stop early by returning [`ControlFlow::Break`].
///
/// Returns `Break(x)` when `f` broke with `x`, `Continue(())` when the
/// enumeration was exhausted.
pub fn for_each_hom<B>(
    atoms: &[Atom],
    inst: &Instance,
    seed: &Assignment,
    mut f: impl FnMut(&Assignment) -> ControlFlow<B>,
) -> ControlFlow<B> {
    let order = join_order(atoms, seed);
    let mut h = seed.clone();
    fn rec<B>(
        atoms: &[Atom],
        order: &[usize],
        depth: usize,
        inst: &Instance,
        h: &mut Assignment,
        f: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        if depth == order.len() {
            return f(h);
        }
        let a = &atoms[order[depth]];
        // Candidate instance atoms: use the most selective index available.
        let mut best: Option<&[usize]> = None;
        for (pos, &t) in a.args.iter().enumerate() {
            let ti = image(h, t);
            if !ti.is_var() {
                let c = inst.atoms_with_pred_term(a.pred, pos, ti);
                if best.map_or(true, |b| c.len() < b.len()) {
                    best = Some(c);
                }
            }
        }
        let candidates = best.unwrap_or_else(|| inst.atoms_with_pred(a.pred));
        'cands: for &ci in candidates {
            let cand = inst.atom(ci);
            let mut newly: Vec<VarId> = Vec::new();
            for (&pat, &val) in a.args.iter().zip(&cand.args) {
                match pat {
                    Term::Var(v) => match h.get(&v) {
                        Some(&bound) => {
                            if bound != val {
                                for w in newly.drain(..) {
                                    h.remove(&w);
                                }
                                continue 'cands;
                            }
                        }
                        None => {
                            h.insert(v, val);
                            newly.push(v);
                        }
                    },
                    t => {
                        if t != val {
                            for w in newly.drain(..) {
                                h.remove(&w);
                            }
                            continue 'cands;
                        }
                    }
                }
            }
            let res = rec(atoms, order, depth + 1, inst, h, f);
            for w in newly.drain(..) {
                h.remove(&w);
            }
            res?;
        }
        ControlFlow::Continue(())
    }
    rec(atoms, &order, 0, inst, &mut h, &mut f)
}

/// Finds one homomorphism from `atoms` into `inst` extending `seed`.
pub fn find_hom(atoms: &[Atom], inst: &Instance, seed: &Assignment) -> Option<Assignment> {
    match for_each_hom(atoms, inst, seed, |h| ControlFlow::Break(h.clone())) {
        ControlFlow::Break(h) => Some(h),
        ControlFlow::Continue(()) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, parse_query, Vocabulary};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            // Parse each fact as a fact tgd head.
            let t = omq_model::parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    #[test]
    fn finds_simple_hom() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(b,c)", "P(c)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y), R(Y,Z), P(Z)").unwrap();
        let h = find_hom(&q.body, &d, &Assignment::new()).expect("hom exists");
        let a = voc.const_id("a").unwrap();
        assert_eq!(h[&voc.var_id("X").unwrap()], Term::Const(a));
    }

    #[test]
    fn no_hom_when_pattern_absent() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "P(a)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y), P(Y)").unwrap();
        assert!(find_hom(&q.body, &d, &Assignment::new()).is_none());
    }

    #[test]
    fn respects_seed() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(c,b)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- R(X,Y)").unwrap();
        let x = voc.var_id("X").unwrap();
        let c = voc.const_id("c").unwrap();
        let mut seed = Assignment::new();
        seed.insert(x, Term::Const(c));
        let h = find_hom(&q.body, &d, &seed).unwrap();
        assert_eq!(h[&x], Term::Const(c));
        let a = voc.const_id("a").unwrap();
        let mut bad = Assignment::new();
        bad.insert(x, Term::Const(voc.constant("zz")));
        assert!(find_hom(&q.body, &d, &bad).is_none());
        let _ = a;
    }

    #[test]
    fn repeated_variables_must_agree() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,X)").unwrap();
        assert!(find_hom(&q.body, &d, &Assignment::new()).is_none());
        let d2 = db(&mut voc, &["R(a,a)"]);
        assert!(find_hom(&q.body, &d2, &Assignment::new()).is_some());
    }

    #[test]
    fn constants_in_query_must_match() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(a,X)").unwrap();
        assert!(find_hom(&q.body, &d, &Assignment::new()).is_some());
        let (_, q2) = parse_query(&mut voc, "q :- R(b,X)").unwrap();
        assert!(find_hom(&q2.body, &d, &Assignment::new()).is_none());
    }

    #[test]
    fn enumerates_all_homs() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(a,c)", "R(b,c)"]);
        let (_, q) = parse_query(&mut voc, "q(X,Y) :- R(X,Y)").unwrap();
        let mut count = 0;
        let _ = for_each_hom(&q.body, &d, &Assignment::new(), |_| {
            count += 1;
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["P(a)", "P(b)", "P(c)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- P(X)").unwrap();
        let mut count = 0;
        let r = for_each_hom(&q.body, &d, &Assignment::new(), |_| {
            count += 1;
            if count == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(r, ControlFlow::Break(()));
        assert_eq!(count, 2);
    }

    #[test]
    fn larger_join_uses_program_parser() {
        let prog = parse_program(
            "q(X,Z) :- E(X,Y), E(Y,Z), Color(X, red), Color(Z, red)\n",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let d = db(
            &mut voc,
            &[
                "E(n1,n2)",
                "E(n2,n3)",
                "E(n3,n4)",
                "Color(n1, red)",
                "Color(n3, red)",
                "Color(n4, blue)",
            ],
        );
        let q = prog.query("q").unwrap().as_cq().unwrap();
        let h = find_hom(&q.body, &d, &Assignment::new()).expect("n1 -E-> n2 -E-> n3");
        let n1 = voc.const_id("n1").unwrap();
        assert_eq!(h[&q.head[0]], Term::Const(n1));
    }
}
