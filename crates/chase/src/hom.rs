//! Homomorphism search: mapping a set of atoms with variables into an
//! instance, the workhorse behind CQ evaluation (paper §2), chase triggers,
//! and Chandra–Merlin containment.

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use omq_model::{Atom, Instance, Term, VarId};

/// A variable assignment: the mapping `h` restricted to variables. Constants
/// are always mapped to themselves (homomorphisms are the identity on `C`).
pub type Assignment = HashMap<VarId, Term>;

/// Work counters for one or more homomorphism searches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HomStats {
    /// Candidate instance atoms inspected while extending partial matches.
    pub candidates_scanned: u64,
    /// Candidate atoms rejected (bindings rolled back).
    pub backtracks: u64,
    /// Complete homomorphisms handed to the callback.
    pub homs_found: u64,
}

impl HomStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: HomStats) {
        self.candidates_scanned += other.candidates_scanned;
        self.backtracks += other.backtracks;
        self.homs_found += other.homs_found;
    }
}

/// Sentinel for "no upper bound" in an atom's candidate index range.
const NO_LIMIT: usize = usize::MAX;

/// Restricts a sorted slice of atom indices to those in `[lo, hi)`.
fn clamp(c: &[usize], lo: usize, hi: usize) -> &[usize] {
    let start = if lo == 0 {
        0
    } else {
        c.partition_point(|&i| i < lo)
    };
    let end = if hi == NO_LIMIT {
        c.len()
    } else {
        c.partition_point(|&i| i < hi)
    };
    &c[start..end.max(start)]
}

/// Applies an assignment to a term (identity on constants and nulls;
/// unbound variables stay put).
fn image(h: &Assignment, t: Term) -> Term {
    match t {
        Term::Var(v) => h.get(&v).copied().unwrap_or(t),
        other => other,
    }
}

/// Orders atoms so that atoms sharing variables with already-placed atoms
/// come early (greedy join ordering); reduces backtracking dramatically on
/// chain/star queries. When `first` is given, that atom is pinned to the
/// front (used to lead with the delta pivot, whose candidate set is small)
/// and the greedy rule orders the rest.
fn join_order(atoms: &[Atom], seed: &Assignment, first: Option<usize>) -> Vec<usize> {
    let n = atoms.len();
    let mut placed = vec![false; n];
    let mut bound: HashSet<VarId> = seed.keys().copied().collect();
    let mut order = Vec::with_capacity(n);
    if let Some(i) = first {
        placed[i] = true;
        order.push(i);
        bound.extend(atoms[i].vars());
    }
    while order.len() < n {
        // Pick the unplaced atom with the most bound terms (constants and
        // bound variables), tie-breaking on fewer unbound variables.
        let mut best: Option<(usize, usize, usize)> = None; // (idx, bound#, unbound#)
        for (i, a) in atoms.iter().enumerate() {
            if placed[i] {
                continue;
            }
            let mut b = 0usize;
            let mut u = 0usize;
            for &t in &a.args {
                match t {
                    Term::Var(v) => {
                        if bound.contains(&v) {
                            b += 1;
                        } else {
                            u += 1;
                        }
                    }
                    _ => b += 1,
                }
            }
            let better = match best {
                None => true,
                Some((_, bb, bu)) => b > bb || (b == bb && u < bu),
            };
            if better {
                best = Some((i, b, u));
            }
        }
        let (i, _, _) = best.unwrap();
        placed[i] = true;
        order.push(i);
        bound.extend(atoms[i].vars());
    }
    order
}

/// Enumerates homomorphisms from `atoms` into `inst` extending `seed`,
/// invoking `f` for each; stop early by returning [`ControlFlow::Break`].
///
/// Returns `Break(x)` when `f` broke with `x`, `Continue(())` when the
/// enumeration was exhausted.
pub fn for_each_hom<B>(
    atoms: &[Atom],
    inst: &Instance,
    seed: &Assignment,
    mut f: impl FnMut(&Assignment) -> ControlFlow<B>,
) -> ControlFlow<B> {
    let mut stats = HomStats::default();
    for_each_hom_with_delta(atoms, inst, seed, 0, &mut stats, &mut f)
}

/// Like [`for_each_hom`], but restricted to homomorphisms whose image uses
/// at least one atom with index `>= delta_start` — the "new" atoms of a
/// semi-naive round. With `delta_start == 0` this is exactly
/// [`for_each_hom`] (everything is new).
///
/// The delta constraint is enforced by pivoting: for each body-atom position
/// `p`, one enumeration pass maps atoms before `p` into the old prefix
/// (`< delta_start`), atom `p` into the delta (`>= delta_start`), and later
/// atoms anywhere. Each qualifying homomorphism has exactly one first-new
/// position, so the passes partition the delta-touching homomorphisms: no
/// duplicates, no misses, no dedup set.
///
/// Work counters accumulate into `stats`.
pub fn for_each_hom_with_delta<B>(
    atoms: &[Atom],
    inst: &Instance,
    seed: &Assignment,
    delta_start: usize,
    stats: &mut HomStats,
    mut f: impl FnMut(&Assignment) -> ControlFlow<B>,
) -> ControlFlow<B> {
    if delta_start == 0 {
        let order = join_order(atoms, seed, None);
        let ranges = vec![(0, NO_LIMIT); atoms.len()];
        let mut h = seed.clone();
        return rec(atoms, &order, &ranges, 0, inst, &mut h, stats, &mut f);
    }
    if delta_start >= inst.len() {
        return ControlFlow::Continue(()); // no new atoms, hence no new homs
    }
    let mut ranges = vec![(0usize, NO_LIMIT); atoms.len()];
    for pivot in 0..atoms.len() {
        if inst
            .atoms_with_pred_from(atoms[pivot].pred, delta_start)
            .is_empty()
        {
            continue; // this pivot's delta slice is empty
        }
        for (i, r) in ranges.iter_mut().enumerate() {
            *r = match i.cmp(&pivot) {
                std::cmp::Ordering::Less => (0, delta_start),
                std::cmp::Ordering::Equal => (delta_start, NO_LIMIT),
                std::cmp::Ordering::Greater => (0, NO_LIMIT),
            };
        }
        let order = join_order(atoms, seed, Some(pivot));
        let mut h = seed.clone();
        rec(atoms, &order, &ranges, 0, inst, &mut h, stats, &mut f)?;
    }
    ControlFlow::Continue(())
}

/// The backtracking core: extends `h` atom by atom along `order`, drawing
/// candidates from the most selective index restricted to the atom's
/// `[lo, hi)` index range.
#[allow(clippy::too_many_arguments)]
fn rec<B>(
    atoms: &[Atom],
    order: &[usize],
    ranges: &[(usize, usize)],
    depth: usize,
    inst: &Instance,
    h: &mut Assignment,
    stats: &mut HomStats,
    f: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
) -> ControlFlow<B> {
    if depth == order.len() {
        stats.homs_found += 1;
        return f(h);
    }
    let ai = order[depth];
    let a = &atoms[ai];
    let (lo, hi) = ranges[ai];
    // Candidate instance atoms: use the most selective index available.
    let mut best: Option<&[usize]> = None;
    for (pos, &t) in a.args.iter().enumerate() {
        let ti = image(h, t);
        if !ti.is_var() {
            let c = clamp(inst.atoms_with_pred_term(a.pred, pos, ti), lo, hi);
            if best.is_none_or(|b| c.len() < b.len()) {
                best = Some(c);
            }
        }
    }
    let candidates = best.unwrap_or_else(|| clamp(inst.atoms_with_pred(a.pred), lo, hi));
    'cands: for &ci in candidates {
        stats.candidates_scanned += 1;
        let cand = inst.atom(ci);
        let mut newly: Vec<VarId> = Vec::new();
        for (&pat, &val) in a.args.iter().zip(&cand.args) {
            match pat {
                Term::Var(v) => match h.get(&v) {
                    Some(&bound) => {
                        if bound != val {
                            for w in newly.drain(..) {
                                h.remove(&w);
                            }
                            stats.backtracks += 1;
                            continue 'cands;
                        }
                    }
                    None => {
                        h.insert(v, val);
                        newly.push(v);
                    }
                },
                t => {
                    if t != val {
                        for w in newly.drain(..) {
                            h.remove(&w);
                        }
                        stats.backtracks += 1;
                        continue 'cands;
                    }
                }
            }
        }
        let res = rec(atoms, order, ranges, depth + 1, inst, h, stats, f);
        for w in newly.drain(..) {
            h.remove(&w);
        }
        res?;
    }
    ControlFlow::Continue(())
}

/// Finds one homomorphism from `atoms` into `inst` extending `seed`.
pub fn find_hom(atoms: &[Atom], inst: &Instance, seed: &Assignment) -> Option<Assignment> {
    match for_each_hom(atoms, inst, seed, |h| ControlFlow::Break(h.clone())) {
        ControlFlow::Break(h) => Some(h),
        ControlFlow::Continue(()) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, parse_query, Vocabulary};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            // Parse each fact as a fact tgd head.
            let t = omq_model::parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    #[test]
    fn finds_simple_hom() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(b,c)", "P(c)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y), R(Y,Z), P(Z)").unwrap();
        let h = find_hom(&q.body, &d, &Assignment::new()).expect("hom exists");
        let a = voc.const_id("a").unwrap();
        assert_eq!(h[&voc.var_id("X").unwrap()], Term::Const(a));
    }

    #[test]
    fn no_hom_when_pattern_absent() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "P(a)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y), P(Y)").unwrap();
        assert!(find_hom(&q.body, &d, &Assignment::new()).is_none());
    }

    #[test]
    fn respects_seed() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(c,b)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- R(X,Y)").unwrap();
        let x = voc.var_id("X").unwrap();
        let c = voc.const_id("c").unwrap();
        let mut seed = Assignment::new();
        seed.insert(x, Term::Const(c));
        let h = find_hom(&q.body, &d, &seed).unwrap();
        assert_eq!(h[&x], Term::Const(c));
        let a = voc.const_id("a").unwrap();
        let mut bad = Assignment::new();
        bad.insert(x, Term::Const(voc.constant("zz")));
        assert!(find_hom(&q.body, &d, &bad).is_none());
        let _ = a;
    }

    #[test]
    fn repeated_variables_must_agree() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,X)").unwrap();
        assert!(find_hom(&q.body, &d, &Assignment::new()).is_none());
        let d2 = db(&mut voc, &["R(a,a)"]);
        assert!(find_hom(&q.body, &d2, &Assignment::new()).is_some());
    }

    #[test]
    fn constants_in_query_must_match() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(a,X)").unwrap();
        assert!(find_hom(&q.body, &d, &Assignment::new()).is_some());
        let (_, q2) = parse_query(&mut voc, "q :- R(b,X)").unwrap();
        assert!(find_hom(&q2.body, &d, &Assignment::new()).is_none());
    }

    #[test]
    fn enumerates_all_homs() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)", "R(a,c)", "R(b,c)"]);
        let (_, q) = parse_query(&mut voc, "q(X,Y) :- R(X,Y)").unwrap();
        let mut count = 0;
        let _ = for_each_hom(&q.body, &d, &Assignment::new(), |_| {
            count += 1;
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["P(a)", "P(b)", "P(c)"]);
        let (_, q) = parse_query(&mut voc, "q(X) :- P(X)").unwrap();
        let mut count = 0;
        let r = for_each_hom(&q.body, &d, &Assignment::new(), |_| {
            count += 1;
            if count == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(r, ControlFlow::Break(()));
        assert_eq!(count, 2);
    }

    #[test]
    fn delta_enumeration_partitions_new_homs() {
        let mut voc = Vocabulary::new();
        let mut d = db(&mut voc, &["R(a,b)", "R(b,c)"]);
        let (_, q) = parse_query(&mut voc, "q(X,Z) :- R(X,Y), R(Y,Z)").unwrap();
        // Baseline: one hom (a,b,c).
        let delta_start = d.len();
        // Add R(c,d): the new homs are exactly those using it.
        let t = omq_model::parse_tgd(&mut voc, "true -> R(c,d)").unwrap();
        for a in t.head {
            d.insert(a);
        }
        let mut stats = HomStats::default();
        let mut delta_homs = 0;
        let _ = for_each_hom_with_delta(
            &q.body,
            &d,
            &Assignment::new(),
            delta_start,
            &mut stats,
            |_| {
                delta_homs += 1;
                ControlFlow::<()>::Continue(())
            },
        );
        // Only (b,c,d) is new; (a,b,c) predates the watermark.
        assert_eq!(delta_homs, 1);
        assert_eq!(stats.homs_found, 1);
        assert!(stats.candidates_scanned > 0);
        // Full enumeration still sees both.
        let mut all = 0;
        let _ = for_each_hom(&q.body, &d, &Assignment::new(), |_| {
            all += 1;
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(all, 2);
    }

    #[test]
    fn delta_enumeration_no_duplicates_on_multi_new() {
        // Both body atoms can map into the delta; the pivot decomposition
        // must yield each new hom exactly once.
        let mut voc = Vocabulary::new();
        let mut d = db(&mut voc, &["P(z)"]);
        let delta_start = d.len();
        for f in ["R(a,b)", "R(b,c)", "R(c,a)"] {
            let t = omq_model::parse_tgd(&mut voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                d.insert(a);
            }
        }
        let (_, q) = parse_query(&mut voc, "q(X,Z) :- R(X,Y), R(Y,Z)").unwrap();
        let mut stats = HomStats::default();
        let mut seen = Vec::new();
        let _ = for_each_hom_with_delta(
            &q.body,
            &d,
            &Assignment::new(),
            delta_start,
            &mut stats,
            |h| {
                let mut tuple: Vec<String> =
                    h.iter().map(|(k, v)| format!("{k:?}->{v:?}")).collect();
                tuple.sort();
                seen.push(tuple);
                ControlFlow::<()>::Continue(())
            },
        );
        let n = seen.len();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), n, "pivot passes must not duplicate homs");
        assert_eq!(n, 3, "the 3-cycle has 3 R-R paths, all new");
    }

    #[test]
    fn delta_enumeration_empty_when_no_new_atoms() {
        let mut voc = Vocabulary::new();
        let d = db(&mut voc, &["R(a,b)"]);
        let (_, q) = parse_query(&mut voc, "q :- R(X,Y)").unwrap();
        let mut stats = HomStats::default();
        let mut count = 0;
        let _ =
            for_each_hom_with_delta(&q.body, &d, &Assignment::new(), d.len(), &mut stats, |_| {
                count += 1;
                ControlFlow::<()>::Continue(())
            });
        assert_eq!(count, 0);
        assert_eq!(stats.candidates_scanned, 0);
    }

    #[test]
    fn larger_join_uses_program_parser() {
        let prog =
            parse_program("q(X,Z) :- E(X,Y), E(Y,Z), Color(X, red), Color(Z, red)\n").unwrap();
        let mut voc = prog.voc.clone();
        let d = db(
            &mut voc,
            &[
                "E(n1,n2)",
                "E(n2,n3)",
                "E(n3,n4)",
                "Color(n1, red)",
                "Color(n3, red)",
                "Color(n4, blue)",
            ],
        );
        let q = prog.query("q").unwrap().as_cq().unwrap();
        let h = find_hom(&q.body, &d, &Assignment::new()).expect("n1 -E-> n2 -E-> n3");
        let n1 = voc.const_id("n1").unwrap();
        assert_eq!(h[&q.head[0]], Term::Const(n1));
    }
}
