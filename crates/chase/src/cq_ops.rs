//! Classical CQ statics: Chandra–Merlin containment, cores (minimization),
//! isomorphism modulo variable renaming (the `≃` check XRewrite uses to
//! deduplicate rewritings), canonical forms (so `≃`-dedup becomes hash-map
//! equality), and a homomorphic subsumption sieve for UCQ minimization.

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;
use std::sync::Arc;

use omq_model::{Atom, Cq, Instance, NullId, Term, Ucq, VarId};

use crate::hom::{
    pred_sig, record_plan_reuse, record_prefilter_reject, sig_may_hom, HomStats, JoinPlan,
};

/// Freezes the body of `q` into an instance, mapping each variable `v` to
/// the null `⊥v` (constants stay). Returns the instance and the head image.
fn freeze_to_nulls(q: &Cq) -> (Instance, Vec<Term>) {
    let inst = Instance::from_atoms(q.body.iter().map(|a| {
        a.map_terms(|t| match t {
            Term::Var(v) => Term::Null(NullId(v.0)),
            other => other,
        })
    }));
    let head = q.head.iter().map(|&v| Term::Null(NullId(v.0))).collect();
    (inst, head)
}

/// Chandra–Merlin: `q1 ⊆ q2` iff there is a homomorphism from `q2` to the
/// canonical (frozen) instance of `q1` mapping head to head.
pub fn cq_contained(q1: &Cq, q2: &Cq) -> bool {
    cq_contained_stats(q1, q2, &mut HomStats::default())
}

/// [`cq_contained`] with work counters accumulated into `stats`. The
/// predicate-signature prefilter rejects impossible pairs (some predicate
/// of `q2` does not occur in `q1`) before any plan is compiled.
pub fn cq_contained_stats(q1: &Cq, q2: &Cq, stats: &mut HomStats) -> bool {
    if q1.head.len() != q2.head.len() {
        return false;
    }
    if !sig_may_hom(pred_sig(&q2.body), pred_sig(&q1.body)) {
        record_prefilter_reject(stats);
        return false;
    }
    let (frozen, head1) = freeze_to_nulls(q1);
    let plan = crate::hom::compile_costed_for(&q2.body, &q2.head, None, &frozen, stats);
    stats.plans_compiled += 1;
    let pairs: Vec<(VarId, Term)> = q2.head.iter().copied().zip(head1.iter().copied()).collect();
    let Some(seed) = plan.seed_values(&pairs) else {
        return false; // the head pattern repeats a variable inconsistently
    };
    plan.execute(&frozen, &seed, None, stats, |_| ControlFlow::Break(()))
        .is_break()
}

/// UCQ containment (Sagiv–Yannakakis): `∨ᵢ pᵢ ⊆ ∨ⱼ qⱼ` iff every `pᵢ` is
/// contained in some `qⱼ`.
pub fn ucq_contained(p: &Ucq, q: &Ucq) -> bool {
    p.disjuncts
        .iter()
        .all(|pi| q.disjuncts.iter().any(|qj| cq_contained(pi, qj)))
}

/// CQ equivalence: mutual containment.
pub fn cq_equivalent(q1: &Cq, q2: &Cq) -> bool {
    cq_contained(q1, q2) && cq_contained(q2, q1)
}

/// Computes the core of `q`: an equivalent subquery with a minimal number of
/// atoms. Head variables are kept fixed. Exponential in the worst case (the
/// problem is NP-hard) but fast on the small queries arising in rewritings.
pub fn cq_core(q: &Cq) -> Cq {
    cq_core_budgeted(q, usize::MAX)
}

/// Like [`cq_core`] but gives up after examining `max_homs` endomorphisms
/// per folding round, returning the (equivalent) partially-minimized query.
/// Queries with many loosely-joined same-predicate atoms have exponentially
/// many endomorphisms, and an exhaustive no-fold proof is pointless when
/// coring is used only as a canonicalization heuristic.
pub fn cq_core_budgeted(q: &Cq, max_homs: usize) -> Cq {
    cq_core_budgeted_report(q, max_homs).0
}

/// Like [`cq_core_budgeted`], additionally reporting whether the
/// endomorphism budget was exhausted in any folding round (i.e. whether the
/// result is only *potentially* non-minimal rather than a certified core).
///
/// Coring searches endomorphisms of a candidate into its *own* frozen body
/// — a target of a handful of atoms — so the general kernel's instance
/// indexes and compiled plans are pure overhead here. The search instead
/// runs directly over the body slice: head variables pre-bound to
/// themselves, atoms visited in the kernel's greedy [`join_order`],
/// candidates scanned per predicate. An endomorphism shrinks the image iff
/// some same-predicate atom pair collapses under it (pigeonhole), so the
/// leaf test is a precompiled list of pairwise slot comparisons, and
/// bodies without any potentially-collapsible pair are certified cores
/// with no search at all.
pub fn cq_core_budgeted_report(q: &Cq, max_homs: usize) -> (Cq, bool) {
    /// A body argument under the dense variable numbering.
    #[derive(Copy, Clone)]
    enum ArgE {
        Ground(Term),
        V(usize),
    }
    /// One runtime equality check of a mergeable same-predicate atom pair.
    enum ArgCmp {
        /// Both positions hold variables, with these dense indices.
        Vars(usize, usize),
        /// A variable against a ground term.
        VarGround(usize, Term),
    }
    enum Outcome {
        Found,
        NotFound,
        Budget,
    }
    struct Fold<'a> {
        /// Atom visit order (indices into the body).
        order: &'a [usize],
        /// Argument encodings per body atom.
        enc: &'a [Vec<ArgE>],
        /// Frozen argument vectors per body atom (variables as nulls).
        frozen: &'a [Vec<Term>],
        /// Per-depth candidate target atoms (same predicate as the atom
        /// visited at that depth), in body order.
        targets: &'a [Vec<usize>],
        /// Collapsible-pair checks; any pair passing all its checks means
        /// the current endomorphism shrinks the image.
        pairs: &'a [Vec<ArgCmp>],
        /// Dense variable bindings (images live in the frozen term space).
        bindings: Vec<Option<Term>>,
        /// Undo log of bound variable indices.
        trail: Vec<usize>,
        examined: usize,
        max_homs: usize,
    }
    impl Fold<'_> {
        fn step(&mut self, depth: usize) -> Outcome {
            if depth == self.order.len() {
                self.examined += 1;
                if self.examined > self.max_homs {
                    return Outcome::Budget;
                }
                let merges = self.pairs.iter().any(|checks| {
                    checks.iter().all(|c| match *c {
                        ArgCmp::Vars(s, t) => self.bindings[s] == self.bindings[t],
                        ArgCmp::VarGround(s, t) => self.bindings[s] == Some(t),
                    })
                });
                return if merges {
                    Outcome::Found
                } else {
                    Outcome::NotFound
                };
            }
            let ai = self.order[depth];
            let mark = self.trail.len();
            'cand: for ti in 0..self.targets[depth].len() {
                let tj = self.targets[depth][ti];
                for (pos, &e) in self.enc[ai].iter().enumerate() {
                    let val = self.frozen[tj][pos];
                    let ok = match e {
                        ArgE::Ground(g) => g == val,
                        ArgE::V(s) => match self.bindings[s] {
                            Some(b) => b == val,
                            None => {
                                self.bindings[s] = Some(val);
                                self.trail.push(s);
                                true
                            }
                        },
                    };
                    if !ok {
                        self.undo(mark);
                        continue 'cand;
                    }
                }
                match self.step(depth + 1) {
                    Outcome::NotFound => self.undo(mark),
                    found_or_budget => return found_or_budget,
                }
            }
            Outcome::NotFound
        }

        fn undo(&mut self, mark: usize) {
            for &s in &self.trail[mark..] {
                self.bindings[s] = None;
            }
            self.trail.truncate(mark);
        }
    }

    let mut current = q.clone();
    'rounds: loop {
        let body = &current.body;
        let n = body.len();
        // Dense variable numbering over the body, in first-occurrence order.
        let mut vars: Vec<VarId> = Vec::new();
        let enc: Vec<Vec<ArgE>> = body
            .iter()
            .map(|a| {
                a.args
                    .iter()
                    .map(|&t| match t {
                        Term::Var(v) => {
                            let i = vars.iter().position(|&w| w == v).unwrap_or_else(|| {
                                vars.push(v);
                                vars.len() - 1
                            });
                            ArgE::V(i)
                        }
                        ground => ArgE::Ground(ground),
                    })
                    .collect()
            })
            .collect();
        // Precompile the checks of every potentially-collapsible pair.
        let mut pairs: Vec<Vec<ArgCmp>> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if body[i].pred != body[j].pred {
                    continue;
                }
                let mut checks = Vec::new();
                let mut possible = true;
                for (&a, &b) in enc[i].iter().zip(&enc[j]) {
                    match (a, b) {
                        (ArgE::Ground(x), ArgE::Ground(y)) => {
                            if x != y {
                                possible = false;
                                break;
                            }
                        }
                        (ArgE::V(s), ArgE::V(t)) => {
                            if s != t {
                                checks.push(ArgCmp::Vars(s, t));
                            }
                        }
                        (ArgE::V(s), ArgE::Ground(y)) | (ArgE::Ground(y), ArgE::V(s)) => {
                            checks.push(ArgCmp::VarGround(s, y));
                        }
                    }
                }
                if possible {
                    pairs.push(checks);
                }
            }
        }
        if pairs.is_empty() {
            // No two atoms can ever share an image: certified core.
            return (current, false);
        }
        // Frozen body: variables become their own nulls; endomorphism
        // images live in this term space.
        let frozen: Vec<Vec<Term>> = body
            .iter()
            .map(|a| {
                a.args
                    .iter()
                    .map(|&t| match t {
                        Term::Var(v) => Term::Null(NullId(v.0)),
                        ground => ground,
                    })
                    .collect()
            })
            .collect();
        // Head variables retract onto themselves.
        let mut bindings: Vec<Option<Term>> = vec![None; vars.len()];
        for &v in &current.head {
            if let Some(i) = vars.iter().position(|&w| w == v) {
                bindings[i] = Some(Term::Null(NullId(v.0)));
            }
        }
        let mut seeded: Vec<VarId> = current.head.clone();
        seeded.sort_unstable();
        seeded.dedup();
        let order = crate::hom::join_order(body, &seeded, None);
        let targets: Vec<Vec<usize>> = order
            .iter()
            .map(|&ai| (0..n).filter(|&j| body[j].pred == body[ai].pred).collect())
            .collect();
        let mut fold = Fold {
            order: &order,
            enc: &enc,
            frozen: &frozen,
            targets: &targets,
            pairs: &pairs,
            bindings,
            trail: Vec::new(),
            examined: 0,
            max_homs,
        };
        match fold.step(0) {
            Outcome::NotFound => return (current, false),
            Outcome::Budget => return (current, true),
            Outcome::Found => {
                // Rebuild the query from the image, un-freezing nulls back
                // to variables.
                let bindings = fold.bindings;
                let mut new_body: Vec<Atom> = Vec::new();
                let mut seen = HashSet::new();
                for (ai, args) in enc.iter().enumerate() {
                    let img = Atom::new(
                        body[ai].pred,
                        args.iter()
                            .map(|&e| match e {
                                ArgE::Ground(t) => t,
                                ArgE::V(s) => match bindings[s] {
                                    Some(Term::Null(nl)) => Term::Var(VarId(nl.0)),
                                    Some(other) => other,
                                    None => unreachable!("endomorphism binds all variables"),
                                },
                            })
                            .collect(),
                    );
                    if seen.insert(img.clone()) {
                        new_body.push(img);
                    }
                }
                current = Cq::new(current.head.clone(), new_body);
                continue 'rounds;
            }
        }
    }
}

/// Are two CQs isomorphic: equal up to a bijective variable renaming that is
/// the identity on head positions (`q' ≃ q''` in Algorithm 1)?
pub fn cq_isomorphic(q1: &Cq, q2: &Cq) -> bool {
    if q1.head.len() != q2.head.len() || q1.body.len() != q2.body.len() {
        return false;
    }
    // Invariant prefilter: multiset of predicates.
    let mut p1: Vec<_> = q1.body.iter().map(|a| a.pred).collect();
    let mut p2: Vec<_> = q2.body.iter().map(|a| a.pred).collect();
    p1.sort_unstable();
    p2.sort_unstable();
    if p1 != p2 {
        return false;
    }

    fn extend(
        map: &mut HashMap<VarId, VarId>,
        inv: &mut HashMap<VarId, VarId>,
        a: &Atom,
        b: &Atom,
    ) -> Option<Vec<VarId>> {
        if a.pred != b.pred {
            return None;
        }
        let mut newly = Vec::new();
        for (&x, &y) in a.args.iter().zip(&b.args) {
            match (x, y) {
                (Term::Var(vx), Term::Var(vy)) => {
                    match (map.get(&vx).copied(), inv.get(&vy).copied()) {
                        (Some(m), _) if m != vy => {
                            undo(map, inv, &newly);
                            return None;
                        }
                        (_, Some(i)) if i != vx => {
                            undo(map, inv, &newly);
                            return None;
                        }
                        (None, None) => {
                            map.insert(vx, vy);
                            inv.insert(vy, vx);
                            newly.push(vx);
                        }
                        _ => {}
                    }
                }
                (tx, ty) if tx == ty => {}
                _ => {
                    undo(map, inv, &newly);
                    return None;
                }
            }
        }
        Some(newly)
    }

    fn undo(map: &mut HashMap<VarId, VarId>, inv: &mut HashMap<VarId, VarId>, newly: &[VarId]) {
        for v in newly {
            if let Some(w) = map.remove(v) {
                inv.remove(&w);
            }
        }
    }

    fn rec(
        q1: &Cq,
        q2: &Cq,
        i: usize,
        used: &mut Vec<bool>,
        map: &mut HashMap<VarId, VarId>,
        inv: &mut HashMap<VarId, VarId>,
    ) -> bool {
        if i == q1.body.len() {
            return true;
        }
        for j in 0..q2.body.len() {
            if used[j] {
                continue;
            }
            if let Some(newly) = extend(map, inv, &q1.body[i], &q2.body[j]) {
                used[j] = true;
                if rec(q1, q2, i + 1, used, map, inv) {
                    return true;
                }
                used[j] = false;
                undo(map, inv, &newly);
            }
        }
        false
    }

    let mut map = HashMap::new();
    let mut inv = HashMap::new();
    // The renaming must respect head positions pairwise.
    for (&h1, &h2) in q1.head.iter().zip(&q2.head) {
        match (map.get(&h1).copied(), inv.get(&h2).copied()) {
            (Some(m), _) if m != h2 => return false,
            (_, Some(i)) if i != h1 => return false,
            (None, None) => {
                map.insert(h1, h2);
                inv.insert(h2, h1);
            }
            _ => {}
        }
    }
    let mut used = vec![false; q2.body.len()];
    rec(q1, q2, 0, &mut used, &mut map, &mut inv)
}

/// A canonical form for a CQ under `≃` (bijective variable renaming fixing
/// head positions pairwise): two CQs have equal canonical forms iff they are
/// `cq_isomorphic`, so deduplication becomes hash-map equality.
///
/// Head variables are labeled by first occurrence in the head; existential
/// variables by iterated color refinement (a nauty-lite 1-WL) with a
/// backtracking tie-break that takes the minimum certificate over all
/// within-class relabelings.
///
/// The form is a single flat word stream rather than a vector of per-atom
/// vectors: these values are computed for every rewriting candidate and
/// then hashed and compared on every dedup-index probe, so one contiguous
/// buffer (one allocation, one memcmp/hash pass) beats a nested encoding
/// on both construction and lookup.
#[derive(Clone, Debug)]
pub struct CqCanonicalForm {
    /// Canonical labels of the head positions (first-occurrence numbering).
    head: Vec<u32>,
    /// Sorted flat atom encodings: each atom contributes
    /// `pred, arity, args...`, with constants `c` encoded as `-(c+1)` and
    /// variables as their canonical label. Predicates have fixed arities,
    /// so the stream parses unambiguously and compares atom-lexicographically.
    atoms: Vec<i64>,
    /// A content hash precomputed at construction. Forms are built once and
    /// then probed against hash maps repeatedly, so `Hash` just forwards
    /// this word instead of re-walking the stream; `PartialEq` also rejects
    /// on it first. Equal content always has an equal hash (the hash is a
    /// pure function of `head` and `atoms`), so the derived field-wise
    /// equality stays correct.
    hash: u64,
}

impl PartialEq for CqCanonicalForm {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.head == other.head && self.atoms == other.atoms
    }
}

impl Eq for CqCanonicalForm {}

impl std::hash::Hash for CqCanonicalForm {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl CqCanonicalForm {
    fn seal(head: Vec<u32>, atoms: Vec<i64>) -> Self {
        let mut h = mix(head.len() as u64, atoms.len() as u64);
        for &w in &head {
            h = mix(h, w as u64);
        }
        for &w in &atoms {
            h = mix(h, w as u64);
        }
        CqCanonicalForm {
            head,
            atoms,
            hash: h,
        }
    }
}

/// Mixes a word into a running hash (splitmix64 finalizer). Collision
/// quality only affects pruning power, never correctness, so a fast
/// non-cryptographic mix beats `DefaultHasher` here.
#[inline]
fn mix(h: u64, w: u64) -> u64 {
    let mut z = h ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Computes the canonical form of `q`, or `None` when the symmetry of the
/// refined coloring (the product of color-class factorials) exceeds
/// `symmetry_budget` relabelings. The budget test is itself
/// isomorphism-invariant, so isomorphic CQs consistently succeed or
/// consistently fall back — a caller may mix this with a pairwise
/// `cq_isomorphic` fallback without missing duplicates.
pub fn cq_canonical_form(q: &Cq, symmetry_budget: usize) -> Option<CqCanonicalForm> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<CanonScratch> =
            std::cell::RefCell::new(CanonScratch::default());
    }
    SCRATCH.with(|s| canonical_form_with(q, symmetry_budget, &mut s.borrow_mut()))
}

/// Reusable working memory for [`cq_canonical_form`]. The function runs once
/// per rewriting candidate (tens of thousands of times per call tree), and
/// without this its dozen short-lived `Vec`s dominate its profile; a
/// thread-local scratch drops that to the two output allocations.
#[derive(Default)]
struct CanonScratch {
    vars: Vec<VarId>,
    enc: Vec<i64>,
    starts: Vec<usize>,
    color: Vec<u64>,
    next: Vec<u64>,
    distinct: Vec<u64>,
    order: Vec<usize>,
    class_starts: Vec<usize>,
    bases: Vec<u32>,
    label: Vec<u32>,
    buf: Vec<i64>,
    bufs: Vec<usize>,
    idx: Vec<usize>,
}

fn canonical_form_with(
    q: &Cq,
    symmetry_budget: usize,
    scratch: &mut CanonScratch,
) -> Option<CqCanonicalForm> {
    let CanonScratch {
        vars,
        enc,
        starts,
        color,
        next,
        distinct,
        order,
        class_starts,
        bases,
        label,
        buf,
        bufs,
        idx,
    } = scratch;
    // Dense variable indexing: vars[i] is the i-th distinct variable, head
    // variables first (in head order), then existentials in first-body-
    // occurrence order. The order is only an enumeration — the labeling does
    // not depend on it.
    vars.clear();
    let dense = |vars: &mut Vec<VarId>, v: VarId| -> usize {
        match vars.iter().position(|&w| w == v) {
            Some(i) => i,
            None => {
                vars.push(v);
                vars.len() - 1
            }
        }
    };
    let mut head = Vec::with_capacity(q.head.len());
    for &v in &q.head {
        head.push(dense(vars, v) as u32);
    }
    let n_head = vars.len();
    // Atom args as dense indices (vars) or negative constant encodings, in
    // one flat buffer: `enc[starts[i]..starts[i + 1]]` are atom i's args.
    let n_atoms = q.body.len();
    enc.clear();
    starts.clear();
    for a in &q.body {
        starts.push(enc.len());
        for t in &a.args {
            enc.push(match t {
                Term::Const(c) => -(c.0 as i64) - 1,
                Term::Var(v) => dense(vars, *v) as i64,
                Term::Null(_) => unreachable!("CQs contain no nulls"),
            });
        }
    }
    starts.push(enc.len());
    let enc = &*enc;
    let starts = &*starts;
    let args_of = |i: usize| &enc[starts[i]..starts[i + 1]];
    let n_ex = vars.len() - n_head;

    // Color refinement on the existential variables until the number of
    // classes stops growing (the stopping rule depends only on invariant
    // class counts). A variable's new color folds in, order-independently,
    // one view hash per occurrence: (pred, position, the atom's argument
    // encodings under the current coloring).
    color.clear();
    color.resize(n_ex, 0);
    if n_ex > 1 {
        next.clear();
        next.resize(n_ex, 0);
        let mut classes = 1usize;
        loop {
            next.copy_from_slice(color);
            for (i, a) in q.body.iter().enumerate() {
                let args = args_of(i);
                let mut atom_h = mix(a.pred.0 as u64, 4);
                for &arg in args {
                    let code = if arg < 0 {
                        mix(1, arg as u64)
                    } else if (arg as usize) < n_head {
                        mix(2, arg as u64)
                    } else {
                        mix(3, color[arg as usize - n_head])
                    };
                    atom_h = mix(atom_h, code);
                }
                for (pos, &arg) in args.iter().enumerate() {
                    if arg >= n_head as i64 {
                        let view = mix(mix(atom_h, pos as u64), 5);
                        next[arg as usize - n_head] =
                            next[arg as usize - n_head].wrapping_add(view);
                    }
                }
            }
            for c in next.iter_mut() {
                *c = mix(*c, 6);
            }
            distinct.clear();
            distinct.extend_from_slice(next);
            distinct.sort_unstable();
            distinct.dedup();
            let n = distinct.len();
            std::mem::swap(color, next);
            let grew = n > classes;
            classes = n;
            if !grew {
                break;
            }
        }
    }

    // Group existentials by final color: `order` sorted by color, classes
    // are the equal-color runs `order[class_starts[c]..class_starts[c+1]]`.
    order.clear();
    order.extend(0..n_ex);
    order.sort_unstable_by_key(|&i| color[i]);
    class_starts.clear();
    class_starts.push(0);
    for k in 1..n_ex {
        if color[order[k]] != color[order[k - 1]] {
            class_starts.push(k);
        }
    }
    if n_ex > 0 {
        class_starts.push(n_ex);
    }
    let order = &*order;
    let class_starts = &*class_starts;
    let n_classes = class_starts.len() - 1;
    let class = |c: usize| &order[class_starts[c]..class_starts[c + 1]];

    // Symmetry budget: total number of within-class relabelings.
    let mut total: usize = 1;
    for c in 0..n_classes {
        for k in 2..=class(c).len() {
            total = total.saturating_mul(k);
            if total > symmetry_budget {
                return None;
            }
        }
    }

    // Base canonical ids per class (classes ordered by color value, which
    // is invariant).
    bases.clear();
    let mut next_id = n_head as u32;
    for c in 0..n_classes {
        bases.push(next_id);
        next_id += class(c).len() as u32;
    }

    // `label[i]` is the canonical id of dense variable i under the current
    // relabeling; head labels are fixed.
    label.clear();
    label.extend(0..vars.len() as u32);
    // Encodes the body under `label` into `out`: per-atom chunks
    // `pred, arity, args...` written to `buf`, atom order sorted via `idx`
    // by chunk comparison, then emitted contiguously.
    let encode_atoms = |label: &[u32],
                        buf: &mut Vec<i64>,
                        bufs: &mut Vec<usize>,
                        idx: &mut Vec<usize>,
                        out: &mut Vec<i64>| {
        buf.clear();
        bufs.clear();
        for (i, a) in q.body.iter().enumerate() {
            bufs.push(buf.len());
            buf.push(a.pred.0 as i64);
            buf.push(a.args.len() as i64);
            for &arg in args_of(i) {
                buf.push(if arg < 0 {
                    arg
                } else {
                    label[arg as usize] as i64
                });
            }
        }
        bufs.push(buf.len());
        idx.clear();
        idx.extend(0..n_atoms);
        idx.sort_unstable_by(|&a, &b| buf[bufs[a]..bufs[a + 1]].cmp(&buf[bufs[b]..bufs[b + 1]]));
        out.clear();
        for &i in idx.iter() {
            out.extend_from_slice(&buf[bufs[i]..bufs[i + 1]]);
        }
    };

    if total == 1 {
        // Rigid after refinement (the common case): one relabeling.
        for (c, &base) in bases.iter().enumerate() {
            for (mi, &i) in class(c).iter().enumerate() {
                label[n_head + i] = base + mi as u32;
            }
        }
        let mut atoms = Vec::with_capacity(enc.len() + 2 * n_atoms);
        encode_atoms(label, buf, bufs, idx, &mut atoms);
        return Some(CqCanonicalForm::seal(head, atoms));
    }

    // Enumerate the cartesian product of within-class permutations and keep
    // the minimum certificate.
    let perms_per_class: Vec<Vec<Vec<usize>>> = (0..n_classes)
        .map(|c| permutations(class(c).len()))
        .collect();
    let mut odometer = vec![0usize; n_classes];
    let mut best: Option<Vec<i64>> = None;
    let mut cand: Vec<i64> = Vec::new();
    loop {
        for (c, perms) in perms_per_class.iter().enumerate() {
            let perm = &perms[odometer[c]];
            for (mi, &i) in class(c).iter().enumerate() {
                label[n_head + i] = bases[c] + perm[mi] as u32;
            }
        }
        encode_atoms(label, buf, bufs, idx, &mut cand);
        if best.as_ref().is_none_or(|b| cand < *b) {
            best = Some(std::mem::take(&mut cand));
        }
        // Advance the odometer.
        let mut c = 0;
        loop {
            if c == odometer.len() {
                return Some(CqCanonicalForm::seal(
                    head,
                    best.expect("at least one relabeling was tried"),
                ));
            }
            odometer[c] += 1;
            if odometer[c] < perms_per_class[c].len() {
                break;
            }
            odometer[c] = 0;
            c += 1;
        }
    }
}

/// All permutations of `0..n` (n is bounded by the symmetry budget).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    for _ in 0..n {
        let mut next = Vec::new();
        for p in &out {
            for k in 0..n {
                if !p.contains(&k) {
                    let mut p2 = p.clone();
                    p2.push(k);
                    next.push(p2);
                }
            }
        }
        out = next;
    }
    out
}

/// A streaming sieve that keeps only homomorphically maximal disjuncts of a
/// UCQ: a disjunct `d` is dropped when some kept disjunct `k` subsumes it
/// (`d ⊆ k`), and inserting `d` evicts every kept disjunct it subsumes. On
/// mutual containment (equivalent disjuncts) the earliest insertion wins, so
/// the surviving list is a deterministic function of the insertion order.
///
/// The frozen instance and compiled [`JoinPlan`] of every kept disjunct are
/// cached, and a 64-bit predicate bloom mask prefilters the Chandra–Merlin
/// checks (a hom from `k` into `d`'s frozen body needs
/// `preds(k) ⊆ preds(d)`); prefilter rejections and plan reuse are counted
/// in [`SubsumptionSieve::hom_stats`].
pub struct SubsumptionSieve {
    kept: Vec<SieveEntry>,
    kills: usize,
    /// Reuse each entry's stored plan across probes (`false` recompiles per
    /// probe — same results, used to exercise the uncached path).
    reuse_plans: bool,
    stats: HomStats,
}

struct SieveEntry {
    cq: Cq,
    frozen: Instance,
    head: Vec<Term>,
    mask: u64,
    /// Plan for homs from `cq` into another disjunct's frozen body, seeded
    /// on `cq`'s head variables.
    plan: Arc<JoinPlan>,
}

fn pred_mask(q: &Cq) -> u64 {
    pred_sig(&q.body)
}

/// Compiles `cq`'s probe plan costed against `target`, the frozen instance
/// it is about to (or will typically) probe. A stored entry plan later runs
/// against *other* disjuncts' frozen bodies; its own frozen body is a good
/// cardinality proxy because sieve disjuncts are structurally close.
fn compile_entry_plan(cq: &Cq, target: &Instance, stats: &mut HomStats) -> Arc<JoinPlan> {
    stats.plans_compiled += 1;
    Arc::new(crate::hom::compile_costed_for(
        &cq.body, &cq.head, None, target, stats,
    ))
}

/// `sub ⊆ sup`, with `sub` pre-frozen and `sup`'s plan (body seeded on
/// `sup_head`) pre-compiled — cached Chandra–Merlin.
fn contained_in_frozen(
    plan: &JoinPlan,
    sup_head: &[VarId],
    sub_frozen: &Instance,
    sub_head: &[Term],
    stats: &mut HomStats,
) -> bool {
    if sub_head.len() != sup_head.len() {
        return false;
    }
    let pairs: Vec<(VarId, Term)> = sup_head
        .iter()
        .copied()
        .zip(sub_head.iter().copied())
        .collect();
    let Some(seed) = plan.seed_values(&pairs) else {
        return false; // repeated head variable with conflicting images
    };
    let before = stats.candidates_scanned;
    let hit = plan
        .execute(sub_frozen, &seed, None, stats, |_| ControlFlow::Break(()))
        .is_break();
    crate::hom::record_estimate_quality(plan, stats.candidates_scanned - before, stats);
    hit
}

impl SubsumptionSieve {
    pub fn new() -> Self {
        SubsumptionSieve::with_plan_cache(true)
    }

    /// A sieve that reuses per-entry compiled plans when `reuse_plans` is
    /// true, or recompiles per probe otherwise. The surviving disjuncts are
    /// identical either way.
    pub fn with_plan_cache(reuse_plans: bool) -> Self {
        SubsumptionSieve {
            kept: Vec::new(),
            kills: 0,
            reuse_plans,
            stats: HomStats::default(),
        }
    }

    /// Offers a disjunct; returns `true` if it was kept, `false` if an
    /// already-kept disjunct subsumes it.
    pub fn insert(&mut self, cq: Cq) -> bool {
        let (frozen, head) = freeze_to_nulls(&cq);
        let mask = pred_mask(&cq);
        let reuse = self.reuse_plans;
        let mut rejected = false;
        for k in &self.kept {
            if k.mask & !mask != 0 {
                // Some predicate of `k` is absent from `cq`: no hom exists.
                record_prefilter_reject(&mut self.stats);
                continue;
            }
            let plan = if reuse {
                record_plan_reuse(&mut self.stats);
                Arc::clone(&k.plan)
            } else {
                compile_entry_plan(&k.cq, &frozen, &mut self.stats)
            };
            if contained_in_frozen(&plan, &k.cq.head, &frozen, &head, &mut self.stats) {
                rejected = true;
                break;
            }
        }
        if rejected {
            self.kills += 1;
            return false;
        }
        let plan = compile_entry_plan(&cq, &frozen, &mut self.stats);
        let before = self.kept.len();
        let stats = &mut self.stats;
        self.kept.retain(|k| {
            if mask & !k.mask != 0 {
                record_prefilter_reject(stats);
                return true;
            }
            let p = if reuse {
                record_plan_reuse(stats);
                Arc::clone(&plan)
            } else {
                compile_entry_plan(&cq, &k.frozen, stats)
            };
            !contained_in_frozen(&p, &cq.head, &k.frozen, &k.head, stats)
        });
        self.kills += before - self.kept.len();
        self.kept.push(SieveEntry {
            cq,
            frozen,
            head,
            mask,
            plan,
        });
        true
    }

    /// Disjuncts dropped so far (offered-and-rejected plus kept-and-evicted).
    pub fn kills(&self) -> usize {
        self.kills
    }

    /// Work counters accumulated across all probes: candidate scans,
    /// prefilter rejections, plan compilations and reuses.
    pub fn hom_stats(&self) -> HomStats {
        self.stats
    }

    pub fn len(&self) -> usize {
        self.kept.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// The surviving disjuncts, in insertion order.
    pub fn into_disjuncts(self) -> Vec<Cq> {
        self.kept.into_iter().map(|k| k.cq).collect()
    }
}

impl Default for SubsumptionSieve {
    fn default() -> Self {
        SubsumptionSieve::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_query, Vocabulary};

    fn q(voc: &mut Vocabulary, s: &str) -> Cq {
        parse_query(voc, s).unwrap().1
    }

    #[test]
    fn chandra_merlin_chain() {
        let mut voc = Vocabulary::new();
        // path of length 2 ⊆ path of length 1 (as Boolean queries over edges).
        let p2 = q(&mut voc, "q :- E(X,Y), E(Y,Z)");
        let p1 = q(&mut voc, "q :- E(U,V)");
        assert!(cq_contained(&p2, &p1));
        assert!(!cq_contained(&p1, &p2));
        assert!(!cq_equivalent(&p1, &p2));
    }

    #[test]
    fn containment_respects_head() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q(X) :- E(X,Y)");
        let qb = q(&mut voc, "q(Y) :- E(X,Y)");
        assert!(!cq_contained(&qa, &qb));
        assert!(!cq_contained(&qb, &qa));
        assert!(cq_contained(&qa, &qa));
    }

    #[test]
    fn containment_with_constants() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q :- E(a,Y)");
        let qb = q(&mut voc, "q :- E(X,Y)");
        assert!(cq_contained(&qa, &qb));
        assert!(!cq_contained(&qb, &qa));
    }

    #[test]
    fn ucq_containment() {
        let prog = omq_model::parse_program(
            "p(X) :- A(X)\np(X) :- B(X)\n\
             r(X) :- B(X)\nr(X) :- A(X)\nr(X) :- C(X)\n",
        )
        .unwrap();
        let p = prog.query("p").unwrap();
        let r = prog.query("r").unwrap();
        assert!(ucq_contained(p, r));
        assert!(!ucq_contained(r, p));
    }

    #[test]
    fn core_collapses_redundant_atoms() {
        let mut voc = Vocabulary::new();
        // E(X,Y) ∧ E(X,Z) folds to E(X,Y).
        let redundant = q(&mut voc, "q(X) :- E(X,Y), E(X,Z)");
        let core = cq_core(&redundant);
        assert_eq!(core.body.len(), 1);
        assert!(cq_equivalent(&redundant, &core));
    }

    #[test]
    fn core_keeps_triangle() {
        let mut voc = Vocabulary::new();
        let triangle = q(&mut voc, "q :- E(X,Y), E(Y,Z), E(Z,X)");
        let core = cq_core(&triangle);
        assert_eq!(core.body.len(), 3);
    }

    #[test]
    fn core_folds_path_into_loop() {
        let mut voc = Vocabulary::new();
        // E(X,X) ∧ E(X,Y): Y can fold onto X.
        let qq = q(&mut voc, "q :- E(X,X), E(X,Y)");
        let core = cq_core(&qq);
        assert_eq!(core.body.len(), 1);
    }

    #[test]
    fn isomorphism_modulo_renaming() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q(X) :- E(X,Y), P(Y)");
        let qb = q(&mut voc, "q(X) :- E(X,Z), P(Z)");
        assert!(cq_isomorphic(&qa, &qb));
        let qc = q(&mut voc, "q(X) :- E(Y,X), P(Y)");
        assert!(!cq_isomorphic(&qa, &qc));
    }

    #[test]
    fn isomorphism_head_identity() {
        let mut voc = Vocabulary::new();
        // Same shape, but head picks a different variable: not isomorphic in
        // the ≃ sense even though the bodies match.
        let qa = q(&mut voc, "q(X) :- E(X,Y)");
        let qb = q(&mut voc, "q(Y2) :- E(X2,Y2)");
        assert!(!cq_isomorphic(&qa, &qb));
    }

    #[test]
    fn isomorphism_distinguishes_shape_from_equivalence() {
        let mut voc = Vocabulary::new();
        // Equivalent but not isomorphic (different atom counts).
        let qa = q(&mut voc, "q :- E(X,Y)");
        let qb = q(&mut voc, "q :- E(U,V), E(U,W)");
        assert!(cq_equivalent(&qa, &qb));
        assert!(!cq_isomorphic(&qa, &qb));
    }

    #[test]
    fn isomorphism_repeated_vars() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q :- E(X,X)");
        let qb = q(&mut voc, "q :- E(Y,Y)");
        let qc = q(&mut voc, "q :- E(Y,Z)");
        assert!(cq_isomorphic(&qa, &qb));
        assert!(!cq_isomorphic(&qa, &qc));
    }

    /// Canonical forms agree with `cq_isomorphic` on a battery of
    /// hand-picked pairs covering renamings, head identity, repeated
    /// variables and constants.
    #[test]
    fn canonical_form_matches_isomorphism() {
        let mut voc = Vocabulary::new();
        let queries = [
            "q(X) :- E(X,Y), P(Y)",
            "q(X) :- E(X,Z), P(Z)",
            "q(X) :- E(Y,X), P(Y)",
            "q :- E(X,Y), E(Y,Z)",
            "q :- E(A,B), E(B,C)",
            "q :- E(X,Y), E(X,Z)",
            "q :- E(X,X)",
            "q :- E(Y,Y)",
            "q :- E(Y,Z)",
            "q(X) :- E(X,Y)",
            "q(Y2) :- E(X2,Y2)",
            "q :- E(a,Y)",
            "q :- E(X,Y)",
            "q(X,X) :- E(X,Y)",
            "q(X,Z) :- E(X,Y), E(Z,Y)",
        ];
        let cqs: Vec<Cq> = queries.iter().map(|s| q(&mut voc, s)).collect();
        for (i, a) in cqs.iter().enumerate() {
            for (j, b) in cqs.iter().enumerate() {
                let fa = cq_canonical_form(a, 5040).unwrap();
                let fb = cq_canonical_form(b, 5040).unwrap();
                assert_eq!(
                    fa == fb,
                    cq_isomorphic(a, b),
                    "canonical form disagrees with cq_isomorphic on \
                     {:?} vs {:?}",
                    queries[i],
                    queries[j],
                );
            }
        }
    }

    /// A highly symmetric query (a clique of interchangeable variables)
    /// blows past a tiny symmetry budget and falls back to `None`.
    #[test]
    fn canonical_form_symmetry_budget() {
        let mut voc = Vocabulary::new();
        let clique = q(
            &mut voc,
            "q :- E(A,B), E(B,A), E(B,C), E(C,B), E(A,C), E(C,A)",
        );
        assert!(cq_canonical_form(&clique, 2).is_none());
        assert!(cq_canonical_form(&clique, 5040).is_some());
    }

    #[test]
    fn core_budget_exhaustion_is_reported() {
        let mut voc = Vocabulary::new();
        let qq = q(&mut voc, "q :- E(X,Y), E(X,Z), E(X,W)");
        let (unshrunk, exhausted_tight) = cq_core_budgeted_report(&qq, 0);
        assert!(exhausted_tight);
        assert_eq!(unshrunk.body.len(), 3);
        let (core, exhausted) = cq_core_budgeted_report(&qq, usize::MAX);
        assert!(!exhausted);
        assert_eq!(core.body.len(), 1);
    }

    #[test]
    fn sieve_drops_subsumed_and_evicts() {
        let mut voc = Vocabulary::new();
        // p2 ⊆ p1 (a longer path is subsumed by the shorter pattern).
        let p1 = q(&mut voc, "q :- E(U,V)");
        let p2 = q(&mut voc, "q :- E(X,Y), E(Y,Z)");
        let tri = q(&mut voc, "q :- P(X)");

        // Keeping the general disjunct first: the specific one is rejected.
        let mut sieve = SubsumptionSieve::new();
        assert!(sieve.insert(p1.clone()));
        assert!(!sieve.insert(p2.clone()));
        assert!(sieve.insert(tri.clone()));
        assert_eq!(sieve.kills(), 1);
        assert_eq!(sieve.len(), 2);

        // Specific first: inserting the general disjunct evicts it.
        let mut sieve = SubsumptionSieve::new();
        assert!(sieve.insert(p2.clone()));
        assert!(sieve.insert(p1.clone()));
        assert_eq!(sieve.kills(), 1);
        assert_eq!(sieve.into_disjuncts(), vec![p1.clone()]);

        // Mutual containment (equivalent but non-identical): earliest wins.
        let e1 = q(&mut voc, "q :- E(S,T)");
        let mut sieve = SubsumptionSieve::new();
        assert!(sieve.insert(p1.clone()));
        assert!(!sieve.insert(e1));
        assert_eq!(sieve.into_disjuncts(), vec![p1]);
    }
}
