//! Classical CQ statics: Chandra–Merlin containment, cores (minimization),
//! and isomorphism modulo variable renaming (the `≃` check XRewrite uses to
//! deduplicate rewritings).

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use omq_model::{Atom, Cq, Instance, NullId, Term, Ucq, VarId};

use crate::hom::{find_hom, for_each_hom, Assignment};

/// Freezes the body of `q` into an instance, mapping each variable `v` to
/// the null `⊥v` (constants stay). Returns the instance and the head image.
fn freeze_to_nulls(q: &Cq) -> (Instance, Vec<Term>) {
    let inst = Instance::from_atoms(q.body.iter().map(|a| {
        a.map_terms(|t| match t {
            Term::Var(v) => Term::Null(NullId(v.0)),
            other => other,
        })
    }));
    let head = q.head.iter().map(|&v| Term::Null(NullId(v.0))).collect();
    (inst, head)
}

/// Chandra–Merlin: `q1 ⊆ q2` iff there is a homomorphism from `q2` to the
/// canonical (frozen) instance of `q1` mapping head to head.
pub fn cq_contained(q1: &Cq, q2: &Cq) -> bool {
    if q1.head.len() != q2.head.len() {
        return false;
    }
    let (frozen, head1) = freeze_to_nulls(q1);
    let mut seed = Assignment::new();
    for (&v2, &t1) in q2.head.iter().zip(&head1) {
        match seed.get(&v2) {
            Some(&t) if t != t1 => return false,
            _ => {
                seed.insert(v2, t1);
            }
        }
    }
    find_hom(&q2.body, &frozen, &seed).is_some()
}

/// UCQ containment (Sagiv–Yannakakis): `∨ᵢ pᵢ ⊆ ∨ⱼ qⱼ` iff every `pᵢ` is
/// contained in some `qⱼ`.
pub fn ucq_contained(p: &Ucq, q: &Ucq) -> bool {
    p.disjuncts
        .iter()
        .all(|pi| q.disjuncts.iter().any(|qj| cq_contained(pi, qj)))
}

/// CQ equivalence: mutual containment.
pub fn cq_equivalent(q1: &Cq, q2: &Cq) -> bool {
    cq_contained(q1, q2) && cq_contained(q2, q1)
}

/// Computes the core of `q`: an equivalent subquery with a minimal number of
/// atoms. Head variables are kept fixed. Exponential in the worst case (the
/// problem is NP-hard) but fast on the small queries arising in rewritings.
pub fn cq_core(q: &Cq) -> Cq {
    cq_core_budgeted(q, usize::MAX)
}

/// Like [`cq_core`] but gives up after examining `max_homs` endomorphisms
/// per folding round, returning the (equivalent) partially-minimized query.
/// Queries with many loosely-joined same-predicate atoms have exponentially
/// many endomorphisms, and an exhaustive no-fold proof is pointless when
/// coring is used only as a canonicalization heuristic.
pub fn cq_core_budgeted(q: &Cq, max_homs: usize) -> Cq {
    let mut current = q.clone();
    loop {
        let (frozen, _) = freeze_to_nulls(&current);
        // Seed: head variables map to their own frozen images (retraction).
        let mut seed = Assignment::new();
        for &v in &current.head {
            seed.insert(v, Term::Null(NullId(v.0)));
        }
        let n = current.body.len();
        // Look for an endomorphism whose image has strictly fewer atoms.
        let mut examined = 0usize;
        let mut smaller: Option<Assignment> = None;
        let _ = for_each_hom(&current.body, &frozen, &seed, |h| {
            examined += 1;
            if examined > max_homs {
                return ControlFlow::Break(());
            }
            let image: HashSet<Atom> = current
                .body
                .iter()
                .map(|a| {
                    a.map_terms(|t| match t {
                        Term::Var(v) => h.get(&v).copied().unwrap_or(t),
                        other => other,
                    })
                })
                .collect();
            if image.len() < n {
                smaller = Some(h.clone());
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        match smaller {
            None => return current,
            Some(h) => {
                // Rebuild the query from the image, un-freezing nulls back
                // to variables.
                let mut body: Vec<Atom> = Vec::new();
                let mut seen = HashSet::new();
                for a in &current.body {
                    let img = a.map_terms(|t| match t {
                        Term::Var(v) => match h.get(&v) {
                            Some(Term::Null(n)) => Term::Var(VarId(n.0)),
                            Some(&other) => other,
                            None => t,
                        },
                        other => other,
                    });
                    if seen.insert(img.clone()) {
                        body.push(img);
                    }
                }
                current = Cq::new(current.head.clone(), body);
            }
        }
    }
}

/// Are two CQs isomorphic: equal up to a bijective variable renaming that is
/// the identity on head positions (`q' ≃ q''` in Algorithm 1)?
pub fn cq_isomorphic(q1: &Cq, q2: &Cq) -> bool {
    if q1.head.len() != q2.head.len() || q1.body.len() != q2.body.len() {
        return false;
    }
    // Invariant prefilter: multiset of predicates.
    let mut p1: Vec<_> = q1.body.iter().map(|a| a.pred).collect();
    let mut p2: Vec<_> = q2.body.iter().map(|a| a.pred).collect();
    p1.sort_unstable();
    p2.sort_unstable();
    if p1 != p2 {
        return false;
    }

    fn extend(
        map: &mut HashMap<VarId, VarId>,
        inv: &mut HashMap<VarId, VarId>,
        a: &Atom,
        b: &Atom,
    ) -> Option<Vec<VarId>> {
        if a.pred != b.pred {
            return None;
        }
        let mut newly = Vec::new();
        for (&x, &y) in a.args.iter().zip(&b.args) {
            match (x, y) {
                (Term::Var(vx), Term::Var(vy)) => {
                    match (map.get(&vx).copied(), inv.get(&vy).copied()) {
                        (Some(m), _) if m != vy => {
                            undo(map, inv, &newly);
                            return None;
                        }
                        (_, Some(i)) if i != vx => {
                            undo(map, inv, &newly);
                            return None;
                        }
                        (None, None) => {
                            map.insert(vx, vy);
                            inv.insert(vy, vx);
                            newly.push(vx);
                        }
                        _ => {}
                    }
                }
                (tx, ty) if tx == ty => {}
                _ => {
                    undo(map, inv, &newly);
                    return None;
                }
            }
        }
        Some(newly)
    }

    fn undo(map: &mut HashMap<VarId, VarId>, inv: &mut HashMap<VarId, VarId>, newly: &[VarId]) {
        for v in newly {
            if let Some(w) = map.remove(v) {
                inv.remove(&w);
            }
        }
    }

    fn rec(
        q1: &Cq,
        q2: &Cq,
        i: usize,
        used: &mut Vec<bool>,
        map: &mut HashMap<VarId, VarId>,
        inv: &mut HashMap<VarId, VarId>,
    ) -> bool {
        if i == q1.body.len() {
            return true;
        }
        for j in 0..q2.body.len() {
            if used[j] {
                continue;
            }
            if let Some(newly) = extend(map, inv, &q1.body[i], &q2.body[j]) {
                used[j] = true;
                if rec(q1, q2, i + 1, used, map, inv) {
                    return true;
                }
                used[j] = false;
                undo(map, inv, &newly);
            }
        }
        false
    }

    let mut map = HashMap::new();
    let mut inv = HashMap::new();
    // The renaming must respect head positions pairwise.
    for (&h1, &h2) in q1.head.iter().zip(&q2.head) {
        match (map.get(&h1).copied(), inv.get(&h2).copied()) {
            (Some(m), _) if m != h2 => return false,
            (_, Some(i)) if i != h1 => return false,
            (None, None) => {
                map.insert(h1, h2);
                inv.insert(h2, h1);
            }
            _ => {}
        }
    }
    let mut used = vec![false; q2.body.len()];
    rec(q1, q2, 0, &mut used, &mut map, &mut inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_query, Vocabulary};

    fn q(voc: &mut Vocabulary, s: &str) -> Cq {
        parse_query(voc, s).unwrap().1
    }

    #[test]
    fn chandra_merlin_chain() {
        let mut voc = Vocabulary::new();
        // path of length 2 ⊆ path of length 1 (as Boolean queries over edges).
        let p2 = q(&mut voc, "q :- E(X,Y), E(Y,Z)");
        let p1 = q(&mut voc, "q :- E(U,V)");
        assert!(cq_contained(&p2, &p1));
        assert!(!cq_contained(&p1, &p2));
        assert!(!cq_equivalent(&p1, &p2));
    }

    #[test]
    fn containment_respects_head() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q(X) :- E(X,Y)");
        let qb = q(&mut voc, "q(Y) :- E(X,Y)");
        assert!(!cq_contained(&qa, &qb));
        assert!(!cq_contained(&qb, &qa));
        assert!(cq_contained(&qa, &qa));
    }

    #[test]
    fn containment_with_constants() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q :- E(a,Y)");
        let qb = q(&mut voc, "q :- E(X,Y)");
        assert!(cq_contained(&qa, &qb));
        assert!(!cq_contained(&qb, &qa));
    }

    #[test]
    fn ucq_containment() {
        let prog = omq_model::parse_program(
            "p(X) :- A(X)\np(X) :- B(X)\n\
             r(X) :- B(X)\nr(X) :- A(X)\nr(X) :- C(X)\n",
        )
        .unwrap();
        let p = prog.query("p").unwrap();
        let r = prog.query("r").unwrap();
        assert!(ucq_contained(p, r));
        assert!(!ucq_contained(r, p));
    }

    #[test]
    fn core_collapses_redundant_atoms() {
        let mut voc = Vocabulary::new();
        // E(X,Y) ∧ E(X,Z) folds to E(X,Y).
        let redundant = q(&mut voc, "q(X) :- E(X,Y), E(X,Z)");
        let core = cq_core(&redundant);
        assert_eq!(core.body.len(), 1);
        assert!(cq_equivalent(&redundant, &core));
    }

    #[test]
    fn core_keeps_triangle() {
        let mut voc = Vocabulary::new();
        let triangle = q(&mut voc, "q :- E(X,Y), E(Y,Z), E(Z,X)");
        let core = cq_core(&triangle);
        assert_eq!(core.body.len(), 3);
    }

    #[test]
    fn core_folds_path_into_loop() {
        let mut voc = Vocabulary::new();
        // E(X,X) ∧ E(X,Y): Y can fold onto X.
        let qq = q(&mut voc, "q :- E(X,X), E(X,Y)");
        let core = cq_core(&qq);
        assert_eq!(core.body.len(), 1);
    }

    #[test]
    fn isomorphism_modulo_renaming() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q(X) :- E(X,Y), P(Y)");
        let qb = q(&mut voc, "q(X) :- E(X,Z), P(Z)");
        assert!(cq_isomorphic(&qa, &qb));
        let qc = q(&mut voc, "q(X) :- E(Y,X), P(Y)");
        assert!(!cq_isomorphic(&qa, &qc));
    }

    #[test]
    fn isomorphism_head_identity() {
        let mut voc = Vocabulary::new();
        // Same shape, but head picks a different variable: not isomorphic in
        // the ≃ sense even though the bodies match.
        let qa = q(&mut voc, "q(X) :- E(X,Y)");
        let qb = q(&mut voc, "q(Y2) :- E(X2,Y2)");
        assert!(!cq_isomorphic(&qa, &qb));
    }

    #[test]
    fn isomorphism_distinguishes_shape_from_equivalence() {
        let mut voc = Vocabulary::new();
        // Equivalent but not isomorphic (different atom counts).
        let qa = q(&mut voc, "q :- E(X,Y)");
        let qb = q(&mut voc, "q :- E(U,V), E(U,W)");
        assert!(cq_equivalent(&qa, &qb));
        assert!(!cq_isomorphic(&qa, &qb));
    }

    #[test]
    fn isomorphism_repeated_vars() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q :- E(X,X)");
        let qb = q(&mut voc, "q :- E(Y,Y)");
        let qc = q(&mut voc, "q :- E(Y,Z)");
        assert!(cq_isomorphic(&qa, &qb));
        assert!(!cq_isomorphic(&qa, &qc));
    }
}
