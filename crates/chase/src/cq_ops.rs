//! Classical CQ statics: Chandra–Merlin containment, cores (minimization),
//! isomorphism modulo variable renaming (the `≃` check XRewrite uses to
//! deduplicate rewritings), canonical forms (so `≃`-dedup becomes hash-map
//! equality), and a homomorphic subsumption sieve for UCQ minimization.

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use omq_model::{Atom, Cq, Instance, NullId, Term, Ucq, VarId};

use crate::hom::{find_hom, for_each_hom, Assignment};

/// Freezes the body of `q` into an instance, mapping each variable `v` to
/// the null `⊥v` (constants stay). Returns the instance and the head image.
fn freeze_to_nulls(q: &Cq) -> (Instance, Vec<Term>) {
    let inst = Instance::from_atoms(q.body.iter().map(|a| {
        a.map_terms(|t| match t {
            Term::Var(v) => Term::Null(NullId(v.0)),
            other => other,
        })
    }));
    let head = q.head.iter().map(|&v| Term::Null(NullId(v.0))).collect();
    (inst, head)
}

/// Chandra–Merlin: `q1 ⊆ q2` iff there is a homomorphism from `q2` to the
/// canonical (frozen) instance of `q1` mapping head to head.
pub fn cq_contained(q1: &Cq, q2: &Cq) -> bool {
    if q1.head.len() != q2.head.len() {
        return false;
    }
    let (frozen, head1) = freeze_to_nulls(q1);
    let mut seed = Assignment::new();
    for (&v2, &t1) in q2.head.iter().zip(&head1) {
        match seed.get(&v2) {
            Some(&t) if t != t1 => return false,
            _ => {
                seed.insert(v2, t1);
            }
        }
    }
    find_hom(&q2.body, &frozen, &seed).is_some()
}

/// UCQ containment (Sagiv–Yannakakis): `∨ᵢ pᵢ ⊆ ∨ⱼ qⱼ` iff every `pᵢ` is
/// contained in some `qⱼ`.
pub fn ucq_contained(p: &Ucq, q: &Ucq) -> bool {
    p.disjuncts
        .iter()
        .all(|pi| q.disjuncts.iter().any(|qj| cq_contained(pi, qj)))
}

/// CQ equivalence: mutual containment.
pub fn cq_equivalent(q1: &Cq, q2: &Cq) -> bool {
    cq_contained(q1, q2) && cq_contained(q2, q1)
}

/// Computes the core of `q`: an equivalent subquery with a minimal number of
/// atoms. Head variables are kept fixed. Exponential in the worst case (the
/// problem is NP-hard) but fast on the small queries arising in rewritings.
pub fn cq_core(q: &Cq) -> Cq {
    cq_core_budgeted(q, usize::MAX)
}

/// Like [`cq_core`] but gives up after examining `max_homs` endomorphisms
/// per folding round, returning the (equivalent) partially-minimized query.
/// Queries with many loosely-joined same-predicate atoms have exponentially
/// many endomorphisms, and an exhaustive no-fold proof is pointless when
/// coring is used only as a canonicalization heuristic.
pub fn cq_core_budgeted(q: &Cq, max_homs: usize) -> Cq {
    cq_core_budgeted_report(q, max_homs).0
}

/// Like [`cq_core_budgeted`], additionally reporting whether the
/// endomorphism budget was exhausted in any folding round (i.e. whether the
/// result is only *potentially* non-minimal rather than a certified core).
pub fn cq_core_budgeted_report(q: &Cq, max_homs: usize) -> (Cq, bool) {
    let mut current = q.clone();
    let mut exhausted = false;
    loop {
        let (frozen, _) = freeze_to_nulls(&current);
        // Seed: head variables map to their own frozen images (retraction).
        let mut seed = Assignment::new();
        for &v in &current.head {
            seed.insert(v, Term::Null(NullId(v.0)));
        }
        let n = current.body.len();
        // Look for an endomorphism whose image has strictly fewer atoms.
        let mut examined = 0usize;
        let mut smaller: Option<Assignment> = None;
        let _ = for_each_hom(&current.body, &frozen, &seed, |h| {
            examined += 1;
            if examined > max_homs {
                exhausted = true;
                return ControlFlow::Break(());
            }
            let image: HashSet<Atom> = current
                .body
                .iter()
                .map(|a| {
                    a.map_terms(|t| match t {
                        Term::Var(v) => h.get(&v).copied().unwrap_or(t),
                        other => other,
                    })
                })
                .collect();
            if image.len() < n {
                smaller = Some(h.clone());
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        match smaller {
            None => return (current, exhausted),
            Some(h) => {
                // Rebuild the query from the image, un-freezing nulls back
                // to variables.
                let mut body: Vec<Atom> = Vec::new();
                let mut seen = HashSet::new();
                for a in &current.body {
                    let img = a.map_terms(|t| match t {
                        Term::Var(v) => match h.get(&v) {
                            Some(Term::Null(n)) => Term::Var(VarId(n.0)),
                            Some(&other) => other,
                            None => t,
                        },
                        other => other,
                    });
                    if seen.insert(img.clone()) {
                        body.push(img);
                    }
                }
                current = Cq::new(current.head.clone(), body);
            }
        }
    }
}

/// Are two CQs isomorphic: equal up to a bijective variable renaming that is
/// the identity on head positions (`q' ≃ q''` in Algorithm 1)?
pub fn cq_isomorphic(q1: &Cq, q2: &Cq) -> bool {
    if q1.head.len() != q2.head.len() || q1.body.len() != q2.body.len() {
        return false;
    }
    // Invariant prefilter: multiset of predicates.
    let mut p1: Vec<_> = q1.body.iter().map(|a| a.pred).collect();
    let mut p2: Vec<_> = q2.body.iter().map(|a| a.pred).collect();
    p1.sort_unstable();
    p2.sort_unstable();
    if p1 != p2 {
        return false;
    }

    fn extend(
        map: &mut HashMap<VarId, VarId>,
        inv: &mut HashMap<VarId, VarId>,
        a: &Atom,
        b: &Atom,
    ) -> Option<Vec<VarId>> {
        if a.pred != b.pred {
            return None;
        }
        let mut newly = Vec::new();
        for (&x, &y) in a.args.iter().zip(&b.args) {
            match (x, y) {
                (Term::Var(vx), Term::Var(vy)) => {
                    match (map.get(&vx).copied(), inv.get(&vy).copied()) {
                        (Some(m), _) if m != vy => {
                            undo(map, inv, &newly);
                            return None;
                        }
                        (_, Some(i)) if i != vx => {
                            undo(map, inv, &newly);
                            return None;
                        }
                        (None, None) => {
                            map.insert(vx, vy);
                            inv.insert(vy, vx);
                            newly.push(vx);
                        }
                        _ => {}
                    }
                }
                (tx, ty) if tx == ty => {}
                _ => {
                    undo(map, inv, &newly);
                    return None;
                }
            }
        }
        Some(newly)
    }

    fn undo(map: &mut HashMap<VarId, VarId>, inv: &mut HashMap<VarId, VarId>, newly: &[VarId]) {
        for v in newly {
            if let Some(w) = map.remove(v) {
                inv.remove(&w);
            }
        }
    }

    fn rec(
        q1: &Cq,
        q2: &Cq,
        i: usize,
        used: &mut Vec<bool>,
        map: &mut HashMap<VarId, VarId>,
        inv: &mut HashMap<VarId, VarId>,
    ) -> bool {
        if i == q1.body.len() {
            return true;
        }
        for j in 0..q2.body.len() {
            if used[j] {
                continue;
            }
            if let Some(newly) = extend(map, inv, &q1.body[i], &q2.body[j]) {
                used[j] = true;
                if rec(q1, q2, i + 1, used, map, inv) {
                    return true;
                }
                used[j] = false;
                undo(map, inv, &newly);
            }
        }
        false
    }

    let mut map = HashMap::new();
    let mut inv = HashMap::new();
    // The renaming must respect head positions pairwise.
    for (&h1, &h2) in q1.head.iter().zip(&q2.head) {
        match (map.get(&h1).copied(), inv.get(&h2).copied()) {
            (Some(m), _) if m != h2 => return false,
            (_, Some(i)) if i != h1 => return false,
            (None, None) => {
                map.insert(h1, h2);
                inv.insert(h2, h1);
            }
            _ => {}
        }
    }
    let mut used = vec![false; q2.body.len()];
    rec(q1, q2, 0, &mut used, &mut map, &mut inv)
}

/// A canonical form for a CQ under `≃` (bijective variable renaming fixing
/// head positions pairwise): two CQs have equal canonical forms iff they are
/// `cq_isomorphic`, so deduplication becomes hash-map equality.
///
/// Head variables are labeled by first occurrence in the head; existential
/// variables by iterated color refinement (a nauty-lite 1-WL) with a
/// backtracking tie-break that takes the minimum certificate over all
/// within-class relabelings.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CqCanonicalForm {
    /// Canonical labels of the head positions (first-occurrence numbering).
    head: Vec<u32>,
    /// Sorted atom encodings: `(pred, args)` with constants `c` encoded as
    /// `-(c+1)` and variables as their canonical label.
    atoms: Vec<(u32, Vec<i64>)>,
}

/// Mixes a word into a running hash (splitmix64 finalizer). Collision
/// quality only affects pruning power, never correctness, so a fast
/// non-cryptographic mix beats `DefaultHasher` here.
#[inline]
fn mix(h: u64, w: u64) -> u64 {
    let mut z = h ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Computes the canonical form of `q`, or `None` when the symmetry of the
/// refined coloring (the product of color-class factorials) exceeds
/// `symmetry_budget` relabelings. The budget test is itself
/// isomorphism-invariant, so isomorphic CQs consistently succeed or
/// consistently fall back — a caller may mix this with a pairwise
/// `cq_isomorphic` fallback without missing duplicates.
pub fn cq_canonical_form(q: &Cq, symmetry_budget: usize) -> Option<CqCanonicalForm> {
    // Dense variable indexing: vars[i] is the i-th distinct variable, head
    // variables first (in head order), then existentials in first-body-
    // occurrence order. The order is only an enumeration — the labeling does
    // not depend on it.
    let mut vars: Vec<VarId> = Vec::new();
    let dense = |vars: &mut Vec<VarId>, v: VarId| -> usize {
        match vars.iter().position(|&w| w == v) {
            Some(i) => i,
            None => {
                vars.push(v);
                vars.len() - 1
            }
        }
    };
    let mut head = Vec::with_capacity(q.head.len());
    for &v in &q.head {
        head.push(dense(&mut vars, v) as u32);
    }
    let n_head = vars.len();
    // Atom args as dense indices (vars) or negative constant encodings.
    let enc_body: Vec<(u32, Vec<i64>)> = q
        .body
        .iter()
        .map(|a| {
            (
                a.pred.0,
                a.args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => -(c.0 as i64) - 1,
                        Term::Var(v) => dense(&mut vars, *v) as i64,
                        Term::Null(_) => unreachable!("CQs contain no nulls"),
                    })
                    .collect(),
            )
        })
        .collect();
    let n_ex = vars.len() - n_head;

    // Color refinement on the existential variables until the number of
    // classes stops growing (the stopping rule depends only on invariant
    // class counts). A variable's new color folds in, order-independently,
    // one view hash per occurrence: (pred, position, the atom's argument
    // encodings under the current coloring).
    let mut color: Vec<u64> = vec![0; n_ex];
    if n_ex > 1 {
        let mut next: Vec<u64> = vec![0; n_ex];
        let mut arg_codes: Vec<u64> = Vec::new();
        let mut classes = 1usize;
        let mut distinct: Vec<u64> = Vec::with_capacity(n_ex);
        loop {
            next.copy_from_slice(&color);
            for (pred, args) in &enc_body {
                arg_codes.clear();
                arg_codes.extend(args.iter().map(|&a| {
                    if a < 0 {
                        mix(1, a as u64)
                    } else if (a as usize) < n_head {
                        mix(2, a as u64)
                    } else {
                        mix(3, color[a as usize - n_head])
                    }
                }));
                let mut atom_h = mix(*pred as u64, 4);
                for &c in &arg_codes {
                    atom_h = mix(atom_h, c);
                }
                for (i, &a) in args.iter().enumerate() {
                    if a >= n_head as i64 {
                        let view = mix(mix(atom_h, i as u64), 5);
                        next[a as usize - n_head] = next[a as usize - n_head].wrapping_add(view);
                    }
                }
            }
            for c in next.iter_mut() {
                *c = mix(*c, 6);
            }
            distinct.clear();
            distinct.extend_from_slice(&next);
            distinct.sort_unstable();
            distinct.dedup();
            let n = distinct.len();
            std::mem::swap(&mut color, &mut next);
            let grew = n > classes;
            classes = n;
            if !grew {
                break;
            }
        }
    }

    // Group existentials by final color; order classes by color value
    // (invariant). `class_of[i]` is the class index of existential i.
    let mut order: Vec<usize> = (0..n_ex).collect();
    order.sort_unstable_by_key(|&i| color[i]);
    let mut class_members: Vec<Vec<usize>> = Vec::new();
    for &i in &order {
        match class_members.last() {
            Some(m) if color[m[0]] == color[i] => class_members.last_mut().unwrap().push(i),
            _ => class_members.push(vec![i]),
        }
    }

    // Symmetry budget: total number of within-class relabelings.
    let mut total: usize = 1;
    for members in &class_members {
        for k in 2..=members.len() {
            total = total.saturating_mul(k);
            if total > symmetry_budget {
                return None;
            }
        }
    }

    // Base canonical ids per class.
    let mut bases = Vec::with_capacity(class_members.len());
    let mut next_id = n_head as u32;
    for members in &class_members {
        bases.push(next_id);
        next_id += members.len() as u32;
    }

    // `label[i]` is the canonical id of dense variable i under the current
    // relabeling; head labels are fixed.
    let mut label: Vec<u32> = (0..vars.len() as u32).collect();
    let encode_atoms = |label: &[u32]| -> Vec<(u32, Vec<i64>)> {
        let mut atoms: Vec<(u32, Vec<i64>)> = enc_body
            .iter()
            .map(|(pred, args)| {
                (
                    *pred,
                    args.iter()
                        .map(|&a| if a < 0 { a } else { label[a as usize] as i64 })
                        .collect(),
                )
            })
            .collect();
        atoms.sort_unstable();
        atoms
    };

    if total == 1 {
        // Rigid after refinement (the common case): one relabeling.
        for (ci, members) in class_members.iter().enumerate() {
            for (mi, &i) in members.iter().enumerate() {
                label[n_head + i] = bases[ci] + mi as u32;
            }
        }
        return Some(CqCanonicalForm {
            head,
            atoms: encode_atoms(&label),
        });
    }

    // Enumerate the cartesian product of within-class permutations and keep
    // the minimum certificate.
    let perms_per_class: Vec<Vec<Vec<usize>>> = class_members
        .iter()
        .map(|members| permutations(members.len()))
        .collect();
    let mut odometer = vec![0usize; class_members.len()];
    let mut best: Option<Vec<(u32, Vec<i64>)>> = None;
    loop {
        for (ci, members) in class_members.iter().enumerate() {
            let perm = &perms_per_class[ci][odometer[ci]];
            for (mi, &i) in members.iter().enumerate() {
                label[n_head + i] = bases[ci] + perm[mi] as u32;
            }
        }
        let atoms = encode_atoms(&label);
        if best.as_ref().is_none_or(|b| atoms < *b) {
            best = Some(atoms);
        }
        // Advance the odometer.
        let mut ci = 0;
        loop {
            if ci == odometer.len() {
                return Some(CqCanonicalForm {
                    head,
                    atoms: best.expect("at least one relabeling was tried"),
                });
            }
            odometer[ci] += 1;
            if odometer[ci] < perms_per_class[ci].len() {
                break;
            }
            odometer[ci] = 0;
            ci += 1;
        }
    }
}

/// All permutations of `0..n` (n is bounded by the symmetry budget).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    for _ in 0..n {
        let mut next = Vec::new();
        for p in &out {
            for k in 0..n {
                if !p.contains(&k) {
                    let mut p2 = p.clone();
                    p2.push(k);
                    next.push(p2);
                }
            }
        }
        out = next;
    }
    out
}

/// A streaming sieve that keeps only homomorphically maximal disjuncts of a
/// UCQ: a disjunct `d` is dropped when some kept disjunct `k` subsumes it
/// (`d ⊆ k`), and inserting `d` evicts every kept disjunct it subsumes. On
/// mutual containment (equivalent disjuncts) the earliest insertion wins, so
/// the surviving list is a deterministic function of the insertion order.
///
/// The frozen instance of every kept disjunct is cached, and a 64-bit
/// predicate bloom mask prefilters the Chandra–Merlin checks (a hom from `k`
/// into `d`'s frozen body needs `preds(k) ⊆ preds(d)`).
pub struct SubsumptionSieve {
    kept: Vec<SieveEntry>,
    kills: usize,
}

struct SieveEntry {
    cq: Cq,
    frozen: Instance,
    head: Vec<Term>,
    mask: u64,
}

fn pred_mask(q: &Cq) -> u64 {
    q.body.iter().fold(0u64, |m, a| m | 1 << (a.pred.0 % 64))
}

/// `sub ⊆ sup`, with `sub` pre-frozen (cached Chandra–Merlin).
fn contained_in_frozen(sub_frozen: &Instance, sub_head: &[Term], sup: &Cq) -> bool {
    if sub_head.len() != sup.head.len() {
        return false;
    }
    let mut seed = Assignment::new();
    for (&v, &t) in sup.head.iter().zip(sub_head) {
        match seed.get(&v) {
            Some(&bound) if bound != t => return false,
            _ => {
                seed.insert(v, t);
            }
        }
    }
    find_hom(&sup.body, sub_frozen, &seed).is_some()
}

impl SubsumptionSieve {
    pub fn new() -> Self {
        SubsumptionSieve {
            kept: Vec::new(),
            kills: 0,
        }
    }

    /// Offers a disjunct; returns `true` if it was kept, `false` if an
    /// already-kept disjunct subsumes it.
    pub fn insert(&mut self, cq: Cq) -> bool {
        let (frozen, head) = freeze_to_nulls(&cq);
        let mask = pred_mask(&cq);
        if self
            .kept
            .iter()
            .any(|k| k.mask & !mask == 0 && contained_in_frozen(&frozen, &head, &k.cq))
        {
            self.kills += 1;
            return false;
        }
        let before = self.kept.len();
        self.kept
            .retain(|k| !(mask & !k.mask == 0 && contained_in_frozen(&k.frozen, &k.head, &cq)));
        self.kills += before - self.kept.len();
        self.kept.push(SieveEntry {
            cq,
            frozen,
            head,
            mask,
        });
        true
    }

    /// Disjuncts dropped so far (offered-and-rejected plus kept-and-evicted).
    pub fn kills(&self) -> usize {
        self.kills
    }

    pub fn len(&self) -> usize {
        self.kept.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// The surviving disjuncts, in insertion order.
    pub fn into_disjuncts(self) -> Vec<Cq> {
        self.kept.into_iter().map(|k| k.cq).collect()
    }
}

impl Default for SubsumptionSieve {
    fn default() -> Self {
        SubsumptionSieve::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_query, Vocabulary};

    fn q(voc: &mut Vocabulary, s: &str) -> Cq {
        parse_query(voc, s).unwrap().1
    }

    #[test]
    fn chandra_merlin_chain() {
        let mut voc = Vocabulary::new();
        // path of length 2 ⊆ path of length 1 (as Boolean queries over edges).
        let p2 = q(&mut voc, "q :- E(X,Y), E(Y,Z)");
        let p1 = q(&mut voc, "q :- E(U,V)");
        assert!(cq_contained(&p2, &p1));
        assert!(!cq_contained(&p1, &p2));
        assert!(!cq_equivalent(&p1, &p2));
    }

    #[test]
    fn containment_respects_head() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q(X) :- E(X,Y)");
        let qb = q(&mut voc, "q(Y) :- E(X,Y)");
        assert!(!cq_contained(&qa, &qb));
        assert!(!cq_contained(&qb, &qa));
        assert!(cq_contained(&qa, &qa));
    }

    #[test]
    fn containment_with_constants() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q :- E(a,Y)");
        let qb = q(&mut voc, "q :- E(X,Y)");
        assert!(cq_contained(&qa, &qb));
        assert!(!cq_contained(&qb, &qa));
    }

    #[test]
    fn ucq_containment() {
        let prog = omq_model::parse_program(
            "p(X) :- A(X)\np(X) :- B(X)\n\
             r(X) :- B(X)\nr(X) :- A(X)\nr(X) :- C(X)\n",
        )
        .unwrap();
        let p = prog.query("p").unwrap();
        let r = prog.query("r").unwrap();
        assert!(ucq_contained(p, r));
        assert!(!ucq_contained(r, p));
    }

    #[test]
    fn core_collapses_redundant_atoms() {
        let mut voc = Vocabulary::new();
        // E(X,Y) ∧ E(X,Z) folds to E(X,Y).
        let redundant = q(&mut voc, "q(X) :- E(X,Y), E(X,Z)");
        let core = cq_core(&redundant);
        assert_eq!(core.body.len(), 1);
        assert!(cq_equivalent(&redundant, &core));
    }

    #[test]
    fn core_keeps_triangle() {
        let mut voc = Vocabulary::new();
        let triangle = q(&mut voc, "q :- E(X,Y), E(Y,Z), E(Z,X)");
        let core = cq_core(&triangle);
        assert_eq!(core.body.len(), 3);
    }

    #[test]
    fn core_folds_path_into_loop() {
        let mut voc = Vocabulary::new();
        // E(X,X) ∧ E(X,Y): Y can fold onto X.
        let qq = q(&mut voc, "q :- E(X,X), E(X,Y)");
        let core = cq_core(&qq);
        assert_eq!(core.body.len(), 1);
    }

    #[test]
    fn isomorphism_modulo_renaming() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q(X) :- E(X,Y), P(Y)");
        let qb = q(&mut voc, "q(X) :- E(X,Z), P(Z)");
        assert!(cq_isomorphic(&qa, &qb));
        let qc = q(&mut voc, "q(X) :- E(Y,X), P(Y)");
        assert!(!cq_isomorphic(&qa, &qc));
    }

    #[test]
    fn isomorphism_head_identity() {
        let mut voc = Vocabulary::new();
        // Same shape, but head picks a different variable: not isomorphic in
        // the ≃ sense even though the bodies match.
        let qa = q(&mut voc, "q(X) :- E(X,Y)");
        let qb = q(&mut voc, "q(Y2) :- E(X2,Y2)");
        assert!(!cq_isomorphic(&qa, &qb));
    }

    #[test]
    fn isomorphism_distinguishes_shape_from_equivalence() {
        let mut voc = Vocabulary::new();
        // Equivalent but not isomorphic (different atom counts).
        let qa = q(&mut voc, "q :- E(X,Y)");
        let qb = q(&mut voc, "q :- E(U,V), E(U,W)");
        assert!(cq_equivalent(&qa, &qb));
        assert!(!cq_isomorphic(&qa, &qb));
    }

    #[test]
    fn isomorphism_repeated_vars() {
        let mut voc = Vocabulary::new();
        let qa = q(&mut voc, "q :- E(X,X)");
        let qb = q(&mut voc, "q :- E(Y,Y)");
        let qc = q(&mut voc, "q :- E(Y,Z)");
        assert!(cq_isomorphic(&qa, &qb));
        assert!(!cq_isomorphic(&qa, &qc));
    }

    /// Canonical forms agree with `cq_isomorphic` on a battery of
    /// hand-picked pairs covering renamings, head identity, repeated
    /// variables and constants.
    #[test]
    fn canonical_form_matches_isomorphism() {
        let mut voc = Vocabulary::new();
        let queries = [
            "q(X) :- E(X,Y), P(Y)",
            "q(X) :- E(X,Z), P(Z)",
            "q(X) :- E(Y,X), P(Y)",
            "q :- E(X,Y), E(Y,Z)",
            "q :- E(A,B), E(B,C)",
            "q :- E(X,Y), E(X,Z)",
            "q :- E(X,X)",
            "q :- E(Y,Y)",
            "q :- E(Y,Z)",
            "q(X) :- E(X,Y)",
            "q(Y2) :- E(X2,Y2)",
            "q :- E(a,Y)",
            "q :- E(X,Y)",
            "q(X,X) :- E(X,Y)",
            "q(X,Z) :- E(X,Y), E(Z,Y)",
        ];
        let cqs: Vec<Cq> = queries.iter().map(|s| q(&mut voc, s)).collect();
        for (i, a) in cqs.iter().enumerate() {
            for (j, b) in cqs.iter().enumerate() {
                let fa = cq_canonical_form(a, 5040).unwrap();
                let fb = cq_canonical_form(b, 5040).unwrap();
                assert_eq!(
                    fa == fb,
                    cq_isomorphic(a, b),
                    "canonical form disagrees with cq_isomorphic on \
                     {:?} vs {:?}",
                    queries[i],
                    queries[j],
                );
            }
        }
    }

    /// A highly symmetric query (a clique of interchangeable variables)
    /// blows past a tiny symmetry budget and falls back to `None`.
    #[test]
    fn canonical_form_symmetry_budget() {
        let mut voc = Vocabulary::new();
        let clique = q(
            &mut voc,
            "q :- E(A,B), E(B,A), E(B,C), E(C,B), E(A,C), E(C,A)",
        );
        assert!(cq_canonical_form(&clique, 2).is_none());
        assert!(cq_canonical_form(&clique, 5040).is_some());
    }

    #[test]
    fn core_budget_exhaustion_is_reported() {
        let mut voc = Vocabulary::new();
        let qq = q(&mut voc, "q :- E(X,Y), E(X,Z), E(X,W)");
        let (unshrunk, exhausted_tight) = cq_core_budgeted_report(&qq, 0);
        assert!(exhausted_tight);
        assert_eq!(unshrunk.body.len(), 3);
        let (core, exhausted) = cq_core_budgeted_report(&qq, usize::MAX);
        assert!(!exhausted);
        assert_eq!(core.body.len(), 1);
    }

    #[test]
    fn sieve_drops_subsumed_and_evicts() {
        let mut voc = Vocabulary::new();
        // p2 ⊆ p1 (a longer path is subsumed by the shorter pattern).
        let p1 = q(&mut voc, "q :- E(U,V)");
        let p2 = q(&mut voc, "q :- E(X,Y), E(Y,Z)");
        let tri = q(&mut voc, "q :- P(X)");

        // Keeping the general disjunct first: the specific one is rejected.
        let mut sieve = SubsumptionSieve::new();
        assert!(sieve.insert(p1.clone()));
        assert!(!sieve.insert(p2.clone()));
        assert!(sieve.insert(tri.clone()));
        assert_eq!(sieve.kills(), 1);
        assert_eq!(sieve.len(), 2);

        // Specific first: inserting the general disjunct evicts it.
        let mut sieve = SubsumptionSieve::new();
        assert!(sieve.insert(p2.clone()));
        assert!(sieve.insert(p1.clone()));
        assert_eq!(sieve.kills(), 1);
        assert_eq!(sieve.into_disjuncts(), vec![p1.clone()]);

        // Mutual containment (equivalent but non-identical): earliest wins.
        let e1 = q(&mut voc, "q :- E(S,T)");
        let mut sieve = SubsumptionSieve::new();
        assert!(sieve.insert(p1.clone()));
        assert!(!sieve.insert(e1));
        assert_eq!(sieve.into_disjuncts(), vec![p1]);
    }
}
