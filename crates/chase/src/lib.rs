//! # omq-chase
//!
//! The query-evaluation substrate: homomorphism search, (U)CQ evaluation,
//! Chandra–Merlin containment and cores, and the chase procedure (paper §2,
//! "Tgds and the chase procedure").
//!
//! The chase is the central algorithmic tool for reasoning with tgds: for an
//! OMQ `Q = (S, Σ, q)` and database `D`, the certain answers are
//! `Q(D) = q(chase(D, Σ))`. This crate implements
//!
//! * the **restricted** chase (a trigger fires only when its head is not yet
//!   satisfied) and the **oblivious** chase (every trigger fires once),
//! * the **stratified** chase for non-recursive sets (always terminates),
//! * step- and depth-budgeted chasing for classes where termination is not
//!   guaranteed, with honest [`chase::ChaseOutcome::complete`] reporting,
//! * chase-based OMQ evaluation and the critical-instance satisfiability
//!   test.

pub mod chase;
pub mod cq_ops;
pub mod eval;
pub mod hom;
pub mod omq_eval;
pub mod runtime;

pub use chase::{
    chase, resume_chase, stratified_chase, ChaseConfig, ChaseOutcome, ChaseStats, ChaseVariant,
    DerivationStep,
};
pub use cq_ops::{
    cq_canonical_form, cq_contained, cq_contained_stats, cq_core, cq_core_budgeted,
    cq_core_budgeted_report, cq_equivalent, cq_isomorphic, ucq_contained, CqCanonicalForm,
    SubsumptionSieve,
};
pub use eval::{
    eval_cq, eval_ucq, holds_cq, holds_ucq, is_answer, is_answer_ucq, CompiledCq, CompiledUcq,
};
pub use hom::{
    find_hom, for_each_hom, for_each_hom_with_delta, global_hom_snapshot, instance_sig, pred_sig,
    record_plan_reuse, record_prefilter_reject, sig_may_hom, Assignment, HomStats, HomView,
    JoinPlan, PlanCache, NO_LIMIT,
};
pub use omq_eval::{certain_answers_via_chase, critical_instance, EvalError};
pub use runtime::{effective_threads, parallel_indexed, Budget, CancelToken};
