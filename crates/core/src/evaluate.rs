//! A unified OMQ evaluation front-end: picks the complete strategy for the
//! detected language and reports the guarantee it achieved.
//!
//! | language | strategy | guarantee |
//! |---|---|---|
//! | `∅` | direct UCQ evaluation | exact |
//! | `NR` | stratified chase (Prop. 3) | exact |
//! | `L`, `S` | UCQ rewriting (Props. 2, 4 via Def. 1) | exact |
//! | `G` | stabilizing guarded chase (Prop. 1) | exact / stabilized |
//! | `F`, general | budgeted chase | exact if it terminates, else sound lower bound |

use std::collections::HashSet;

use omq_chase::chase::{chase, stratified_chase, ChaseConfig};
use omq_chase::eval::{eval_ucq, is_answer_ucq};
use omq_chase::Budget;
use omq_guarded::{guarded_certain_answers, Completeness, GuardedConfig};
use omq_model::{ConstId, Instance, Omq, Vocabulary};
use omq_rewrite::{DirectRewrite, RewriteSource, XRewriteConfig};

use crate::languages::{detect_language, OmqLanguage};

/// Budgets for every strategy the dispatcher may pick.
#[derive(Clone, Debug, Default)]
pub struct EvalConfig {
    /// Chase budgets (non-recursive / fallback paths).
    pub chase: ChaseConfig,
    /// Rewriting budgets (linear / sticky paths).
    pub rewrite: XRewriteConfig,
    /// Guarded-engine budgets.
    pub guarded: GuardedConfig,
}

impl EvalConfig {
    /// Installs `budget` on every strategy config, so whichever engine the
    /// dispatcher picks honours the same deadline/cancel token. Expiry
    /// degrades the guarantee to [`EvalGuarantee::SoundLowerBound`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.chase.budget = budget.clone();
        self.rewrite.budget = budget.clone();
        self.guarded.budget = budget;
        self
    }
}

/// The guarantee attached to an evaluation result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EvalGuarantee {
    /// The answer set equals `Q(D)`.
    Exact,
    /// Complete under the guarded-chase regularity property (see
    /// `omq_guarded::guarded_eval`).
    Stabilized,
    /// Budgets ran out: the answers are sound but possibly incomplete.
    SoundLowerBound,
}

/// An evaluation result.
#[derive(Clone, Debug)]
pub struct EvalOutcome {
    /// The computed certain answers (always sound).
    pub answers: HashSet<Vec<ConstId>>,
    /// The guarantee achieved.
    pub guarantee: EvalGuarantee,
    /// The language the dispatcher detected.
    pub language: OmqLanguage,
}

/// Evaluates `Q(D)`, dispatching on the detected language.
pub fn evaluate(omq: &Omq, db: &Instance, voc: &mut Vocabulary, cfg: &EvalConfig) -> EvalOutcome {
    evaluate_with(omq, db, voc, cfg, &mut DirectRewrite)
}

/// [`evaluate`], with the rewriting (when the dispatcher picks the
/// rewriting strategy) drawn from `src` instead of computed from scratch.
pub fn evaluate_with(
    omq: &Omq,
    db: &Instance,
    voc: &mut Vocabulary,
    cfg: &EvalConfig,
    src: &mut dyn RewriteSource,
) -> EvalOutcome {
    evaluate_in_language(omq, db, voc, cfg, src, detect_language(omq))
}

/// [`evaluate_with`], with the language already detected by the caller (it
/// is trusted, not re-checked). Hot loops evaluating one fixed OMQ over
/// many databases hoist the per-call detection this way.
pub fn evaluate_in_language(
    omq: &Omq,
    db: &Instance,
    voc: &mut Vocabulary,
    cfg: &EvalConfig,
    src: &mut dyn RewriteSource,
    language: OmqLanguage,
) -> EvalOutcome {
    match language {
        OmqLanguage::Empty => EvalOutcome {
            answers: eval_ucq(&omq.query, db),
            guarantee: EvalGuarantee::Exact,
            language,
        },
        OmqLanguage::NonRecursive => {
            let out =
                stratified_chase(db, &omq.sigma, voc, &cfg.chase).expect("detected non-recursive");
            EvalOutcome {
                answers: eval_ucq(&omq.query, &out.instance),
                guarantee: if out.complete {
                    EvalGuarantee::Exact
                } else {
                    EvalGuarantee::SoundLowerBound
                },
                language,
            }
        }
        OmqLanguage::Linear | OmqLanguage::Sticky => {
            // Partial rewritings are sound, so a truncated artifact still
            // yields a lower bound.
            let art = src.rewrite(omq, voc, &cfg.rewrite);
            EvalOutcome {
                answers: eval_ucq(&art.ucq, db),
                guarantee: if art.complete {
                    EvalGuarantee::Exact
                } else {
                    EvalGuarantee::SoundLowerBound
                },
                language,
            }
        }
        OmqLanguage::Guarded => {
            let r = guarded_certain_answers(omq, db, voc, &cfg.guarded);
            EvalOutcome {
                answers: r.answers,
                guarantee: match r.completeness {
                    Completeness::Exact => EvalGuarantee::Exact,
                    Completeness::Stabilized => EvalGuarantee::Stabilized,
                    Completeness::LowerBound => EvalGuarantee::SoundLowerBound,
                },
                language,
            }
        }
        OmqLanguage::Full | OmqLanguage::General => {
            let out = chase(db, &omq.sigma, voc, &cfg.chase);
            EvalOutcome {
                answers: eval_ucq(&omq.query, &out.instance),
                guarantee: if out.complete {
                    EvalGuarantee::Exact
                } else {
                    EvalGuarantee::SoundLowerBound
                },
                language,
            }
        }
    }
}

/// Three-valued answer for membership questions under budgets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Trool {
    /// Certainly yes.
    True,
    /// Certainly no.
    False,
    /// The budgets did not suffice to decide.
    Unknown,
}

/// Is `tuple` a certain answer of `Q` over `D`?
///
/// `True` is always sound; `False` is sound when the evaluation guarantee
/// is `Exact` or `Stabilized`; otherwise `Unknown`.
pub fn is_certain_answer(
    omq: &Omq,
    db: &Instance,
    tuple: &[ConstId],
    voc: &mut Vocabulary,
    cfg: &EvalConfig,
) -> Trool {
    // An empty ontology needs no chase and no rewriting: membership is one
    // seeded plan execution per disjunct (exact in both directions), instead
    // of enumerating the full answer set just to probe one tuple.
    if detect_language(omq) == OmqLanguage::Empty {
        return if is_answer_ucq(&omq.query, db, tuple) {
            Trool::True
        } else {
            Trool::False
        };
    }
    let out = evaluate(omq, db, voc, cfg);
    if out.answers.contains(tuple) {
        Trool::True
    } else {
        match out.guarantee {
            EvalGuarantee::Exact | EvalGuarantee::Stabilized => Trool::False,
            EvalGuarantee::SoundLowerBound => Trool::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, parse_tgd, Schema};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    fn omq(text: &str, data: &[&str], q: &str) -> (Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        (
            Omq::new(schema, prog.tgds.clone(), prog.query(q).unwrap().clone()),
            voc,
        )
    }

    #[test]
    fn dispatches_linear_to_rewriting() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nT(X) -> P(X)\n\
             q(X) :- R(X,Y), P(Y)\n",
            &["P", "T"],
            "q",
        );
        let d = db(&mut voc, &["T(a)"]);
        let out = evaluate(&q, &d, &mut voc, &EvalConfig::default());
        assert_eq!(out.language, OmqLanguage::Linear);
        assert_eq!(out.guarantee, EvalGuarantee::Exact);
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn dispatches_nr_to_stratified_chase() {
        let (q, mut voc) = omq(
            "A(X), B(X) -> exists Y . C(X,Y)\nq(X) :- C(X,Y)\n",
            &["A", "B"],
            "q",
        );
        let d = db(&mut voc, &["A(a)", "B(a)", "A(b)"]);
        let out = evaluate(&q, &d, &mut voc, &EvalConfig::default());
        assert_eq!(out.language, OmqLanguage::NonRecursive);
        assert_eq!(out.guarantee, EvalGuarantee::Exact);
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn dispatches_guarded_to_stabilizing_engine() {
        let (q, mut voc) = omq(
            "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\nq :- R(X,Y), R(Y,Z)\n",
            &["G", "R"],
            "q",
        );
        let d = db(&mut voc, &["G(a,b,c)", "R(a,b)"]);
        let out = evaluate(&q, &d, &mut voc, &EvalConfig::default());
        assert_eq!(out.language, OmqLanguage::Guarded);
        assert_ne!(out.guarantee, EvalGuarantee::SoundLowerBound);
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn certain_answer_three_valued() {
        let (q, mut voc) = omq("P(X) -> T(X)\nq(X) :- T(X)\n", &["P"], "q");
        let d = db(&mut voc, &["P(a)"]);
        let a = voc.const_id("a").unwrap();
        let b = voc.constant("b");
        assert_eq!(
            is_certain_answer(&q, &d, &[a], &mut voc, &EvalConfig::default()),
            Trool::True
        );
        assert_eq!(
            is_certain_answer(&q, &d, &[b], &mut voc, &EvalConfig::default()),
            Trool::False
        );
    }

    #[test]
    fn datalog_falls_back_to_chase() {
        let (q, mut voc) = omq(
            "E(X,Y) -> T(X,Y)\nT(X,Y), T(Y,Z) -> T(X,Z)\nq(X,Y) :- T(X,Y)\n",
            &["E"],
            "q",
        );
        let d = db(&mut voc, &["E(a,b)", "E(b,c)"]);
        let out = evaluate(&q, &d, &mut voc, &EvalConfig::default());
        assert_eq!(out.language, OmqLanguage::Full);
        assert_eq!(out.guarantee, EvalGuarantee::Exact);
        assert_eq!(out.answers.len(), 3);
    }
}
