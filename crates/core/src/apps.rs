//! Applications of containment (§7): unsatisfiability, distribution over
//! components (Prop. 27 / Thm. 28), and UCQ rewritability (§7.2).

use std::fmt;

use omq_chase::critical_instance;
use omq_model::{Omq, Ucq, Vocabulary};
use omq_rewrite::{xrewrite, RewriteError};

use crate::containment::{contains, ContainmentConfig, ContainmentResult};
use crate::evaluate::{evaluate, EvalConfig, EvalGuarantee, Trool};
use crate::languages::detect_language;

/// Is the OMQ unsatisfiable: no `S`-database makes it true?
///
/// Decided via the *critical instance*: every `S`-database maps
/// homomorphically into the single-constant instance, and OMQs are closed
/// under homomorphisms, so `Q` is satisfiable iff `Q(D_crit) ≠ ∅`.
pub fn is_unsatisfiable(omq: &Omq, voc: &mut Vocabulary, cfg: &EvalConfig) -> Trool {
    let (crit, _) = critical_instance(&omq.data_schema, voc);
    let out = evaluate(omq, &crit, voc, cfg);
    if !out.answers.is_empty() {
        Trool::False
    } else {
        match out.guarantee {
            EvalGuarantee::Exact | EvalGuarantee::Stabilized => Trool::True,
            EvalGuarantee::SoundLowerBound => Trool::Unknown,
        }
    }
}

/// Why a distribution question could not be posed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppsError {
    /// Distribution over components is defined for CQ-based OMQs (§7.1).
    NotACq,
}

impl fmt::Display for AppsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppsError::NotACq => write!(f, "distribution over components needs a CQ query"),
        }
    }
}

impl std::error::Error for AppsError {}

/// The verdict of the distribution check.
#[derive(Clone, Debug)]
pub enum DistributionResult {
    /// `Q(D) = Q(D₁) ∪ … ∪ Q(Dₙ)` over the components of every database:
    /// `Q` can be evaluated coordination-free.
    Distributes,
    /// Some database distinguishes `Q` from its componentwise evaluation.
    DoesNotDistribute,
    /// Budgets did not suffice.
    Unknown(String),
}

/// Decides distribution over components via the semantic characterization
/// of Prop. 27: `Q` distributes iff it is unsatisfiable or some connected
/// component `q̂` of `q` satisfies `(S, Σ, q̂) ⊆ Q`.
///
/// Components that do not carry all answer variables cannot witness the
/// containment (their arity differs); if no component carries all of them,
/// only unsatisfiability can make `Q` distribute.
pub fn distributes_over_components(
    omq: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
) -> Result<DistributionResult, AppsError> {
    let Some(q) = omq.query.as_cq() else {
        return Err(AppsError::NotACq);
    };
    match is_unsatisfiable(omq, voc, &cfg.eval) {
        Trool::True => return Ok(DistributionResult::Distributes),
        Trool::Unknown => {
            return Ok(DistributionResult::Unknown(
                "satisfiability check was inconclusive".into(),
            ))
        }
        Trool::False => {}
    }
    let mut saw_unknown = None;
    for comp in q.components() {
        if comp.head.len() != q.head.len() {
            continue; // cannot have the same answer arity
        }
        // Re-order check: the component's head must be the full head.
        if comp.head != q.head {
            continue;
        }
        let q_hat = Omq::new(
            omq.data_schema.clone(),
            omq.sigma.clone(),
            Ucq::from_cq(comp),
        );
        match contains(&q_hat, omq, voc, cfg) {
            Ok(out) => match out.result {
                ContainmentResult::Contained => return Ok(DistributionResult::Distributes),
                ContainmentResult::NotContained(_) => {}
                ContainmentResult::Unknown(r) => saw_unknown = Some(r),
            },
            Err(e) => saw_unknown = Some(e.to_string()),
        }
    }
    match saw_unknown {
        Some(r) => Ok(DistributionResult::Unknown(r)),
        None => Ok(DistributionResult::DoesNotDistribute),
    }
}

/// The verdict of the UCQ-rewritability check (§7.2).
#[derive(Clone, Debug)]
pub enum RewritabilityResult {
    /// A UCQ rewriting over the data schema exists — here it is.
    Rewritable(Ucq),
    /// The rewriting search exceeded its budget; for guarded OMQs the
    /// decision problem is 2EXPTIME-complete (Thm. 29), so budgets are
    /// inherent. The partial rewriting (sound, possibly incomplete) and the
    /// budget are reported.
    Unknown {
        /// Sound partial rewriting.
        partial: Ucq,
        /// The budget that was exhausted.
        budget: usize,
    },
}

/// Checks whether `Q` is UCQ rewritable and produces the rewriting.
///
/// For `L`/`NR`/`S` inputs the answer is always `Rewritable` (Def. 1); for
/// guarded and other inputs, saturation of XRewrite certifies rewritability
/// while budget exhaustion yields `Unknown` — this library does not decide
/// the negative side (the paper's Thm. 29 automaton for `G₂` certifies
/// non-rewritability; its state space is inherently double-exponential).
pub fn is_ucq_rewritable(
    omq: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
) -> RewritabilityResult {
    let _ = detect_language(omq);
    match xrewrite(omq, voc, &cfg.rewrite) {
        Ok(out) => RewritabilityResult::Rewritable(out.ucq),
        Err(RewriteError::BudgetExceeded(partial)) => RewritabilityResult::Unknown {
            partial: partial.ucq,
            budget: cfg.rewrite.max_queries,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema};

    fn omq(text: &str, data: &[&str], q: &str) -> (Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        (
            Omq::new(schema, prog.tgds.clone(), prog.query(q).unwrap().clone()),
            voc,
        )
    }

    #[test]
    fn satisfiability_checks() {
        let (q, mut voc) = omq("P(X) -> exists Y . R(X,Y)\nq :- R(X,Y)\n", &["P"], "q");
        assert_eq!(
            is_unsatisfiable(&q, &mut voc, &EvalConfig::default()),
            Trool::False
        );
        // Asking for a predicate nothing can derive: unsatisfiable.
        let (q2, mut voc2) = omq("P(X) -> exists Y . R(X,Y)\nq :- Z0(X)\n", &["P"], "q");
        assert_eq!(
            is_unsatisfiable(&q2, &mut voc2, &EvalConfig::default()),
            Trool::True
        );
    }

    /// A connected query always distributes (its sole component is q).
    #[test]
    fn connected_query_distributes() {
        let (q, mut voc) = omq("q :- E(X,Y), E(Y,Z)\n", &["E"], "q");
        let r = distributes_over_components(&q, &mut voc, &ContainmentConfig::default()).unwrap();
        assert!(matches!(r, DistributionResult::Distributes));
    }

    /// The classic non-distributing query: two disconnected atoms. On a
    /// database with P-only and T-only components the conjunction holds
    /// globally but in no single component.
    #[test]
    fn disconnected_conjunction_does_not_distribute() {
        let (q, mut voc) = omq("q :- P(X), T(Y)\n", &["P", "T"], "q");
        let r = distributes_over_components(&q, &mut voc, &ContainmentConfig::default()).unwrap();
        assert!(matches!(r, DistributionResult::DoesNotDistribute), "{r:?}");
    }

    /// The ontology can make a disconnected query distribute: if P(x)
    /// implies ∃y T(y), then the component P(x) alone entails the whole
    /// query.
    #[test]
    fn ontology_restores_distribution() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . T(Y)\nq :- P(X), T(Y)\n",
            &["P", "T"],
            "q",
        );
        let r = distributes_over_components(&q, &mut voc, &ContainmentConfig::default()).unwrap();
        assert!(matches!(r, DistributionResult::Distributes), "{r:?}");
    }

    /// An unsatisfiable OMQ distributes vacuously.
    #[test]
    fn unsatisfiable_distributes() {
        // Z9 is not in the data schema and no tgd derives it.
        let (q, mut voc) = omq("q :- Z0(X), Z9(Y)\n", &["Z0"], "q");
        let r = distributes_over_components(&q, &mut voc, &ContainmentConfig::default()).unwrap();
        assert!(matches!(r, DistributionResult::Distributes));
    }

    #[test]
    fn ucq_query_rejected_for_distribution() {
        let (q, mut voc) = omq("q :- P(X)\nq :- T(X)\n", &["P", "T"], "q");
        assert_eq!(
            distributes_over_components(&q, &mut voc, &ContainmentConfig::default()).unwrap_err(),
            AppsError::NotACq
        );
    }

    #[test]
    fn rewritability_for_linear() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nT(X) -> P(X)\nq(X) :- R(X,Y), P(Y)\n",
            &["P", "T"],
            "q",
        );
        match is_ucq_rewritable(&q, &mut voc, &ContainmentConfig::default()) {
            RewritabilityResult::Rewritable(ucq) => {
                assert_eq!(ucq.disjuncts.len(), 2); // P(x) ∨ T(x)
            }
            other => panic!("expected rewritable, got {other:?}"),
        }
    }

    /// A guarded OMQ with genuinely unbounded rewritings: budget exhaustion
    /// is reported as Unknown with a sound partial rewriting.
    #[test]
    fn rewritability_unknown_for_hard_guarded() {
        let (q, mut voc) = omq(
            "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\n\
             q :- G(X,Y,Z), R(X,Y)\n",
            &["G", "R"],
            "q",
        );
        let cfg = ContainmentConfig {
            rewrite: omq_rewrite::XRewriteConfig::with_max_queries(30),
            ..Default::default()
        };
        match is_ucq_rewritable(&q, &mut voc, &cfg) {
            RewritabilityResult::Unknown { partial, budget } => {
                assert_eq!(budget, 30);
                assert!(!partial.disjuncts.is_empty());
            }
            RewritabilityResult::Rewritable(_) => {
                // Acceptable if the fixpoint is genuinely small; but with
                // this recursion it should not be.
                panic!("expected budget exhaustion");
            }
        }
    }
}
