//! # omq-core
//!
//! The paper's primary contribution: **containment for rule-based
//! ontology-mediated queries** (`Cont(O₁, O₂)`, §3), together with the
//! static-analysis applications built on it (§7).
//!
//! * [`languages`] — the OMQ languages `(C, (U)CQ)` for
//!   `C ∈ {∅, L, NR, S, G, F, TGD}` and their automatic detection;
//! * [`evaluate`] — a unified evaluation front-end choosing the complete
//!   strategy per class (rewriting for `L`/`S`, stratified chase for `NR`,
//!   the stabilizing guarded engine for `G`) and reporting the guarantee;
//! * [`containment`] — the containment decision:
//!   - the **small-witness algorithm** of Prop. 10/Thm. 11 for
//!     UCQ-rewritable left-hand sides (exact for `L`, `NR`, `S` against any
//!     right-hand side with decidable evaluation, covering Theorems 13, 16,
//!     19 and the §6.1 combinations), and
//!   - the **anytime algorithm** for guarded left-hand sides: partial
//!     rewritings yield sound refutations, saturation yields exact answers
//!     (§5/§6.2 are 2EXPTIME-complete, so any implementation must budget);
//! * [`reductions`] — the evaluation⇄containment reductions of Props. 5–6;
//! * [`apps`] — unsatisfiability, distribution over components (Prop. 27 /
//!   Thm. 28) and UCQ rewritability (§7.2).

pub mod apps;
pub mod containment;
pub mod evaluate;
pub mod explain;
pub mod languages;
pub mod reductions;

pub use apps::{
    distributes_over_components, is_ucq_rewritable, is_unsatisfiable, AppsError,
    DistributionResult, RewritabilityResult,
};
pub use containment::{
    contains, contains_with, equivalent, equivalent_with, ContainmentConfig, ContainmentError,
    ContainmentOutcome, ContainmentResult, Witness,
};
pub use evaluate::{
    evaluate, evaluate_in_language, evaluate_with, is_certain_answer, EvalConfig, EvalGuarantee,
    EvalOutcome, Trool,
};
pub use explain::{
    explain, explain_with, ContainmentCoverage, DisjunctCoverage, ExplainDetail, ExplainStep,
    Explanation, WitnessExplanation, EXPLAIN_DISJUNCT_CAP,
};
pub use languages::{detect_language, OmqLanguage};
