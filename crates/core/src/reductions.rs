//! The evaluation ⇄ containment reductions of §3.1 (Props. 5 and 6).
//!
//! These underpin the paper's lower bounds: every hardness result for
//! evaluation transfers to containment (Prop. 5) and to its complement
//! (Prop. 6), which is why decidable evaluation on both sides is a
//! necessary condition for decidable containment (Cor. 7).

use std::collections::HashMap;

use omq_model::{Atom, ConstId, Cq, Omq, PredId, Term, Tgd, Ucq, Vocabulary};

/// Prop. 5: builds `(Q₁, Q₂)` with `c̄ ∈ Q(D)  ⟺  Q₁ ⊆ Q₂`, where
/// `Q₁ = (sch(Σ) ∪ S, ∅, q_{D,c̄})` freezes the database into a CQ and
/// `Q₂ = (sch(Σ) ∪ S, Σ, q)`.
///
/// `q_{D,c̄}` replaces each constant `c` of `D` by a variable `x_c`; its
/// head lists the variables of the queried tuple.
pub fn eval_as_containment(
    omq: &Omq,
    db: &omq_model::Instance,
    tuple: &[ConstId],
    voc: &mut Vocabulary,
) -> (Omq, Omq) {
    let schema = omq.full_schema();
    let mut var_of: HashMap<ConstId, omq_model::VarId> = HashMap::new();
    let mut atoms = Vec::with_capacity(db.len());
    for a in db.atoms() {
        atoms.push(a.map_terms(|t| match t {
            Term::Const(c) => {
                let v = *var_of
                    .entry(c)
                    .or_insert_with(|| voc.fresh_var(&format!("xc{}_", c.0)));
                Term::Var(v)
            }
            other => other,
        }));
    }
    let head: Vec<omq_model::VarId> = tuple
        .iter()
        .map(|c| {
            *var_of
                .entry(*c)
                .or_insert_with(|| voc.fresh_var(&format!("xc{}_", c.0)))
        })
        .collect();
    let q1 = Omq::new(schema.clone(), vec![], Ucq::from_cq(Cq::new(head, atoms)));
    let q2 = Omq::new(schema, omq.sigma.clone(), omq.query.clone());
    (q1, q2)
}

/// Prop. 6: builds `(Q₁, Q₂)` with `c̄ ∈ Q(D)  ⟺  Q₁ ⊄ Q₂`, where `Q₁`
/// carries `Σ` with predicates renamed to starred copies plus fact tgds
/// loading `D`, its query is `q(c̄)` starred, and `Q₂ = (S, ∅, ∃x P(x))`
/// for a fresh predicate `P ∉ S` (so `Q₂` is unsatisfiable over `S`).
///
/// Requires the OMQ's query to be a CQ (as in the paper's statement).
pub fn eval_as_noncontainment(
    omq: &Omq,
    db: &omq_model::Instance,
    tuple: &[ConstId],
    voc: &mut Vocabulary,
) -> Option<(Omq, Omq)> {
    let q = omq.query.as_cq()?;
    if tuple.len() != q.head.len() {
        return None;
    }
    // Star-rename every predicate of Σ and q.
    let mut star: HashMap<PredId, PredId> = HashMap::new();
    let star_of = |p: PredId, voc: &mut Vocabulary, star: &mut HashMap<PredId, PredId>| {
        *star.entry(p).or_insert_with(|| {
            let name = format!("{}_star", voc.pred_name(p));
            voc.fresh_pred(&name, voc.arity(p))
        })
    };
    let star_atom = |a: &Atom, voc: &mut Vocabulary, star: &mut HashMap<PredId, PredId>| {
        Atom::new(star_of(a.pred, voc, star), a.args.clone())
    };
    let mut sigma: Vec<Tgd> = Vec::new();
    for t in &omq.sigma {
        let body = t
            .body
            .iter()
            .map(|a| star_atom(a, voc, &mut star))
            .collect();
        let head = t
            .head
            .iter()
            .map(|a| star_atom(a, voc, &mut star))
            .collect();
        sigma.push(Tgd::new(body, head));
    }
    // Fact tgds loading the starred database.
    for a in db.atoms() {
        sigma.push(Tgd::new(vec![], vec![star_atom(a, voc, &mut star)]));
    }
    // q(c̄), starred: substitute the head variables by the queried
    // constants and drop the head.
    let subst: HashMap<omq_model::VarId, Term> = q
        .head
        .iter()
        .zip(tuple)
        .map(|(&v, &c)| (v, Term::Const(c)))
        .collect();
    let body: Vec<Atom> = q
        .body
        .iter()
        .map(|a| {
            let grounded = a.map_terms(|t| match t {
                Term::Var(v) => subst.get(&v).copied().unwrap_or(t),
                other => other,
            });
            star_atom(&grounded, voc, &mut star)
        })
        .collect();
    let q1 = Omq::new(
        omq.data_schema.clone(),
        sigma,
        Ucq::from_cq(Cq::boolean(body)),
    );
    // Q₂: ∃x P(x) for fresh P — unsatisfiable over S.
    let p = voc.fresh_pred("Punsat", 1);
    let x = voc.fresh_var("xp_");
    let q2 = Omq::new(
        omq.data_schema.clone(),
        vec![],
        Ucq::from_cq(Cq::boolean(vec![Atom::new(p, vec![Term::Var(x)])])),
    );
    Some((q1, q2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{contains, ContainmentConfig};
    use crate::evaluate::{is_certain_answer, EvalConfig, Trool};
    use omq_model::{parse_program, parse_tgd, Instance, Schema};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    fn omq(text: &str, data: &[&str], q: &str) -> (Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        (
            Omq::new(schema, prog.tgds.clone(), prog.query(q).unwrap().clone()),
            voc,
        )
    }

    /// Prop. 5 round-trip: evaluation answers match the containment
    /// verdicts of the constructed pair, on positive and negative tuples.
    #[test]
    fn prop5_roundtrip() {
        let (q, mut voc) = omq(
            "T(X) -> P(X)\nP(X) -> exists Y . R(X,Y)\nq(X) :- R(X,Y)\ndummy :- U(X)\n",
            &["T", "P", "U"],
            "q",
        );
        // `b` is in the database (via the inert predicate U) but never an
        // answer.
        let d = db(&mut voc, &["T(a)", "U(b)"]);
        let a = voc.const_id("a").unwrap();
        let b = voc.const_id("b").unwrap();
        let cfg = ContainmentConfig::default();
        for (tuple, expected) in [(vec![a], true), (vec![b], false)] {
            let direct = is_certain_answer(&q, &d, &tuple, &mut voc, &EvalConfig::default());
            assert_eq!(direct == Trool::True, expected);
            let (q1, q2) = eval_as_containment(&q, &d, &tuple, &mut voc);
            let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
            assert_eq!(out.result.is_contained(), expected, "tuple {tuple:?}");
        }
    }

    /// Prop. 6 round-trip: `c̄ ∈ Q(D)` iff the constructed pair is NOT
    /// contained.
    #[test]
    fn prop6_roundtrip() {
        let (q, mut voc) = omq("T(X) -> P(X)\nq(X) :- P(X)\n", &["T"], "q");
        let d = db(&mut voc, &["T(a)", "T(c)"]);
        let a = voc.const_id("a").unwrap();
        let other = voc.constant("zz");
        let cfg = ContainmentConfig::default();
        for (tuple, expected_in) in [(vec![a], true), (vec![other], false)] {
            let (q1, q2) = eval_as_noncontainment(&q, &d, &tuple, &mut voc).unwrap();
            let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
            assert_eq!(
                out.result.is_not_contained(),
                expected_in,
                "tuple {tuple:?}: {:?}",
                out.result
            );
        }
    }

    /// The Prop. 6 construction preserves class membership via fact-tgd
    /// extension: a linear Σ stays linear.
    #[test]
    fn prop6_preserves_linearity() {
        let (q, mut voc) = omq("T(X) -> P(X)\nq(X) :- P(X)\n", &["T"], "q");
        let d = db(&mut voc, &["T(a)"]);
        let a = voc.const_id("a").unwrap();
        let (q1, _) = eval_as_noncontainment(&q, &d, &[a], &mut voc).unwrap();
        assert!(omq_classes::is_linear(&q1.sigma));
    }

    #[test]
    fn prop6_requires_cq() {
        let (mut q, mut voc) = omq("T(X) -> P(X)\nq(X) :- P(X)\n", &["T"], "q");
        q.query.disjuncts.push(q.query.disjuncts[0].clone());
        let d = db(&mut voc, &["T(a)"]);
        let a = voc.const_id("a").unwrap();
        assert!(eval_as_noncontainment(&q, &d, &[a], &mut voc).is_none());
    }
}
