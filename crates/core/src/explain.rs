//! Explanations for containment verdicts: replayable evidence instead of a
//! bare `Contained` / `NotContained`.
//!
//! A *non-containment* verdict is witnessed by a database `D` and a tuple
//! `c̄ ∈ Q₁(D) \ Q₂(D)` (Prop. 10). The explanation re-derives the positive
//! half as a chase proof tree: which tgds of `Σ₁` fired, on which body
//! images, to produce the facts a disjunct of `q₁` maps onto (the
//! *witness facts*). The derivation is support-closed — every kept step's
//! inputs are database atoms or outputs of earlier kept steps — so a
//! consumer can replay it fact-by-fact and check `c̄ ∈ Q₁(D)` without
//! trusting the engine (`crates/serve` exposes this as the `explain` op;
//! its tests do exactly that replay).
//!
//! A *containment* verdict is certified per frozen disjunct of the
//! left-hand rewriting: which disjunct of the right-hand rewriting maps
//! into it, and by which homomorphism (the Chandra–Merlin certificate
//! underlying the disjunct sweep). Non-rewritable right-hand sides are
//! checked by chase evaluation, which yields no finite homomorphism object;
//! those entries carry `rhs_disjunct: None`.
//!
//! Everything is rendered to strings in the caller's vocabulary, so the
//! output is deterministic and serializable without further lookups.

use std::collections::HashSet;
use std::ops::ControlFlow;

use omq_chase::{chase, ChaseConfig, DerivationStep, HomStats, JoinPlan};
use omq_model::display::{render_atom, render_cq, render_term, render_tgd};
use omq_model::{Atom, ConstId, Instance, Omq, Term, Ucq, VarId, Vocabulary};
use omq_rewrite::{DirectRewrite, RewriteSource, XRewriteConfig};

use crate::containment::{
    contains_with, ContainmentConfig, ContainmentError, ContainmentOutcome, ContainmentResult,
    Witness,
};
use crate::languages::detect_language;

/// One replayed chase firing, rendered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainStep {
    /// Index of the fired tgd in `Σ₁`.
    pub tgd_index: usize,
    /// The tgd, rendered in parser syntax.
    pub tgd: String,
    /// The body image the trigger matched (facts already present).
    pub inputs: Vec<String>,
    /// The head image the firing added (fresh nulls render as `⊥n`).
    pub outputs: Vec<String>,
}

/// Why `Q₁ ⊄ Q₂`: the witness plus a replayable derivation of the
/// positive half `c̄ ∈ Q₁(D)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessExplanation {
    /// The witnessing database `D`, rendered fact by fact.
    pub database: Vec<String>,
    /// The tuple `c̄` (empty for Boolean queries).
    pub tuple: Vec<String>,
    /// Facts of `chase(D, Σ₁)` that a disjunct of `q₁` maps onto — the image
    /// whose existence makes `c̄` a certain answer of `Q₁`.
    pub witness_facts: Vec<String>,
    /// Support-closed firing log deriving every non-database witness fact.
    pub derivation: Vec<ExplainStep>,
}

/// How one frozen disjunct of the left rewriting is covered by `Q₂`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisjunctCoverage {
    /// Index in the left-hand rewriting's disjunct list.
    pub disjunct: usize,
    /// The disjunct, rendered as a query.
    pub disjunct_cq: String,
    /// Index of the right-hand rewriting disjunct that maps into the frozen
    /// database (`None` when `Q₂` was checked by chase evaluation instead).
    pub rhs_disjunct: Option<usize>,
    /// The homomorphism as `(variable, image)` pairs, in first-occurrence
    /// order of the rhs disjunct's variables.
    pub homomorphism: Vec<(String, String)>,
}

/// Why `Q₁ ⊆ Q₂`: a per-disjunct coverage certificate (capped).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainmentCoverage {
    /// Coverage for the first [`EXPLAIN_DISJUNCT_CAP`] disjuncts.
    pub shown: Vec<DisjunctCoverage>,
    /// Total disjuncts in the left-hand rewriting (may exceed `shown`).
    pub total_disjuncts: usize,
}

/// Verdict-specific explanation payload.
#[derive(Clone, Debug)]
pub enum ExplainDetail {
    NotContained(WitnessExplanation),
    Contained(ContainmentCoverage),
    /// Budgets ran out, or the evidence could not be reconstructed; the
    /// string says which.
    Unknown(String),
}

/// A containment verdict plus its evidence.
#[derive(Clone, Debug)]
pub struct Explanation {
    pub outcome: ContainmentOutcome,
    pub detail: ExplainDetail,
}

/// Max disjuncts a `Contained` explanation renders coverage for.
pub const EXPLAIN_DISJUNCT_CAP: usize = 32;

/// Depth ladder for re-deriving the witness match; the witness database is
/// a frozen rewriting disjunct, so a bounded chase reproduces the query
/// image at small depth (the rewriting unfolds only finitely many tgds).
const REPLAY_DEPTHS: [usize; 4] = [2, 4, 8, 16];

/// Decides `Q₁ ⊆ Q₂` and explains the verdict.
pub fn explain(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
) -> Result<Explanation, ContainmentError> {
    explain_with(q1, q2, voc, cfg, &mut DirectRewrite)
}

/// [`explain`], with rewritings drawn from `src` (a cache, a replay log, …).
pub fn explain_with(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
    src: &mut dyn RewriteSource,
) -> Result<Explanation, ContainmentError> {
    let outcome = contains_with(q1, q2, voc, cfg, src)?;
    let _span = omq_obs::span("explain");
    let detail = match &outcome.result {
        ContainmentResult::NotContained(w) => match explain_witness(q1, w, voc, cfg) {
            Some(we) => ExplainDetail::NotContained(we),
            None => ExplainDetail::Unknown(
                "the witness was found, but its derivation could not be re-chased \
                 within the replay depth ladder"
                    .into(),
            ),
        },
        ContainmentResult::Contained => {
            ExplainDetail::Contained(explain_contained(q1, q2, voc, cfg, src))
        }
        ContainmentResult::Unknown(reason) => ExplainDetail::Unknown(reason.clone()),
    };
    Ok(Explanation { outcome, detail })
}

/// Re-derives `c̄ ∈ Q₁(D)` on the witness: chases `D` under `Σ₁` with the
/// firing log on, finds the query image, and support-closes the log.
fn explain_witness(
    q1: &Omq,
    w: &Witness,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
) -> Option<WitnessExplanation> {
    for depth in REPLAY_DEPTHS {
        let chase_cfg = ChaseConfig {
            max_depth: Some(depth),
            record_derivation: true,
            budget: cfg.budget.clone(),
            ..ChaseConfig::default()
        };
        let out = chase(&w.database, &q1.sigma, voc, &chase_cfg);
        if let Some(image) = query_image(&q1.query, &out.instance, &w.tuple) {
            let steps = support_closure(&w.database, &out.derivation, &image);
            let render_steps = steps
                .iter()
                .map(|s| ExplainStep {
                    tgd_index: s.tgd,
                    tgd: render_tgd(voc, &q1.sigma[s.tgd]),
                    inputs: s.inputs.iter().map(|a| render_atom(voc, a)).collect(),
                    outputs: s.outputs.iter().map(|a| render_atom(voc, a)).collect(),
                })
                .collect();
            return Some(WitnessExplanation {
                database: w
                    .database
                    .atoms()
                    .iter()
                    .map(|a| render_atom(voc, a))
                    .collect(),
                tuple: w
                    .tuple
                    .iter()
                    .map(|&c| voc.const_name(c).to_owned())
                    .collect(),
                witness_facts: image.iter().map(|a| render_atom(voc, a)).collect(),
                derivation: render_steps,
            });
        }
        if out.complete {
            // Fixpoint reached without a match: deeper chases cannot help.
            return None;
        }
    }
    None
}

/// The image of some disjunct of `q` in `inst` under a homomorphism mapping
/// the head to `tuple`, or `None` if no disjunct matches.
fn query_image(q: &Ucq, inst: &Instance, tuple: &[ConstId]) -> Option<Vec<Atom>> {
    for d in &q.disjuncts {
        if d.head.len() != tuple.len() {
            continue;
        }
        let plan = JoinPlan::compile(&d.body, &d.head, None);
        let pairs: Vec<(VarId, Term)> = d
            .head
            .iter()
            .copied()
            .zip(tuple.iter().map(|&c| Term::Const(c)))
            .collect();
        let Some(seed) = plan.seed_values(&pairs) else {
            continue;
        };
        let mut image: Option<Vec<Atom>> = None;
        let mut stats = HomStats::default();
        let _ = plan.execute(inst, &seed, None, &mut stats, |h| {
            image = Some(
                d.body
                    .iter()
                    .map(|a| {
                        let args: Vec<Term> = a
                            .args
                            .iter()
                            .map(|&t| match t {
                                Term::Var(v) => h
                                    .slot(plan.slot_of(v).expect("body var"))
                                    .expect("complete hom binds all slots"),
                                other => other,
                            })
                            .collect();
                        Atom::new(a.pred, args)
                    })
                    .collect(),
            );
            ControlFlow::Break(())
        });
        if image.is_some() {
            return image;
        }
    }
    None
}

/// Keeps exactly the firing-log steps needed to derive `targets` from `db`:
/// walking the log backwards, a step is kept iff it outputs a needed fact,
/// and its non-database inputs become needed in turn. The result (in firing
/// order) replays forward: every kept step's inputs are in
/// `db ∪ outputs(earlier kept steps)`.
fn support_closure(
    db: &Instance,
    derivation: &[DerivationStep],
    targets: &[Atom],
) -> Vec<DerivationStep> {
    let mut needed: HashSet<Atom> = targets
        .iter()
        .filter(|a| !db.contains(a))
        .cloned()
        .collect();
    let mut kept: Vec<DerivationStep> = Vec::new();
    for step in derivation.iter().rev() {
        if step.outputs.iter().any(|o| needed.contains(o)) {
            for input in &step.inputs {
                if !db.contains(input) {
                    needed.insert(input.clone());
                }
            }
            kept.push(step.clone());
        }
    }
    kept.reverse();
    kept
}

/// Renders per-disjunct coverage for a `Contained` verdict.
fn explain_contained(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
    src: &mut dyn RewriteSource,
) -> ContainmentCoverage {
    let lhs_language = detect_language(q1);
    let disjuncts = if lhs_language.is_ucq_rewritable() {
        src.rewrite(q1, voc, &cfg.rewrite).ucq.disjuncts
    } else {
        // Mirror the anytime ladder (`prune_subsumed: false` keeps the
        // prefix property): the verdict was `Contained`, so some budget
        // saturated — its disjunct list is the one the sweep checked.
        let mut got: Vec<_> = Vec::new();
        for &budget in &cfg.anytime_budgets {
            let rw_cfg = XRewriteConfig {
                max_queries: budget,
                prune_subsumed: false,
                ..cfg.rewrite.clone()
            };
            let art = src.rewrite(q1, voc, &rw_cfg);
            let complete = art.complete;
            got = art.ucq.disjuncts;
            if complete {
                break;
            }
        }
        got
    };

    let rhs_language = if q1 == q2 {
        lhs_language
    } else {
        detect_language(q2)
    };
    let rhs_ucq: Option<Ucq> = rhs_language
        .is_ucq_rewritable()
        .then(|| src.rewrite(q2, voc, &cfg.eval.rewrite).ucq);

    let total_disjuncts = disjuncts.len();
    let shown = disjuncts
        .iter()
        .take(EXPLAIN_DISJUNCT_CAP)
        .enumerate()
        .map(|(i, d)| {
            let (db, tuple) = d.freeze(voc);
            let (rhs_disjunct, homomorphism) = rhs_ucq
                .as_ref()
                .and_then(|u| find_cover(u, &db, &tuple, voc))
                .map_or((None, Vec::new()), |(j, hom)| (Some(j), hom));
            DisjunctCoverage {
                disjunct: i,
                disjunct_cq: render_cq(voc, "q", d),
                rhs_disjunct,
                homomorphism,
            }
        })
        .collect();
    ContainmentCoverage {
        shown,
        total_disjuncts,
    }
}

/// The first rhs disjunct mapping into `db` with head image `tuple`, plus
/// the homomorphism, rendered.
fn find_cover(
    rhs: &Ucq,
    db: &Instance,
    tuple: &[ConstId],
    voc: &Vocabulary,
) -> Option<(usize, Vec<(String, String)>)> {
    for (j, d) in rhs.disjuncts.iter().enumerate() {
        if d.head.len() != tuple.len() {
            continue;
        }
        let plan = JoinPlan::compile(&d.body, &d.head, None);
        let pairs: Vec<(VarId, Term)> = d
            .head
            .iter()
            .copied()
            .zip(tuple.iter().map(|&c| Term::Const(c)))
            .collect();
        let Some(seed) = plan.seed_values(&pairs) else {
            continue;
        };
        // Variables in first-occurrence order (head, then body), so the
        // rendered pairs are deterministic.
        let mut vars: Vec<VarId> = Vec::new();
        for &v in &d.head {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        for a in &d.body {
            for &t in &a.args {
                if let Term::Var(v) = t {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
            }
        }
        let mut result: Option<Vec<(String, String)>> = None;
        let mut stats = HomStats::default();
        let _ = plan.execute(db, &seed, None, &mut stats, |h| {
            result = Some(
                vars.iter()
                    .filter_map(|&v| {
                        plan.slot_of(v)
                            .and_then(|s| h.slot(s))
                            .map(|t| (voc.var_name(v).to_owned(), render_term(voc, t)))
                    })
                    .collect(),
            );
            ControlFlow::Break(())
        });
        if let Some(hom) = result {
            return Some((j, hom));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema};

    fn setup(text: &str, data: &[&str], n1: &str, n2: &str) -> (Omq, Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        let q1 = Omq::new(
            schema.clone(),
            prog.tgds.clone(),
            prog.query(n1).unwrap().clone(),
        );
        let q2 = Omq::new(schema, prog.tgds.clone(), prog.query(n2).unwrap().clone());
        (q1, q2, voc)
    }

    /// The non-containment explanation's derivation must replay: starting
    /// from the witness database, fire the steps in order (inputs must
    /// already be present) and end with every witness fact derived.
    #[test]
    fn witness_derivation_replays() {
        let (q1, q2, mut voc) = setup(
            "P(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> P(Y)\n\
             a(X) :- P(X)\n\
             b(X) :- T(X)\n",
            &["P", "T"],
            "a",
            "b",
        );
        let cfg = ContainmentConfig::default();
        let ex = explain(&q1, &q2, &mut voc, &cfg).unwrap();
        assert!(ex.outcome.result.is_not_contained());
        let ExplainDetail::NotContained(we) = &ex.detail else {
            panic!("expected a witness explanation, got {:?}", ex.detail);
        };
        // Replay over rendered facts: a set-based chase of the derivation.
        let mut state: HashSet<String> = we.database.iter().cloned().collect();
        for step in &we.derivation {
            for input in &step.inputs {
                assert!(state.contains(input), "unjustified input {input}");
            }
            state.extend(step.outputs.iter().cloned());
        }
        assert!(!we.witness_facts.is_empty());
        for fact in &we.witness_facts {
            assert!(state.contains(fact), "witness fact {fact} not derived");
        }
    }

    /// Ontology-free witness: the query image is entirely in the database,
    /// so the derivation is empty but the facts are still certified.
    #[test]
    fn witness_without_ontology_has_empty_derivation() {
        let (q1, q2, mut voc) = setup("p1 :- E(U,V)\np2 :- E(X,Y), E(Y,Z)\n", &["E"], "p1", "p2");
        let cfg = ContainmentConfig::default();
        let ex = explain(&q1, &q2, &mut voc, &cfg).unwrap();
        let ExplainDetail::NotContained(we) = &ex.detail else {
            panic!("expected witness explanation, got {:?}", ex.detail);
        };
        assert!(we.derivation.is_empty());
        assert_eq!(we.witness_facts.len(), 1);
        assert!(we.database.contains(&we.witness_facts[0]));
    }

    /// A contained verdict yields per-disjunct coverage with a concrete
    /// homomorphism from the rhs rewriting into each frozen disjunct.
    #[test]
    fn contained_coverage_names_rhs_disjunct_and_hom() {
        let (q1, q2, mut voc) = setup(
            "T(X) -> P(X)\n\
             qt(X) :- T(X)\n\
             qp(X) :- P(X)\n",
            &["P", "T"],
            "qt",
            "qp",
        );
        let cfg = ContainmentConfig::default();
        let ex = explain(&q1, &q2, &mut voc, &cfg).unwrap();
        assert!(ex.outcome.result.is_contained());
        let ExplainDetail::Contained(cov) = &ex.detail else {
            panic!("expected coverage, got {:?}", ex.detail);
        };
        assert_eq!(cov.total_disjuncts, cov.shown.len());
        assert!(!cov.shown.is_empty());
        for dc in &cov.shown {
            assert!(dc.rhs_disjunct.is_some(), "no cover for {}", dc.disjunct_cq);
            assert!(!dc.homomorphism.is_empty());
        }
    }

    /// Unknown verdicts pass their reason through.
    #[test]
    fn unknown_verdict_is_passed_through() {
        let (q1, q2, mut voc) = setup(
            "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\n\
             g :- G(X,Y,Z), R(X,Y)\n\
             h :- G(X,Y,Z)\n",
            &["G", "R"],
            "g",
            "h",
        );
        let cfg = ContainmentConfig {
            anytime_budgets: vec![5],
            ..Default::default()
        };
        let ex = explain(&q1, &q2, &mut voc, &cfg).unwrap();
        match (&ex.outcome.result, &ex.detail) {
            (ContainmentResult::Unknown(_), ExplainDetail::Unknown(reason)) => {
                assert!(!reason.is_empty());
            }
            (ContainmentResult::Contained, ExplainDetail::Contained(_)) => {}
            other => panic!("verdict/detail mismatch: {other:?}"),
        }
    }
}
