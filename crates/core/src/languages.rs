//! The OMQ languages of the paper and their automatic detection.

use std::fmt;

use omq_classes::{is_guarded, is_linear, is_non_recursive, is_sticky};
use omq_model::{Omq, Tgd};

/// The classes of tgds giving rise to the paper's OMQ languages, ordered
/// roughly by how much structure they give the algorithms.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OmqLanguage {
    /// `O_∅`: the empty ontology — plain (U)CQs (used by Props. 5–6).
    Empty,
    /// `(L, ·)`: linear tgds (single body atom). UCQ rewritable;
    /// containment is PSPACE-complete (Thm. 13).
    Linear,
    /// `(NR, ·)`: non-recursive sets. UCQ rewritable; containment is in
    /// EXPSPACE and PNEXP-hard (Thm. 16).
    NonRecursive,
    /// `(S, ·)`: sticky sets. UCQ rewritable; containment is
    /// coNEXPTIME-complete (Thm. 19).
    Sticky,
    /// `(G, ·)`: guarded sets. Not UCQ rewritable; containment is
    /// 2EXPTIME-complete (Thm. 20).
    Guarded,
    /// `(F, ·)`: full tgds (Datalog). Containment undecidable (Prop. 8);
    /// only the sound anytime machinery applies.
    Full,
    /// Arbitrary tgds: evaluation itself is undecidable ([12]); only
    /// budgeted, sound approximations apply.
    General,
}

impl OmqLanguage {
    /// Is the language UCQ rewritable (Def. 1)? These are the languages the
    /// small-witness algorithm of §4 decides exactly.
    pub fn is_ucq_rewritable(self) -> bool {
        matches!(
            self,
            OmqLanguage::Empty
                | OmqLanguage::Linear
                | OmqLanguage::NonRecursive
                | OmqLanguage::Sticky
        )
    }

    /// Does the language have decidable evaluation?
    pub fn has_decidable_evaluation(self) -> bool {
        !matches!(self, OmqLanguage::General)
    }
}

impl fmt::Display for OmqLanguage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OmqLanguage::Empty => "(∅,CQ)",
            OmqLanguage::Linear => "(L,CQ)",
            OmqLanguage::NonRecursive => "(NR,CQ)",
            OmqLanguage::Sticky => "(S,CQ)",
            OmqLanguage::Guarded => "(G,CQ)",
            OmqLanguage::Full => "(F,CQ)",
            OmqLanguage::General => "(TGD,CQ)",
        };
        f.write_str(s)
    }
}

/// Detects the most specific language of the paper that `omq` falls in.
///
/// Preference order among the decidable classes: `∅`, then `L` (PSPACE),
/// `NR`, `S`, `G` — UCQ-rewritable classes are preferred because they give
/// the exact containment algorithm; among them, the ones with cheaper
/// containment come first.
pub fn detect_language(omq: &Omq) -> OmqLanguage {
    let sigma = &omq.sigma;
    // The recognizers are tried lazily in preference order (same order the
    // eager `omq_classes::classify` report is consulted in): detection sits
    // on the hot path of `contains`, and e.g. a linear set should not pay
    // for the sticky marking fixpoint.
    if sigma.is_empty() {
        OmqLanguage::Empty
    } else if is_linear(sigma) {
        OmqLanguage::Linear
    } else if is_non_recursive(sigma) {
        OmqLanguage::NonRecursive
    } else if is_sticky(sigma) {
        OmqLanguage::Sticky
    } else if is_guarded(sigma) {
        OmqLanguage::Guarded
    } else if sigma.iter().all(Tgd::is_full) {
        OmqLanguage::Full
    } else {
        OmqLanguage::General
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema, Ucq};

    fn omq_of(text: &str) -> Omq {
        let prog = parse_program(text).unwrap();
        Omq::new(
            Schema::new(),
            prog.tgds.clone(),
            prog.queries
                .values()
                .next()
                .cloned()
                .unwrap_or_else(|| Ucq::new(0, vec![])),
        )
    }

    #[test]
    fn detection_prefers_specific_classes() {
        assert_eq!(detect_language(&omq_of("q :- P(X)\n")), OmqLanguage::Empty);
        assert_eq!(
            detect_language(&omq_of(
                "P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nq :- P(X)\n"
            )),
            OmqLanguage::Linear
        );
        assert_eq!(
            detect_language(&omq_of("A(X), B(X) -> C(X)\nq :- C(X)\n")),
            OmqLanguage::NonRecursive
        );
        // Sticky but recursive and unguarded.
        assert_eq!(
            detect_language(&omq_of(
                "R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)\nT(X,Y,W) -> R(Y,X)\nq :- R(X,Y)\n"
            )),
            OmqLanguage::Sticky
        );
        // Guarded, recursive, not sticky.
        assert_eq!(
            detect_language(&omq_of(
                "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\nq :- R(X,Y)\n"
            )),
            OmqLanguage::Guarded
        );
        // Datalog transitive closure: full, none of the above.
        assert_eq!(
            detect_language(&omq_of("T(X,Y), T(Y,Z) -> T(X,Z)\nq :- T(X,Y)\n")),
            OmqLanguage::Full
        );
    }

    #[test]
    fn language_properties() {
        assert!(OmqLanguage::Linear.is_ucq_rewritable());
        assert!(OmqLanguage::Sticky.is_ucq_rewritable());
        assert!(OmqLanguage::NonRecursive.is_ucq_rewritable());
        assert!(!OmqLanguage::Guarded.is_ucq_rewritable());
        assert!(OmqLanguage::Guarded.has_decidable_evaluation());
        assert!(!OmqLanguage::General.has_decidable_evaluation());
        assert_eq!(OmqLanguage::Guarded.to_string(), "(G,CQ)");
    }
}
