//! The OMQ containment decision (`Cont(O₁, O₂)`, §3–§6).
//!
//! ## UCQ-rewritable left-hand sides (exact)
//!
//! For `Q₁` in `{∅, L, NR, S}` we implement the small-witness algorithm of
//! Prop. 10 / Thm. 11, derandomized through the structure of its proof: if
//! `Q₁ ⊄ Q₂` then some disjunct `qᵢ` of a UCQ rewriting of `Q₁`, frozen
//! into the canonical database `D_{qᵢ}` with tuple `c(x̄)`, witnesses
//! non-containment. So
//!
//! ```text
//! Q₁ ⊆ Q₂   ⟺   for every disjunct qᵢ of XRewrite(Q₁):  c(x̄) ∈ Q₂(D_{qᵢ})
//! ```
//!
//! Each right-hand check is one evaluation, dispatched per `Q₂`'s language.
//! This realizes the optimal-complexity algorithms behind Theorems 13
//! (linear: PSPACE), 16 (non-recursive) and 19 (sticky: coNEXPTIME), and
//! the `§6.1` combinations where the LHS is UCQ rewritable.
//!
//! ## Guarded (and other non-rewritable) left-hand sides (anytime)
//!
//! `(G, CQ)` is not UCQ rewritable (witness sizes are unbounded), and
//! `Cont((G,CQ))` is 2EXPTIME-complete (Thm. 20) — any implementation must
//! budget. We run XRewrite with growing budgets: every disjunct the partial
//! rewriting produces is a sound witness candidate (the Prop. 10 argument
//! applies to each disjunct individually), so a failing frozen disjunct
//! *refutes* containment; if the rewriting saturates, the decision is exact
//! in both directions; otherwise the result is [`ContainmentResult::Unknown`]
//! with the budgets spent.

use std::fmt;

use omq_model::{ConstId, Cq, Instance, Vocabulary};
use omq_model::{Omq, Ucq};
use omq_rewrite::{xrewrite, RewriteError, XRewriteConfig};

use crate::evaluate::{is_certain_answer, EvalConfig, Trool};
use crate::languages::{detect_language, OmqLanguage};

/// A concrete counterexample to containment: a database over the shared
/// data schema and a tuple that answers `Q₁` but not `Q₂`.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The witnessing database.
    pub database: Instance,
    /// The tuple in `Q₁(D) \ Q₂(D)` (empty for Boolean queries).
    pub tuple: Vec<ConstId>,
}

/// The outcome of a containment check.
#[derive(Clone, Debug)]
pub enum ContainmentResult {
    /// `Q₁ ⊆ Q₂`, with an exact certificate (complete rewriting checked).
    Contained,
    /// `Q₁ ⊄ Q₂`, with a concrete witness (always sound).
    NotContained(Witness),
    /// Budgets were exhausted before a decision; the string explains which.
    Unknown(String),
}

impl ContainmentResult {
    /// Is this a definite `Contained`?
    pub fn is_contained(&self) -> bool {
        matches!(self, ContainmentResult::Contained)
    }

    /// Is this a definite `NotContained`?
    pub fn is_not_contained(&self) -> bool {
        matches!(self, ContainmentResult::NotContained(_))
    }
}

/// Errors for ill-posed containment questions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainmentError {
    /// The two OMQs have different answer arities.
    ArityMismatch,
}

impl fmt::Display for ContainmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainmentError::ArityMismatch => {
                write!(f, "containment requires OMQs of equal answer arity")
            }
        }
    }
}

impl std::error::Error for ContainmentError {}

/// Budgets for the containment check.
#[derive(Clone, Debug)]
pub struct ContainmentConfig {
    /// Rewriting budget for the (exact) UCQ-rewritable path.
    pub rewrite: XRewriteConfig,
    /// Evaluation budgets for the right-hand side checks.
    pub eval: EvalConfig,
    /// Budget ladder for the anytime (guarded) path.
    pub anytime_budgets: Vec<usize>,
    /// When every data-schema predicate is 0-ary (a *propositional*
    /// schema, as in the Thm. 16 reduction) and the schema has at most
    /// this many predicates, decide containment by exhaustively
    /// enumerating all `2^|S|` databases — exact and usually much cheaper
    /// than rewriting. Set to 0 to disable.
    pub max_propositional_schema: usize,
}

impl Default for ContainmentConfig {
    fn default() -> Self {
        ContainmentConfig {
            rewrite: XRewriteConfig::default(),
            eval: EvalConfig::default(),
            anytime_budgets: vec![50, 500, 2_000, 8_000],
            max_propositional_schema: 12,
        }
    }
}

/// Statistics and result of one containment check.
#[derive(Clone, Debug)]
pub struct ContainmentOutcome {
    /// The verdict.
    pub result: ContainmentResult,
    /// Language detected for the left-hand side.
    pub lhs_language: OmqLanguage,
    /// Language detected for the right-hand side.
    pub rhs_language: OmqLanguage,
    /// Number of frozen disjuncts tested against `Q₂`.
    pub witnesses_checked: usize,
    /// Size (atoms) of the largest disjunct tested — the empirical
    /// counterpart of the `f_O` bounds of Props. 12/14/17.
    pub max_witness_size: usize,
}

/// Tests the frozen disjuncts of `rw` against `q2`. Returns a witness on
/// refutation, `Ok(None)` when all disjuncts pass, or `Err(reason)` when an
/// evaluation was inconclusive.
fn check_disjuncts(
    disjuncts: &[Cq],
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
    stats: &mut (usize, usize),
) -> Result<Option<Witness>, String> {
    let mut inconclusive: Option<String> = None;
    for d in disjuncts {
        stats.0 += 1;
        stats.1 = stats.1.max(d.num_atoms());
        let (db, tuple) = d.freeze(voc);
        match is_certain_answer(q2, &db, &tuple, voc, &cfg.eval) {
            Trool::True => {}
            Trool::False => {
                // A definite refutation wins even if earlier disjuncts were
                // inconclusive: the witness is sound on its own.
                return Ok(Some(Witness {
                    database: db,
                    tuple,
                }));
            }
            Trool::Unknown => {
                inconclusive.get_or_insert_with(|| {
                    format!(
                        "evaluation of the right-hand side on a {}-atom witness                          was inconclusive",
                        d.num_atoms()
                    )
                });
            }
        }
    }
    match inconclusive {
        Some(reason) => Err(reason),
        None => Ok(None),
    }
}

/// Decides `Q₁ ⊆ Q₂` for OMQs over a shared data schema.
///
/// See the module docs for the exactness guarantees per language pair.
pub fn contains(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
) -> Result<ContainmentOutcome, ContainmentError> {
    if q1.arity() != q2.arity() {
        return Err(ContainmentError::ArityMismatch);
    }
    let lhs_language = detect_language(q1);
    let rhs_language = detect_language(q2);
    let mut stats = (0usize, 0usize);

    if let Some(result) = propositional_enumeration(q1, q2, voc, cfg, &mut stats) {
        return Ok(ContainmentOutcome {
            result,
            lhs_language,
            rhs_language,
            witnesses_checked: stats.0,
            max_witness_size: stats.1,
        });
    }

    let result = if lhs_language.is_ucq_rewritable() {
        match xrewrite(q1, voc, &cfg.rewrite) {
            Ok(out) => match check_disjuncts(&out.ucq.disjuncts, q2, voc, cfg, &mut stats) {
                Ok(Some(w)) => ContainmentResult::NotContained(w),
                Ok(None) => ContainmentResult::Contained,
                Err(reason) => ContainmentResult::Unknown(reason),
            },
            Err(RewriteError::BudgetExceeded(partial)) => {
                // Should not happen for genuinely rewritable classes, but
                // budgets are budgets: fall back to sound refutation.
                match check_disjuncts(&partial.ucq.disjuncts, q2, voc, cfg, &mut stats) {
                    Ok(Some(w)) => ContainmentResult::NotContained(w),
                    Ok(None) => ContainmentResult::Unknown(
                        "rewriting budget exceeded on a UCQ-rewritable input".into(),
                    ),
                    Err(reason) => ContainmentResult::Unknown(reason),
                }
            }
        }
    } else {
        anytime_guarded(q1, q2, voc, cfg, &mut stats)
    };

    Ok(ContainmentOutcome {
        result,
        lhs_language,
        rhs_language,
        witnesses_checked: stats.0,
        max_witness_size: stats.1,
    })
}

/// Exhaustive decision for *propositional* data schemas (all predicates
/// 0-ary): the `S`-databases are exactly the subsets of the `|S|` facts, so
/// containment is decided by checking `Q₁(D) ⊆ Q₂(D)` on each of the
/// `2^|S|` databases. Exact whenever both evaluations carry a completeness
/// guarantee; returns `None` (falling back to the general algorithms) when
/// the schema is not propositional, too large, or an evaluation was
/// inconclusive.
fn propositional_enumeration(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
    stats: &mut (usize, usize),
) -> Option<ContainmentResult> {
    let preds = q1.data_schema.preds();
    if cfg.max_propositional_schema == 0
        || preds.len() > cfg.max_propositional_schema
        || preds.iter().any(|&p| voc.arity(p) != 0)
    {
        return None;
    }
    for mask in 0u64..(1u64 << preds.len()) {
        let db = Instance::from_atoms(
            preds
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &p)| omq_model::Atom::new(p, vec![])),
        );
        stats.0 += 1;
        stats.1 = stats.1.max(db.len());
        let a1 = crate::evaluate::evaluate(q1, &db, voc, &cfg.eval);
        let a2 = crate::evaluate::evaluate(q2, &db, voc, &cfg.eval);
        use crate::evaluate::EvalGuarantee::SoundLowerBound;
        if a1.guarantee == SoundLowerBound || a2.guarantee == SoundLowerBound {
            return None; // cannot certify either direction: fall back
        }
        if let Some(tuple) = a1.answers.difference(&a2.answers).next() {
            return Some(ContainmentResult::NotContained(Witness {
                database: db,
                tuple: tuple.clone(),
            }));
        }
    }
    Some(ContainmentResult::Contained)
}

/// The anytime path for non-UCQ-rewritable left-hand sides.
fn anytime_guarded(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
    stats: &mut (usize, usize),
) -> ContainmentResult {
    let mut tested = 0usize;
    for &budget in &cfg.anytime_budgets {
        let rw_cfg = XRewriteConfig {
            max_queries: budget,
            ..cfg.rewrite.clone()
        };
        let (ucq, complete) = match xrewrite(q1, voc, &rw_cfg) {
            Ok(out) => (out.ucq, true),
            Err(RewriteError::BudgetExceeded(partial)) => (partial.ucq, false),
        };
        // Only test disjuncts not covered in earlier (smaller) rounds.
        let fresh: Vec<Cq> = ucq.disjuncts.iter().skip(tested).cloned().collect();
        tested = ucq.disjuncts.len().max(tested);
        match check_disjuncts(&fresh, q2, voc, cfg, stats) {
            Ok(Some(w)) => return ContainmentResult::NotContained(w),
            Ok(None) => {
                if complete {
                    return ContainmentResult::Contained;
                }
            }
            Err(reason) => return ContainmentResult::Unknown(reason),
        }
    }
    ContainmentResult::Unknown(format!(
        "anytime rewriting budgets exhausted ({} disjuncts refuted nothing); \
         the guarded containment problem is 2EXPTIME-complete — raise \
         `anytime_budgets` to search further",
        tested
    ))
}

/// Mutual containment.
pub fn equivalent(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
) -> Result<(ContainmentOutcome, ContainmentOutcome), ContainmentError> {
    Ok((contains(q1, q2, voc, cfg)?, contains(q2, q1, voc, cfg)?))
}

/// Convenience: containment of a plain (U)CQ in a plain (U)CQ over the same
/// schema, as OMQs with empty ontologies (classical Chandra–Merlin /
/// Sagiv–Yannakakis, the `O_∅` baseline of §3.1).
pub fn ucq_contains(
    q1: &Ucq,
    q2: &Ucq,
    schema: &omq_model::Schema,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
) -> Result<ContainmentOutcome, ContainmentError> {
    let o1 = Omq::new(schema.clone(), vec![], q1.clone());
    let o2 = Omq::new(schema.clone(), vec![], q2.clone());
    contains(&o1, &o2, voc, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema};

    fn setup(text: &str, data: &[&str], n1: &str, n2: &str) -> (Omq, Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        let q1 = Omq::new(
            schema.clone(),
            prog.tgds.clone(),
            prog.query(n1).unwrap().clone(),
        );
        let q2 = Omq::new(schema, prog.tgds.clone(), prog.query(n2).unwrap().clone());
        (q1, q2, voc)
    }

    #[test]
    fn plain_cq_containment() {
        // path2 ⊆ path1, not conversely.
        let (q1, q2, mut voc) = setup(
            "p2 :- E(X,Y), E(Y,Z)\np1 :- E(U,V)\n",
            &["E"],
            "p2",
            "p1",
        );
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        assert!(out.result.is_contained());
        assert_eq!(out.lhs_language, OmqLanguage::Empty);
        let back = contains(&q2, &q1, &mut voc, &cfg).unwrap();
        match back.result {
            ContainmentResult::NotContained(w) => {
                assert_eq!(w.database.len(), 1); // the frozen single edge
                assert!(w.tuple.is_empty());
            }
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    /// The ontology makes a containment hold that fails without it.
    #[test]
    fn ontology_enables_containment() {
        // With T(x) → P(x): answering P subsumes answering T.
        let (q1, q2, mut voc) = setup(
            "T(X) -> P(X)\n\
             qt(X) :- T(X)\n\
             qp(X) :- P(X)\n",
            &["P", "T"],
            "qt",
            "qp",
        );
        let cfg = ContainmentConfig::default();
        assert!(contains(&q1, &q2, &mut voc, &cfg).unwrap().result.is_contained());
        // Without help in the other direction: P(a) does not make T true.
        assert!(contains(&q2, &q1, &mut voc, &cfg)
            .unwrap()
            .result
            .is_not_contained());
    }

    /// Example 1 of the paper as a containment statement: the rewriting of
    /// q(x) :- R(x,y), P(y) is P(x) ∨ T(x), so Q1 is contained in the OMQ
    /// asking P(x) ∨ T(x) directly and vice versa.
    #[test]
    fn paper_example_equivalence() {
        let (q1, q2, mut voc) = setup(
            "P(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> P(Y)\n\
             T(X) -> P(X)\n\
             q(X) :- R(X,Y), P(Y)\n\
             r(X) :- P(X)\n\
             r(X) :- T(X)\n",
            &["P", "T"],
            "q",
            "r",
        );
        let cfg = ContainmentConfig::default();
        let (a, b) = equivalent(&q1, &q2, &mut voc, &cfg).unwrap();
        assert!(a.result.is_contained(), "{:?}", a.result);
        assert!(b.result.is_contained(), "{:?}", b.result);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (q1, q2, mut voc) = setup("a(X) :- P(X)\nb :- P(X)\n", &["P"], "a", "b");
        assert_eq!(
            contains(&q1, &q2, &mut voc, &ContainmentConfig::default()).unwrap_err(),
            ContainmentError::ArityMismatch
        );
    }

    /// Sticky LHS (recursive, unguarded, marking-clean) — exercises the
    /// sticky rewriting path of Thm. 19.
    #[test]
    fn sticky_lhs_containment() {
        let (q1, q2, mut voc) = setup(
            "R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)\n\
             T(X,Y,W) -> R(Y,X)\n\
             qs :- T(X,Y,W)\n\
             ql :- T(X,Y,W)\n",
            &["R", "P"],
            "qs",
            "ql",
        );
        // Same ontology and query on both sides: containment must hold.
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        assert_eq!(out.lhs_language, OmqLanguage::Sticky);
        assert!(out.result.is_contained(), "{:?}", out.result);
        assert!(out.witnesses_checked >= 1);
    }

    /// Guarded LHS: the anytime path still refutes non-containment with a
    /// concrete witness.
    #[test]
    fn guarded_lhs_refutation() {
        let (q1, q2, mut voc) = setup(
            "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\n\
             g :- G(X,Y,Z)\n\
             h :- R(X,Y), R(Y,Z), R(Z,X)\n",
            &["G", "R"],
            "g",
            "h",
        );
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        assert_eq!(out.lhs_language, OmqLanguage::Guarded);
        assert!(out.result.is_not_contained(), "{:?}", out.result);
    }

    /// A non-UCQ-rewritable LHS (full tgds) whose particular query still
    /// saturates the rewriting: the anytime path returns an exact
    /// `Contained`.
    #[test]
    fn anytime_saturating_containment() {
        let (q1, q2, mut voc) = setup(
            "B(X,Y), C(Y,Z) -> B(X,Z)\n\
             g :- C(U,V)\n\
             h :- C(U,V)\n",
            &["B", "C"],
            "g",
            "h",
        );
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        assert_eq!(out.lhs_language, OmqLanguage::Full);
        assert!(out.result.is_contained(), "{:?}", out.result);
    }

    /// A guarded LHS where neither a refutation nor saturation is reachable
    /// within tiny budgets: the anytime path reports Unknown honestly.
    #[test]
    fn anytime_unknown_on_tiny_budgets() {
        let (q1, q2, mut voc) = setup(
            "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\n\
             g :- G(X,Y,Z), R(X,Y)\n\
             h :- G(X,Y,Z)\n",
            &["G", "R"],
            "g",
            "h",
        );
        let cfg = ContainmentConfig {
            anytime_budgets: vec![5],
            ..Default::default()
        };
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        // Every rewriting disjunct of g keeps a G-atom, so h is never
        // refuted; but the rewriting does not saturate either.
        assert!(
            matches!(out.result, ContainmentResult::Unknown(_))
                || out.result.is_contained(),
            "{:?}",
            out.result
        );
    }

    /// Witnesses respect the data schema: the rewriting only emits
    /// disjuncts over S, so the counterexample database is S-only.
    #[test]
    fn witness_is_over_data_schema() {
        let (q1, q2, mut voc) = setup(
            "P(X) -> exists Y . R(X,Y)\n\
             a(X) :- P(X)\n\
             b(X) :- T(X)\n",
            &["P", "T"],
            "a",
            "b",
        );
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        match out.result {
            ContainmentResult::NotContained(w) => {
                for atom in w.database.atoms() {
                    assert!(q1.data_schema.contains(atom.pred));
                }
                assert_eq!(w.tuple.len(), 1);
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn ucq_convenience_wrapper() {
        let prog = parse_program("a(X) :- P(X)\nb(X) :- P(X)\nb(X) :- T(X)\n").unwrap();
        let mut voc = prog.voc.clone();
        let schema = Schema::from_preds([voc.pred_id("P").unwrap(), voc.pred_id("T").unwrap()]);
        let cfg = ContainmentConfig::default();
        let out = ucq_contains(
            prog.query("a").unwrap(),
            prog.query("b").unwrap(),
            &schema,
            &mut voc,
            &cfg,
        )
        .unwrap();
        assert!(out.result.is_contained());
        let back = ucq_contains(
            prog.query("b").unwrap(),
            prog.query("a").unwrap(),
            &schema,
            &mut voc,
            &cfg,
        )
        .unwrap();
        assert!(back.result.is_not_contained());
    }
}
